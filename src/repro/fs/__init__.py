"""File-system models: ext4-like, f2fs-like, and Geriatrix-style aging."""

from repro.fs.aging import PROFILES, AgingProfile, age_filesystem
from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import CounterBackend, Extent, FsError, FsModel, TimedBackend

__all__ = [
    "Ext4Model",
    "F2fsModel",
    "FsModel",
    "FsError",
    "Extent",
    "CounterBackend",
    "TimedBackend",
    "AgingProfile",
    "age_filesystem",
    "PROFILES",
]
