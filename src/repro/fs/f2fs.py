"""An F2FS-flavoured log-structured file-system model.

Block-trace behaviour captured:

* all data and node (inode) writes **append** to per-type logs laid out
  in segments — the flash-friendly pattern F2FS was designed around;
* overwrites invalidate the old location and append a new one, so the
  device never sees in-place updates in the main area;
* when free segments run low the cleaner migrates valid blocks out of a
  victim segment (real extra I/O, charged to the device) and frees it;
* deleted and cleaned space is discarded (F2FS issues discard by
  default), letting the FTL drop the sectors;
* a small checkpoint region is rewritten in place periodically.

The six-log design is reduced to two logs (data, node) — the distinction
that matters to the device is "several sequential append streams plus a
tiny in-place area", which two logs already produce.

Internally each file tracks one device LBA per file sector; extents are
derived by coalescing for the read path.  At simulation scale this is
cheap and removes a whole class of extent-splicing bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fs.vfs import Extent, FileMeta, FsError, FsModel


@dataclass
class _Segment:
    index: int
    start: int
    cursor: int = 0
    valid: int = 0


class F2fsModel(FsModel):
    """Log-structured FS over a block backend."""

    name = "f2fs"

    def __init__(
        self,
        backend,
        segment_sectors: int = 512,
        checkpoint_sectors: int = 64,
        checkpoint_interval: int = 64,
        clean_low_water: int = 4,
        seed: int = 0,
    ) -> None:
        super().__init__(backend)
        total = backend.num_sectors
        main_start = checkpoint_sectors
        main_sectors = total - checkpoint_sectors
        self.num_segments = main_sectors // segment_sectors
        if self.num_segments < clean_low_water + 2:
            raise FsError("device too small for segmented layout")
        self.segment_sectors = segment_sectors
        self.checkpoint = Extent(0, checkpoint_sectors)
        self.checkpoint_interval = checkpoint_interval
        self.clean_low_water = clean_low_water
        self.main_start = main_start
        self._rng = np.random.default_rng(seed)

        self._free_segments: list[int] = list(range(self.num_segments - 1, -1, -1))
        self._segments: dict[int, _Segment] = {}
        self._logs: dict[str, _Segment | None] = {"data": None, "node": None}
        #: owner of each live main-area sector:
        #: ("data", file_name, file_offset) or ("node", ino).
        self._owner: dict[int, tuple] = {}
        #: per-file device LBA of each file sector.
        self._locs: dict[str, list[int]] = {}
        self._node_loc: dict[int, int] = {}
        self._ops_since_checkpoint = 0
        self._ino_of: dict[str, int] = {}
        self._ino_counter = 0
        self.cleaner_moves = 0
        self.checkpoints = 0
        self._cleaning = False

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def create(self, name: str, sectors: int) -> None:
        if name in self.files:
            raise FsError(f"file exists: {name!r}")
        if sectors <= 0:
            raise FsError("file size must be positive")
        self._ino_of[name] = self._ino_counter
        self._ino_counter += 1
        self.files[name] = FileMeta(name, [])
        self._locs[name] = []
        self._write_file_range(name, 0, sectors, extend=True)
        self._write_node(name)
        self._tick()
        self.stats.creates += 1

    def delete(self, name: str) -> None:
        meta = self._file(name)
        for extent in meta.extents:
            self.backend.trim(extent.start, extent.length)
        for lba in self._locs[name]:
            self._invalidate(lba)
        ino = self._ino_of[name]
        node_lba = self._node_loc.pop(ino, None)
        if node_lba is not None:
            self._invalidate(node_lba)
        del self.files[name]
        del self._locs[name]
        del self._ino_of[name]
        self._tick()
        self.stats.deletes += 1

    def overwrite(self, name: str, offset: int, sectors: int) -> None:
        """Out-of-place: invalidate old sectors, append new ones."""
        meta = self._file(name)
        if offset < 0 or offset + sectors > meta.sectors:
            raise FsError("overwrite range outside file")
        self._write_file_range(name, offset, sectors, extend=False)
        self._write_node(name)
        self._tick()
        self.stats.overwrites += 1

    def append(self, name: str, sectors: int) -> None:
        meta = self._file(name)
        self._write_file_range(name, meta.sectors, sectors, extend=True)
        self._write_node(name)
        self._tick()
        self.stats.appends += 1

    # ------------------------------------------------------------------
    # Log machinery
    # ------------------------------------------------------------------

    def _write_file_range(self, name: str, offset: int, sectors: int,
                          extend: bool) -> None:
        locs = self._locs[name]
        if not extend:
            for i in range(offset, offset + sectors):
                self._invalidate(locs[i])
        lbas = self._log_append("data", sectors)
        for i, lba in enumerate(lbas):
            file_off = offset + i
            self._owner[lba] = ("data", name, file_off)
            if extend:
                locs.append(lba)
            else:
                locs[file_off] = lba
        self._refresh_extents(name)

    def _write_node(self, name: str) -> None:
        ino = self._ino_of[name]
        old = self._node_loc.get(ino)
        if old is not None:
            self._invalidate(old)
        lba = self._log_append("node", 1)[0]
        self._owner[lba] = ("node", ino)
        self._node_loc[ino] = lba

    def _log_append(self, log: str, sectors: int) -> list[int]:
        """Append *sectors* to a log; returns the LBAs written, and
        performs the device writes in segment-contiguous runs."""
        out: list[int] = []
        written = 0
        while written < sectors:
            segment = self._active_segment(log)
            room = self.segment_sectors - segment.cursor
            take = min(room, sectors - written)
            lba = self.main_start + segment.start + segment.cursor
            self.backend.write(lba, take)
            out.extend(range(lba, lba + take))
            segment.cursor += take
            segment.valid += take
            written += take
            if segment.cursor >= self.segment_sectors:
                self._logs[log] = None
        return out

    def _active_segment(self, log: str) -> _Segment:
        segment = self._logs[log]
        if segment is not None and segment.cursor < self.segment_sectors:
            return segment
        self._ensure_free_segments()
        # Cleaning may itself have opened a fresh segment for this log
        # (its moves append here too) — reuse it rather than abandoning it.
        segment = self._logs[log]
        if segment is not None and segment.cursor < self.segment_sectors:
            return segment
        if not self._free_segments:
            raise FsError("no free segments (volume full)")
        index = self._free_segments.pop()
        segment = _Segment(index, index * self.segment_sectors)
        self._segments[index] = segment
        self._logs[log] = segment
        return segment

    def _invalidate(self, lba: int) -> None:
        owner = self._owner.pop(lba, None)
        if owner is None:
            return
        seg_index = (lba - self.main_start) // self.segment_sectors
        segment = self._segments.get(seg_index)
        if segment is not None:
            segment.valid -= 1

    def _refresh_extents(self, name: str) -> None:
        """Rebuild the coalesced extent list from per-sector locations."""
        locs = self._locs[name]
        extents: list[Extent] = []
        for lba in locs:
            if extents and extents[-1].end == lba:
                extents[-1] = Extent(extents[-1].start, extents[-1].length + 1)
            else:
                extents.append(Extent(lba, 1))
        self.files[name].extents = extents

    # ------------------------------------------------------------------
    # Cleaning (F2FS GC)
    # ------------------------------------------------------------------

    def _ensure_free_segments(self) -> None:
        if self._cleaning:
            return  # the cleaner draws on the low-water reserve
        self._cleaning = True
        try:
            # One clean can transiently open a fresh segment in each log
            # before its victim is freed, so cleaning starts while enough
            # slack remains to cover that dip.
            reserve = self.clean_low_water + len(self._logs)
            guard = self.num_segments
            while len(self._free_segments) <= reserve and guard:
                guard -= 1
                if len(self._free_segments) < len(self._logs):
                    break  # not enough slack to clean safely: truly full
                if not self._clean_one():
                    break
        finally:
            self._cleaning = False

    def _clean_one(self) -> bool:
        active = {s.index for s in self._logs.values() if s is not None}
        candidates = [
            s for s in self._segments.values()
            if s.index not in active and s.cursor >= self.segment_sectors
               and s.valid < self.segment_sectors
        ]
        if not candidates:
            return False
        victim = min(candidates, key=lambda s: s.valid)
        base = self.main_start + victim.start
        moved = [
            (lba, self._owner[lba])
            for lba in range(base, base + self.segment_sectors)
            if lba in self._owner
        ]
        if moved:
            self.backend.read(base, self.segment_sectors)
        for lba, owner in moved:
            self._invalidate(lba)
            if owner[0] == "node":
                _, ino = owner
                new_lba = self._log_append("node", 1)[0]
                self._owner[new_lba] = owner
                self._node_loc[ino] = new_lba
            else:
                _, name, offset = owner
                new_lba = self._log_append("data", 1)[0]
                if name in self._locs and offset < len(self._locs[name]):
                    self._owner[new_lba] = owner
                    self._locs[name][offset] = new_lba
                    self._refresh_extents(name)
            self.cleaner_moves += 1
        del self._segments[victim.index]
        self.backend.trim(base, self.segment_sectors)
        self._free_segments.insert(0, victim.index)
        return True

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._ops_since_checkpoint += 1
        if self._ops_since_checkpoint >= self.checkpoint_interval:
            self._ops_since_checkpoint = 0
            self.checkpoints += 1
            # Two alternating checkpoint packs; write a few sectors in place.
            half = max(1, self.checkpoint.length // 2)
            base = self.checkpoint.start + (self.checkpoints % 2) * half
            self.backend.write(base, min(4, half))

    # ------------------------------------------------------------------

    def utilization(self) -> float:
        used = (self.num_segments - len(self._free_segments)) * self.segment_sectors
        return used / (self.num_segments * self.segment_sectors)

    def live_sectors(self) -> int:
        return len(self._owner)
