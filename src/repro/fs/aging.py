"""Geriatrix-style file-system aging.

Kadekodi et al. (ATC '18) showed that both the file system's free-space
state *and the SSD's internal state* ("what you see and what you don't
see") must be aged before benchmark numbers mean anything — that study is
the source of the paper's Fig 1.  An :class:`AgingProfile` replays a
create/delete churn with a target utilization and file-size distribution;
running it fragments the FS free map and, through the backend, puts the
FTL into a realistic steady state (mixed-age blocks, high occupancy,
populated mapping).

Profiles ``U`` (unaged), ``A``, and ``M`` correspond to the three aging
conditions in Fig 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fs.vfs import FsError, FsModel


@dataclass(frozen=True)
class AgingProfile:
    """One aging recipe.

    ``phases`` is a list of ``(target_utilization, ops)`` pairs: each
    phase churns creates/deletes, biased toward creation below the target
    and deletion above it, for ``ops`` operations.  Oscillating targets
    (fill high, drain, re-fill) produce the fragmented free space that
    distinguishes aged images.
    """

    name: str
    phases: tuple[tuple[float, int], ...]
    #: lognormal file-size parameters (sectors).
    size_mu: float = 2.5
    size_sigma: float = 1.0
    max_file_sectors: int = 2048

    def sample_size(self, rng: np.random.Generator) -> int:
        size = int(np.exp(rng.normal(self.size_mu, self.size_sigma)))
        return max(1, min(size, self.max_file_sectors))


#: Fresh file system: no churn at all.
PROFILE_U = AgingProfile("U", phases=())

#: Small-file churn to high utilization (mailserver-ish history).
PROFILE_A = AgingProfile(
    "A",
    phases=((0.70, 3000), (0.55, 1200), (0.72, 2000)),
    size_mu=2.0,
    size_sigma=0.8,
    max_file_sectors=256,
)

#: Mixed sizes, fill-drain-fill cycles (the "M" profile ages harder).
PROFILE_M = AgingProfile(
    "M",
    phases=((0.80, 2500), (0.50, 1200), (0.82, 2500), (0.65, 800)),
    size_mu=3.0,
    size_sigma=1.2,
    max_file_sectors=2048,
)

PROFILES = {"U": PROFILE_U, "A": PROFILE_A, "M": PROFILE_M}


@dataclass
class AgingReport:
    """What the aging run did to the image."""

    profile: str
    operations: int
    files_created: int
    files_deleted: int
    final_utilization: float
    fragmentation: float


def age_filesystem(fs: FsModel, profile: AgingProfile, seed: int = 0) -> AgingReport:
    """Run one aging profile against a live file-system model."""
    rng = np.random.default_rng(seed)
    created = deleted = ops = 0
    serial = 0
    for target, phase_ops in profile.phases:
        for _ in range(phase_ops):
            ops += 1
            util = _utilization(fs)
            want_create = util < target
            # Small randomness so phases interleave creates and deletes.
            if rng.random() < 0.15:
                want_create = not want_create
            if want_create or not fs.files:
                size = profile.sample_size(rng)
                name = f"aged-{profile.name}-{serial}"
                serial += 1
                try:
                    fs.create(name, size)
                    created += 1
                except FsError:
                    if fs.files:
                        _delete_random(fs, rng)
                        deleted += 1
            else:
                _delete_random(fs, rng)
                deleted += 1
    return AgingReport(
        profile=profile.name,
        operations=ops,
        files_created=created,
        files_deleted=deleted,
        final_utilization=_utilization(fs),
        fragmentation=_fragmentation(fs),
    )


def _delete_random(fs: FsModel, rng: np.random.Generator) -> None:
    names = list(fs.files)
    fs.delete(names[int(rng.integers(len(names)))])


def _utilization(fs: FsModel) -> float:
    space = getattr(fs, "space", None)
    if space is not None:  # extent-allocating models (ext4)
        return space.utilization()
    return fs.utilization()  # segment models (f2fs)


def _fragmentation(fs: FsModel) -> float:
    space = getattr(fs, "space", None)
    if space is not None:
        return space.fragmentation()
    # Segment models: fragmentation shows up as partially-valid segments.
    segments = getattr(fs, "_segments", {})
    if not segments:
        return 0.0
    partial = sum(
        1 for s in segments.values() if 0 < s.valid < fs.segment_sectors
    )
    return partial / max(1, len(segments))
