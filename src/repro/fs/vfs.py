"""Common file-system model machinery.

The Fig 1 reproduction needs two *block-trace-accurate* file system
models: what matters to the SSD is the pattern of sector writes, reads,
and discards each design produces, not POSIX semantics.  The models here
implement just enough structure — extent allocation, metadata regions,
journals/logs — to generate those patterns faithfully.

A model talks to either device mode through a tiny backend adapter, so
the same FS code runs WAF studies (counter mode) and throughput studies
(timed mode).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssd.host import HostDevice
from repro.ssd.timed import TimedSSD


class FsError(Exception):
    """File-system level failure (no space, unknown file, bad range)."""


# ----------------------------------------------------------------------
# Device backends
# ----------------------------------------------------------------------


class CounterBackend:
    """Adapter over a counter-mode :class:`~repro.ssd.host.HostDevice`
    (no clock)."""

    def __init__(self, device: HostDevice) -> None:
        self.device = device

    @property
    def num_sectors(self) -> int:
        return self.device.num_sectors

    @property
    def now_ns(self) -> int:
        return 0

    def write(self, lba: int, count: int) -> None:
        self.device.write_sectors(lba, count)

    def read(self, lba: int, count: int) -> None:
        self.device.read_sectors(lba, count)

    def trim(self, lba: int, count: int) -> None:
        self.device.trim_sectors(lba, count)

    def flush(self) -> None:
        self.device.flush()


class TimedBackend:
    """Adapter over :class:`TimedSSD`: each FS op advances device time.

    The sector commands are :class:`~repro.ssd.host.HostDevice`'s
    synchronous forms, which submit at the current clock and advance
    past the completion; only ``flush`` (whose timed form does not move
    the clock) advances time explicitly.
    """

    def __init__(self, device: TimedSSD) -> None:
        self.device = device

    @property
    def num_sectors(self) -> int:
        return self.device.num_sectors

    @property
    def now_ns(self) -> int:
        return self.device.now

    def write(self, lba: int, count: int) -> None:
        self.device.write_sectors(lba, count)

    def read(self, lba: int, count: int) -> None:
        self.device.read_sectors(lba, count)

    def trim(self, lba: int, count: int) -> None:
        self.device.trim_sectors(lba, count)

    def flush(self) -> None:
        request = self.device.flush()
        self.device.now = request.complete_ns


# ----------------------------------------------------------------------
# Extents and free space
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Extent:
    """A contiguous run of sectors."""

    start: int
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


class FreeSpaceMap:
    """First-fit extent allocator over ``[base, base + size)``.

    Files allocated and freed over time fragment the map — the mechanism
    Geriatrix-style aging exploits.
    """

    def __init__(self, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.base = base
        self.size = size
        self._free: list[Extent] = [Extent(base, size)]

    @property
    def free_sectors(self) -> int:
        return sum(e.length for e in self._free)

    @property
    def used_sectors(self) -> int:
        return self.size - self.free_sectors

    def utilization(self) -> float:
        return self.used_sectors / self.size

    def fragmentation(self) -> float:
        """1 - (largest free extent / total free): 0 = one hole, -> 1 = dust."""
        total = self.free_sectors
        if total == 0:
            return 0.0
        largest = max(e.length for e in self._free)
        return 1.0 - largest / total

    def free_extent_count(self) -> int:
        return len(self._free)

    def allocate(self, sectors: int) -> list[Extent]:
        """First-fit allocation; splits across holes when necessary."""
        if sectors <= 0:
            raise ValueError("sectors must be positive")
        if sectors > self.free_sectors:
            raise FsError(f"no space: need {sectors}, have {self.free_sectors}")
        got: list[Extent] = []
        need = sectors
        new_free: list[Extent] = []
        for extent in self._free:
            if need <= 0:
                new_free.append(extent)
                continue
            take = min(need, extent.length)
            got.append(Extent(extent.start, take))
            need -= take
            if take < extent.length:
                new_free.append(Extent(extent.start + take, extent.length - take))
        self._free = new_free
        return got

    def release(self, extents: list[Extent]) -> None:
        """Return extents to the free map, coalescing neighbours."""
        merged = sorted(self._free + list(extents), key=lambda e: e.start)
        out: list[Extent] = []
        for extent in merged:
            if out and out[-1].end == extent.start:
                out[-1] = Extent(out[-1].start, out[-1].length + extent.length)
            elif out and out[-1].end > extent.start:
                raise FsError("double free / overlapping extents")
            else:
                out.append(extent)
        self._free = out


# ----------------------------------------------------------------------
# Base FS model
# ----------------------------------------------------------------------


@dataclass
class FileMeta:
    """In-model file state."""

    name: str
    extents: list[Extent] = field(default_factory=list)

    @property
    def sectors(self) -> int:
        return sum(e.length for e in self.extents)


@dataclass
class FsStats:
    creates: int = 0
    deletes: int = 0
    overwrites: int = 0
    appends: int = 0
    reads: int = 0


class FsModel:
    """Shared bookkeeping; subclasses implement the write patterns."""

    name = "abstract"

    def __init__(self, backend) -> None:
        self.backend = backend
        self.files: dict[str, FileMeta] = {}
        self.stats = FsStats()

    # -- required surface -------------------------------------------------

    def create(self, name: str, sectors: int) -> None:
        raise NotImplementedError

    def delete(self, name: str) -> None:
        raise NotImplementedError

    def overwrite(self, name: str, offset: int, sectors: int) -> None:
        raise NotImplementedError

    def append(self, name: str, sectors: int) -> None:
        raise NotImplementedError

    # -- shared helpers ----------------------------------------------------

    def read(self, name: str, offset: int = 0, sectors: int | None = None) -> None:
        """Read a file range (default: the whole file)."""
        meta = self._file(name)
        sectors = meta.sectors - offset if sectors is None else sectors
        for extent in self._slice_extents(meta, offset, sectors):
            self.backend.read(extent.start, extent.length)
        self.stats.reads += 1

    def exists(self, name: str) -> bool:
        return name in self.files

    def file_sectors(self, name: str) -> int:
        return self._file(name).sectors

    def _file(self, name: str) -> FileMeta:
        try:
            return self.files[name]
        except KeyError:
            raise FsError(f"no such file: {name!r}") from None

    @staticmethod
    def _slice_extents(meta: FileMeta, offset: int, sectors: int) -> list[Extent]:
        """Map a logical file range onto its physical extents."""
        if offset < 0 or sectors < 0 or offset + sectors > meta.sectors:
            raise FsError(
                f"range [{offset}, {offset + sectors}) outside file of "
                f"{meta.sectors} sectors"
            )
        out: list[Extent] = []
        skip = offset
        need = sectors
        for extent in meta.extents:
            if need <= 0:
                break
            if skip >= extent.length:
                skip -= extent.length
                continue
            start = extent.start + skip
            take = min(extent.length - skip, need)
            out.append(Extent(start, take))
            skip = 0
            need -= take
        return out
