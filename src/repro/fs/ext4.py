"""An EXT4-flavoured in-place, journaling file-system model.

Block-trace behaviour captured (ordered-mode journaling):

* data writes go **in place** to the file's extents;
* every metadata change appends a descriptor+commit pair to a circular
  journal region (JBD2), then the metadata (inode/bitmap sectors) is
  written **in place** at its home location;
* the allocator is first-fit over a fragmenting free map, so aged images
  produce scattered extents and scattered in-place writes — the access
  pattern that interacts badly with some FTLs in Fig 1;
* deletes do not discard by default (mount option ``discard`` off, the
  common configuration in the Geriatrix study's era).
"""

from __future__ import annotations

from repro.fs.vfs import Extent, FileMeta, FreeSpaceMap, FsError, FsModel


class Ext4Model(FsModel):
    """In-place journaling FS over a block backend."""

    name = "ext4"

    #: sectors appended to the journal per metadata transaction.
    JOURNAL_SECTORS_PER_TXN = 2

    def __init__(
        self,
        backend,
        journal_sectors: int = 1024,
        metadata_sectors: int = 512,
        discard: bool = False,
    ) -> None:
        super().__init__(backend)
        total = backend.num_sectors
        overhead = journal_sectors + metadata_sectors
        if overhead >= total:
            raise FsError("device too small for journal + metadata regions")
        self.journal = Extent(0, journal_sectors)
        self.metadata = Extent(journal_sectors, metadata_sectors)
        self.space = FreeSpaceMap(overhead, total - overhead)
        self.discard = discard
        self._journal_cursor = 0
        self._inode_counter = 0
        self._inode_of: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def create(self, name: str, sectors: int) -> None:
        if name in self.files:
            raise FsError(f"file exists: {name!r}")
        extents = self.space.allocate(sectors)
        self.files[name] = FileMeta(name, extents)
        self._inode_of[name] = self._inode_counter
        self._inode_counter += 1
        self._journal_txn()
        self._write_inode(name)
        self._write_bitmap(extents)
        for extent in extents:
            self.backend.write(extent.start, extent.length)
        self.stats.creates += 1

    def delete(self, name: str) -> None:
        meta = self._file(name)
        self._journal_txn()
        self._write_inode(name)
        self._write_bitmap(meta.extents)
        if self.discard:
            for extent in meta.extents:
                self.backend.trim(extent.start, extent.length)
        self.space.release(meta.extents)
        del self.files[name]
        del self._inode_of[name]
        self.stats.deletes += 1

    def overwrite(self, name: str, offset: int, sectors: int) -> None:
        """Ordered mode: data in place, then journaled metadata."""
        meta = self._file(name)
        for extent in self._slice_extents(meta, offset, sectors):
            self.backend.write(extent.start, extent.length)
        self._journal_txn()
        self._write_inode(name)  # mtime update
        self.stats.overwrites += 1

    def append(self, name: str, sectors: int) -> None:
        meta = self._file(name)
        extents = self.space.allocate(sectors)
        meta.extents.extend(extents)
        self._journal_txn()
        self._write_inode(name)
        self._write_bitmap(extents)
        for extent in extents:
            self.backend.write(extent.start, extent.length)
        self.stats.appends += 1

    # ------------------------------------------------------------------
    # Metadata write patterns
    # ------------------------------------------------------------------

    def _journal_txn(self) -> None:
        """Append one descriptor+commit pair to the circular journal."""
        for _ in range(self.JOURNAL_SECTORS_PER_TXN):
            lba = self.journal.start + self._journal_cursor
            self.backend.write(lba, 1)
            self._journal_cursor = (self._journal_cursor + 1) % self.journal.length

    def _write_inode(self, name: str) -> None:
        """In-place write of the file's inode-table sector."""
        slot = self._inode_of[name] % self.metadata.length
        self.backend.write(self.metadata.start + slot, 1)

    def _write_bitmap(self, extents: list[Extent]) -> None:
        """In-place writes of the block-group bitmap sectors touched."""
        group_size = max(1, self.space.size // self.metadata.length)
        touched = set()
        for extent in extents:
            first = (extent.start - self.space.base) // group_size
            last = (extent.end - 1 - self.space.base) // group_size
            touched.update(range(first, last + 1))
        for group in sorted(touched):
            self.backend.write(self.metadata.start + group % self.metadata.length, 1)
