"""Command-line interface: run the paper's studies from a shell.

Installed as ``repro-ssd``.  Every subcommand is a thin veneer over the
library — useful for demos, quick sweeps, and as executable
documentation of the public API::

    repro-ssd simulate --preset mx500 --writes 20000
    repro-ssd trace --preset tiny --writes 4000 --out trace.jsonl
    repro-ssd nand-page --preset mx500
    repro-ssd waf-study --io-count 12000
    repro-ssd fidelity --io-count 2000
    repro-ssd compression --regime high
    repro-ssd jtag-study --scale 2
    repro-ssd probe-features --cache-sectors 128
    repro-ssd faultsweep --preset tiny --strides 1,7,31
    repro-ssd presets
    repro-ssd policies
    repro-ssd policy-grid --io-count 1000 --jobs 4
    repro-ssd infer --seed 7
    repro-ssd transparency --points 8 --jobs 4
    repro-ssd fleet --devices 1000 --mix default --jobs 4
    repro-ssd fleet --devices 256 --campaign default --afr 0.5 --keep-going
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import format_table
from repro.analysis.stats import summarize_latencies
from repro.fleet.spec import TENANT_MIXES
from repro.ssd.presets import PRESETS


def _preset(name: str, scale: int):
    try:
        return PRESETS[name](scale=scale)
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise SystemExit(f"unknown preset {name!r}; known: {known}")


def _make_runner(args):
    """Build a Runner from the shared --jobs / --no-cache flags (plus
    the hardening flags --timeout / --keep-going where a subcommand
    offers them)."""
    from repro.exp import ResultCache, Runner

    cache = None if args.no_cache else ResultCache()
    try:
        return Runner(jobs=args.jobs, cache=cache,
                      timeout_s=getattr(args, "timeout", None),
                      keep_going=getattr(args, "keep_going", False))
    except ValueError as exc:
        # e.g. --jobs 0 or REPRO_JOBS=-2: exit with the message, not a
        # traceback.
        raise SystemExit(f"repro-ssd: {exc}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def cmd_presets(args) -> int:
    rows = []
    for name, factory in sorted(PRESETS.items()):
        config = factory(scale=args.scale)
        geometry = config.geometry
        rows.append([
            name,
            f"{config.logical_bytes / 2**20:.0f} MiB",
            geometry.channels,
            geometry.page_size,
            config.gc_policy,
            config.cache_designation,
            config.rain_stripe or "-",
            config.pslc_blocks or "-",
        ])
    print(format_table(
        ["preset", "logical", "ch", "page B", "gc", "cache", "rain", "pslc"],
        rows, title="device presets",
    ))
    return 0


def cmd_policies(args) -> int:
    """List every registered FTL policy, per design knob."""
    from repro.ssd.policy import REGISTRIES

    for knob, registry in REGISTRIES.items():
        rows = []
        for entry in registry:
            fields = ", ".join(entry.schema) if entry.schema else "-"
            rows.append([entry.name, entry.summary, fields])
        print(format_table(
            ["policy", "summary", "config fields"],
            rows, title=f"{knob} ({len(registry)} registered)",
        ))
        print()
    return 0


def cmd_simulate(args) -> int:
    from repro.ssd.device import SimulatedSSD
    from repro.workloads.engine import run_counter
    from repro.workloads.patterns import Region
    from repro.workloads.spec import JobSpec

    device = SimulatedSSD(_preset(args.preset, args.scale))
    job = JobSpec(
        name="cli",
        rw="randwrite" if args.pattern != "sequential" else "write",
        region=Region(0, device.num_sectors),
        bs_sectors=args.bs,
        io_count=args.writes,
        pattern=None if args.pattern in ("uniform", "sequential") else args.pattern,
        seed=args.seed,
    )
    result = run_counter(device, [job])
    print(device.smart_render())
    print(f"\nWAF (FTL pages / host pages): {result.waf:.3f}")
    print(f"GC invocations: {device.ftl.stats.gc_invocations}")
    return 0


def cmd_trace(args) -> int:
    """Run a workload with the observability layer attached: write a
    JSONL event trace and print per-event summaries (and, in timed
    mode, the tail's stall attribution)."""
    from repro.obs import (
        CounterSink,
        HistogramSink,
        JsonlSink,
        TeeSink,
        attribute_tail,
        load_trace,
    )
    from repro.workloads.source import synthetic_source

    if args.writes < 1:
        print("trace: --writes must be >= 1")
        return 1

    counter = CounterSink()
    histogram = HistogramSink()
    jsonl = JsonlSink(args.out)
    sink = TeeSink(jsonl, counter, histogram)

    def source(device, iodepth=1):
        return synthetic_source("trace", "randwrite", device.num_sectors,
                                bs_sectors=args.bs, io_count=args.writes,
                                iodepth=iodepth, seed=args.seed)

    if args.mode == "timed":
        from repro.ssd.timed import TimedSSD
        from repro.workloads.engine import run_timed

        device = TimedSSD(_preset(args.preset, args.scale))
        run_timed(device, [source(device, iodepth=args.iodepth)], sink=sink)
    else:
        from repro.ssd.device import SimulatedSSD
        from repro.workloads.engine import run_counter

        device = SimulatedSSD(_preset(args.preset, args.scale))
        run_counter(device, [source(device)], sink=sink)
    sink.close()

    print(format_table(
        ["event", "count", "metric sum"],
        counter.summarize(),
        title=f"trace event counts ({args.mode} mode, {args.writes} requests)",
    ))
    print()
    print(format_table(
        ["event", "count", "mean", "p50", "p99", "max"],
        histogram.summarize(),
        title="per-event metric distributions",
    ))
    if args.mode == "timed":
        buckets = attribute_tail(load_trace(args.out))
        if buckets:
            print()
            print(format_table(
                ["bucket", "requests", "latency (ms)", "stall (ms)",
                 "stall share"],
                [b.row() for b in buckets],
                title="write-tail attribution (cache-admission stall)",
            ))
    print(f"\ntrace: {jsonl.events_written} events -> {args.out}")
    return 0


def cmd_replay(args) -> int:
    """Replay a recorded block trace against a device preset.

    The trace is validated at load time (column shape, op kinds,
    monotonic timestamps, LBA bounds against the chosen preset); a
    malformed trace exits nonzero with the offending line named.
    """
    from repro.workloads.source import TraceSource
    from repro.workloads.trace import BlockTrace, TraceFormatError

    config = _preset(args.preset, args.scale)
    try:
        trace = BlockTrace.load(args.trace, num_sectors=config.logical_sectors)
    except OSError as exc:
        print(f"replay: cannot read {args.trace}: {exc}")
        return 1
    except TraceFormatError as exc:
        print(f"replay: {exc}")
        return 1
    if not len(trace):
        print(f"replay: {args.trace} has no records")
        return 1

    source = TraceSource(trace, name="replay", time_scale=args.time_scale,
                         submission=args.submission, iodepth=args.iodepth)
    if args.mode == "timed":
        from repro.ssd.timed import TimedSSD
        from repro.workloads.engine import run_timed

        device = TimedSSD(config)
        result = run_timed(device, [source])
        job = result.jobs["replay"]
        summary = summarize_latencies(job.latencies_us)
        loop = (f"open loop @ recorded timeline x{args.time_scale:g}"
                if source.is_open_loop else f"closed loop qd={args.iodepth}")
        print(format_table(
            ["metric", "value"],
            [["requests", job.requests],
             ["failed", job.failed_requests],
             ["IOPS", round(job.iops)],
             ["mean (us)", summary.mean], ["p50 (us)", summary.p50],
             ["p99 (us)", summary.p99], ["max (us)", summary.max],
             ["WAF", round(result.waf, 3)]],
            title=f"trace replay on {args.preset} ({loop})",
        ))
    else:
        from repro.ssd.device import SimulatedSSD
        from repro.workloads.engine import run_counter

        device = SimulatedSSD(config)
        result = run_counter(device, [source])
        job = result.jobs["replay"]
        print(device.smart_render())
        print(f"\nreplayed {job.requests} requests "
              f"({job.sectors} sectors), WAF {result.waf:.3f}")
    return 0


def cmd_engine(args) -> int:
    """Run YCSB mixes through the storage engines, one cached cell per
    engine x mix, and show how engine structure lands on the device."""
    from repro.engines import (
        ENGINES,
        YCSB_MIXES,
        EngineRunCell,
        run_engine_cell,
        ycsb_spec_for_device,
    )
    from repro.exp import Cell

    def axis(raw, known, what):
        picked = tuple(s.strip() for s in raw.split(",") if s.strip())
        for name in picked:
            if name not in known:
                raise SystemExit(f"engine: unknown {what} {name!r}; "
                                 f"known: {', '.join(sorted(known))}")
        return picked

    engines = axis(args.engines, ENGINES, "engine")
    mixes = axis(args.mixes, YCSB_MIXES, "mix")
    config = _preset(args.preset, args.scale)
    if args.alloc:
        config = config.with_changes(allocation_scheme=args.alloc)

    cells = []
    for engine in engines:
        for mix in mixes:
            spec = ycsb_spec_for_device(
                mix, config.logical_sectors,
                value_sectors=args.value_sectors,
                operations=args.ops or None)
            if args.records:
                from dataclasses import replace
                spec = replace(spec, records=args.records)
            cells.append(Cell(
                run_engine_cell,
                EngineRunCell(config, engine, spec, iodepth=args.iodepth),
                seed=args.seed,
                label=f"engine:{engine}:{mix}",
            ))
    runner = _make_runner(args)
    results = runner.run(cells)

    rows = []
    for r in results:
        rows.append([
            r.engine, r.mix.upper(), r.requests,
            round(r.p50_us, 1), round(r.p99_us, 1),
            round(r.iops), round(r.device_waf, 3),
            round(r.engine_waf, 3), r.maintenance_ops,
        ])
    alloc = args.alloc or config.allocation_scheme
    print(format_table(
        ["engine", "mix", "requests", "p50 (us)", "p99 (us)", "IOPS",
         "device WAF", "engine WAF", "maint ops"],
        rows,
        title=f"storage engines on {args.preset} (alloc {alloc})",
    ))
    errors = sum(r.read_errors for r in results)
    if errors:
        print(f"\nengine: {errors} READ-AFTER-WRITE VIOLATIONS")
        return 1
    print("\nengine: all reads returned the latest written version")
    print(runner.describe())
    return 0


def cmd_latency(args) -> int:
    from repro.exp import Cell, TimedJobCell, run_timed_job_cell
    from repro.workloads.patterns import Region
    from repro.workloads.spec import JobSpec

    if args.submission == "open" and args.rate <= 0:
        print("latency: --submission open needs --rate > 0 (IOPS)")
        return 1
    config = _preset(args.preset, args.scale)
    job = JobSpec("cli", "randwrite", Region(0, config.logical_sectors),
                  bs_sectors=args.bs, io_count=args.writes,
                  iodepth=args.iodepth, seed=args.seed,
                  submission=args.submission, rate_iops=args.rate,
                  arrival=args.arrival)
    runner = _make_runner(args)
    cell = Cell(run_timed_job_cell, TimedJobCell(config, job), label="cli:latency")
    if args.profile:
        # Profile-driven perf work: run the cell under cProfile and dump
        # the top cumulative hotspots to stderr (stdout stays parseable).
        import cProfile
        import io as _io
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        [result] = runner.run([cell])
        profiler.disable()
        stream = _io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats(
            "cumulative").print_stats(25)
        print(stream.getvalue(), file=sys.stderr)
    else:
        [result] = runner.run([cell])
    job_result = result.jobs["cli"]
    summary = summarize_latencies(job_result.latencies_us)
    loop = (f"open loop @ {args.rate:g} IOPS ({args.arrival})"
            if args.submission == "open" else f"closed loop qd={args.iodepth}")
    print(format_table(
        ["metric", "value"],
        [["IOPS", round(job_result.iops)],
         ["mean (us)", summary.mean], ["p50 (us)", summary.p50],
         ["p99 (us)", summary.p99], ["p99.9 (us)", summary.p999],
         ["max (us)", summary.max]],
        title=f"timed random writes on {args.preset} ({loop})",
    ))
    print(runner.describe())
    return 0


def cmd_nand_page(args) -> int:
    from repro.core.blackbox.nand_page import sequential_write_sweep
    from repro.ssd.device import SimulatedSSD

    device = SimulatedSSD(_preset(args.preset, args.scale))
    estimate = sequential_write_sweep(device)
    print(format_table(
        ["host write (KiB)", "NAND pages", "bytes/page"],
        [[p.write_bytes // 1024, p.nand_pages, round(p.bytes_per_page)]
         for p in estimate.points],
        title="Fig 4a — sequential write sweep",
    ))
    print(f"\nconverged: {estimate.converged_bytes_per_page / 1024:.1f} KiB/page")
    return 0


def cmd_waf_study(args) -> int:
    from repro.core.blackbox.waf import run_waf_study

    runner = _make_runner(args)
    study = run_waf_study(
        config=_preset(args.preset, args.scale),
        io_count=args.io_count,
        runner=runner,
    )
    rows = [[w.name, w.requests, round(w.waf, 3)] for w in study.separate]
    rows.append(["expected mixed", "-", round(study.expected_mixed_waf, 3)])
    rows.append(["measured mixed", "-", round(study.measured_mixed_waf, 3)])
    print(format_table(["workload", "requests", "WAF"], rows,
                       title="Fig 4b — WAF extrapolation study"))
    print(f"\nextrapolation error: {study.extrapolation_error:.2f}x")
    print(runner.describe())
    return 0


def cmd_fidelity(args) -> int:
    from repro.core.modeling.fidelity import run_fidelity_study
    from repro.ssd.presets import mqsim_baseline

    runner = _make_runner(args)
    study = run_fidelity_study(
        mqsim_baseline(scale=args.scale),
        block_sizes_sectors=(1, 4),
        io_count=args.io_count,
        runner=runner,
    )
    rows = []
    for bs in study.block_sizes():
        for variant in study.variants():
            result = study.of(variant, bs)
            rows.append([f"{bs * 4}K", variant,
                         round(result.summary.p50, 1),
                         round(result.summary.p99, 1),
                         round(result.summary.p999, 1)])
    print(format_table(
        ["request", "variant", "p50 (us)", "p99 (us)", "p99.9 (us)"],
        rows, title="Fig 3 — FTL variants",
    ))
    for bs in study.block_sizes():
        print(f"\np99 spread at {bs * 4}K: {study.p99_spread(bs):.2f}x")
    print(runner.describe())
    return 0


def cmd_policy_grid(args) -> int:
    """Sweep the GC × cache-designation × allocation cross product."""
    from repro.core.modeling.policy_grid import (
        GRID_ALLOCATION_POLICIES,
        GRID_CACHE_DESIGNATIONS,
        GRID_GC_POLICIES,
        grid_rows,
        run_policy_grid,
    )
    from repro.ssd.presets import mqsim_baseline

    def axis(raw, default):
        return tuple(s.strip() for s in raw.split(",") if s.strip()) \
            if raw else default

    runner = _make_runner(args)
    study = run_policy_grid(
        mqsim_baseline(scale=args.scale),
        block_sizes_sectors=(args.bs,),
        io_count=args.io_count,
        gc_policies=axis(args.gc, GRID_GC_POLICIES),
        designations=axis(args.cache, GRID_CACHE_DESIGNATIONS),
        allocations=axis(args.alloc, GRID_ALLOCATION_POLICIES),
        runner=runner,
    )
    rows = [
        [r["gc_policy"], r["cache_designation"], r["allocation"],
         round(r["p50_us"], 1), round(r["p99_us"], 1),
         round(r["p999_us"], 1), round(r["iops"])]
        for r in sorted(grid_rows(study), key=lambda r: r["p99_us"])
    ]
    print(format_table(
        ["gc", "cache", "alloc", "p50 (us)", "p99 (us)", "p99.9 (us)",
         "IOPS"],
        rows,
        title=f"policy design grid ({len(rows)} points, "
              f"{args.bs * 4}K random writes)",
    ))
    print(f"\np99 spread across the grid: {study.p99_spread(args.bs):.2f}x")
    print(runner.describe())
    return 0


def cmd_infer(args) -> int:
    """One policy-inference round trip on a seeded random grid point."""
    from repro.infer import (
        KNOBS,
        random_points,
        run_blackbox_trip,
        run_graybox_trip,
    )

    point = random_points(1, seed=args.seed)[0]
    results = []
    if args.mode in ("both", "blackbox"):
        results.append(run_blackbox_trip(point))
    if args.mode in ("both", "graybox"):
        results.append(run_graybox_trip(point))
    rows = []
    for knob in KNOBS:
        row = [knob, getattr(point, knob)]
        for result in results:
            r = result.recovery(knob)
            verdict = r.recovered if r.recovered is not None else "-"
            if r.correct:
                verdict += " ok"
            if r.confirmed:
                verdict += "+confirmed"
            row.append(verdict)
        rows.append(row)
    headers = ["knob", "truth"] + [r.mode for r in results]
    print(format_table(headers, rows,
                       title=f"policy inference (seed {args.seed}: "
                             f"{point.label()})"))
    for result in results:
        print()
        print(result.transcript)
    return 0


def cmd_transparency(args) -> int:
    """Scored round-trip sweep over N random policy-grid points."""
    from repro.infer import run_transparency_sweep

    runner = _make_runner(args)
    score = run_transparency_sweep(args.points, seed=args.seed,
                                   runner=runner)
    print(score.render())
    if score.graybox_total > score.blackbox_total:
        print("\ngray-box access recovers strictly more than the "
              "host interface — the paper's transparency gap, measured.")
    print(runner.describe())
    return 0


def cmd_compression(args) -> int:
    from repro.ssd.compression import make_scheme
    from repro.workloads.compressibility import REGIMES, CompressibilityModel
    from repro.workloads.oltp import OltpWorkload, flash_writes_per_transaction

    names = ["re-bp32", "compact", "fixed", "chunk4", "none"]
    rates = {
        name: flash_writes_per_transaction(
            make_scheme(name), OltpWorkload(seed=1),
            CompressibilityModel(REGIMES[args.regime], seed=1),
            args.transactions,
        )
        for name in names
    }
    baseline = rates["re-bp32"]
    print(format_table(
        ["scheme", "writes/txn", "normalized"],
        [[n, round(rates[n], 3), round(rates[n] / baseline, 3)] for n in names],
        title=f"Fig 2 — compression schemes ({args.regime})",
    ))
    return 0


def cmd_jtag_study(args) -> int:
    from repro.core.jtag.discovery import run_full_study
    from repro.ssd.firmware.device import HackableSSD

    device = HackableSSD(scale=args.scale)
    report = run_full_study(device)
    print(format_table(["finding", "value"], report.rows(),
                       title="Fig 6 / §3.2 — JTAG study"))
    return 0


def cmd_probe_features(args) -> int:
    from repro.core.blackbox.ssdcheck import (
        detect_checkpoint_interval,
        detect_write_buffer,
    )
    from repro.ssd.presets import vertex2_like
    from repro.ssd.timed import TimedSSD

    config = vertex2_like(scale=args.scale).with_changes(
        cache_sectors=args.cache_sectors,
    )
    buffer_probe = detect_write_buffer(TimedSSD(config))
    interval_probe = detect_checkpoint_interval(TimedSSD(config),
                                                writes=args.writes)
    print(format_table(
        ["feature", "estimate", "actual"],
        [["write buffer (sectors)", buffer_probe.estimated_sectors,
          config.cache_sectors],
         ["checkpoint interval (writes)", interval_probe.estimated_interval,
          config.mapping_sync_interval]],
        title="SSDCheck-style black-box probes",
    ))
    return 0


def cmd_faultsweep(args) -> int:
    """Crash-consistency sweep: cut power at every k-th host op for each
    stride, recover, audit the durability contract.  Exit 1 on any
    acknowledged-flushed loss, ghost mapping, or unusable recovery."""
    from repro.exp import Cell
    from repro.faults import (
        CrashSweepCell,
        FaultPlan,
        FaultSpec,
        SweepWorkload,
        run_crash_sweep_cell,
    )

    try:
        strides = sorted({int(s) for s in args.strides.split(",") if s.strip()})
    except ValueError:
        print(f"faultsweep: bad --strides {args.strides!r} (want e.g. 1,7,31)")
        return 1
    if not strides or strides[0] < 1:
        print("faultsweep: strides must be positive integers")
        return 1

    config = _preset(args.preset, args.scale)
    workload = SweepWorkload(ops=args.ops, seed=args.seed)
    plan = None
    if args.fault_rate > 0:
        plan = FaultPlan(seed=args.seed, specs=(
            FaultSpec("program_fail", probability=args.fault_rate, count=0),
            FaultSpec("erase_fail", probability=args.fault_rate, count=0),
        ))
    cells = [
        Cell(run_crash_sweep_cell,
             CrashSweepCell(config, workload, stride, plan=plan),
             seed=args.seed, label=f"sweep:k={stride}")
        for stride in strides
    ]
    runner = _make_runner(args)
    results = runner.run(cells)

    rows = []
    for r in results:
        rows.append([r.stride, r.ops_run, r.cuts, r.lost_sectors,
                     r.ghost_sectors, r.recovery_failures,
                     r.resurrected_trims, r.blocks_retired,
                     "yes" if r.clean else "NO"])
    print(format_table(
        ["stride", "ops", "cuts", "lost", "ghosts", "bad recov",
         "trim resurrect", "blk retired", "clean"],
        rows,
        title=f"crash-consistency sweep ({args.preset}, {args.ops} ops, "
              f"seed {args.seed})",
    ))
    for r in results:
        for line in r.detail:
            print(f"  k={r.stride}: {line}")
    print(runner.describe())
    if not all(r.clean for r in results):
        print("faultsweep: DURABILITY CONTRACT VIOLATED")
        return 1
    print("faultsweep: all cut points clean "
          "(no acknowledged-flushed write lost)")
    return 0


def _fleet_only(spec, selector: str) -> int:
    """Serial deep-dive on one device (or a range): the path the
    CellError / FleetDeviceError repro one-liners point at."""
    from repro.fleet import FailedDevice, simulate_device

    try:
        if ":" in selector:
            lo_text, hi_text = selector.split(":", 1)
            lo, hi = int(lo_text), int(hi_text)
        else:
            lo = int(selector)
            hi = lo + 1
    except ValueError:
        print(f"fleet: bad --only {selector!r} (want N or LO:HI)")
        return 1
    if not 0 <= lo < hi <= spec.devices:
        print(f"fleet: --only [{lo}, {hi}) outside 0..{spec.devices}")
        return 1

    rows = []
    crashed: list[FailedDevice] = []
    for index in range(lo, hi):
        try:
            device = simulate_device(spec, index)
        except Exception as exc:  # the whole point of --only is triage
            crashed.append(FailedDevice(index, spec.device_seed(index),
                                        f"{type(exc).__name__}: {exc}"))
            continue
        events = ", ".join(f"{kind}@op{op}"
                           for kind, _, op in device.fault_events[:4])
        if len(device.fault_events) > 4:
            events += f", ... ({len(device.fault_events)} total)"
        rows.append([
            index, device.seed,
            sum(s.requests for s in device.tenants),
            device.failed_requests,
            device.degraded_kind or "-",
            device.degraded_at_ns if device.degraded else "-",
            device.sectors_lost,
            round(device.waf, 3),
            events or "-",
        ])
    if rows:
        print(format_table(
            ["device", "seed", "requests", "failed", "degraded",
             "at (ns)", "lost", "WAF", "fault firings"],
            rows, title=f"fleet device detail [{lo}, {hi})",
        ))
    for entry in crashed:
        print(f"fleet: device #{entry.index} CRASHED: {entry.error}")
    return 1 if crashed else 0


def cmd_fleet(args) -> int:
    """Fleet-scale sharded simulation: merged SLO table, nonzero exit
    on any tenant SLO or durability violation."""
    import time

    from repro.exp import CellError
    from repro.fleet import CAMPAIGNS, FleetSpec, run_fleet

    if args.devices < 1:
        print("fleet: --devices must be >= 1")
        return 1
    if args.shards is not None and args.shards < 1:
        print("fleet: --shards must be >= 1")
        return 1
    if args.rate_scale <= 0:
        print("fleet: --rate-scale must be > 0")
        return 1

    campaign = None
    if args.campaign != "none":
        campaign = CAMPAIGNS[args.campaign]
        if args.afr is not None:
            from dataclasses import replace
            campaign = replace(campaign, afr=args.afr)
    elif args.afr is not None:
        print("fleet: --afr needs --campaign (default|infant|wearout)")
        return 1

    tenants = TENANT_MIXES[args.mix](rate_scale=args.rate_scale,
                                     io_count=args.io_count)
    try:
        spec = FleetSpec(tenants=tenants, devices=args.devices,
                         preset=args.preset, scale=args.scale,
                         seed=args.seed, campaign=campaign)
    except ValueError as exc:
        print(f"fleet: {exc}")
        return 1

    if args.only is not None:
        return _fleet_only(spec, args.only)

    runner = _make_runner(args)
    if runner.cache is not None:
        from repro.fleet import (
            cached_shard_count,
            load_fleet_manifest,
            write_fleet_manifest,
        )

        if args.resume:
            stored = load_fleet_manifest(spec, runner.cache, args.shards,
                                         keep_going=args.keep_going)
            if stored is None:
                print("fleet: no manifest for this exact run yet "
                      "(starting fresh)")
            else:
                cached = cached_shard_count(runner.cache, stored)
                print(f"fleet: resume — {cached}/{len(stored['cells'])} "
                      f"shards already cached")
        write_fleet_manifest(spec, runner.cache, args.shards,
                             keep_going=args.keep_going)
    elif args.resume:
        print("fleet: --resume needs the result cache (drop --no-cache)")
        return 1

    started = time.perf_counter()
    try:
        report = run_fleet(spec, runner, shards=args.shards,
                           keep_going=args.keep_going)
    except (CellError, ValueError) as exc:
        print(f"fleet: {exc}")
        return 1
    elapsed = time.perf_counter() - started

    title = (f"fleet SLO report ({args.devices} x {args.preset}, "
             f"mix {args.mix}, seed {args.seed})")
    if campaign is not None:
        title += f", campaign {campaign.name} AFR {campaign.afr:g}"
    headers, rows = report.slo_table()
    print(format_table(headers, rows, title=title))
    print()
    print(format_table(["metric", "value"], report.summary_rows(),
                       title="fleet summary"))
    if campaign is not None and campaign.active:
        headers, rows = report.chaos_table()
        print()
        print(format_table(headers, rows,
                           title="healthy vs faulted latency split"))
    for entry in report.failed_devices:
        line = f"fleet: device #{entry.index} failed: {entry.error}"
        if entry.repro:
            line += f"\n  rerun standalone: {entry.repro}"
        print(line)
    for error in runner.errors:
        print(f"fleet: quarantined: {error}")
    print(f"\nfleet: {args.devices} devices in {elapsed:.2f}s "
          f"({args.devices / elapsed:.0f} devices/s)")
    print(runner.describe())
    status = 0
    if not report.ok:
        print("fleet: SLO VIOLATED by " + ", ".join(report.violations))
        status = 1
    if not report.durability_ok:
        print(f"fleet: DURABILITY VIOLATED "
              f"({report.sectors_lost} acked sectors lost, "
              f"{len(report.failed_devices)} devices unaccounted)")
        status = 1
    if status == 0:
        print("fleet: all tenant SLOs met"
              + ("; durability clean" if campaign is not None else ""))
    return status


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ssd",
        description="SSD performance-transparency studies (HotOS '19 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, preset_default="mx500"):
        p.add_argument("--preset", default=preset_default,
                       help=f"device preset (default {preset_default})")
        p.add_argument("--scale", type=int, default=2,
                       help="geometry down-scale factor (default 2)")
        p.add_argument("--seed", type=int, default=42)

    def parallel(p):
        p.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: REPRO_JOBS or CPU count)")
        p.add_argument("--no-cache", action="store_true",
                       help="bypass the on-disk result cache")

    p = sub.add_parser("presets", help="list device presets")
    p.add_argument("--scale", type=int, default=2)
    p.set_defaults(fn=cmd_presets)

    p = sub.add_parser("policies",
                       help="list registered FTL policies per design knob")
    p.set_defaults(fn=cmd_policies)

    p = sub.add_parser("simulate", help="counter-mode workload + SMART")
    common(p)
    p.add_argument("--writes", type=int, default=20_000)
    p.add_argument("--bs", type=int, default=1, help="request size in sectors")
    p.add_argument("--pattern", default="uniform",
                   choices=["uniform", "sequential", "hotcold", "zipf"])
    p.set_defaults(fn=cmd_simulate)

    p = sub.add_parser("trace",
                       help="run a workload with the observability layer "
                            "attached; write a JSONL event trace")
    common(p, preset_default="tiny")
    p.add_argument("--writes", type=int, default=4_000)
    p.add_argument("--bs", type=int, default=1, help="request size in sectors")
    p.add_argument("--mode", default="timed", choices=["timed", "counter"])
    p.add_argument("--iodepth", type=int, default=4)
    p.add_argument("--out", default="trace.jsonl",
                   help="JSONL trace output path (default trace.jsonl)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("replay",
                       help="replay a recorded block trace (validated at "
                            "load; exits nonzero on a malformed trace)")
    common(p, preset_default="tiny")
    p.add_argument("--trace", required=True,
                   help="block-trace CSV (op,lba,sectors,at_us)")
    p.add_argument("--time-scale", type=float, default=1.0,
                   help="arrival-time multiplier: > 1 slows the trace "
                        "down, < 1 speeds it up (default 1)")
    p.add_argument("--mode", default="timed", choices=["timed", "counter"])
    p.add_argument("--submission", default="open",
                   choices=["open", "closed"],
                   help="open loop at the recorded timeline, or closed "
                        "loop at --iodepth (default open)")
    p.add_argument("--iodepth", type=int, default=1)
    p.set_defaults(fn=cmd_replay)

    p = sub.add_parser("engine",
                       help="YCSB mixes through the LSM / B-tree storage "
                            "engines, one cached cell per engine x mix")
    common(p, preset_default="mqsim")
    p.add_argument("--engines", default="lsm,btree",
                   help="comma-separated engine axis (default lsm,btree)")
    p.add_argument("--mixes", default="a,b,c",
                   help="comma-separated YCSB mix axis (default a,b,c)")
    p.add_argument("--alloc", default="",
                   help="allocation_scheme override (e.g. hotcold)")
    p.add_argument("--records", type=int, default=0,
                   help="key count (default: sized to the device)")
    p.add_argument("--ops", type=int, default=0,
                   help="run-phase operations (default: 4x records)")
    p.add_argument("--value-sectors", type=int, default=1)
    p.add_argument("--iodepth", type=int, default=1)
    parallel(p)
    p.set_defaults(fn=cmd_engine)

    p = sub.add_parser("latency", help="timed workload, latency percentiles")
    common(p)
    p.add_argument("--writes", type=int, default=8_000)
    p.add_argument("--bs", type=int, default=1)
    p.add_argument("--iodepth", type=int, default=4)
    p.add_argument("--submission", default="closed",
                   choices=["closed", "open"],
                   help="closed loop (iodepth) or open loop (arrival rate)")
    p.add_argument("--rate", type=float, default=0.0,
                   help="open-loop arrival rate in IOPS")
    p.add_argument("--arrival", default="poisson",
                   choices=["poisson", "fixed"],
                   help="open-loop inter-arrival distribution")
    p.add_argument("--profile", action="store_true",
                   help="run under cProfile; print the top-25 cumulative "
                        "hotspots to stderr")
    parallel(p)
    p.set_defaults(fn=cmd_latency)

    p = sub.add_parser("nand-page", help="Fig 4a NAND-page estimation")
    common(p)
    p.set_defaults(fn=cmd_nand_page)

    p = sub.add_parser("waf-study", help="Fig 4b WAF extrapolation study")
    common(p)
    p.add_argument("--io-count", type=int, default=12_000)
    parallel(p)
    p.set_defaults(fn=cmd_waf_study)

    p = sub.add_parser("fidelity", help="Fig 3 FTL-variant latency study")
    p.add_argument("--scale", type=int, default=4)
    p.add_argument("--io-count", type=int, default=2_000)
    parallel(p)
    p.set_defaults(fn=cmd_fidelity)

    p = sub.add_parser("policy-grid",
                       help="sweep the GC x cache x allocation policy grid")
    p.add_argument("--scale", type=int, default=4)
    p.add_argument("--io-count", type=int, default=2_000)
    p.add_argument("--bs", type=int, default=1, help="request size in sectors")
    p.add_argument("--gc", default="",
                   help="comma-separated gc_policy axis override")
    p.add_argument("--cache", default="",
                   help="comma-separated cache_designation axis override")
    p.add_argument("--alloc", default="",
                   help="comma-separated allocation axis override")
    parallel(p)
    p.set_defaults(fn=cmd_policy_grid)

    p = sub.add_parser("infer",
                       help="recover the six policy knobs from one "
                            "firmware image (black-box + gray-box)")
    p.add_argument("--seed", type=int, default=42,
                   help="selects the random policy-grid point")
    p.add_argument("--mode", default="both",
                   choices=["both", "blackbox", "graybox"])
    p.set_defaults(fn=cmd_infer)

    p = sub.add_parser("transparency",
                       help="per-knob recovery-rate score over N random "
                            "policy points")
    p.add_argument("--points", type=int, default=8)
    p.add_argument("--seed", type=int, default=42)
    parallel(p)
    p.set_defaults(fn=cmd_transparency)

    p = sub.add_parser("compression", help="Fig 2 compression schemes")
    p.add_argument("--regime", default="high",
                   choices=["high", "moderate", "incompressible"])
    p.add_argument("--transactions", type=int, default=3_000)
    p.set_defaults(fn=cmd_compression)

    p = sub.add_parser("jtag-study", help="Fig 6 / §3.2 JTAG RE study")
    p.add_argument("--scale", type=int, default=2)
    p.set_defaults(fn=cmd_jtag_study)

    p = sub.add_parser("faultsweep",
                       help="crash-consistency sweep: power-cut at every "
                            "k-th host op, recover, audit durability")
    common(p, preset_default="tiny")
    p.add_argument("--ops", type=int, default=2_000,
                   help="host operations in the sweep workload")
    p.add_argument("--strides", default="1,7,31",
                   help="comma-separated cut strides (default 1,7,31)")
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="per-candidate program/erase fail probability "
                        "(default 0: crash-only sweep)")
    parallel(p)
    p.set_defaults(fn=cmd_faultsweep)

    p = sub.add_parser("fleet",
                       help="fleet-scale sharded simulation: thousands of "
                            "devices, merged per-tenant SLO verdicts")
    common(p, preset_default="tiny")
    p.add_argument("--devices", type=int, default=256,
                   help="fleet size (default 256)")
    p.add_argument("--shards", type=int, default=None,
                   help="shard count (default: devices/32, independent "
                        "of --jobs)")
    p.add_argument("--mix", default="default",
                   choices=sorted(TENANT_MIXES),
                   help="built-in tenant mix (default: default)")
    p.add_argument("--io-count", type=int, default=150,
                   help="requests per tenant per device (default 150)")
    p.add_argument("--rate-scale", type=float, default=1.0,
                   help="multiplier on every tenant arrival rate")
    p.add_argument("--campaign", default="none",
                   choices=["none", "default", "infant", "wearout"],
                   help="fault campaign over the fleet (default: none)")
    p.add_argument("--afr", type=float, default=None,
                   help="override the campaign's annualized failure rate")
    p.add_argument("--keep-going", action="store_true",
                   help="isolate per-device/per-shard failures into the "
                        "report instead of aborting the run")
    p.add_argument("--resume", action="store_true",
                   help="report how many shards of this exact run are "
                        "already cached before running the rest")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-cell wall-clock watchdog in seconds "
                        "(default: none)")
    p.add_argument("--only", default=None, metavar="N|LO:HI",
                   help="serial deep-dive on one device (or range) "
                        "instead of the sharded fleet run")
    parallel(p)
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser("probe-features", help="SSDCheck-style latency probes")
    p.add_argument("--scale", type=int, default=2)
    p.add_argument("--cache-sectors", type=int, default=128)
    p.add_argument("--writes", type=int, default=8_000)
    p.set_defaults(fn=cmd_probe_features)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
