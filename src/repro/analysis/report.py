"""Plain-text tables and CSV output for benchmark results.

The paper's figures are reproduced as printed series/tables (no plotting
dependency); every bench uses these helpers so outputs share one format.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None, float_fmt: str = "{:.3f}") -> str:
    """Render an aligned text table."""
    rendered_rows = [
        [_fmt(cell, float_fmt) for cell in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell, float_fmt: str) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return float_fmt.format(cell)
    return str(cell)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """CSV text of the same data."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(list(row))
    return buf.getvalue()


def write_csv(path: str | Path, headers: Sequence[str],
              rows: Iterable[Sequence]) -> Path:
    """Write CSV to *path*, creating parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_csv(headers, rows))
    return path
