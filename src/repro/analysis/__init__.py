"""Statistics and reporting helpers."""

from repro.analysis.report import format_table, to_csv, write_csv
from repro.analysis.stats import (
    LatencySummary,
    relative_difference,
    summarize_latencies,
    tail_curve,
)

__all__ = [
    "summarize_latencies", "LatencySummary", "tail_curve",
    "relative_difference", "format_table", "to_csv", "write_csv",
]
