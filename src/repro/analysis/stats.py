"""Latency/throughput statistics helpers used across experiments."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Standard percentile summary of a latency sample, in microseconds."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    p999: float
    max: float

    def row(self) -> list[float]:
        return [self.count, self.mean, self.p50, self.p95, self.p99,
                self.p999, self.max]


def summarize_latencies(latencies_us: np.ndarray) -> LatencySummary:
    """Percentile summary; empty input yields all-zero summary."""
    arr = np.asarray(latencies_us, dtype=np.float64)
    if arr.size == 0:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    p50, p95, p99, p999 = np.percentile(arr, [50, 95, 99, 99.9])
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        p999=float(p999),
        max=float(arr.max()),
    )


def tail_curve(latencies_us: np.ndarray, points: int = 50,
               start_percentile: float = 99.0) -> tuple[np.ndarray, np.ndarray]:
    """The paper's Fig 3 shape: latencies of the worst requests, ordered.

    Returns ``(percentiles, values_us)`` spanning
    ``[start_percentile, 100]``.
    """
    if points < 2:
        raise ValueError("points must be >= 2")
    arr = np.asarray(latencies_us, dtype=np.float64)
    qs = np.linspace(start_percentile, 100.0, points)
    if arr.size == 0:
        return qs, np.zeros(points)
    return qs, np.percentile(arr, qs)


def relative_difference(a: float, b: float) -> float:
    """|a - b| over their mean — the symmetric error MQSim-style fidelity
    claims are stated in."""
    if a == 0.0 and b == 0.0:
        return 0.0
    return abs(a - b) / ((abs(a) + abs(b)) / 2.0)
