"""Round-trip orchestration: build firmware, infer, compare to truth.

One round trip takes a :class:`~repro.infer.grid.PolicyPoint`, builds a
device whose firmware and FTL embody it, runs the black-box and
gray-box tool loops, and scores each recovered knob against the ground
truth the firmware was built from.  Everything is deterministic in
``(point, seed)`` — same inputs, byte-identical transcripts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.infer.blackbox import run_blackbox
from repro.infer.graybox import run_graybox
from repro.infer.grid import KNOBS, PolicyPoint, infer_base
from repro.infer.toolloop import ToolLoop
from repro.ssd.config import SsdConfig
from repro.ssd.firmware.device import HackableSSD


@dataclass(frozen=True)
class KnobRecovery:
    """One knob's verdict from one inference run."""

    knob: str
    truth: str
    recovered: str | None
    confirmed: bool

    @property
    def correct(self) -> bool:
        return self.recovered == self.truth


@dataclass(frozen=True)
class InferenceResult:
    """One tool-loop run: per-knob verdicts plus the full transcript."""

    mode: str
    recoveries: tuple[KnobRecovery, ...]
    transcript: str

    @property
    def correct_knobs(self) -> tuple[str, ...]:
        return tuple(r.knob for r in self.recoveries if r.correct)

    def recovery(self, knob: str) -> KnobRecovery:
        for r in self.recoveries:
            if r.knob == knob:
                return r
        raise KeyError(knob)


@dataclass(frozen=True)
class RoundTrip:
    """Built → inferred → compared, both modes, for one grid point."""

    point: PolicyPoint
    blackbox: InferenceResult
    graybox: InferenceResult


def _verdicts(point: PolicyPoint, recovered: dict[str, str | None],
              confirmed: dict[str, bool] | None) -> tuple[KnobRecovery, ...]:
    confirmed = confirmed or {}
    return tuple(
        KnobRecovery(knob, getattr(point, knob), recovered.get(knob),
                     bool(confirmed.get(knob)))
        for knob in KNOBS
    )


def run_graybox_trip(point: PolicyPoint,
                     base: SsdConfig | None = None) -> InferenceResult:
    config = point.apply(base or infer_base())
    device = HackableSSD(config, policy_firmware=True)
    loop = ToolLoop("graybox")
    recovered, confirmed = run_graybox(device, loop)
    return InferenceResult("graybox", _verdicts(point, recovered, confirmed),
                           loop.render())


def run_blackbox_trip(point: PolicyPoint,
                      base: SsdConfig | None = None) -> InferenceResult:
    config = point.apply(base or infer_base())
    loop = ToolLoop("blackbox")
    recovered = run_blackbox(config, loop)
    return InferenceResult("blackbox", _verdicts(point, recovered, None),
                           loop.render())


def run_round_trip(point: PolicyPoint,
                   base: SsdConfig | None = None) -> RoundTrip:
    base = base or infer_base()
    return RoundTrip(point,
                     blackbox=run_blackbox_trip(point, base),
                     graybox=run_graybox_trip(point, base))
