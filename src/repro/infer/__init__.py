"""Automated policy-inference harness (the paper's thesis, tested).

Builds firmware from a random six-knob policy point, recovers the
knobs from outside the device — black-box (host interface, SMART, bus
probe) and gray-box (firmware image + JTAG) — and scores per-knob
recovery rates as a *transparency score*.
"""

from repro.infer.fingerprint import Fingerprint, probe_fingerprint
from repro.infer.grid import (
    KNOBS,
    PolicyPoint,
    infer_base,
    random_points,
    registry_names,
)
from repro.infer.harness import (
    InferenceResult,
    KnobRecovery,
    RoundTrip,
    run_blackbox_trip,
    run_graybox_trip,
    run_round_trip,
)
from repro.infer.score import (
    KnobScore,
    TransparencyScore,
    run_transparency_cell,
    run_transparency_sweep,
    transparency_cells,
)
from repro.infer.toolloop import PHASES, Step, ToolLoop

__all__ = [
    "KNOBS", "PolicyPoint", "infer_base", "random_points", "registry_names",
    "ToolLoop", "Step", "PHASES",
    "KnobRecovery", "InferenceResult", "RoundTrip",
    "run_graybox_trip", "run_blackbox_trip", "run_round_trip",
    "KnobScore", "TransparencyScore", "transparency_cells",
    "run_transparency_cell", "run_transparency_sweep",
    "Fingerprint", "probe_fingerprint",
]
