"""Deterministic probe→analyze→hypothesize→confirm tool loop.

The inference harness is structured the way an autonomous firmware
analyst works: run a tool against the device (*probe*), reduce the raw
observation (*analyze*), commit to a knob setting (*hypothesize*), and
cross-check the hypothesis with an independent tool (*confirm*).  Every
step is recorded so two runs with the same image and seed produce
byte-identical transcripts — the seed-determinism contract the CLI and
tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Canonical step phases, in workflow order.
PHASES = ("probe", "analyze", "hypothesize", "confirm")


def fmt(value) -> str:
    """Render one observation value deterministically.

    Floats are rounded so latency jitter below the reporting precision
    cannot leak into transcripts; containers render element-wise.
    """
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(fmt(v) for v in value) + "]"
    if isinstance(value, dict):
        inner = ", ".join(f"{k}={fmt(v)}" for k, v in sorted(value.items()))
        return "{" + inner + "}"
    return str(value)


@dataclass(frozen=True)
class Step:
    """One recorded tool invocation."""

    index: int
    phase: str
    tool: str
    detail: str
    observation: str

    def render(self) -> str:
        return (f"[{self.index:03d}] {self.phase:<11s} {self.tool:<22s} "
                f"{self.detail}" +
                (f" -> {self.observation}" if self.observation else ""))


@dataclass
class ToolLoop:
    """Ordered transcript of one inference run."""

    mode: str
    steps: list[Step] = field(default_factory=list)

    def record(self, phase: str, tool: str, detail: str,
               observation="") -> Step:
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}")
        step = Step(len(self.steps), phase, tool, str(detail),
                    fmt(observation) if observation != "" else "")
        self.steps.append(step)
        return step

    def render(self) -> str:
        header = f"tool loop ({self.mode}, {len(self.steps)} steps)"
        return "\n".join([header] + [s.render() for s in self.steps])
