"""The transparency score: per-knob recovery rates over random points.

The paper argues SSDs should be performance-transparent; this module
quantifies how transparent the simulated drive actually is, per policy
knob and per access level.  N random grid points are built into
firmware, round-tripped through both tool loops, and each knob scores
the fraction of points whose setting was recovered — black-box
(host interface + bus probe) versus gray-box (firmware image + JTAG).

Sweeps run as :mod:`repro.exp` cells: one cell per grid point, so the
content-addressed cache makes re-scoring after a code change
incremental, and ``REPRO_JOBS`` parallelizes the fan-out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exp import Cell, Runner, run_cells
from repro.infer.grid import KNOBS, PolicyPoint, random_points
from repro.infer.harness import RoundTrip, run_round_trip


def run_transparency_cell(config: tuple[str, ...], seed: int) -> RoundTrip:
    """Exp-cell entry point: one full round trip for one grid point."""
    del seed  # the round trip is deterministic in the point itself
    return run_round_trip(PolicyPoint(*config))


@dataclass(frozen=True)
class KnobScore:
    """Recovery tallies for one knob across a sweep."""

    knob: str
    points: int
    blackbox_recovered: int
    graybox_recovered: int

    @property
    def blackbox_rate(self) -> float:
        return self.blackbox_recovered / self.points if self.points else 0.0

    @property
    def graybox_rate(self) -> float:
        return self.graybox_recovered / self.points if self.points else 0.0


@dataclass(frozen=True)
class TransparencyScore:
    """Aggregate of one scored sweep."""

    trips: tuple[RoundTrip, ...]

    def knob_score(self, knob: str) -> KnobScore:
        blackbox = sum(t.blackbox.recovery(knob).correct for t in self.trips)
        graybox = sum(t.graybox.recovery(knob).correct for t in self.trips)
        return KnobScore(knob, len(self.trips), blackbox, graybox)

    def scores(self) -> list[KnobScore]:
        return [self.knob_score(knob) for knob in KNOBS]

    @property
    def blackbox_total(self) -> int:
        return sum(s.blackbox_recovered for s in self.scores())

    @property
    def graybox_total(self) -> int:
        return sum(s.graybox_recovered for s in self.scores())

    def rows(self) -> list[list]:
        """CSV rows for ``fig_transparency_score.csv``."""
        return [
            [s.knob, s.points, s.blackbox_recovered, s.graybox_recovered,
             round(s.blackbox_rate, 4), round(s.graybox_rate, 4)]
            for s in self.scores()
        ]

    def render(self) -> str:
        lines = [
            f"transparency score over {len(self.trips)} random grid points",
            f"{'knob':<18}{'black-box':>12}{'gray-box':>12}",
        ]
        for s in self.scores():
            lines.append(f"{s.knob:<18}"
                         f"{s.blackbox_recovered:>7}/{s.points:<4}"
                         f"{s.graybox_recovered:>7}/{s.points:<4}")
        total = len(self.trips) * len(KNOBS)
        lines.append(f"{'all knobs':<18}"
                     f"{self.blackbox_total:>7}/{total:<4}"
                     f"{self.graybox_total:>7}/{total:<4}")
        return "\n".join(lines)


def transparency_cells(points: list[PolicyPoint], seed: int = 0) -> list[Cell]:
    return [
        Cell(run_transparency_cell, point.astuple(), seed=seed,
             label=f"infer:{point.label()}")
        for point in points
    ]


def run_transparency_sweep(n_points: int, seed: int = 0,
                           runner: Runner | None = None) -> TransparencyScore:
    """Score *n_points* seeded random grid points through both loops."""
    points = random_points(n_points, seed=seed)
    trips = run_cells(transparency_cells(points, seed=seed), runner)
    return TransparencyScore(tuple(trips))
