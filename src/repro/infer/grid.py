"""Policy grid points and the shared inference base configuration.

A :class:`PolicyPoint` pins the six registry knobs the harness tries to
recover; everything else about the device (geometry, timing, cache and
GC budgets) is fixed by :func:`infer_base` so that behavioral
differences between two devices can only come from the knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

import numpy as np

from repro.flash.geometry import Geometry
from repro.ssd.config import SsdConfig
from repro.ssd.policy import REGISTRIES

#: Knob names as the harness reports them.  ``allocation`` maps onto the
#: config field ``allocation_scheme``; the rest match field names.
KNOBS = ("gc_policy", "allocation", "cache_designation",
         "cache_admission", "cache_eviction", "wear_policy")

_CONFIG_FIELD = {
    "gc_policy": "gc_policy",
    "allocation": "allocation_scheme",
    "cache_designation": "cache_designation",
    "cache_admission": "cache_admission",
    "cache_eviction": "cache_eviction",
    "wear_policy": "wear_policy",
}


@dataclass(frozen=True)
class PolicyPoint:
    """One point of the six-knob design grid (registry names)."""

    gc_policy: str = "greedy"
    allocation: str = "CWDP"
    cache_designation: str = "data"
    cache_admission: str = "always"
    cache_eviction: str = "lru"
    wear_policy: str = "coldest"

    def __post_init__(self) -> None:
        for knob in KNOBS:
            REGISTRIES[_CONFIG_FIELD[knob]].validate(getattr(self, knob))

    def apply(self, base: SsdConfig) -> SsdConfig:
        """A copy of *base* with every knob set to this point."""
        return base.with_changes(**{
            _CONFIG_FIELD[knob]: getattr(self, knob) for knob in KNOBS
        })

    @classmethod
    def from_config(cls, config: SsdConfig) -> "PolicyPoint":
        return cls(**{
            knob: getattr(config, _CONFIG_FIELD[knob]) for knob in KNOBS
        })

    def astuple(self) -> tuple[str, ...]:
        return tuple(getattr(self, f.name) for f in fields(self))

    def label(self) -> str:
        return "/".join(self.astuple())


def registry_names(knob: str) -> tuple[str, ...]:
    """Registered policy names for one harness knob."""
    return tuple(REGISTRIES[_CONFIG_FIELD[knob]].names())


def random_points(n: int, seed: int = 0) -> list[PolicyPoint]:
    """*n* reproducible uniform draws from the full design grid."""
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n):
        points.append(PolicyPoint(**{
            knob: registry_names(knob)[rng.integers(len(registry_names(knob)))]
            for knob in KNOBS
        }))
    return points


def infer_base() -> SsdConfig:
    """The fixed non-knob configuration every inference run uses.

    Small enough that a full round trip stays interactive, single
    die/chip per channel so :class:`~repro.ssd.timed.BusTap` can probe
    channel 0, and a cache large enough (256 sectors ≫ 4 sectors/page)
    that designation and eviction probes have room to work.
    """
    geometry = Geometry(channels=4, chips_per_channel=1, dies_per_chip=1,
                        planes_per_die=2, blocks_per_plane=16,
                        pages_per_block=8, page_size=16384,
                        sector_size=4096)
    return SsdConfig(geometry=geometry, timing_name="mlc", op_ratio=0.10,
                     gc_low_water_blocks=2, gc_high_water_blocks=3,
                     cache_sectors=256, mapping_tp_lpns=2048,
                     mapping_dirty_tp_limit=96, mapping_sync_interval=8192)
