"""Probe-observable fingerprints for differential knob testing.

A :class:`Fingerprint` is everything the black-box bench can measure
about a device, reduced to comparable values.  The differential test
suite flips one knob at a time from the default grid point and checks
which flips move the fingerprint: a knob whose flip changes nothing is
invisible from outside — exactly the transparency gap the paper is
about — and the suite documents those knobs explicitly (``wear_policy``,
and the static allocation permutations on a single-channel tap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.infer.blackbox import BlackboxInference
from repro.infer.toolloop import ToolLoop
from repro.ssd.config import SsdConfig


@dataclass(frozen=True)
class Fingerprint:
    """Black-box observables of one device configuration."""

    #: write-buffer stall point, in sectors (cache designation).
    buffer_sectors: int
    #: host program pages across 64 same-LBA writes (admission).
    admission_pages: int
    #: victim read was a RAM hit after one overflow eviction;
    #: None when the cache is not observable this way.
    victim_is_ram_hit: bool | None
    #: per-plane block-order reversals seen on the channel-0 tap,
    #: classified: one open stream vs several.
    stream_class: str
    #: WAF and erase fingerprint of the fixed churn workload (GC).
    waf: float
    erases: int


def probe_fingerprint(config: SsdConfig) -> Fingerprint:
    """Run every black-box probe against *config* and bundle the raw
    observables (no hypothesis step — just what the bench sees)."""
    bench = BlackboxInference(config, ToolLoop("fingerprint"))
    designation, cap = bench.infer_cache_designation()
    admission = bench.infer_cache_admission()

    device = bench._smart_device()
    before = device.smart.snapshot()
    for _ in range(64):
        device.write_sectors(0, 1)
    device.flush()
    admission_pages = device.smart.delta(before).host_program_pages

    eviction = bench.infer_cache_eviction(designation, admission, cap)
    ram_hit = None if eviction is None else (eviction == "lru")

    allocation = bench.infer_allocation()
    stream_class = ("multi-stream" if allocation == "hotcold"
                    else "single-stream")

    churn = bench._churn_workload()
    waf, erases = bench._run_churn(bench._smart_device(), churn)
    return Fingerprint(cap, admission_pages, ram_hit, stream_class,
                       waf, erases)
