"""Black-box inference: host interface, SMART counters, and a bus probe.

Everything here works the way the paper's §2–§3.1 tooling does — from
outside the device.  The analyst sees the drive's public geometry and
budgets (datasheet facts) but none of the six policy knobs; evidence
comes from write/read latencies, the MX500-style SMART program-page
counters, and a logic analyzer soldered to one flash channel.

Per-knob verdicts (``None`` = not recoverable from outside, which is
itself a transparency result the score reports):

==================  ================================================
knob                black-box signal
==================  ================================================
cache_designation   write-buffer probe: stall point ≫ sectors/page
                    means the RAM buffers data, not mapping pages
cache_admission     SMART host-program pages across 64 same-LBA
                    writes: absorbed (1 page) vs packed-through
cache_eviction      overflow-then-read-latency, only observable on
                    data-designated, admitting caches
allocation          bus trace: per-plane block-sequence reversals
                    reveal hot/cold stream ping-pong; the 13 static
                    permutations are indistinguishable on a
                    single-channel tap (reported as the
                    representative ``CWDP``)
gc_policy           WAF + erase-count matching against candidate
                    models replaying the same churn workload
wear_policy         invisible (no host-visible signal at this scale)
==================  ================================================
"""

from __future__ import annotations

import numpy as np

from repro.core.blackbox import detect_write_buffer
from repro.core.probe.analyzer import TLA7000, LogicAnalyzer
from repro.core.probe.decoder import decode_trace_windows
from repro.flash.timing import profile
from repro.infer.grid import KNOBS, PolicyPoint, registry_names
from repro.infer.toolloop import ToolLoop
from repro.ssd.config import SsdConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.timed import BusTap, TimedSSD

#: rewrites in the admission probe; bypass packs them into ≫ this/spp pages.
_ADMISSION_WRITES = 64

#: alternating hot/cold rounds in the allocation probe.
_ALLOC_ROUNDS = 24

#: churn writes (of ``spp`` sectors each) driving the GC fingerprint.
_GC_CHURN_OPS = 1500


class BlackboxInference:
    """One black-box run against a hidden *true_config*.

    *true_config* is used **only** to construct devices (the hardware
    under test); every inference works from ``self.base`` — the public
    configuration with all six knobs reset to registry defaults.
    """

    def __init__(self, true_config: SsdConfig, loop: ToolLoop) -> None:
        self._true_config = true_config
        self.base = PolicyPoint().apply(true_config)
        self.loop = loop
        geometry = self.base.geometry
        self.spp = geometry.page_size // geometry.sector_size

    # -- device factories (the "lab bench") ----------------------------

    def _timed(self, tap: BusTap | None = None) -> TimedSSD:
        return TimedSSD(self._true_config, bus_tap=tap)

    def _smart_device(self) -> SimulatedSSD:
        return SimulatedSSD(self._true_config)

    # ------------------------------------------------------------------
    # cache knobs
    # ------------------------------------------------------------------

    def infer_cache_designation(self) -> tuple[str, int]:
        device = self._timed()
        probe = detect_write_buffer(device)
        cap = probe.estimated_sectors or 0
        self.loop.record("probe", "ssdcheck.write_buffer",
                         "burst single-sector writes until first stall",
                         {"estimated_sectors": cap})
        designation = "data" if cap > 2 * self.spp else "mapping"
        self.loop.record(
            "hypothesize", "cache.designation",
            f"stall at {cap} vs {self.spp} sectors/page",
            designation)
        return designation, cap

    def infer_cache_admission(self) -> str:
        device = self._smart_device()
        before = device.smart.snapshot()
        for _ in range(_ADMISSION_WRITES):
            device.write_sectors(0, 1)
        device.flush()
        pages = device.smart.delta(before).host_program_pages
        self.loop.record("probe", "smart.host_program_pages",
                         f"{_ADMISSION_WRITES} same-LBA writes + flush",
                         {"host_pages": pages})
        admission = "always" if pages <= 2 else "bypass"
        self.loop.record("hypothesize", "cache.admission",
                         "absorbed rewrites program almost nothing",
                         admission)
        return admission

    def infer_cache_eviction(self, designation: str, admission: str,
                             cache_sectors: int) -> str | None:
        if designation != "data" or admission != "always":
            self.loop.record(
                "analyze", "cache.eviction",
                "no admitting data cache to overflow", "unobservable")
            return None
        device = self._timed()
        spp, cap = self.spp, cache_sectors
        base = 64
        for lba in range(base, base + cap):
            device.write_sectors(lba, 1)
        device.write_sectors(base, 1)  # hit: lru refreshes, fifo does not
        for lba in range(base + cap, base + cap + spp):
            device.write_sectors(lba, 1)  # overflow: evicts one batch
        device.quiesce()
        overhead_us = device.controller_overhead_ns / 1000
        victim = device.read_sectors(base, 1).latency_us
        control = device.read_sectors(base + cap - 1, 1).latency_us
        self.loop.record("probe", "timed.read_latency",
                         "read first-written sector after one eviction",
                         {"victim_us": victim, "control_us": control})
        # lru: the rewritten sector was refreshed, somebody else got
        # evicted, the read is a RAM hit.  fifo: it went to flash.
        eviction = "lru" if victim <= 4 * overhead_us else "fifo"
        self.loop.record("hypothesize", "cache.eviction",
                         "RAM-hit vs flash-read latency", eviction)
        return eviction

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def infer_allocation(self) -> str:
        geometry = self.base.geometry
        tap = BusTap(geometry, profile(self.base.timing_name), channel=0)
        device = self._timed(tap)
        spp = self.spp
        warm = 64
        for lba in range(0, warm * spp, spp):
            device.write_sectors(lba, spp)
        device.flush()
        fresh = warm * spp
        for round_no in range(_ALLOC_ROUNDS):
            device.write_sectors((round_no % 8) * spp, spp)  # hot rewrite
            device.flush()
            device.write_sectors(fresh, spp)  # first touch (cold)
            device.flush()
            fresh += spp
        device.quiesce()
        result = decode_trace_windows(tap.trace, LogicAnalyzer(TLA7000),
                                      max_windows=64)
        programs = [op for op in result.ops
                    if op.name == "program" and op.row is not None]
        self.loop.record("probe", "probe.decode",
                         "decode channel-0 trace of hot/cold interleave",
                         {"programs": len(programs)})
        reversals = self._plane_reversals(programs)
        allocation = "hotcold" if reversals >= 3 else "CWDP"
        self.loop.record(
            "hypothesize", "alloc.streams",
            f"{reversals} per-plane block-order reversals "
            "(static permutations are tap-ambiguous)", allocation)
        return allocation

    def _plane_reversals(self, programs) -> int:
        """Direction changes of the per-plane block sequence.

        One active block per stream means each plane's programs walk
        blocks monotonically; a second (cold) stream ping-pongs between
        two open blocks and racks up reversals.
        """
        geometry = self.base.geometry
        ppb = geometry.pages_per_block
        per_plane: dict[int, list[int]] = {}
        for op in programs:
            block_in_die = op.row // ppb
            plane = block_in_die // geometry.blocks_per_plane
            per_plane.setdefault(plane, []).append(
                block_in_die % geometry.blocks_per_plane)
        reversals = 0
        for blocks in per_plane.values():
            direction = 0
            for prev, cur in zip(blocks, blocks[1:]):
                if cur == prev:
                    continue
                step = 1 if cur > prev else -1
                if direction and step != direction:
                    reversals += 1
                direction = step
        return reversals

    # ------------------------------------------------------------------
    # GC
    # ------------------------------------------------------------------

    def infer_gc_policy(self, hypotheses: dict[str, str | None]) -> str:
        """Replay one churn workload on the drive and on candidate
        models, and keep the candidate whose WAF + erase fingerprint
        sits closest."""
        churn = self._churn_workload()
        waf_true, erase_true = self._run_churn(self._smart_device(), churn)
        self.loop.record("probe", "smart.waf",
                         f"churn {_GC_CHURN_OPS} x {self.spp}-sector "
                         "uniform writes",
                         {"waf": waf_true, "erases": erase_true})
        overrides = {
            "allocation_scheme": hypotheses.get("allocation"),
            "cache_designation": hypotheses.get("cache_designation"),
            "cache_admission": hypotheses.get("cache_admission"),
            "cache_eviction": hypotheses.get("cache_eviction"),
        }
        overrides = {k: v for k, v in overrides.items() if v is not None}
        best, best_score = None, None
        for name in registry_names("gc_policy"):
            model = SimulatedSSD(self.base.with_changes(
                gc_policy=name, **overrides))
            waf, erases = self._run_churn(model, churn)
            score = (abs(waf - waf_true)
                     + 0.5 * abs(erases - erase_true) / max(1, erase_true))
            self.loop.record("analyze", "gc.model_match",
                             f"candidate {name}",
                             {"waf": waf, "erases": erases, "score": score})
            if best_score is None or score < best_score:
                best, best_score = name, score
        self.loop.record("hypothesize", "gc.model_match",
                         "closest WAF/erase fingerprint", best)
        return best

    def _churn_workload(self) -> np.ndarray:
        pages = max(1, self.base.logical_sectors // self.spp - 2)
        rng = np.random.default_rng(20190513)  # HotOS'19, fixed
        return rng.integers(0, pages, size=_GC_CHURN_OPS) * self.spp

    def _run_churn(self, device: SimulatedSSD,
                   churn: np.ndarray) -> tuple[float, int]:
        for lba in churn:
            device.write_sectors(int(lba), self.spp)
        device.flush()
        return round(device.smart.waf(), 6), device.smart.erase_count

    # ------------------------------------------------------------------

    def run(self) -> dict[str, str | None]:
        recovered: dict[str, str | None] = dict.fromkeys(KNOBS)
        designation, cap = self.infer_cache_designation()
        recovered["cache_designation"] = designation
        recovered["cache_admission"] = self.infer_cache_admission()
        recovered["cache_eviction"] = self.infer_cache_eviction(
            designation, recovered["cache_admission"], cap)
        recovered["allocation"] = self.infer_allocation()
        recovered["gc_policy"] = self.infer_gc_policy(recovered)
        recovered["wear_policy"] = None
        self.loop.record("analyze", "wear.visibility",
                         "wear policy leaves no host-visible trace "
                         "at probe scale", "unobservable")
        return recovered


def run_blackbox(true_config: SsdConfig,
                 loop: ToolLoop) -> dict[str, str | None]:
    """Full black-box pass; returns the recovered knob settings."""
    return BlackboxInference(true_config, loop).run()
