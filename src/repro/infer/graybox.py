"""Gray-box inference: firmware analysis cross-checked over JTAG.

The paper's §3.2 path: obtain the firmware update file, strip the
obfuscation, statically analyze the policy cores, then use the debug
port to confirm every hypothesis against the live device — dump the
loaded code, read the data structures the code references, and poke the
device with host I/O while watching those structures change.

The static side is a linear-sweep scanner over the four policy-core
sections (``pgc``/``palloc``/``pcache``/``pwear``).  It tracks
``MOVI``/``MOVT`` register constants, harvests pointer loads, records
MMIO stores in program order, and pattern-matches the xorshift PRNG
idiom.  Which tables a core references, whether it draws random
candidates, and the order it latches placement coordinates together pin
all six policy knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.jtag import Debugger, JtagProbe, TapController
from repro.infer.toolloop import ToolLoop
from repro.ssd.firmware.builder import (
    GC_FEATURES,
    MMIO_BASE,
    MMIO_CACHE_CAP,
    MMIO_CACHE_TP,
    MMIO_DIM_LATCHES,
    POLICY_TABLE_TAG_BYTES,
    POLICY_TABLE_TAGS,
    SRAM_BASE,
    Section,
    parse_image,
)
from repro.ssd.firmware.device import IDCODE, HackableSSD
from repro.ssd.firmware.isa import Op, disassemble, find_pointer_loads
from repro.ssd.firmware.obfuscation import deobfuscate

#: MMIO latch offset -> geometry-dimension letter (inverse of the
#: builder's latch map; part of the analyst's MMIO documentation).
_LATCH_LETTER = {offset: letter for letter, offset in MMIO_DIM_LATCHES.items()}

#: tag bytes -> table name (what a strings pass over the firmware gives).
_TAG_NAME = {tag: name for name, tag in POLICY_TABLE_TAGS.items()}

#: registers that hold data, cleared by any non-constant write.
_WRITES_RD = {Op.LDR, Op.ADD, Op.SUB, Op.AND, Op.ORR, Op.LSR, Op.LSL,
              Op.XOR, Op.ADDX, Op.XORX}

_FULL = 0xFFFFFFFF


@dataclass
class SectionFacts:
    """Everything the static scanner extracts from one policy core."""

    name: str
    pointers: list[int] = field(default_factory=list)
    #: table name -> entry base address (tag-confirmed over JTAG).
    tables: dict[str, int] = field(default_factory=dict)
    sram_refs: list[int] = field(default_factory=list)
    #: MMIO stores in program order: (register offset, stored const|None).
    mmio_stores: list[tuple[int, int | None]] = field(default_factory=list)
    has_xorshift: bool = False

    def mmio_const(self, offset: int) -> int | None:
        for off, value in self.mmio_stores:
            if off == offset and value is not None:
                return value
        return None


def scan_section(section: Section) -> SectionFacts:
    """Static pass: constants, pointer loads, MMIO stores, PRNG idiom."""
    lines = disassemble(section.data, base=section.load_addr)
    facts = SectionFacts(section.name)
    facts.pointers = sorted({v for _, _, v in find_pointer_loads(lines)})
    regs: dict[int, int] = {}
    insns = [ln.insn for ln in lines if ln.insn is not None]
    for insn in insns:
        if insn.op is Op.MOVI:
            regs[insn.rd] = insn.imm
        elif insn.op is Op.MOVT:
            if insn.rd in regs:
                regs[insn.rd] = (regs[insn.rd] & 0xFFFF) | (insn.imm << 16)
            else:
                regs.pop(insn.rd, None)
        elif insn.op is Op.STR:
            base = regs.get(insn.rn)
            if base == MMIO_BASE:
                facts.mmio_stores.append((insn.imm, regs.get(insn.rd)))
        elif insn.op in _WRITES_RD:
            regs.pop(insn.rd, None)
    # xorshift: LSL tmp,state ; XORX state,tmp ; LSR tmp,state ;
    # XORX state,tmp — the exact shift-register update the cores use.
    for a, b, c, d in zip(insns, insns[1:], insns[2:], insns[3:]):
        if (a.op is Op.LSL and b.op is Op.XORX and c.op is Op.LSR
                and d.op is Op.XORX and a.rd == b.rn == c.rd == d.rn
                and a.rn == b.rd == c.rn == d.rd):
            facts.has_xorshift = True
            break
    return facts


class GrayboxInference:
    """One gray-box run against a :class:`HackableSSD`."""

    #: the four policy cores and the knobs each one decides.
    SECTION_KNOBS = {
        "pgc": ("gc_policy",),
        "palloc": ("allocation",),
        "pcache": ("cache_designation", "cache_admission", "cache_eviction"),
        "pwear": ("wear_policy",),
    }

    def __init__(self, device: HackableSSD, loop: ToolLoop) -> None:
        self.device = device
        self.loop = loop
        self.debugger = Debugger(JtagProbe(TapController(device, IDCODE)))
        self.sections: list[Section] = []
        self.facts: dict[str, SectionFacts] = {}

    # ------------------------------------------------------------------
    # probe + analyze
    # ------------------------------------------------------------------

    def acquire_image(self) -> None:
        idcode = self.debugger.check_connection(IDCODE)
        self.loop.record("probe", "jtag.check_connection",
                         "attach debug probe", f"IDCODE 0x{idcode:08X}")
        update = self.device.firmware_update_file
        self.loop.record("probe", "update_file.read",
                         "fetch vendor firmware update file",
                         f"{len(update)} bytes, obfuscated")
        plain, guess = deobfuscate(update)
        self.loop.record("analyze", "obfuscation.deobfuscate",
                         "strip keystream",
                         f"period {guess.period} "
                         f"confidence {guess.confidence:.3f}")
        all_sections = parse_image(plain)
        self.sections = [s for s in all_sections
                         if s.name in self.SECTION_KNOBS]
        self.loop.record("analyze", "image.parse",
                         "locate policy-core sections",
                         [s.name for s in self.sections])
        if len(self.sections) != len(self.SECTION_KNOBS):
            raise RuntimeError("firmware image has no policy cores "
                               "(built without a policy config?)")

    def scan(self) -> None:
        for section in self.sections:
            facts = scan_section(section)
            self._classify_pointers(facts)
            self.facts[section.name] = facts
            self.loop.record(
                "analyze", "isa.scan", f"static scan of {section.name}",
                {"tables": sorted(facts.tables), "xorshift": facts.has_xorshift,
                 "sram_refs": len(facts.sram_refs),
                 "mmio_stores": [f"0x{o:02x}" for o, _ in facts.mmio_stores]})

    def _classify_pointers(self, facts: SectionFacts) -> None:
        """Resolve each harvested pointer: SRAM scratch, or a tagged
        DRAM table (the 8-byte tag sits just below the entry base)."""
        for ptr in facts.pointers:
            if SRAM_BASE <= ptr < SRAM_BASE + 0x10000:
                facts.sram_refs.append(ptr)
                continue
            if ptr >= MMIO_BASE or ptr < SRAM_BASE:
                continue
            tag = self.debugger.dump(ptr - POLICY_TABLE_TAG_BYTES, 8)
            name = _TAG_NAME.get(tag)
            self.loop.record("probe", "jtag.dump",
                             f"read tag below pointer 0x{ptr:08x}",
                             name or tag.hex())
            if name is not None:
                facts.tables[name] = ptr

    # ------------------------------------------------------------------
    # hypothesize
    # ------------------------------------------------------------------

    def hypothesize(self) -> dict[str, str]:
        recovered: dict[str, str] = {}
        gc = self.facts["pgc"]
        signature = (gc.has_xorshift, bool(gc.sram_refs),
                     "valid" in gc.tables, "seq" in gc.tables,
                     "erase" in gc.tables)
        matches = [name for name, feats in GC_FEATURES.items()
                   if feats == signature]
        recovered["gc_policy"] = matches[0] if matches else "unknown"
        self.loop.record("hypothesize", "gc.features",
                         "rng/scratch/valid/seq/erase signature",
                         {"signature": list(signature),
                          "policy": recovered["gc_policy"]})

        alloc = self.facts["palloc"]
        if "heat" in alloc.tables:
            recovered["allocation"] = "hotcold"
        else:
            letters = [_LATCH_LETTER[off] for off, _ in alloc.mmio_stores
                       if off in _LATCH_LETTER]
            recovered["allocation"] = "".join(letters)
        self.loop.record("hypothesize", "alloc.latch_order",
                         "dimension-latch store order",
                         recovered["allocation"])

        cache = self.facts["pcache"]
        extra_tps = cache.mmio_const(MMIO_CACHE_TP) or 0
        recovered["cache_designation"] = "mapping" if extra_tps else "data"
        recovered["cache_admission"] = ("always" if "cacheslot" in cache.tables
                                        else "bypass")
        recovered["cache_eviction"] = ("lru" if "recency" in cache.tables
                                       else "fifo")
        self.loop.record("hypothesize", "cache.structure",
                         "designation consts + admission/eviction tables",
                         {"cap": cache.mmio_const(MMIO_CACHE_CAP),
                          "extra_tps": extra_tps,
                          "designation": recovered["cache_designation"],
                          "admission": recovered["cache_admission"],
                          "eviction": recovered["cache_eviction"]})

        wear = self.facts["pwear"]
        recovered["wear_policy"] = ("sampled_cold" if wear.has_xorshift
                                    else "coldest")
        self.loop.record("hypothesize", "wear.features",
                         "erase-table scan: sampled vs exhaustive",
                         recovered["wear_policy"])
        return recovered

    # ------------------------------------------------------------------
    # confirm
    # ------------------------------------------------------------------

    def confirm(self, recovered: dict[str, str]) -> dict[str, bool]:
        confirmed = dict.fromkeys(recovered, False)
        confirmed_rom = self._confirm_rom()
        self._warmup()
        live = self._confirm_liveness()
        confirmed["gc_policy"] = confirmed_rom and live
        confirmed["wear_policy"] = confirmed_rom and live
        confirmed["cache_designation"] = confirmed_rom
        admission_ok, eviction_ok = self._confirm_cache(recovered)
        confirmed["cache_admission"] = confirmed_rom and admission_ok
        confirmed["cache_eviction"] = confirmed_rom and eviction_ok
        if recovered["allocation"] == "hotcold":
            confirmed["allocation"] = confirmed_rom and self._confirm_heat()
        else:
            confirmed["allocation"] = confirmed_rom
        return confirmed

    def _confirm_rom(self) -> bool:
        ok = True
        for section in self.sections:
            live = self.debugger.dump(section.load_addr, len(section.data))
            match = live == section.data
            ok = ok and match
            self.loop.record("confirm", "jtag.dump",
                             f"loaded {section.name} matches update file",
                             "match" if match else "MISMATCH")
        return ok

    def _warmup(self) -> None:
        """Scatter host writes so the policy tables carry live state."""
        ssd = self.device.ssd
        span = min(ssd.num_sectors, 1024)
        for i in range(600):
            ssd.write_sectors((i * 13) % span, 2)
        ssd.flush()
        self.loop.record("probe", "host.write",
                         "warmup: 600 scattered writes + flush")

    def _confirm_liveness(self) -> bool:
        """Referenced GC tables must show non-erased contents."""
        ok = True
        for name, base in sorted(self.facts["pgc"].tables.items()):
            words = np.frombuffer(self.debugger.dump(base, 64), dtype="<u4")
            live = bool((words != _FULL).any())
            ok = ok and live
            self.loop.record("confirm", "jtag.dump",
                             f"{name} table head is live", live)
        return ok

    def _confirm_cache(self, recovered: dict[str, str]) -> tuple[bool, bool]:
        """Watch the pending set through the debug port while writing.

        Eight one-sector writes land in cache slots for ``always``
        admission and nowhere for ``bypass``; rewriting the oldest
        sector then distinguishes ``lru`` (slot 0 moves on) from
        ``fifo`` (slot 0 keeps the original victim).
        """
        facts = self.facts["pcache"]
        base = facts.tables.get("cacheslot")
        ssd = self.device.ssd
        ssd.flush()
        # Stay under the capacity the core itself latched, so nothing
        # gets flushed out from under the probe mid-burst.
        burst = min(facts.mmio_const(MMIO_CACHE_CAP) or 8, 8)
        for lba in range(40, 40 + burst):
            ssd.write_sectors(lba, 1)
        if base is None:
            # Bypass build: the core has no pending-set pointer at all,
            # which is itself the confirmation — nothing to watch.
            self.loop.record("confirm", "cache.slots",
                             "no pending-set pointer in pcache",
                             "bypass confirmed")
            ssd.flush()
            return recovered["cache_admission"] == "bypass", True
        slot0 = int(np.frombuffer(self.debugger.dump(base, 4), "<u4")[0])
        self.loop.record("confirm", "jtag.dump",
                         f"pending slot 0 after writes 40..{40 + burst - 1}",
                         slot0)
        admission_ok = slot0 == 40
        ssd.write_sectors(40, 1)  # hit: lru refreshes, fifo does not
        slot0 = int(np.frombuffer(self.debugger.dump(base, 4), "<u4")[0])
        self.loop.record("confirm", "jtag.dump",
                         "pending slot 0 after rewriting 40", slot0)
        expect = 41 if recovered["cache_eviction"] == "lru" else 40
        ssd.flush()
        return admission_ok, slot0 == expect

    def _confirm_heat(self) -> bool:
        """Two flushed page writes must bump the heat slot by exactly 2.

        The heat table is indexed by sector (the core masks the incoming
        LBA), so the probe watches the slot of the burst's first sector.
        """
        base = self.facts["palloc"].tables["heat"]
        ssd = self.device.ssd
        geometry = self.device.config.geometry
        spp = geometry.page_size // geometry.sector_size
        sector = 77 * spp
        slot = sector & 0xFFF
        before = int(np.frombuffer(
            self.debugger.dump(base + 4 * slot, 4), "<u4")[0])
        for _ in range(2):
            ssd.write_sectors(sector, spp)
            ssd.flush()
        after = int(np.frombuffer(
            self.debugger.dump(base + 4 * slot, 4), "<u4")[0])
        self.loop.record("confirm", "jtag.dump",
                         f"heat[{slot}] across two flushed page writes",
                         {"before": before, "after": after})
        return after - before == 2


def run_graybox(device: HackableSSD,
                loop: ToolLoop) -> tuple[dict[str, str], dict[str, bool]]:
    """Full gray-box pass: returns (recovered, confirmed) by knob."""
    inference = GrayboxInference(device, loop)
    inference.acquire_image()
    inference.scan()
    recovered = inference.hypothesize()
    confirmed = inference.confirm(recovered)
    return recovered, confirmed
