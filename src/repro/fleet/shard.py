"""Shard scheduler: pack fleet devices into experiment cells.

One :class:`~repro.exp.cell.Cell` per device would work, but at fleet
scale the per-cell overheads (submission, pickling a config per device,
one cache entry per device) dominate.  Instead the scheduler packs
contiguous *chunks* of device indexes into :class:`FleetShardCell`
cells:

* shard size is a function of the fleet alone (``DEVICES_PER_SHARD``),
  never of ``--jobs``, so cache keys stay stable whatever the worker
  count;
* workers are reused across shards — all shards go through one
  :meth:`Runner.run` call, so the process pool amortizes interpreter
  spin-up over ``devices / shards`` simulations per task;
* each worker returns O(centroids) sketch payloads per device, not raw
  latency lists (see :mod:`repro.fleet.sketch`);
* a failure inside a shard raises :class:`FleetDeviceError` naming the
  exact device; shards simulate their devices in ascending index order
  and the runner fails fast on the lowest-indexed failing cell, so the
  reported device is the lowest failing one.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.exp import Cell, ResultCache, Runner, run_cells
from repro.exp.hashing import stable_digest
from repro.fleet.sketch import QuantileSketch
from repro.fleet.spec import FleetSpec

#: devices per shard when the caller does not pick a shard count.
#: Chosen so a shard is a few hundred ms of work — big enough to
#: amortize worker dispatch, small enough to load-balance a pool.
DEVICES_PER_SHARD = 32


@dataclass(frozen=True)
class FleetShardCell:
    """One contiguous chunk of device indexes ``[lo, hi)`` of a fleet.

    ``keep_going=True`` isolates per-device failures inside the shard:
    a crashed device becomes a :class:`FailedDevice` entry in the shard
    result instead of aborting the whole cell.  The flag is part of the
    cell config, and therefore of the cache key — fail-fast and
    keep-going results are different outcomes.
    """

    spec: FleetSpec
    lo: int
    hi: int
    keep_going: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi <= self.spec.devices:
            raise ValueError(f"bad shard bounds [{self.lo}, {self.hi}) "
                             f"for {self.spec.devices} devices")


@dataclass(frozen=True)
class TenantSlice:
    """One tenant's outcome on one device."""

    tenant: str
    requests: int
    sketch: QuantileSketch
    elapsed_ns: int


@dataclass(frozen=True)
class DeviceResult:
    """One device's complete, transport-sized outcome."""

    index: int
    seed: int
    tenants: tuple[TenantSlice, ...]
    elapsed_ns: int
    host_program_pages: int
    ftl_program_pages: int
    erase_count: int
    host_sectors_written: int
    #: chaos accounting (all zero / empty on a fault-free run, so the
    #: pickled bytes differ from PR 8's only by the defaulted fields).
    degraded_kind: str = ""
    degraded_at_ns: int = -1
    ops_before_degraded: int = -1
    failed_requests: int = 0
    #: the device injector's firing log: (kind, target, op_index).
    fault_events: tuple[tuple[str, int, int], ...] = ()
    #: acknowledged-flushed sectors the durability audit could not
    #: recover (die loss without RAIN is the honest way to lose data).
    sectors_lost: int = 0

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_kind)

    @property
    def faulted(self) -> bool:
        """Did the campaign touch this device at all?"""
        return bool(self.fault_events) or self.degraded

    @property
    def waf(self) -> float:
        if self.host_program_pages == 0:
            return 0.0
        return self.ftl_program_pages / self.host_program_pages


@dataclass(frozen=True)
class FailedDevice:
    """A device whose simulation crashed, kept in the report by
    ``--keep-going`` instead of aborting the fleet."""

    index: int
    seed: int
    error: str
    #: one-line standalone repro command for this exact device.
    repro: str = ""


def device_digest(spec: FleetSpec, device_index: int) -> str:
    """Content address of one device's simulation (spec + index)."""
    return stable_digest(("repro.fleet.device", spec, device_index))


def device_repro_command(spec: FleetSpec, device_index: int) -> str:
    """Best-effort one-liner rerunning *device_index* standalone.

    Exact for CLI-built specs (built-in mixes and campaigns); a spec
    with hand-rolled tenants reruns via ``simulate_device`` instead.
    """
    parts = [
        "repro-ssd fleet",
        f"--preset {spec.preset}", f"--scale {spec.scale}",
        f"--seed {spec.seed}", f"--devices {spec.devices}",
    ]
    campaign = spec.campaign
    if campaign is not None:
        parts.append(f"--campaign {campaign.name} --afr {campaign.afr:g}")
    parts.append(f"--only {device_index} --jobs 1 --no-cache")
    return " ".join(parts)


class FleetDeviceError(RuntimeError):
    """A device simulation failed; carries the exact device identity,
    its content-address hash, and a one-line repro command."""

    def __init__(self, device_index: int, cause: BaseException,
                 spec: FleetSpec | None = None) -> None:
        self.device_index = device_index
        message = (f"fleet device #{device_index} failed: "
                   f"{type(cause).__name__}: {cause}")
        if spec is not None:
            try:
                message += f"\n  device key {device_digest(spec, device_index)[:12]}"
            except TypeError:
                pass  # an unhashable spec still gets the plain message
            message += f"\n  rerun standalone: {device_repro_command(spec, device_index)}"
        super().__init__(message)


def simulate_device(spec: FleetSpec, device_index: int) -> DeviceResult:
    """Simulate one device of the fleet (pure function of spec+index).

    With an active campaign, the device's derived
    :class:`~repro.faults.plan.FaultPlan` rides in as a planned
    injector; a device that degrades mid-run (read-only, die-offline
    cascade, power cut) yields a partial result with its
    time-to-degraded and failure accounting, and the PR 4 durability
    oracle audits what acknowledged-flushed data survived recovery.
    An empty plan — every device at AFR 0 — takes the literal
    injector-free code path, which is what pins zero-AFR byte-identity.
    """
    from repro.ssd.timed import TimedSSD
    from repro.workloads.engine import run_timed

    config = spec.device_config()
    injector = None
    campaign = spec.campaign
    if campaign is not None and campaign.active:
        from repro.faults.injection import PlannedFaultInjector
        from repro.fleet.chaos import device_fault_plan

        plan = device_fault_plan(spec, device_index)
        if plan.specs:
            injector = PlannedFaultInjector(plan, config.geometry)
    device = TimedSSD(config, injector=injector)
    sources = spec.device_sources(device_index, device.num_sectors)
    result = run_timed(device, sources)
    slices = []
    failed_requests = 0
    for source in sources:
        outcome = result.jobs[source.name]
        failed_requests += outcome.failed_requests
        sketch = QuantileSketch(spec.compression)
        if outcome.latencies_us is not None:
            sketch.extend(outcome.latencies_us)
        slices.append(TenantSlice(
            tenant=source.name,
            requests=outcome.requests,
            sketch=sketch.compact(),  # O(centroids) before transport
            elapsed_ns=outcome.elapsed_ns,
        ))
    fault_events: tuple = ()
    sectors_lost = 0
    if injector is not None:
        # Snapshot the firing log before the durability audit: recovery
        # reads consult the injector and must not pollute the run's log.
        fault_events = tuple(injector.log)
        sectors_lost = _audit_durability(device, result, injector)
    delta = result.smart_delta
    return DeviceResult(
        index=device_index,
        seed=spec.device_seed(device_index),
        tenants=tuple(slices),
        elapsed_ns=result.elapsed_ns,
        host_program_pages=delta.host_program_pages,
        ftl_program_pages=delta.ftl_program_pages,
        erase_count=delta.erase_count,
        host_sectors_written=delta.host_sectors_written,
        degraded_kind=result.degraded_kind,
        degraded_at_ns=result.degraded_at_ns,
        ops_before_degraded=result.ops_before_degraded,
        failed_requests=failed_requests,
        fault_events=fault_events,
        sectors_lost=sectors_lost,
    )


def _audit_durability(device, result, injector) -> int:
    """PR 4's durability oracle at fleet scale: how many acknowledged
    sectors mapped on this device did recovery fail to bring back?

    The live mapped set (L2P plus the pSLC index) is compared against
    the set recovered by an OOB scan of a flash snapshot.  Power-cut
    devices are audited as-is (RAM contents are gone — and were never
    flush-acknowledged); every other device drains its cache first.
    Dies the campaign took offline stay dead across the reboot — an
    unprotected die loss is real data loss — while transient
    program/erase/read faults do not replay into the scan.
    """
    import numpy as np

    from repro.fleet.chaos import OfflineDieInjector
    from repro.ssd.mapping import UNMAPPED
    from repro.ssd.recovery import recover_ftl

    ftl = device.ftl
    if result.degraded_kind != "power_cut":
        try:
            device.flush()
        except Exception:
            pass  # a drive that cannot drain loses nothing acknowledged
    live = {int(l) for l in np.nonzero(ftl.mapping.l2p != UNMAPPED)[0]}
    live |= set(ftl.pslc.index)
    recovery_injector = None
    if injector.offline_dies:
        recovery_injector = OfflineDieInjector(injector.offline_dies,
                                               device.geometry)
    recovered, _ = recover_ftl(device.config, ftl.nand.clone(),
                               injector=recovery_injector)
    mapped = {int(l) for l in np.nonzero(recovered.mapping.l2p != UNMAPPED)[0]}
    mapped |= set(recovered.pslc.index)
    return len(live - mapped)


def run_fleet_shard_cell(
    cell: FleetShardCell, seed: int = 0
) -> list[DeviceResult | FailedDevice]:
    """Worker entry point: simulate the shard's devices in index order.

    Ascending order matters for fail-fast reporting: the first failure
    raised is the shard's lowest device index, and the runner picks the
    lowest-indexed failing *cell*, so the error the study surfaces
    names the lowest failing device of the whole fleet.  Keep-going
    shards never raise: crashed devices ride back as
    :class:`FailedDevice` entries in index position.
    """
    results: list[DeviceResult | FailedDevice] = []
    for device_index in range(cell.lo, cell.hi):
        try:
            results.append(simulate_device(cell.spec, device_index))
        except Exception as exc:
            if not cell.keep_going:
                raise FleetDeviceError(device_index, exc,
                                       spec=cell.spec) from exc
            results.append(FailedDevice(
                index=device_index,
                seed=cell.spec.device_seed(device_index),
                error=f"{type(exc).__name__}: {exc}",
                repro=device_repro_command(cell.spec, device_index),
            ))
    return results


def plan_shards(devices: int, shards: int | None = None) -> list[tuple[int, int]]:
    """Split ``range(devices)`` into contiguous, balanced shards.

    ``shards=None`` targets :data:`DEVICES_PER_SHARD` devices per shard
    — a pure function of the fleet size, so the shard plan (and with it
    every cache key) is independent of worker count.  Shard sizes never
    differ by more than one device.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if shards is None:
        shards = -(-devices // DEVICES_PER_SHARD)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, devices)
    base, extra = divmod(devices, shards)
    bounds = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def fleet_cells(spec: FleetSpec, shards: int | None = None,
                keep_going: bool = False) -> list[Cell]:
    """The fleet as a list of cacheable experiment cells."""
    return [
        Cell(
            run_fleet_shard_cell,
            FleetShardCell(spec, lo, hi, keep_going=keep_going),
            seed=spec.seed,
            label=f"fleet:{spec.preset}:[{lo},{hi})",
            repro=device_repro_command(spec, lo).replace(
                f"--only {lo} ", f"--only {lo}:{hi} "),
        )
        for lo, hi in plan_shards(spec.devices, shards)
    ]


def run_fleet_devices(
    spec: FleetSpec, runner: Runner | None = None,
    shards: int | None = None, keep_going: bool = False,
) -> list[DeviceResult | FailedDevice]:
    """Run the whole fleet, returning per-device results in index order.

    ``keep_going`` composes two isolation layers: shard cells catch
    per-device crashes (:class:`FailedDevice` entries), and a
    keep-going / watchdog runner that quarantines a whole cell yields a
    ``None`` shard result — every device of that shard is reported
    failed rather than silently missing.
    """
    cells = fleet_cells(spec, shards, keep_going=keep_going)
    shard_results = run_cells(cells, runner)
    devices: list[DeviceResult | FailedDevice] = []
    for cell, shard in zip(cells, shard_results):
        if shard is None:
            bounds = cell.config
            devices.extend(
                FailedDevice(
                    index=i,
                    seed=spec.device_seed(i),
                    error="shard cell quarantined by the runner "
                          "(watchdog timeout or isolated failure)",
                    repro=device_repro_command(spec, i),
                )
                for i in range(bounds.lo, bounds.hi)
            )
        else:
            devices.extend(shard)
    return devices


# ----------------------------------------------------------------------
# Run manifests (the --resume handshake)
# ----------------------------------------------------------------------


def fleet_manifest(spec: FleetSpec, cache: ResultCache,
                   shards: int | None = None,
                   keep_going: bool = False) -> dict:
    """The run's identity card: one entry per shard cell with its
    content-address key.  Everything is derived (spec digest, cell
    keys), so writing it before a run and reading it after an interrupt
    agree byte-for-byte."""
    cells = fleet_cells(spec, shards, keep_going=keep_going)
    return {
        "kind": "repro-ssd fleet manifest",
        "digest": stable_digest(
            ("repro.fleet.manifest", spec, shards, keep_going, cache.salt)),
        "salt": cache.salt,
        "devices": spec.devices,
        "cells": [
            {"label": cell.label, "key": cell.key(cache.salt),
             "lo": cell.config.lo, "hi": cell.config.hi}
            for cell in cells
        ],
    }


def manifest_path(cache: ResultCache, manifest: dict) -> Path:
    return cache.root / "fleet-manifests" / f"{manifest['digest'][:16]}.json"


def write_fleet_manifest(spec: FleetSpec, cache: ResultCache,
                         shards: int | None = None,
                         keep_going: bool = False) -> Path:
    """Persist the run manifest (atomically) before executing shards."""
    manifest = fleet_manifest(spec, cache, shards, keep_going)
    path = manifest_path(cache, manifest)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(manifest, fh, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def load_fleet_manifest(spec: FleetSpec, cache: ResultCache,
                        shards: int | None = None,
                        keep_going: bool = False) -> dict | None:
    """The previously written manifest for this exact run, or ``None``."""
    manifest = fleet_manifest(spec, cache, shards, keep_going)
    path = manifest_path(cache, manifest)
    try:
        with open(path) as fh:
            stored = json.load(fh)
    except (OSError, ValueError):
        return None
    if stored.get("digest") != manifest["digest"]:
        return None  # foreign or stale file under our name
    return stored


def cached_shard_count(cache: ResultCache, manifest: dict) -> int:
    """How many of the manifest's shard results already sit in the
    cache — the shards ``--resume`` will skip."""
    return sum(
        1 for entry in manifest["cells"]
        if cache.path_for(entry["key"]).exists()
    )
