"""Shard scheduler: pack fleet devices into experiment cells.

One :class:`~repro.exp.cell.Cell` per device would work, but at fleet
scale the per-cell overheads (submission, pickling a config per device,
one cache entry per device) dominate.  Instead the scheduler packs
contiguous *chunks* of device indexes into :class:`FleetShardCell`
cells:

* shard size is a function of the fleet alone (``DEVICES_PER_SHARD``),
  never of ``--jobs``, so cache keys stay stable whatever the worker
  count;
* workers are reused across shards — all shards go through one
  :meth:`Runner.run` call, so the process pool amortizes interpreter
  spin-up over ``devices / shards`` simulations per task;
* each worker returns O(centroids) sketch payloads per device, not raw
  latency lists (see :mod:`repro.fleet.sketch`);
* a failure inside a shard raises :class:`FleetDeviceError` naming the
  exact device; shards simulate their devices in ascending index order
  and the runner fails fast on the lowest-indexed failing cell, so the
  reported device is the lowest failing one.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exp import Cell, Runner, run_cells
from repro.fleet.sketch import QuantileSketch
from repro.fleet.spec import FleetSpec

#: devices per shard when the caller does not pick a shard count.
#: Chosen so a shard is a few hundred ms of work — big enough to
#: amortize worker dispatch, small enough to load-balance a pool.
DEVICES_PER_SHARD = 32


@dataclass(frozen=True)
class FleetShardCell:
    """One contiguous chunk of device indexes ``[lo, hi)`` of a fleet."""

    spec: FleetSpec
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo < self.hi <= self.spec.devices:
            raise ValueError(f"bad shard bounds [{self.lo}, {self.hi}) "
                             f"for {self.spec.devices} devices")


@dataclass(frozen=True)
class TenantSlice:
    """One tenant's outcome on one device."""

    tenant: str
    requests: int
    sketch: QuantileSketch
    elapsed_ns: int


@dataclass(frozen=True)
class DeviceResult:
    """One device's complete, transport-sized outcome."""

    index: int
    seed: int
    tenants: tuple[TenantSlice, ...]
    elapsed_ns: int
    host_program_pages: int
    ftl_program_pages: int
    erase_count: int
    host_sectors_written: int

    @property
    def waf(self) -> float:
        if self.host_program_pages == 0:
            return 0.0
        return self.ftl_program_pages / self.host_program_pages


class FleetDeviceError(RuntimeError):
    """A device simulation failed; carries the exact device identity."""

    def __init__(self, device_index: int, cause: BaseException) -> None:
        self.device_index = device_index
        super().__init__(
            f"fleet device #{device_index} failed: "
            f"{type(cause).__name__}: {cause}")


def simulate_device(spec: FleetSpec, device_index: int) -> DeviceResult:
    """Simulate one device of the fleet (pure function of spec+index)."""
    from repro.ssd.timed import TimedSSD
    from repro.workloads.engine import run_timed

    config = spec.device_config()
    device = TimedSSD(config)
    jobs = spec.device_jobs(device_index, device.num_sectors)
    result = run_timed(device, jobs)
    slices = []
    for job in jobs:
        outcome = result.jobs[job.name]
        sketch = QuantileSketch(spec.compression)
        if outcome.latencies_us is not None:
            sketch.extend(outcome.latencies_us)
        slices.append(TenantSlice(
            tenant=job.name,
            requests=outcome.requests,
            sketch=sketch.compact(),  # O(centroids) before transport
            elapsed_ns=outcome.elapsed_ns,
        ))
    delta = result.smart_delta
    return DeviceResult(
        index=device_index,
        seed=spec.device_seed(device_index),
        tenants=tuple(slices),
        elapsed_ns=result.elapsed_ns,
        host_program_pages=delta.host_program_pages,
        ftl_program_pages=delta.ftl_program_pages,
        erase_count=delta.erase_count,
        host_sectors_written=delta.host_sectors_written,
    )


def run_fleet_shard_cell(cell: FleetShardCell, seed: int = 0) -> list[DeviceResult]:
    """Worker entry point: simulate the shard's devices in index order.

    Ascending order matters for fail-fast reporting: the first failure
    raised is the shard's lowest device index, and the runner picks the
    lowest-indexed failing *cell*, so the error the study surfaces
    names the lowest failing device of the whole fleet.
    """
    results = []
    for device_index in range(cell.lo, cell.hi):
        try:
            results.append(simulate_device(cell.spec, device_index))
        except Exception as exc:
            raise FleetDeviceError(device_index, exc) from exc
    return results


def plan_shards(devices: int, shards: int | None = None) -> list[tuple[int, int]]:
    """Split ``range(devices)`` into contiguous, balanced shards.

    ``shards=None`` targets :data:`DEVICES_PER_SHARD` devices per shard
    — a pure function of the fleet size, so the shard plan (and with it
    every cache key) is independent of worker count.  Shard sizes never
    differ by more than one device.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if shards is None:
        shards = -(-devices // DEVICES_PER_SHARD)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, devices)
    base, extra = divmod(devices, shards)
    bounds = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def fleet_cells(spec: FleetSpec, shards: int | None = None) -> list[Cell]:
    """The fleet as a list of cacheable experiment cells."""
    return [
        Cell(
            run_fleet_shard_cell,
            FleetShardCell(spec, lo, hi),
            seed=spec.seed,
            label=f"fleet:{spec.preset}:[{lo},{hi})",
        )
        for lo, hi in plan_shards(spec.devices, shards)
    ]


def run_fleet_devices(spec: FleetSpec, runner: Runner | None = None,
                      shards: int | None = None) -> list[DeviceResult]:
    """Run the whole fleet, returning per-device results in index order."""
    shard_results = run_cells(fleet_cells(spec, shards), runner)
    return [device for shard in shard_results for device in shard]
