"""Fleet-scale sharded simulation (the "millions of users" layer).

One invocation simulates thousands of SSDs serving multi-tenant
open-loop traffic and folds them into fleet-level SLO verdicts:

* :class:`FleetSpec` / :class:`TenantSpec` — the fleet description:
  per-tenant arrival processes (Poisson, diurnal, bursty) on the
  JobSpec path, deterministic per-device seed derivation
  (:mod:`repro.fleet.spec`);
* :func:`plan_shards` / :func:`fleet_cells` /
  :func:`run_fleet_devices` — the shard scheduler packing devices into
  chunked :class:`~repro.exp.cell.Cell` units so worker spin-up is
  amortized and the result cache works at shard granularity
  (:mod:`repro.fleet.shard`);
* :class:`QuantileSketch` / :func:`merge_sketches` — mergeable
  fixed-size latency sketches, the O(centroids) transport format
  (:mod:`repro.fleet.sketch`);
* :func:`aggregate_fleet` / :class:`FleetReport` — merged per-tenant
  SLO accounting, fleet WAF, and wear/capacity forecasting
  (:mod:`repro.fleet.aggregate`).

Wall-clock scales with cores (shards fan out over the
:class:`~repro.exp.runner.Runner`); transport cost scales with sketch
size, not op count; and fleet output is byte-identical across shard
and worker counts (pinned by ``benchmarks/bench_fleet_scaling.py``).
"""

from repro.fleet.aggregate import (
    REPORT_QUANTILES,
    FleetReport,
    TenantVerdict,
    aggregate_fleet,
)
from repro.fleet.chaos import (
    CAMPAIGNS,
    CHAOS_STREAM,
    HAZARD_SHAPES,
    CampaignSpec,
    campaign_device_plans,
    device_fault_plan,
)
from repro.fleet.shard import (
    DEVICES_PER_SHARD,
    DeviceResult,
    FailedDevice,
    FleetDeviceError,
    FleetShardCell,
    TenantSlice,
    cached_shard_count,
    device_repro_command,
    fleet_cells,
    fleet_manifest,
    load_fleet_manifest,
    plan_shards,
    run_fleet_devices,
    run_fleet_shard_cell,
    simulate_device,
    write_fleet_manifest,
)
from repro.fleet.sketch import (
    DEFAULT_COMPRESSION,
    QuantileSketch,
    merge_sketches,
    rank_error_bound,
    sketch_of,
)
from repro.fleet.spec import (
    TENANT_MIXES,
    FleetSpec,
    TenantSpec,
    default_tenants,
    derive_seed,
    noisy_tenants,
    steady_tenants,
)

__all__ = [
    "CAMPAIGNS",
    "CHAOS_STREAM",
    "CampaignSpec",
    "DEFAULT_COMPRESSION",
    "DEVICES_PER_SHARD",
    "DeviceResult",
    "FailedDevice",
    "FleetDeviceError",
    "FleetReport",
    "FleetShardCell",
    "FleetSpec",
    "HAZARD_SHAPES",
    "QuantileSketch",
    "REPORT_QUANTILES",
    "TENANT_MIXES",
    "TenantSlice",
    "TenantSpec",
    "TenantVerdict",
    "aggregate_fleet",
    "cached_shard_count",
    "campaign_device_plans",
    "default_tenants",
    "derive_seed",
    "device_fault_plan",
    "device_repro_command",
    "fleet_cells",
    "fleet_manifest",
    "load_fleet_manifest",
    "merge_sketches",
    "noisy_tenants",
    "plan_shards",
    "rank_error_bound",
    "run_fleet_devices",
    "run_fleet_shard_cell",
    "simulate_device",
    "sketch_of",
    "steady_tenants",
    "write_fleet_manifest",
]


def run_fleet(spec: FleetSpec, runner=None, shards: int | None = None,
              keep_going: bool = False) -> FleetReport:
    """Run a whole fleet and aggregate it — the one-call entry point."""
    return aggregate_fleet(
        spec, run_fleet_devices(spec, runner, shards, keep_going=keep_going))


__all__.append("run_fleet")
