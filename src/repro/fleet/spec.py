"""Fleet and tenant specifications.

A :class:`FleetSpec` describes thousands of identical SSDs, each
serving the same multi-tenant traffic mix from different random
streams: per-tenant open-loop arrival processes (Poisson rate mixes,
diurnal load curves, noisy-neighbor bursts) on the existing
:class:`~repro.workloads.spec.JobSpec` path, with tenant lifetimes kept
apart inside the device by the stream-separating ``hotcold`` allocation
policy.

Determinism is the load-bearing property: every per-device RNG seed is
derived by hashing ``(fleet seed, device index, tenant name)`` — never
from shard or worker layout — so a device's simulation is a pure
function of the fleet spec and its index.  That is what makes
``--shards 1`` and ``--shards 8`` byte-identical, and what keeps the
content-addressed result cache valid when the shard plan changes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.ssd.config import SsdConfig
from repro.ssd.presets import PRESETS
from repro.workloads.patterns import Region
from repro.workloads.spec import ARRIVAL_MODES, RW_MODES, JobSpec

#: derivation-domain tag so fleet seeds can never collide with another
#: subsystem hashing similar tuples.
_SEED_DOMAIN = "repro.fleet.seed"


def derive_seed(*parts) -> int:
    """Deterministic 63-bit seed from a tuple of identity parts.

    SHA-256 over the stringified parts: stable across processes,
    platforms, and ``PYTHONHASHSEED``, and independent of everything
    except the identities themselves (in particular: shard layout).
    """
    text = _SEED_DOMAIN + ":" + ":".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic on every device of the fleet.

    ``rate_iops`` is the tenant's open-loop arrival rate per device;
    ``io_count`` its requests per device.  ``share`` weights how much
    of each device's LBA space the tenant owns (tenants get private,
    contiguous regions, Fig 4b style).  ``slo_p99_us`` /
    ``slo_p999_us`` are the fleet-level SLO thresholds checked against
    the *merged* distribution across all devices (0 disables that
    threshold).
    """

    name: str
    rate_iops: float
    rw: str = "randwrite"
    bs_sectors: int = 1
    io_count: int = 150
    arrival: str = "poisson"
    pattern: str | None = None
    pattern_kwargs: dict = field(default_factory=dict)
    read_fraction: float = 0.5
    share: float = 1.0
    #: recorded block trace to replay instead of a synthetic stream: a
    #: path to a ``BlockTrace`` CSV.  The trace replays open-loop at its
    #: recorded timeline (scaled by ``time_scale``), relocated into the
    #: tenant's private share region; the synthetic knobs (``rw``,
    #: ``arrival``, ``rate_iops``, ...) are ignored.
    trace: str | None = None
    time_scale: float = 1.0
    #: diurnal/bursty shape knobs, forwarded to the JobSpec.
    diurnal_amplitude: float = 0.5
    diurnal_period_s: float = 0.01
    burst_multiplier: float = 8.0
    burst_len: int = 32
    burst_fraction: float = 0.05
    #: fleet-level SLO thresholds in microseconds (0 = unconstrained).
    slo_p99_us: float = 0.0
    slo_p999_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant needs a name")
        if self.rw not in RW_MODES:
            raise ValueError(f"unknown rw mode {self.rw!r}; known: {RW_MODES}")
        if self.arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival mode {self.arrival!r}; known: {ARRIVAL_MODES}")
        if self.trace is None and self.rate_iops <= 0:
            raise ValueError("rate_iops must be > 0 (tenants are open-loop)")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be > 0")
        if self.io_count < 1:
            raise ValueError("io_count must be >= 1")
        if self.share <= 0:
            raise ValueError("share must be > 0")
        if self.slo_p99_us < 0 or self.slo_p999_us < 0:
            raise ValueError("SLO thresholds must be >= 0")


@dataclass(frozen=True)
class FleetSpec:
    """A fleet of identical devices serving a shared tenant mix."""

    tenants: tuple[TenantSpec, ...]
    devices: int = 64
    preset: str = "tiny"
    scale: int = 1
    seed: int = 42
    #: allocation knob applied to every device; ``hotcold`` routes each
    #: tenant's first-touch vs rewrite traffic to separate streams, the
    #: fleet's tenant-isolation story.
    allocation: str = "hotcold"
    #: sketch size parameter for per-(device, tenant) latency sketches.
    compression: int = 128
    #: optional fault campaign (:class:`~repro.fleet.chaos.CampaignSpec`);
    #: ``None`` — and a zero-AFR campaign — run the fault-free path.
    campaign: "CampaignSpec | None" = None

    def __post_init__(self) -> None:
        if not self.tenants:
            raise ValueError("fleet needs at least one tenant")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {names}")
        if self.devices < 1:
            raise ValueError("devices must be >= 1")
        if self.preset not in PRESETS:
            known = ", ".join(sorted(PRESETS))
            raise ValueError(f"unknown preset {self.preset!r}; known: {known}")
        if self.campaign is not None:
            from repro.fleet.chaos import CampaignSpec
            if not isinstance(self.campaign, CampaignSpec):
                raise ValueError("campaign must be a CampaignSpec or None")

    def device_config(self) -> SsdConfig:
        """The (shared, immutable) per-device configuration.

        An *active* campaign lowers ``spare_blocks_min`` into the config
        so retirement storms reach the FTL's read-only degraded mode;
        without one — or at AFR 0 — the config is byte-identical to the
        campaign-free fleet's (the zero-AFR identity guarantee)."""
        config = PRESETS[self.preset](scale=self.scale).with_changes(
            allocation_scheme=self.allocation)
        if self.campaign is not None and self.campaign.active:
            config = config.with_changes(
                spare_blocks_min=self.campaign.spare_blocks_min)
        return config

    def device_seed(self, device_index: int) -> int:
        """Root seed of one device (stable across shard plans)."""
        return derive_seed(self.seed, device_index)

    def tenant_seed(self, device_index: int, tenant: str) -> int:
        """Seed of one tenant's job on one device."""
        return derive_seed(self.seed, device_index, tenant)

    def tenant_regions(self, num_sectors: int) -> list[tuple[TenantSpec, int, int]]:
        """Contiguous private ``(tenant, start, length)`` LBA regions
        sized by ``share`` (the last tenant absorbs rounding slack)."""
        total_share = sum(t.share for t in self.tenants)
        regions: list[tuple[TenantSpec, int, int]] = []
        start = 0
        for position, tenant in enumerate(self.tenants):
            if position == len(self.tenants) - 1:
                end = num_sectors  # last tenant absorbs rounding slack
            else:
                end = start + int(num_sectors * (tenant.share / total_share))
            regions.append((tenant, start, max(end - start, tenant.bs_sectors)))
            start = end
        return regions

    def _tenant_job(self, tenant: TenantSpec, device_index: int,
                    start: int, length: int) -> JobSpec:
        return JobSpec(
            name=tenant.name,
            rw=tenant.rw,
            region=Region(start, length),
            bs_sectors=tenant.bs_sectors,
            io_count=tenant.io_count,
            read_fraction=tenant.read_fraction,
            pattern=tenant.pattern,
            pattern_kwargs=dict(tenant.pattern_kwargs),
            seed=self.tenant_seed(device_index, tenant.name),
            submission="open",
            rate_iops=tenant.rate_iops,
            arrival=tenant.arrival,
            diurnal_amplitude=tenant.diurnal_amplitude,
            diurnal_period_s=tenant.diurnal_period_s,
            burst_multiplier=tenant.burst_multiplier,
            burst_len=tenant.burst_len,
            burst_fraction=tenant.burst_fraction,
        )

    def device_jobs(self, device_index: int, num_sectors: int) -> list[JobSpec]:
        """The per-tenant open-loop jobs device *device_index* runs.

        Tenants get contiguous private LBA regions sized by ``share``;
        every job seed comes from :meth:`tenant_seed`, so the jobs are
        a pure function of (spec, device index, device capacity).
        Trace tenants have no ``JobSpec`` form — mixes containing them
        go through :meth:`device_sources`.
        """
        jobs: list[JobSpec] = []
        for tenant, start, length in self.tenant_regions(num_sectors):
            if tenant.trace is not None:
                raise ValueError(
                    f"tenant {tenant.name!r} replays a trace; build this "
                    f"device's workload with device_sources()")
            jobs.append(self._tenant_job(tenant, device_index, start, length))
        return jobs

    def device_sources(self, device_index: int, num_sectors: int):
        """The per-tenant request sources device *device_index* runs.

        The unified form of :meth:`device_jobs`: synthetic tenants wrap
        into :class:`~repro.workloads.source.JobSource` (byte-identical
        request streams), trace tenants become
        :class:`~repro.workloads.source.TraceSource` replays relocated
        into their share region.  Trace contents are identical across
        devices — determinism rests on the trace file plus the spec.
        """
        from repro.workloads.source import JobSource, TraceSource
        from repro.workloads.trace import BlockTrace

        sources = []
        for tenant, start, length in self.tenant_regions(num_sectors):
            if tenant.trace is None:
                sources.append(JobSource(
                    self._tenant_job(tenant, device_index, start, length)))
            else:
                trace = BlockTrace.load(tenant.trace)
                sources.append(TraceSource(
                    trace, name=tenant.name, time_scale=tenant.time_scale,
                    lba_offset=start, lba_modulo=length))
        return sources


# ----------------------------------------------------------------------
# Built-in tenant mixes (the CLI's --mix choices)
# ----------------------------------------------------------------------


def default_tenants(rate_scale: float = 1.0, io_count: int = 150) -> tuple[TenantSpec, ...]:
    """The standard three-tenant mix: a latency-sensitive OLTP tenant,
    a diurnal analytics tenant, and a bursty backup tenant sharing
    every device.

    Rates are calibrated to the ``tiny`` preset's capacity (~550 IOPS
    sustained) so the mix runs at moderate utilization and passes its
    SLOs; crank ``rate_scale`` past ~2 and queueing delay takes over.
    """
    return (
        TenantSpec(
            name="oltp",
            rate_iops=240.0 * rate_scale,
            rw="randwrite",
            bs_sectors=1,
            io_count=io_count,
            arrival="poisson",
            share=1.0,
            slo_p99_us=2_000.0,
            slo_p999_us=8_000.0,
        ),
        TenantSpec(
            name="analytics",
            rate_iops=120.0 * rate_scale,
            rw="randrw",
            bs_sectors=2,
            io_count=io_count,
            arrival="diurnal",
            diurnal_amplitude=0.6,
            diurnal_period_s=0.01,
            read_fraction=0.7,
            share=1.0,
            slo_p99_us=4_000.0,
            slo_p999_us=0.0,
        ),
        TenantSpec(
            name="backup",
            rate_iops=80.0 * rate_scale,
            rw="write",
            bs_sectors=2,
            io_count=io_count,
            arrival="bursty",
            burst_multiplier=12.0,
            burst_len=48,
            burst_fraction=0.08,
            share=1.0,
            slo_p99_us=0.0,
            slo_p999_us=0.0,
        ),
    )


def steady_tenants(rate_scale: float = 1.0, io_count: int = 150) -> tuple[TenantSpec, ...]:
    """Two well-behaved Poisson tenants — the no-noisy-neighbor baseline."""
    return (
        TenantSpec(name="oltp", rate_iops=240.0 * rate_scale,
                   rw="randwrite", io_count=io_count, arrival="poisson",
                   slo_p99_us=2_000.0, slo_p999_us=8_000.0),
        TenantSpec(name="batch", rate_iops=100.0 * rate_scale,
                   rw="randrw", bs_sectors=2, io_count=io_count,
                   arrival="poisson", read_fraction=0.5,
                   slo_p99_us=4_000.0),
    )


def noisy_tenants(rate_scale: float = 1.0, io_count: int = 150) -> tuple[TenantSpec, ...]:
    """The default mix with an aggressive neighbor: heavier bursts at
    4x the multiplier — the mix that should trip SLO verdicts first."""
    quiet = default_tenants(rate_scale, io_count)
    loud = TenantSpec(
        name="backup",
        rate_iops=160.0 * rate_scale,
        rw="write",
        bs_sectors=4,
        io_count=io_count,
        arrival="bursty",
        burst_multiplier=32.0,
        burst_len=96,
        burst_fraction=0.25,
        share=1.0,
    )
    return (quiet[0], quiet[1], loud)


#: named mixes for the CLI.
TENANT_MIXES = {
    "default": default_tenants,
    "steady": steady_tenants,
    "noisy": noisy_tenants,
}
