"""Fleet-level fault campaigns: population chaos as a pure function.

PR 4 made per-device faults reproducible (:class:`~repro.faults.plan.FaultPlan`
frozen schedules); the fleet layer made thousand-device populations
reproducible (per-device seeds derived from ``(fleet seed, index)``).
This module joins them: a :class:`CampaignSpec` describes *population*
failure statistics — an annualized failure rate, a hazard-curve shape,
a per-kind fault mix — and :func:`device_fault_plan` lowers it to each
device's concrete :class:`FaultPlan` as a pure function of
``(fleet seed, campaign, device index)``.

Determinism contract (the load-bearing property, same as tenant seeds):
whether device #617 of a 1000-device campaign dies, when, and how, is
decided by hashing its identity — never by shard layout, worker count,
or execution order.  ``--jobs 8 --shards 4`` and a serial run produce
byte-identical fault schedules, which is what lets campaign results
ride the content-addressed result cache.

Hazard shapes map a uniform draw ``u`` to a life fraction:

* ``constant`` — ``u`` (memoryless, the steady-state bathtub floor);
* ``infant`` — ``u**3`` (mass at the start of life: infant mortality);
* ``wearout`` — ``u**(1/3)`` (mass at end of life: wear-out failures).

The zero-AFR campaign plans nothing for any device, and callers treat
"no specs" as "no injector", so ``--campaign default --afr 0`` runs the
literal fault-free fleet code path byte-for-byte (pinned by
``benchmarks/bench_fleet_chaos.py`` against PR 8's goldens).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.faults.plan import (
    DIE_OFFLINE,
    ERASE_FAIL,
    FAULT_KINDS,
    POWER_CUT,
    PROGRAM_FAIL,
    UNCORRECTABLE_READ,
    FaultPlan,
    FaultSpec,
)
from repro.flash.errors import FailureInjector
from repro.flash.geometry import Geometry
from repro.fleet.spec import FleetSpec, derive_seed
from repro.ssd.config import SsdConfig

#: RNG stream constant for campaign draws — dedicated, so campaign
#: decisions can never perturb workload or fault-plan streams.
CHAOS_STREAM = 0xC7A05

#: hazard-curve shapes: life-fraction exponent applied to a uniform draw.
HAZARD_SHAPES = {"constant": 1.0, "infant": 3.0, "wearout": 1.0 / 3.0}

#: onset cap as a fraction of the run's host ops: a fault armed at 85%
#: of life still has candidate operations left to fire on.
_ONSET_CAP = 0.85


@dataclass(frozen=True)
class CampaignSpec:
    """Population-level fault statistics for one fleet campaign.

    ``afr`` is the annualized failure rate; ``duty_days`` is the slice
    of device life one simulated run represents, so the per-device
    failure probability is ``1 - exp(-afr * duty_days / 365)`` (the
    exponential survival model the Li/Lee/Lui fleet analysis uses).
    ``mix`` weights the fault kind drawn for a failing device;
    ``hazard`` shapes *when* in the run the fault arms.

    ``spare_blocks_min`` is pushed into every device config while a
    campaign is active so retirement storms reach the FTL's read-only
    degraded mode instead of running the spare pool to exhaustion;
    ``retire_margin`` adds extra program/erase firings past the
    degradation threshold so the ladder is crossed decisively.
    """

    name: str = "default"
    afr: float = 0.35
    duty_days: float = 30.0
    hazard: str = "constant"
    mix: tuple[tuple[str, float], ...] = (
        (PROGRAM_FAIL, 0.30),
        (ERASE_FAIL, 0.10),
        (UNCORRECTABLE_READ, 0.25),
        (DIE_OFFLINE, 0.20),
        (POWER_CUT, 0.15),
    )
    spare_blocks_min: int = 4
    retire_margin: int = 2

    def __post_init__(self) -> None:
        if self.afr < 0:
            raise ValueError("afr must be >= 0")
        if self.duty_days <= 0:
            raise ValueError("duty_days must be > 0")
        if self.hazard not in HAZARD_SHAPES:
            known = ", ".join(sorted(HAZARD_SHAPES))
            raise ValueError(f"unknown hazard {self.hazard!r}; known: {known}")
        if not self.mix:
            raise ValueError("campaign needs a non-empty fault mix")
        for kind, weight in self.mix:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in mix")
            if weight < 0:
                raise ValueError(f"negative mix weight for {kind!r}")
        if sum(w for _, w in self.mix) <= 0:
            raise ValueError("fault mix weights sum to zero")
        if self.spare_blocks_min < 1:
            raise ValueError("spare_blocks_min must be >= 1")
        if self.retire_margin < 0:
            raise ValueError("retire_margin must be >= 0")

    @property
    def active(self) -> bool:
        """Does this campaign plan any faults at all?"""
        return self.afr > 0

    def failure_probability(self) -> float:
        """Per-device probability of one fault event in the duty window."""
        return 1.0 - math.exp(-self.afr * self.duty_days / 365.0)


#: The CLI's named campaigns.
CAMPAIGNS = {
    "default": CampaignSpec(name="default"),
    "infant": CampaignSpec(
        name="infant", afr=0.6, hazard="infant",
        # Infant mortality skews to hard, immediate faults.
        mix=(
            (PROGRAM_FAIL, 0.35),
            (DIE_OFFLINE, 0.30),
            (POWER_CUT, 0.20),
            (UNCORRECTABLE_READ, 0.15),
        ),
    ),
    "wearout": CampaignSpec(
        name="wearout", afr=0.5, hazard="wearout",
        # Worn flash fails on program/erase and grows uncorrectable pages.
        mix=(
            (PROGRAM_FAIL, 0.40),
            (ERASE_FAIL, 0.25),
            (UNCORRECTABLE_READ, 0.30),
            (DIE_OFFLINE, 0.05),
        ),
    ),
}


def initial_spare_blocks(config: SsdConfig) -> int:
    """Spare-pool size of a fresh device (mirrors ``Ftl.spare_blocks``
    before any retirement): total blocks minus pSLC-excluded minus the
    logical-capacity footprint."""
    geometry = config.geometry
    sectors_per_block = geometry.sectors_per_page * geometry.pages_per_block
    data_blocks = -(-config.logical_sectors // sectors_per_block)  # ceil
    return (geometry.total_blocks - len(config.pslc_block_ids())
            - data_blocks)


def device_fault_plan(spec: FleetSpec, device_index: int) -> FaultPlan:
    """Lower the fleet's campaign to one device's frozen fault plan.

    Pure function of ``(spec.seed, campaign, device_index)``: three RNG
    draws (fail?, when?, which kind?) plus a die pick come from a
    dedicated ``default_rng([seed, CHAOS_STREAM])`` stream, where
    ``seed`` hashes the device identity.  Devices that survive the duty
    window get the empty plan.
    """
    campaign = spec.campaign
    if campaign is None or not campaign.active:
        return FaultPlan(seed=spec.device_seed(device_index), specs=())
    seed = derive_seed(spec.seed, "chaos", campaign.name, device_index)
    rng = np.random.default_rng([seed, CHAOS_STREAM])
    u_fail, u_when, u_kind = rng.random(3)
    if u_fail >= campaign.failure_probability():
        return FaultPlan(seed=seed, specs=())

    # When in the run the fault arms: hazard-shaped fraction of life.
    total_ops = sum(t.io_count for t in spec.tenants)
    life = u_when ** HAZARD_SHAPES[campaign.hazard]
    at_op = max(1, int(life * _ONSET_CAP * total_ops))

    # Which kind: cumulative-weight draw over the campaign mix.
    weights = [w for _, w in campaign.mix]
    total_weight = sum(weights)
    threshold = u_kind * total_weight
    kind = campaign.mix[-1][0]
    for mix_kind, weight in campaign.mix:
        threshold -= weight
        if threshold < 0:
            kind = mix_kind
            break

    config = spec.device_config()
    if kind == DIE_OFFLINE:
        die = int(rng.integers(0, config.geometry.dies_total))
        spec_ = FaultSpec(DIE_OFFLINE, at_op=at_op, die=die)
    elif kind == POWER_CUT:
        spec_ = FaultSpec(POWER_CUT, at_op=at_op)
    elif kind == UNCORRECTABLE_READ:
        # Media going bad: every read after onset is uncorrectable and
        # pays the retry ladder — a latency fault, not a capacity one.
        spec_ = FaultSpec(UNCORRECTABLE_READ, at_op=at_op, count=0)
    else:
        # program/erase failures retire blocks; bound the firings so the
        # spare pool crosses the read-only threshold without being run
        # all the way to OutOfSpace mid-write.
        spares = initial_spare_blocks(config)
        count = max(1, spares - campaign.spare_blocks_min + 1
                    + campaign.retire_margin)
        spec_ = FaultSpec(kind, at_op=at_op, count=count)
    return FaultPlan(seed=seed, specs=(spec_,))


def campaign_device_plans(spec: FleetSpec) -> dict[int, FaultPlan]:
    """Every device's non-empty fault plan — the campaign's planning-side
    firing log, the ground truth device-level accounting reconciles
    against (``benchmarks/bench_fleet_chaos.py``)."""
    plans: dict[int, FaultPlan] = {}
    for device_index in range(spec.devices):
        plan = device_fault_plan(spec, device_index)
        if plan.specs:
            plans[device_index] = plan
    return plans


class OfflineDieInjector(FailureInjector):
    """Recovery-scan injector modeling dies that stayed dead across the
    reboot: pages on an offline die are permanently unreadable (the
    durability audit's honest model of die loss), while transient
    program/erase/read faults from the live run do not replay."""

    def __init__(self, offline: frozenset[int], geometry: Geometry) -> None:
        super().__init__()
        self._offline = frozenset(offline)
        self._geometry = geometry

    def read_uncorrectable(self, ppn: int, lpn: int = -1) -> bool:
        return self._geometry.die_of_ppn(ppn) in self._offline

    @property
    def offline_dies(self) -> frozenset[int]:
        return self._offline
