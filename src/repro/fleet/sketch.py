"""Mergeable fixed-size quantile sketches for fleet aggregation.

A fleet run produces one latency distribution per (device, tenant).
Concatenating raw per-op samples back across process boundaries costs
O(ops) — gigabytes at thousands of devices — so workers return a
:class:`QuantileSketch` instead: a t-digest-style centroid summary whose
size is bounded by its ``compression`` parameter whatever the op count.
Fleet p99/p99.9/p99.99 and per-tenant SLO accounting are computed by
*merging* sketches, never by concatenating samples.

Design points that matter for the fleet layer's correctness story:

* **Deterministic, order-independent merging.**  :func:`merge_sketches`
  is a *flat* operation: it gathers every centroid from every input,
  sorts them by ``(mean, weight)``, and compresses once.  Any
  permutation of the same inputs therefore produces a byte-identical
  result — which is what lets ``--shards 1`` and ``--shards 8`` (and
  ``--jobs 1`` vs ``--jobs 4``) yield identical fleet SLO output.
  Pairwise ``a.merge(b)`` is defined in terms of the flat merge, so it
  is commutative; chains of pairwise merges are *not* guaranteed
  byte-stable across regroupings, which is why the fleet aggregator
  only ever calls the flat form.

* **Documented error bound.**  Compression uses the t-digest ``k1``
  (arcsine) scale function, which caps each centroid's quantile span
  near *q* at about ``2*pi*sqrt(q*(1-q)) / compression``; interpolated
  quantile estimates therefore carry an absolute *rank* error of at
  most ``rank_error_bound(q, compression) = RANK_ERROR_FACTOR *
  max(sqrt(q*(1-q)), 1/compression) / compression`` of the population
  — tightest near the tails, which is where SLO verdicts live.  The
  bound includes one additional level of merging (sketch-of-sketches),
  the only shape the fleet layer produces, and is enforced by a
  hypothesis property test.

* **Exact extremes.**  ``min``/``max``/``count``/``sum`` are tracked
  exactly, so ``quantile(0.0)``/``quantile(1.0)`` and the mean are not
  estimates.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

#: default sketch size parameter (the t-digest δ): centroid count stays
#: O(compression) whatever the op count.
DEFAULT_COMPRESSION = 128

#: buffered raw values before an automatic compaction pass.
_BUFFER_LIMIT = 512

#: slack factor in the documented rank-error bound (see module doc):
#: pi for the interpolation half-centroid error, x2 for one level of
#: sketch-of-sketches merging, the rest margin.
RANK_ERROR_FACTOR = 8.0


def rank_error_bound(q: float, compression: int) -> float:
    """Documented absolute rank-error bound at quantile *q* (fraction
    of the population, e.g. 0.004 means +/- 0.4% of ranks)."""
    spread = max(math.sqrt(q * (1.0 - q)), 1.0 / compression)
    return RANK_ERROR_FACTOR * spread / compression


class QuantileSketch:
    """Fixed-size mergeable summary of a nonnegative sample stream.

    ``add``/``extend`` buffer raw values and compact in batches; after
    :meth:`compact` the centroid list stays within about
    ``compression`` entries (the classic merging-digest bound), so the
    pickled payload size is O(compression) whatever the op count.
    """

    __slots__ = ("compression", "count", "total", "minimum", "maximum",
                 "_means", "_weights", "_buffer")

    def __init__(self, compression: int = DEFAULT_COMPRESSION) -> None:
        if compression < 8:
            raise ValueError(f"compression must be >= 8, got {compression}")
        self.compression = int(compression)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self._means = np.empty(0, dtype=np.float64)
        self._weights = np.empty(0, dtype=np.float64)
        self._buffer: list[float] = []

    # -- ingestion ------------------------------------------------------

    def add(self, value: float) -> None:
        """Add one observation."""
        self._buffer.append(float(value))
        if len(self._buffer) >= _BUFFER_LIMIT:
            self.compact()

    def extend(self, values: Iterable[float]) -> None:
        """Add a batch of observations (the per-device ingest path)."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray)
                         else values, dtype=np.float64)
        if arr.size == 0:
            return
        self._buffer.extend(arr.tolist())
        if len(self._buffer) >= _BUFFER_LIMIT:
            self.compact()

    def compact(self) -> "QuantileSketch":
        """Fold buffered values into the centroid list (idempotent).

        Called automatically before queries, merges, and by the shard
        worker before returning a payload, so transported sketches are
        always at their O(compression) floor.
        """
        if not self._buffer:
            return self
        fresh = np.asarray(self._buffer, dtype=np.float64)
        self._buffer = []
        self.count += fresh.size
        self.total += float(fresh.sum())
        self.minimum = min(self.minimum, float(fresh.min()))
        self.maximum = max(self.maximum, float(fresh.max()))
        means = np.concatenate([self._means, fresh])
        weights = np.concatenate([self._weights, np.ones(fresh.size)])
        self._means, self._weights = _compress(means, weights, self.compression)
        return self

    # -- properties -----------------------------------------------------

    @property
    def mean(self) -> float:
        self.compact()
        return self.total / self.count if self.count else 0.0

    @property
    def centroids(self) -> tuple[np.ndarray, np.ndarray]:
        """(means, weights) after compaction — the transport payload."""
        self.compact()
        return self._means, self._weights

    def __len__(self) -> int:
        return self.count + len(self._buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        self.compact()
        return (f"QuantileSketch(n={self.count}, centroids={self._means.size},"
                f" compression={self.compression})")

    # -- queries --------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (q in [0, 1]); 0.0 when empty.

        Piecewise-linear interpolation between centroid means, with the
        tracked exact extremes as endpoints — the standard t-digest
        estimator.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        self.compact()
        if self.count == 0:
            return 0.0
        means, weights = self._means, self._weights
        if means.size == 1:
            return float(means[0])
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        target = q * self.count
        # Centroid i covers ranks centered at cum[i] (weight before it
        # plus half its own); interpolate between those anchor points,
        # and between the extremes and the terminal centroids.
        anchors = np.cumsum(weights) - weights / 2.0
        if target <= anchors[0]:
            span = max(anchors[0], 1e-12)
            return self.minimum + (float(means[0]) - self.minimum) * (target / span)
        if target >= anchors[-1]:
            span = max(self.count - anchors[-1], 1e-12)
            frac = (target - anchors[-1]) / span
            return float(means[-1]) + (self.maximum - float(means[-1])) * frac
        hi = int(np.searchsorted(anchors, target))
        lo = hi - 1
        span = max(anchors[hi] - anchors[lo], 1e-12)
        frac = (target - anchors[lo]) / span
        return float(means[lo] + (means[hi] - means[lo]) * frac)

    def quantiles(self, qs: Sequence[float]) -> list[float]:
        return [self.quantile(q) for q in qs]

    # -- merging --------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """New sketch summarizing both inputs (commutative; see
        :func:`merge_sketches` for the n-way order-independent form)."""
        return merge_sketches([self, other])


def merge_sketches(sketches: Sequence[QuantileSketch],
                   compression: int | None = None) -> QuantileSketch:
    """Flat, order-independent merge of any number of sketches.

    All centroids from all inputs are gathered, sorted by
    ``(mean, weight)``, and compressed in a single deterministic pass —
    so the result is byte-identical for any permutation *and any
    grouping* of the same inputs.  This is the only merge the fleet
    aggregator uses, which is what makes shard count and worker count
    invisible in fleet-level output.
    """
    sketches = [s for s in sketches if s is not None]
    if not sketches:
        return QuantileSketch()
    if compression is None:
        compression = max(s.compression for s in sketches)
    out = QuantileSketch(compression)
    parts_m = []
    parts_w = []
    totals = []
    for sketch in sketches:
        means, weights = sketch.centroids
        if means.size == 0:
            continue
        parts_m.append(means)
        parts_w.append(weights)
        totals.append(sketch.total)
        out.count += sketch.count
        out.minimum = min(out.minimum, sketch.minimum)
        out.maximum = max(out.maximum, sketch.maximum)
    if not parts_m:
        return out
    # fsum: exactly-rounded total, so summation order (and therefore
    # input permutation) cannot perturb the merged mean's last bit.
    out.total = math.fsum(totals)
    means = np.concatenate(parts_m)
    weights = np.concatenate(parts_w)
    out._means, out._weights = _compress(means, weights, compression)
    return out


def sketch_of(values: Iterable[float],
              compression: int = DEFAULT_COMPRESSION) -> QuantileSketch:
    """Convenience: a compacted sketch of *values*."""
    sketch = QuantileSketch(compression)
    sketch.extend(values)
    return sketch.compact()


def _k1(q: float, norm: float) -> float:
    """The t-digest ``k1`` scale function: ``norm * asin(2q - 1)``."""
    return norm * math.asin(max(-1.0, min(1.0, 2.0 * q - 1.0)))


def _compress(means: np.ndarray, weights: np.ndarray,
              compression: int) -> tuple[np.ndarray, np.ndarray]:
    """One deterministic merge pass over unsorted centroids.

    Sorts by ``(mean, weight)`` — a total order, so equal centroids
    from different inputs always arrive in the same sequence — then
    greedily folds neighbors while the running centroid spans at most
    one unit of the ``k1`` scale (Dunning's merging digest).  The pass
    is a pure function of the sorted centroid multiset, which is what
    makes :func:`merge_sketches` order-independent.
    """
    order = np.lexsort((weights, means))
    means = means[order]
    weights = weights[order]
    total = float(weights.sum())
    norm = compression / (2.0 * math.pi)
    out_m = np.empty(means.size, dtype=np.float64)
    out_w = np.empty(means.size, dtype=np.float64)
    n_out = 0
    cur_m = float(means[0])
    cur_w = float(weights[0])
    before = 0.0  # total weight already emitted
    k_left = _k1(0.0, norm)
    for i in range(1, means.size):
        m = float(means[i])
        w = float(weights[i])
        if _k1((before + cur_w + w) / total, norm) - k_left <= 1.0:
            cur_w += w
            cur_m += (m - cur_m) * (w / cur_w)
        else:
            out_m[n_out] = cur_m
            out_w[n_out] = cur_w
            n_out += 1
            before += cur_w
            k_left = _k1(before / total, norm)
            cur_m, cur_w = m, w
    out_m[n_out] = cur_m
    out_w[n_out] = cur_w
    n_out += 1
    return out_m[:n_out].copy(), out_w[:n_out].copy()
