"""Fleet-level aggregation: merged sketches, SLO verdicts, forecasts.

Workers return O(centroids) payloads per (device, tenant); everything
fleet-level is computed here by *merging sketches*, never by
concatenating samples.  All merges go through the flat, order-
independent :func:`~repro.fleet.sketch.merge_sketches` in device-index
order, so the aggregate is byte-identical whatever the shard plan or
worker count that produced the inputs.

Three families of output:

* **per-tenant SLO verdicts** — the merged cross-device latency
  distribution of each tenant against its declared p99/p99.9
  thresholds (plus fleet p99.99 for the curious: merging makes the
  extreme quantiles cheap, which per-device percentile lists never
  could);
* **fleet WAF** — total flash programs over total host programs,
  summed exactly across devices (not a mean of per-device ratios,
  which would weight idle devices equally with loaded ones);
* **capacity/wear forecasting** — erase consumption per device-day at
  the observed rate extrapolated against the configured erase budget,
  and aggregate host throughput, the two numbers an operator sizes a
  fleet with;
* **chaos verdicts** (PR 9) — under a fault campaign, an availability
  fraction (device-seconds serving I/O over the fleet observation
  window), a durability verdict (acknowledged-flushed sectors the
  per-device recovery audit could not bring back), and a
  healthy-vs-faulted split of the latency distribution, so campaign
  impact on the tail is visible next to the clean baseline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.fleet.shard import DeviceResult, FailedDevice
from repro.fleet.sketch import QuantileSketch, merge_sketches
from repro.fleet.spec import FleetSpec

#: quantiles every verdict reports, tail-first order for the table.
REPORT_QUANTILES = (0.50, 0.99, 0.999, 0.9999)

_NS_PER_DAY = 86_400 * 1_000_000_000


@dataclass(frozen=True)
class TenantVerdict:
    """One tenant's fleet-level outcome against its SLO."""

    tenant: str
    devices: int
    requests: int
    p50_us: float
    p99_us: float
    p999_us: float
    p9999_us: float
    slo_p99_us: float
    slo_p999_us: float

    @property
    def p99_ok(self) -> bool:
        return self.slo_p99_us <= 0 or self.p99_us <= self.slo_p99_us

    @property
    def p999_ok(self) -> bool:
        return self.slo_p999_us <= 0 or self.p999_us <= self.slo_p999_us

    @property
    def ok(self) -> bool:
        return self.p99_ok and self.p999_ok

    def row(self) -> list:
        def slo(limit: float, ok: bool) -> str:
            if limit <= 0:
                return "-"
            return f"{limit:.0f} {'ok' if ok else 'VIOLATED'}"

        return [
            self.tenant, self.devices, self.requests,
            round(self.p50_us, 1), round(self.p99_us, 1),
            round(self.p999_us, 1), round(self.p9999_us, 1),
            slo(self.slo_p99_us, self.p99_ok),
            slo(self.slo_p999_us, self.p999_ok),
        ]


@dataclass(frozen=True)
class FleetReport:
    """The merged outcome of a whole fleet run."""

    spec: FleetSpec
    devices: int
    requests: int
    verdicts: tuple[TenantVerdict, ...]
    #: merged all-tenant sketch (the "fleet" distribution).
    fleet_sketch: QuantileSketch
    #: exact fleet WAF: sum(flash programs) / sum(host programs).
    waf: float
    #: erases consumed per device per simulated day at the observed rate.
    erases_per_device_day: float
    #: forecast days until the erase budget is exhausted (inf if idle).
    forecast_wearout_days: float
    #: aggregate host write throughput over simulated time, MiB/s.
    host_mib_per_s: float
    #: fraction of device-seconds that served I/O over the fleet
    #: observation window (1.0 on a fault-free run).
    availability: float = 1.0
    #: acknowledged-flushed sectors lost across the fleet (durability).
    sectors_lost: int = 0
    #: requests that failed on degraded devices (fleet total).
    failed_requests: int = 0
    #: devices that entered a degraded mode / that any fault touched.
    devices_degraded: int = 0
    devices_faulted: int = 0
    #: campaign firing totals by fault kind, name-sorted.
    events_by_kind: tuple[tuple[str, int], ...] = ()
    #: devices whose simulation crashed outright (``--keep-going``).
    failed_devices: tuple[FailedDevice, ...] = ()
    #: latency split: devices the campaign never touched vs the rest
    #: (``None`` when a side is empty).
    healthy_sketch: QuantileSketch | None = None
    faulted_sketch: QuantileSketch | None = None

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def violations(self) -> list[str]:
        return [v.tenant for v in self.verdicts if not v.ok]

    @property
    def durability_ok(self) -> bool:
        """No acknowledged data lost and no device unaccounted for."""
        return self.sectors_lost == 0 and not self.failed_devices

    def slo_table(self) -> tuple[list[str], list[list]]:
        headers = ["tenant", "devices", "requests", "p50 (us)", "p99 (us)",
                   "p99.9 (us)", "p99.99 (us)", "SLO p99", "SLO p99.9"]
        rows = [v.row() for v in self.verdicts]
        rows.append([
            "fleet", self.devices, self.requests,
            round(self.fleet_sketch.quantile(0.50), 1),
            round(self.fleet_sketch.quantile(0.99), 1),
            round(self.fleet_sketch.quantile(0.999), 1),
            round(self.fleet_sketch.quantile(0.9999), 1),
            "-", "-",
        ])
        return headers, rows

    def summary_rows(self) -> list[list]:
        rows = [
            ["devices", self.devices],
            ["requests", self.requests],
            ["fleet WAF", round(self.waf, 3)],
            ["host MiB/s (simulated)", round(self.host_mib_per_s, 1)],
            ["erases / device-day", round(self.erases_per_device_day, 1)],
            ["forecast wear-out (days)", round(self.forecast_wearout_days, 1)],
            ["SLO verdict", "PASS" if self.ok else
             "FAIL: " + ", ".join(self.violations)],
        ]
        campaign = self.spec.campaign
        if campaign is not None and campaign.active:
            events = ", ".join(f"{kind}={count}"
                               for kind, count in self.events_by_kind) or "none"
            rows += [
                ["campaign", f"{campaign.name} (AFR {campaign.afr:g})"],
                ["availability", round(self.availability, 6)],
                ["devices faulted / degraded / crashed",
                 f"{self.devices_faulted} / {self.devices_degraded} / "
                 f"{len(self.failed_devices)}"],
                ["fault firings", events],
                ["failed requests", self.failed_requests],
                ["sectors lost (acked)", self.sectors_lost],
                ["durability verdict",
                 "PASS" if self.durability_ok else "FAIL"],
            ]
        return rows

    def chaos_table(self) -> tuple[list[str], list[list]]:
        """Healthy-vs-faulted latency split (campaign runs only)."""
        headers = ["cohort", "devices", "p50 (us)", "p99 (us)",
                   "p99.9 (us)", "p99.99 (us)"]
        rows = []
        healthy = self.devices - self.devices_faulted - len(self.failed_devices)
        for name, count, sketch in (
            ("healthy", healthy, self.healthy_sketch),
            ("faulted", self.devices_faulted, self.faulted_sketch),
        ):
            if sketch is None:
                rows.append([name, count, "-", "-", "-", "-"])
                continue
            p50, p99, p999, p9999 = sketch.quantiles(REPORT_QUANTILES)
            rows.append([name, count, round(float(p50), 1),
                         round(float(p99), 1), round(float(p999), 1),
                         round(float(p9999), 1)])
        return headers, rows


def aggregate_fleet(
    spec: FleetSpec,
    devices: list[DeviceResult | FailedDevice],
) -> FleetReport:
    """Merge per-device results into a :class:`FleetReport`.

    *devices* must be in device-index order (as
    :func:`~repro.fleet.shard.run_fleet_devices` returns them); every
    sketch merge is flat over that order, which pins byte-identity
    across shard plans.  :class:`FailedDevice` entries (from
    ``--keep-going``) are folded into the availability and durability
    verdicts, not into the latency/WAF aggregates.
    """
    failed = tuple(d for d in devices if isinstance(d, FailedDevice))
    devices = [d for d in devices if isinstance(d, DeviceResult)]
    if not devices:
        raise ValueError("no device results to aggregate"
                         + (f" ({len(failed)} devices failed)" if failed else ""))
    tenant_order = [t.name for t in spec.tenants]
    by_tenant: dict[str, list] = {name: [] for name in tenant_order}
    for device in devices:
        for tslice in device.tenants:
            by_tenant[tslice.tenant].append(tslice)

    verdicts = []
    all_sketches = []
    total_requests = 0
    for tenant in spec.tenants:
        slices = by_tenant[tenant.name]
        sketches = [s.sketch for s in slices]
        all_sketches.extend(sketches)
        merged = merge_sketches(sketches, compression=spec.compression)
        requests = sum(s.requests for s in slices)
        total_requests += requests
        p50, p99, p999, p9999 = merged.quantiles(REPORT_QUANTILES)
        verdicts.append(TenantVerdict(
            tenant=tenant.name,
            devices=len(slices),
            requests=requests,
            p50_us=p50, p99_us=p99, p999_us=p999, p9999_us=p9999,
            slo_p99_us=tenant.slo_p99_us,
            slo_p999_us=tenant.slo_p999_us,
        ))

    fleet_sketch = merge_sketches(all_sketches, compression=spec.compression)

    host_pages = sum(d.host_program_pages for d in devices)
    flash_pages = sum(d.ftl_program_pages for d in devices)
    waf = (flash_pages / host_pages) if host_pages else 0.0

    config = spec.device_config()
    sector_bytes = config.geometry.sector_size
    total_elapsed_ns = sum(d.elapsed_ns for d in devices)
    host_bytes = sum(d.host_sectors_written for d in devices) * sector_bytes
    host_mib_per_s = 0.0
    erases_per_device_day = 0.0
    forecast_days = float("inf")
    if total_elapsed_ns > 0:
        # Rates are per simulated device-second: each device ran its own
        # timeline, so elapsed times add across the fleet.
        host_mib_per_s = (host_bytes / 2**20) / (total_elapsed_ns / 1e9) \
            * len(devices)
        total_erases = sum(d.erase_count for d in devices)
        erases_per_device_day = total_erases / (total_elapsed_ns / _NS_PER_DAY)
        budget = config.erase_limit * config.geometry.total_blocks
        if erases_per_device_day > 0:
            forecast_days = budget / erases_per_device_day

    chaos = _chaos_accounting(spec, devices, failed)

    return FleetReport(
        spec=spec,
        devices=len(devices) + len(failed),
        requests=total_requests,
        verdicts=tuple(verdicts),
        fleet_sketch=fleet_sketch,
        waf=waf,
        erases_per_device_day=erases_per_device_day,
        forecast_wearout_days=forecast_days,
        host_mib_per_s=host_mib_per_s,
        failed_devices=failed,
        **chaos,
    )


def _chaos_accounting(spec: FleetSpec, devices: list[DeviceResult],
                      failed: tuple[FailedDevice, ...]) -> dict:
    """Availability, durability, and healthy/faulted sketch splits.

    The availability window is the longest per-device timeline in the
    run (each device runs its own clock): a device counts as *serving*
    from 0 until it degraded (or the full window if it never did), and
    a crashed device serves nothing.  Pure accounting over device
    results, so it inherits their shard-plan independence.

    Fault-free runs (no campaign, or AFR 0, and nothing crashed) skip
    the extra sketch merges entirely and keep the report's defaults —
    part of the zero-AFR identity guarantee.
    """
    campaign = spec.campaign
    active = campaign is not None and campaign.active
    if not active and not failed:
        return {}

    window_ns = max((d.elapsed_ns for d in devices), default=0)
    population = len(devices) + len(failed)
    serving = 0
    for device in devices:
        if device.degraded and device.degraded_at_ns >= 0:
            serving += min(max(device.degraded_at_ns, 0), window_ns)
        else:
            serving += window_ns
    availability = 1.0
    if window_ns > 0 and population > 0:
        availability = serving / (window_ns * population)

    events = Counter()
    for device in devices:
        events.update(kind for kind, _, _ in device.fault_events)

    healthy = [s.sketch for d in devices if not d.faulted for s in d.tenants]
    faulted = [s.sketch for d in devices if d.faulted for s in d.tenants]
    return {
        "availability": availability,
        "sectors_lost": sum(d.sectors_lost for d in devices),
        "failed_requests": sum(d.failed_requests for d in devices),
        "devices_degraded": sum(1 for d in devices if d.degraded),
        "devices_faulted": sum(1 for d in devices if d.faulted),
        "events_by_kind": tuple(sorted(events.items())),
        "healthy_sketch": merge_sketches(healthy, compression=spec.compression)
        if healthy else None,
        "faulted_sketch": merge_sketches(faulted, compression=spec.compression)
        if faulted else None,
    }
