"""Counter-mode SSD: the block device a host program sees.

:class:`SimulatedSSD` wraps an :class:`~repro.ssd.ftl.Ftl` behind a
byte-addressed block-device interface and maintains the SMART statistics a
black-box observer can read — nothing else about the device is visible
through this class, which is the point: the transparency experiments in
:mod:`repro.core` must work from this surface (plus, for the RE studies,
the probe/JTAG substrates).

For latency experiments use :class:`repro.ssd.timed.TimedSSD`, which runs
the same FTL under a discrete-event clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.errors import FailureInjector
from repro.obs.events import HostRequest
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import Ftl
from repro.ssd.ops import FlashOp
from repro.ssd.smart import SmartCounters


@dataclass
class DeviceInfo:
    """What an INQUIRY/IDENTIFY-style query would return."""

    model: str
    capacity_bytes: int
    sector_size: int


class SimulatedSSD:
    """A simulated drive with a sector-addressed host interface."""

    def __init__(
        self,
        config: SsdConfig,
        model: str = "repro-ssd",
        injector: FailureInjector | None = None,
    ) -> None:
        self.config = config
        self.model = model
        self.ftl = Ftl(config, injector=injector)
        self.smart = SmartCounters()
        self.obs: TraceSink = NULL_SINK

    def attach_sink(self, sink: TraceSink) -> None:
        """Route trace events from the device and its FTL stack to
        *sink* (pass :data:`~repro.obs.sinks.NULL_SINK` to detach)."""
        self.obs = sink
        self.ftl.attach_sink(sink)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    @property
    def sector_size(self) -> int:
        return self.config.geometry.sector_size

    @property
    def num_sectors(self) -> int:
        return self.ftl.num_lpns

    @property
    def capacity_bytes(self) -> int:
        return self.num_sectors * self.sector_size

    def identify(self) -> DeviceInfo:
        return DeviceInfo(self.model, self.capacity_bytes, self.sector_size)

    # ------------------------------------------------------------------
    # Host commands (sector granularity)
    # ------------------------------------------------------------------

    def write_sectors(self, lba: int, count: int = 1) -> list[FlashOp]:
        """Write *count* sectors at *lba*; returns the flash ops incurred."""
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="write", lba=lba, nsectors=count))
        ops = self.ftl.write(lba, count)
        self.smart.host_sectors_written += count
        self._record(ops)
        return ops

    def read_sectors(self, lba: int, count: int = 1) -> list[FlashOp]:
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="read", lba=lba, nsectors=count))
        ops = self.ftl.read(lba, count)
        self.smart.host_sectors_read += count
        self._record(ops)
        return ops

    def trim_sectors(self, lba: int, count: int = 1) -> list[FlashOp]:
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="trim", lba=lba, nsectors=count))
        ops = self.ftl.trim(lba, count)
        self._record(ops)
        return ops

    def flush(self) -> list[FlashOp]:
        """FLUSH CACHE: everything pending reaches flash."""
        ops = self.ftl.flush()
        self._record(ops)
        return ops

    def shutdown(self) -> list[FlashOp]:
        """Clean power-down: flush data, checkpoint the map."""
        ops = self.flush()
        ops2 = self.ftl.checkpoint()
        self._record(ops2)
        return ops + ops2

    def idle(self, max_blocks: int = 8) -> list[FlashOp]:
        """A host-idle period: the FTL runs background maintenance
        (idle GC, wear leveling, refresh) invisible to the host."""
        ops = self.ftl.idle_maintenance(max_blocks)
        self._record(ops)
        return ops

    # ------------------------------------------------------------------
    # The black-box observation surface
    # ------------------------------------------------------------------

    def smart_snapshot(self) -> SmartCounters:
        """What ``smartctl -A`` would report right now."""
        self._sync_derived_attributes()
        return self.smart.snapshot()

    def smart_render(self) -> str:
        self._sync_derived_attributes()
        return self.smart.render()

    def _sync_derived_attributes(self) -> None:
        """Derive the firmware-computed attributes from FTL state."""
        mean_erases = float(self.ftl.nand.block_erase_count.mean())
        remaining = 100 - int(100 * mean_erases / self.ftl.nand.erase_limit)
        self.smart.percent_lifetime_remaining = max(0, min(100, remaining))
        self.smart.reported_uncorrectable = self.ftl.stats.uncorrectable_reads

    def _record(self, ops: list[FlashOp]) -> None:
        for op in ops:
            self.smart.record(op)
