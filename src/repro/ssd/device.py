"""Counter-mode SSD: the block device a host program sees.

:class:`SimulatedSSD` wraps an :class:`~repro.ssd.ftl.Ftl` behind the
:class:`~repro.ssd.host.HostDevice` surface and maintains the SMART
statistics a black-box observer can read — nothing else about the device
is visible through this class, which is the point: the transparency
experiments in :mod:`repro.core` must work from this surface (plus, for
the RE studies, the probe/JTAG substrates).

For latency experiments use :class:`repro.ssd.timed.TimedSSD`, which runs
the same FTL under the :mod:`repro.sim` discrete-event clock and presents
the same host interface.
"""

from __future__ import annotations

from repro.flash.errors import FailureInjector
from repro.obs.events import HostRequest
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import Ftl
from repro.ssd.host import DeviceInfo, HostDeviceBase
from repro.ssd.ops import FlashOp
from repro.ssd.smart import SmartCounters

__all__ = ["DeviceInfo", "SimulatedSSD"]


class SimulatedSSD(HostDeviceBase):
    """A simulated drive with a sector-addressed host interface."""

    def __init__(
        self,
        config: SsdConfig,
        model: str = "repro-ssd",
        injector: FailureInjector | None = None,
    ) -> None:
        self.config = config
        self.model = model
        self.ftl = Ftl(config, injector=injector)
        self.smart = SmartCounters()
        self.obs: TraceSink = NULL_SINK

    # ------------------------------------------------------------------
    # Host commands (sector granularity)
    # ------------------------------------------------------------------

    def write_sectors(self, lba: int, count: int = 1) -> list[FlashOp]:
        """Write *count* sectors at *lba*; returns the flash ops incurred."""
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="write", lba=lba, nsectors=count))
        ops = self.ftl.write(lba, count)
        self.smart.host_sectors_written += count
        self._record(ops)
        return ops

    def read_sectors(self, lba: int, count: int = 1) -> list[FlashOp]:
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="read", lba=lba, nsectors=count))
        ops = self.ftl.read(lba, count)
        self.smart.host_sectors_read += count
        self._record(ops)
        return ops

    def trim_sectors(self, lba: int, count: int = 1) -> list[FlashOp]:
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="trim", lba=lba, nsectors=count))
        ops = self.ftl.trim(lba, count)
        self._record(ops)
        return ops

    def flush(self) -> list[FlashOp]:
        """FLUSH CACHE: everything pending reaches flash."""
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="flush", lba=0, nsectors=0))
        ops = self.ftl.flush()
        self._record(ops)
        return ops

    def shutdown(self) -> list[FlashOp]:
        """Clean power-down: flush data, checkpoint the map."""
        ops = self.flush()
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="shutdown", lba=0, nsectors=0))
        ops2 = self.ftl.checkpoint()
        self._record(ops2)
        return ops + ops2

    def idle(self, max_blocks: int = 8) -> list[FlashOp]:
        """A host-idle period: the FTL runs background maintenance
        (idle GC, wear leveling, refresh) invisible to the host."""
        ops = self.ftl.idle_maintenance(max_blocks)
        self._record(ops)
        return ops
