"""SSD simulator: FTL, device façade, SMART, compression, timing."""

from repro.ssd.config import SsdConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import Ftl
from repro.ssd.ops import FlashOp, OpKind, OpReason
from repro.ssd.smart import SmartCounters

__all__ = [
    "SsdConfig",
    "SimulatedSSD",
    "Ftl",
    "FlashOp",
    "OpKind",
    "OpReason",
    "SmartCounters",
]

from repro.ssd.openchannel import HostFtl, OpenChannelSSD  # noqa: E402
from repro.ssd.recovery import RecoveryReport, recover_ftl  # noqa: E402

__all__ += [
    "OpenChannelSSD",
    "HostFtl",
    "recover_ftl",
    "RecoveryReport",
]
