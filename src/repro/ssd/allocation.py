"""Page allocation: where the next physical page comes from.

Tavakkol et al. (TOPMECS '16) showed that the *order* in which an FTL
spreads consecutive writes over its parallelism dimensions — Channel, Way
(chip), Die, Plane — changes performance substantially; the paper varies
CWDP vs. PDWC as one of its three "basic design features" in the Fig 3
experiment.

The ordering itself (and optional stream separation) is a pluggable
policy from :mod:`repro.ssd.policy.allocation`; this module owns block
lifecycle: per-plane free-block pools, one active (partially-written)
block per ``(plane, stream)``, bad-block retirement, and handing erased
blocks back.  Write *streams* keep host data, GC migrations, and mapping
metadata in separate active blocks, as real FTLs do to avoid mixing
lifetimes; stream-separating policies can add streams of their own
(e.g. ``hotcold``'s ``cold`` stream).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.ssd.policy.allocation import allocation_policies
from repro.ssd.policy.base import AllocationPolicy

#: Builtin open-block streams (policies may add more via extra_streams).
STREAMS = ("host", "gc", "meta")


class OutOfSpace(Exception):
    """No free block exists anywhere — the FTL failed to GC in time."""


@dataclass
class _ActiveBlock:
    block_index: int
    next_page: int


def _resolve_policy(scheme: str | AllocationPolicy) -> AllocationPolicy:
    if not isinstance(scheme, str):
        return scheme
    if scheme in allocation_policies:
        return allocation_policies.resolve(scheme)()
    if scheme.upper() in allocation_policies:
        return allocation_policies.resolve(scheme.upper())()
    # Unknown either way: raise the registry's listing error.
    return allocation_policies.resolve(scheme)()


class PageAllocator:
    """Hands out physical pages according to an allocation policy.

    Parameters
    ----------
    geometry, nand:
        The flash being allocated over.
    scheme:
        A registered policy name — a dimension permutation such as
        ``"CWDP"``/``"PDWC"`` or a named policy like ``"hotcold"`` — or
        an :class:`~repro.ssd.policy.base.AllocationPolicy` object.
    excluded_blocks:
        Blocks owned by someone else (e.g. the pSLC buffer) — never
        allocated here.
    """

    def __init__(
        self,
        geometry: Geometry,
        nand: NandArray,
        scheme: str | AllocationPolicy = "CWDP",
        excluded_blocks: frozenset[int] = frozenset(),
    ) -> None:
        self.geometry = geometry
        self.nand = nand
        self.policy = _resolve_policy(scheme)
        self.policy.bind(geometry)
        self.scheme = self.policy.name
        self.streams: tuple[str, ...] = STREAMS + tuple(self.policy.extra_streams)
        # Bound once: the hot allocation path calls the policy's method
        # directly, with no per-allocation dispatch.
        self.plane_for_index = self.policy.plane_for_index
        self.route = self.policy.route
        self.excluded_blocks = excluded_blocks

        self._ppb = geometry.pages_per_block
        planes = self._planes = geometry.planes_total
        self._free_blocks: list[list[int]] = [[] for _ in range(planes)]
        for block_index in range(geometry.total_blocks):
            if block_index in excluded_blocks:
                continue
            self._free_blocks[self._plane_of_block(block_index)].append(block_index)
        for pool in self._free_blocks:
            pool.reverse()  # pop() yields lowest block index first

        self._active: dict[tuple[int, str], _ActiveBlock] = {}
        self._stream_counters: dict[str, int] = {s: 0 for s in self.streams}
        self._retired: set[int] = set()
        #: monotonically increasing allocation stamp per block (for FIFO GC).
        self.block_alloc_seq: dict[int, int] = {}
        self._alloc_seq = 0
        #: per-plane sealed-block index: fully-written, non-active,
        #: non-retired blocks — exactly the GC candidate pool.  Kept
        #: incrementally on block state changes so victim selection is
        #: O(candidates), not a full plane scan per GC invocation.
        self._sealed: list[set[int]] = [set() for _ in range(planes)]
        #: GC low watermark registered via :meth:`set_gc_watermark`
        #: (-1 = none).  ``_low_planes`` counts planes whose free pool is
        #: at or below it, so the FTL's free-space check is O(1) instead
        #: of a per-program scan over every plane.
        self._gc_low_water = -1
        self._low_planes = 0

    def _plane_of_block(self, block_index: int) -> int:
        return block_index // self.geometry.blocks_per_plane

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate_page(self, stream: str = "host") -> int:
        """Return the PPN of the next page for *stream*.

        Follows the policy's plane ordering; if the target plane is
        exhausted the allocator falls over to the next plane with
        space, so allocation only fails when the whole device is full.
        """
        if stream not in self._stream_counters:
            raise ValueError(f"unknown stream {stream!r}")
        index = self._stream_counters[stream]
        self._stream_counters[stream] = index + 1
        planes = self._planes
        target = self.plane_for_index(index)
        for offset in range(planes):
            plane = (target + offset) % planes
            ppn = self._page_in_plane(plane, stream)
            if ppn is not None:
                return ppn
        raise OutOfSpace("no free pages in any plane")

    def _page_in_plane(self, plane: int, stream: str) -> int | None:
        key = (plane, stream)
        active = self._active.get(key)
        if active is None or active.next_page >= self._ppb:
            block = self._pop_free_block(plane)
            if block is None:
                return None
            if active is not None:
                # The outgoing active block is fully written: it joins
                # the GC candidate pool the moment it stops being active.
                self._sealed[plane].add(active.block_index)
            active = _ActiveBlock(block, 0)
            self._active[key] = active
        ppn = active.block_index * self._ppb + active.next_page
        active.next_page += 1
        return ppn

    def _pop_free_block(self, plane: int) -> int | None:
        pool = self._free_blocks[plane]
        low = self._gc_low_water
        while pool:
            block = pool.pop()
            if len(pool) == low:
                self._low_planes += 1
            if block in self._retired:
                continue
            self._alloc_seq += 1
            self.block_alloc_seq[block] = self._alloc_seq
            self._sealed[plane].discard(block)
            return block
        return None

    # ------------------------------------------------------------------
    # Block lifecycle
    # ------------------------------------------------------------------

    def release_block(self, block_index: int) -> None:
        """Return an erased block to its plane's free pool."""
        if block_index in self._retired:
            return
        plane = self._plane_of_block(block_index)
        self.block_alloc_seq.pop(block_index, None)
        self._sealed[plane].discard(block_index)
        pool = self._free_blocks[plane]
        pool.append(block_index)
        if len(pool) == self._gc_low_water + 1:
            self._low_planes -= 1

    def retire_block(self, block_index: int) -> None:
        """Permanently remove a bad block from circulation."""
        self._retired.add(block_index)
        plane = self._plane_of_block(block_index)
        pool = self._free_blocks[plane]
        if block_index in pool:
            pool.remove(block_index)
            if len(pool) == self._gc_low_water:
                self._low_planes += 1
        self._sealed[plane].discard(block_index)
        for key, active in list(self._active.items()):
            if active.block_index == block_index:
                del self._active[key]

    def abandon_active(self, stream: str, plane: int) -> None:
        """Drop the active block of a stream (used on program failure)."""
        active = self._active.pop((plane, stream), None)
        if (active is not None
                and self.nand.block_write_ptr[active.block_index]
                >= self.geometry.pages_per_block):
            self._sealed[plane].add(active.block_index)

    # ------------------------------------------------------------------
    # Sealed-block index (GC candidate pool)
    # ------------------------------------------------------------------

    def sealed_blocks(self, plane: int) -> set[int]:
        """The incrementally-maintained GC candidate pool for *plane*:
        fully-written blocks that are neither active nor retired."""
        return self._sealed[plane]

    def reindex_sealed(self) -> None:
        """Rebuild the sealed-block index from NAND state.

        Needed when flash content changes behind the allocator's back:
        after crash recovery replays programs directly into the NAND
        array, or in tests that stage block states by hand.  Mirrors
        the definition the per-event updates maintain incrementally.
        """
        geometry = self.geometry
        active = self.active_blocks()
        write_ptr = self.nand.block_write_ptr
        for plane in range(geometry.planes_total):
            start = plane * geometry.blocks_per_plane
            sealed = self._sealed[plane]
            sealed.clear()
            for block in range(start, start + geometry.blocks_per_plane):
                if block in active or block in self._retired:
                    continue
                if block in self.excluded_blocks:
                    continue
                if write_ptr[block] >= geometry.pages_per_block:
                    sealed.add(block)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def set_gc_watermark(self, low: int) -> None:
        """Register the FTL's GC low watermark and (re)build the count of
        planes at or below it; from here on the count is maintained
        incrementally by every pool mutation."""
        self._gc_low_water = low
        self._low_planes = sum(
            1 for pool in self._free_blocks if len(pool) <= low
        )

    @property
    def planes_at_watermark(self) -> int:
        """How many planes currently sit at or below the GC watermark.
        Zero means a free-space check can skip the plane scan entirely."""
        return self._low_planes

    def free_blocks_in_plane(self, plane: int) -> int:
        return len(self._free_blocks[plane])

    def min_free_blocks(self) -> int:
        return min(len(pool) for pool in self._free_blocks)

    def total_free_blocks(self) -> int:
        return sum(len(pool) for pool in self._free_blocks)

    def active_blocks(self) -> set[int]:
        """Blocks currently open for writing (exempt from GC victimhood)."""
        return {a.block_index for a in self._active.values()}

    @property
    def retired_blocks(self) -> frozenset[int]:
        return frozenset(self._retired)
