"""Pseudo-SLC write buffer (Samsung "TurboWrite" class).

Consumer drives reserve a handful of blocks and program them in SLC mode:
bursts of host writes land there quickly and are drained to the main
(MLC/TLC) area in the background.  The paper's JTAG study found the
840 EVO keeps "an additional hashed index ... presumably to map addresses
in the device's pseudo-SLC buffer" — the buffer's lookup structure here is
deliberately a hash map (not an array) so the memory-layout RE experiment
can rediscover that distinction.

Capacity simplification: pSLC mode halves/thirds real cell capacity; this
model keeps the nominal page size and instead reserves whole blocks, which
preserves the behaviours that matter to the experiments (burst absorption,
drain-induced background writes, a separate index structure).
"""

from __future__ import annotations

from repro.flash.geometry import Geometry
from repro.obs.events import SlcMigration
from repro.obs.sinks import NULL_SINK, TraceSink


class PslcBuffer:
    """Block-granular pSLC staging area with a hashed LPN index."""

    def __init__(self, geometry: Geometry, block_indices: list[int]) -> None:
        self.geometry = geometry
        self.blocks = list(block_indices)
        #: per-block write cursors; pages are handed out round-robin
        #: across blocks so bursts land on as many dies as the buffer
        #: spans (the blocks themselves are plane-striped).
        self._cursor: dict[int, int] = {b: 0 for b in self.blocks}
        self._rr = 0
        #: the hashed index: lpn -> physical sector address within the buffer.
        self.index: dict[int, int] = {}
        self._valid_by_block: dict[int, int] = {b: 0 for b in self.blocks}
        self.obs: TraceSink = NULL_SINK
        self.sector_writes = 0

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return bool(self.blocks)

    def capacity_sectors(self) -> int:
        g = self.geometry
        return len(self.blocks) * g.pages_per_block * g.sectors_per_page

    def used_fraction(self) -> float:
        """Fraction of buffer pages already written (fill level)."""
        if not self.blocks:
            return 0.0
        used = sum(self._cursor.values())
        return used / (len(self.blocks) * self.geometry.pages_per_block)

    def has_space(self) -> bool:
        g = self.geometry
        return any(c < g.pages_per_block for c in self._cursor.values())

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def stage_page(self, lpns: list[int]) -> tuple[int, list[tuple[int, int]]]:
        """Stage up to one flash page worth of host sectors.

        Returns ``(ppn, [(lpn, psa), ...])``: the caller programs *ppn*
        once (with a full per-slot OOB record) and the index now maps
        each LPN to its slot.  Staging whole pages keeps the buffer
        recoverable after power loss.
        """
        g = self.geometry
        if not lpns or len(lpns) > g.sectors_per_page:
            raise ValueError(
                f"stage_page takes 1..{g.sectors_per_page} sectors"
            )
        if not self.has_space():
            raise RuntimeError("pSLC buffer full; drain before staging")
        ppn = self._allocate_page()
        pairs: list[tuple[int, int]] = []
        for slot, lpn in enumerate(lpns):
            psa = ppn * g.sectors_per_page + slot
            old = self.index.get(lpn)
            if old is not None:
                self._valid_by_block[self._block_of_psa(old)] -= 1
            self.index[lpn] = psa
            self._valid_by_block[self._block_of_psa(psa)] += 1
            pairs.append((lpn, psa))
        self.sector_writes += len(lpns)
        return ppn, pairs

    def _allocate_page(self) -> int:
        g = self.geometry
        for _ in range(len(self.blocks)):
            block = self.blocks[self._rr % len(self.blocks)]
            self._rr += 1
            cursor = self._cursor[block]
            if cursor < g.pages_per_block:
                self._cursor[block] = cursor + 1
                return block * g.pages_per_block + cursor
        raise RuntimeError("pSLC buffer out of blocks")

    # ------------------------------------------------------------------
    # Lookup / invalidation
    # ------------------------------------------------------------------

    def lookup(self, lpn: int) -> int | None:
        """Physical sector address if *lpn* currently lives in the buffer."""
        return self.index.get(lpn)

    def invalidate(self, lpn: int) -> bool:
        """Drop a buffered sector (overwritten via main path, or trimmed)."""
        psa = self.index.pop(lpn, None)
        if psa is None:
            return False
        self._valid_by_block[self._block_of_psa(psa)] -= 1
        return True

    def _block_of_psa(self, psa: int) -> int:
        g = self.geometry
        return psa // (g.sectors_per_page * g.pages_per_block)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------

    def pick_drain_block(self) -> int | None:
        """The most-written buffer block (fullest first)."""
        candidates = [b for b in self.blocks if self._cursor[b] > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda b: self._cursor[b])

    def evict_block(self, block_index: int) -> list[tuple[int, int]]:
        """Remove *block_index* from the buffer for draining.

        Returns the ``(lpn, psa)`` pairs still valid in that block — the
        FTL migrates them to the main area and then erases the block.
        """
        victims = [
            (lpn, psa)
            for lpn, psa in self.index.items()
            if self._block_of_psa(psa) == block_index
        ]
        for lpn, _ in victims:
            del self.index[lpn]
        self._valid_by_block[block_index] = 0
        self._cursor[block_index] = 0
        if self.obs.enabled:
            self.obs.emit(SlcMigration(block=block_index,
                                       sectors=len(victims)))
        return victims
