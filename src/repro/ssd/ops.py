"""Flash operation records emitted by the FTL.

The FTL mutates the NAND array directly as it makes decisions, and emits
one :class:`FlashOp` per physical operation.  Executors consume the
stream: the counter-mode device tallies ops into SMART statistics; the
timed simulator schedules them onto channel and die resources; the probe
substrate renders those on a watched channel to ONFI signals.

``reason`` explains *why* the FTL issued the op — exactly the attribution
a black-box observer lacks, and which our transparency tooling tries to
recover.
"""

from __future__ import annotations

import enum
from typing import NamedTuple


class OpKind(enum.Enum):
    READ = "read"
    PROGRAM = "program"
    ERASE = "erase"


class OpReason(enum.Enum):
    """Who caused a flash operation."""

    HOST = "host"  #: direct host data
    GC = "gc"  #: garbage-collection migration
    META = "meta"  #: mapping/translation metadata
    PARITY = "parity"  #: RAIN parity page
    PSLC = "pslc"  #: pSLC buffer fill or drain
    WEAR = "wear"  #: static wear-leveling migration
    REFRESH = "refresh"  #: retention refresh rewrite


#: Reasons whose program ops count as "FTL Program Pages" in SMART
#: (everything the host did not directly write).
FTL_REASONS = frozenset(
    {OpReason.GC, OpReason.META, OpReason.PARITY, OpReason.PSLC,
     OpReason.WEAR, OpReason.REFRESH}
)


class FlashOp(NamedTuple):
    """One physical flash operation.

    ``target`` is a PPN for reads/programs and a global block index for
    erases.  ``nbytes`` is the data moved over the bus (0 for erase).

    A NamedTuple rather than a frozen dataclass: the FTL constructs one
    per physical op on the hot path, and tuple construction is several
    times cheaper than a frozen dataclass ``__init__``.
    """

    kind: OpKind
    target: int
    reason: OpReason
    nbytes: int = 0

    def __str__(self) -> str:  # compact form for logs and test failures
        return f"{self.kind.value}[{self.reason.value}]@{self.target}({self.nbytes}B)"
