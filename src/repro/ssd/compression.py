"""Intra-SSD compression schemes (the paper's Fig 2, after Zuck et al.).

Commercial controllers (SandForce/Kingston "DuraWrite", Intel) compress
host data inside the FTL to reduce physical writes.  Zuck et al.
(INFLOW '14) compared scheme families under OLTP workloads; the paper's
Fig 2 shows that for highly compressible data the schemes differ by up to
156 % in flash writes per transaction, normalized to the best (`re-bp32`).

All schemes here share a log-structured write model: compressed payloads
are appended to a write log, and one flash page program happens each time
the open log page fills.  They differ in the unit of compression and the
packing discipline:

``none``
    No compression; each 4 KB sector occupies 4 KB of log.
``fixed``
    Compress each sector independently but store it in fixed-size
    sub-page slots (rounded up), simplifying the map at the price of
    internal fragmentation.
``compact``
    Compress each sector independently and append byte-exact (plus a
    small header) at the log head.
``chunk4``
    Compress aligned groups of 4 sectors (16 KB) together.  Grouping
    compresses better, but updating any single sector forces a
    read-modify-rewrite of the whole chunk.
``re-bp32``
    Batch up to 32 compressed sectors and bin-pack the batch into whole
    pages (first-fit decreasing), recompressing cold remainders — the
    efficient baseline Fig 2 normalizes against.

Sizes are modeled, not computed from real bytes: callers provide each
sector's compressed size via a :class:`repro.workloads.compressibility`
model, which is all the write-accounting needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: bytes of per-item header each packed compressed sector carries.
HEADER_BYTES = 16


@dataclass
class CompressionStats:
    sector_updates: int = 0
    bytes_appended: int = 0
    page_programs: int = 0
    rmw_reads: int = 0


class _LogWriter:
    """Shared open-page accounting: append bytes, count page programs."""

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._open_fill = 0
        self.stats = CompressionStats()

    def append(self, nbytes: int) -> int:
        """Append *nbytes* to the log; returns page programs incurred."""
        if nbytes < 0:
            raise ValueError("cannot append negative bytes")
        self.stats.bytes_appended += nbytes
        programs = 0
        fill = self._open_fill + nbytes
        while fill >= self.page_size:
            fill -= self.page_size
            programs += 1
        self._open_fill = fill
        self.stats.page_programs += programs
        return programs


class CompressionScheme:
    """Base class; subclasses implement :meth:`update`."""

    name = "abstract"

    def __init__(self, page_size: int = 16384, sector_size: int = 4096) -> None:
        self.page_size = page_size
        self.sector_size = sector_size
        self._log = _LogWriter(page_size)

    @property
    def stats(self) -> CompressionStats:
        return self._log.stats

    def update(self, lpn: int, compressed_size: int) -> int:
        """Write one sector whose compressed form is *compressed_size*
        bytes; returns flash page programs incurred."""
        raise NotImplementedError

    def _clamp(self, compressed_size: int) -> int:
        """Incompressible data is stored raw (never expanded)."""
        return min(compressed_size, self.sector_size)


class NoCompression(CompressionScheme):
    name = "none"

    def update(self, lpn: int, compressed_size: int) -> int:
        self.stats.sector_updates += 1
        return self._log.append(self.sector_size)


class FixedSlot(CompressionScheme):
    """Fixed sub-page slots (default: quarter-page granularity)."""

    name = "fixed"

    def __init__(self, page_size: int = 16384, sector_size: int = 4096,
                 slot_bytes: int | None = None) -> None:
        super().__init__(page_size, sector_size)
        self.slot_bytes = slot_bytes if slot_bytes is not None else sector_size // 2
        if self.slot_bytes <= 0 or page_size % self.slot_bytes:
            raise ValueError("slot_bytes must divide page_size")

    def update(self, lpn: int, compressed_size: int) -> int:
        self.stats.sector_updates += 1
        size = self._clamp(compressed_size) + HEADER_BYTES
        slots = -(-size // self.slot_bytes)
        return self._log.append(slots * self.slot_bytes)


class Compact(CompressionScheme):
    """Byte-exact packing of independently compressed sectors."""

    name = "compact"

    def update(self, lpn: int, compressed_size: int) -> int:
        self.stats.sector_updates += 1
        return self._log.append(self._clamp(compressed_size) + HEADER_BYTES)


class Chunk4(CompressionScheme):
    """Compress aligned 4-sector chunks together; RMW on partial update.

    ``grouping_factor`` models the ratio improvement from compressing
    4 sectors as one stream instead of separately (shared dictionaries);
    0.65 reproduces the gap Zuck et al. report for highly compressible
    OLTP data.
    """

    name = "chunk4"
    sectors_per_chunk = 4

    def __init__(self, page_size: int = 16384, sector_size: int = 4096,
                 grouping_factor: float = 0.65) -> None:
        super().__init__(page_size, sector_size)
        self.grouping_factor = grouping_factor
        #: last-known per-sector compressed sizes of each chunk.
        self._chunks: dict[int, dict[int, int]] = {}

    def update(self, lpn: int, compressed_size: int) -> int:
        self.stats.sector_updates += 1
        chunk_id, slot = divmod(lpn, self.sectors_per_chunk)
        chunk = self._chunks.setdefault(chunk_id, {})
        first_write = len(chunk) == 0
        chunk[slot] = self._clamp(compressed_size)
        if not first_write:
            # Read back the rest of the chunk before recompressing it.
            self.stats.rmw_reads += 1
        # The whole aligned chunk is recompressed and rewritten: slots
        # this stream never wrote still hold (compressible) device data,
        # estimated at the mean ratio of the slots we have seen.
        mean_size = sum(chunk.values()) / len(chunk)
        grouped = int(
            mean_size * self.sectors_per_chunk * self.grouping_factor
        ) + HEADER_BYTES
        return self._log.append(grouped)


class ReBp32(CompressionScheme):
    """Batch 32 compressed sectors, bin-pack into whole pages.

    First-fit-decreasing packing wastes almost nothing, and batching
    amortizes headers: one header per bin rather than per sector.  This
    is Fig 2's normalization baseline.
    """

    name = "re-bp32"
    batch_sectors = 32

    def __init__(self, page_size: int = 16384, sector_size: int = 4096) -> None:
        super().__init__(page_size, sector_size)
        self._batch: list[int] = []

    def update(self, lpn: int, compressed_size: int) -> int:
        self.stats.sector_updates += 1
        self._batch.append(self._clamp(compressed_size))
        if len(self._batch) < self.batch_sectors:
            return 0
        return self._flush_batch()

    def _flush_batch(self) -> int:
        sizes = sorted(self._batch, reverse=True)
        self._batch = []
        bins: list[int] = []
        usable = self.page_size - HEADER_BYTES
        for size in sizes:
            for i, fill in enumerate(bins):
                if fill + size <= usable:
                    bins[i] = fill + size
                    break
            else:
                bins.append(size)
        programs = 0
        for fill in bins:
            programs += self._log.append(fill + HEADER_BYTES)
        return programs

    def flush(self) -> int:
        """Force out a partial batch (end of measurement window)."""
        if not self._batch:
            return 0
        return self._flush_batch()


SCHEMES: dict[str, type[CompressionScheme]] = {
    cls.name: cls for cls in (NoCompression, FixedSlot, Compact, Chunk4, ReBp32)
}


def make_scheme(name: str, page_size: int = 16384, sector_size: int = 4096) -> CompressionScheme:
    """Instantiate a scheme by name."""
    try:
        cls = SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEMES))
        raise KeyError(f"unknown compression scheme {name!r}; known: {known}") from None
    return cls(page_size=page_size, sector_size=sector_size)
