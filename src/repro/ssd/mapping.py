"""Logical-to-physical mapping with translation-page metadata costs.

A page-mapped FTL keeps one entry per logical sector.  The entries are
grouped into *translation pages* (TPs): the unit in which mapping metadata
is persisted to flash.  RAM holds a bounded set of dirty TPs; metadata
reaches flash two ways:

* **eviction** — dirtying a TP beyond the RAM budget forces the
  least-recently-dirtied TP out (one metadata program);
* **checkpoint** — every ``sync_interval`` host sector updates, all dirty
  TPs are flushed (a periodic consistency point).

This is the mechanism behind the paper's Fig 4b: each workload alone has a
dirty-TP working set that fits the budget pays only checkpoint flushes;
workloads whose *union* of working sets overflows the budget move the FTL
into the eviction-dominated regime.  Together with GC debt (which likewise
accumulates with total volume, not per-request), this is why the paper's
IOPS-weighted additive WAF prediction fails for concurrent runs.

Orthogonally, the map may be split into demand-loaded *chunks* (the
840 EVO's 117.5 MB chunks, §3.2): a chunk must be resident before any of
its entries can be used, and loading one costs flash reads of its stored
TPs.

The table reports metadata work as :class:`MappingEvents`; the FTL turns
those into actual flash operations (it owns page allocation).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

#: l2p value for an unmapped sector.
UNMAPPED = -1


@dataclass
class MappingEvents:
    """Metadata work triggered by a lookup/update.

    ``flush_tps`` — TP ids that must be written to flash now.
    ``load_tp_ppns`` — flash page numbers to read for a chunk load.
    ``loaded_chunks`` — chunk ids that became resident (for stats/RE).
    """

    flush_tps: list[int] = field(default_factory=list)
    load_tp_ppns: list[int] = field(default_factory=list)
    loaded_chunks: list[int] = field(default_factory=list)

    def merge(self, other: "MappingEvents") -> None:
        self.flush_tps.extend(other.flush_tps)
        self.load_tp_ppns.extend(other.load_tp_ppns)
        self.loaded_chunks.extend(other.loaded_chunks)

    @property
    def empty(self) -> bool:
        return not (self.flush_tps or self.load_tp_ppns or self.loaded_chunks)


#: Shared no-metadata result returned by the lookup/update fast paths.
#: Callers only read returned events (or merge them into their own
#: accumulator), so one immutable-by-convention instance serves them all
#: without a per-call allocation.
EMPTY_EVENTS = MappingEvents()


@dataclass
class MappingStats:
    """Counters for analysis and the RE experiments."""

    updates: int = 0
    lookups: int = 0
    tp_flushes: int = 0
    checkpoint_flushes: int = 0
    eviction_flushes: int = 0
    chunk_loads: int = 0


class MappingTable:
    """Sector-granularity L2P map with TP dirty tracking and chunked load."""

    def __init__(
        self,
        num_lpns: int,
        tp_lpns: int,
        dirty_tp_limit: int,
        sync_interval: int,
        chunk_lpns: int = 0,
        resident_chunks: int = 8,
    ) -> None:
        if num_lpns <= 0:
            raise ValueError("num_lpns must be positive")
        if chunk_lpns and chunk_lpns % tp_lpns != 0:
            raise ValueError("chunk_lpns must be a multiple of tp_lpns")
        self.num_lpns = num_lpns
        self.tp_lpns = tp_lpns
        self.dirty_tp_limit = max(1, dirty_tp_limit)
        self.sync_interval = sync_interval
        self.chunk_lpns = chunk_lpns
        self.resident_chunks = max(1, resident_chunks)

        self.l2p = np.full(num_lpns, UNMAPPED, dtype=np.int64)
        self.num_tps = -(-num_lpns // tp_lpns)
        #: flash location of each TP's last flushed copy (-1 = never stored).
        self.tp_stored_ppn = np.full(self.num_tps, -1, dtype=np.int64)
        self._dirty: OrderedDict[int, None] = OrderedDict()
        self._resident: OrderedDict[int, None] = OrderedDict()
        self._since_sync = 0
        self.stats = MappingStats()
        #: False forces the allocating general paths (reference mode for
        #: the throughput bench); results are identical either way.
        self.fast_path = True

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------

    def tp_of(self, lpn: int) -> int:
        return lpn // self.tp_lpns

    def chunk_of(self, lpn: int) -> int:
        if not self.chunk_lpns:
            return 0
        return lpn // self.chunk_lpns

    def _tps_in_chunk(self, chunk: int) -> range:
        per_chunk = self.chunk_lpns // self.tp_lpns
        start = chunk * per_chunk
        return range(start, min(start + per_chunk, self.num_tps))

    @property
    def num_chunks(self) -> int:
        if not self.chunk_lpns:
            return 1
        return -(-self.num_lpns // self.chunk_lpns)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def lookup(self, lpn: int) -> tuple[int, MappingEvents]:
        """Translate one LPN; may require a chunk load."""
        self._check_lpn(lpn)
        self.stats.lookups += 1
        if self.fast_path and not self.chunk_lpns:
            # Unchunked map: lookups never trigger metadata work.
            return int(self.l2p[lpn]), EMPTY_EVENTS
        events = self._ensure_resident(lpn)
        return int(self.l2p[lpn]), events

    def update(self, lpn: int, psa: int) -> tuple[int, MappingEvents]:
        """Map *lpn* to physical sector *psa*; returns (old_psa, events)."""
        self._check_lpn(lpn)
        self.stats.updates += 1
        # Fast path: unchunked map, TP already dirty, no checkpoint due —
        # exactly the case where the general path below would allocate two
        # MappingEvents just to report "nothing happened".  This is the
        # steady state of every sequential/looping write workload.
        if (self.fast_path and not self.chunk_lpns
                and self._since_sync + 1 < self.sync_interval):
            tp_id = lpn // self.tp_lpns
            dirty = self._dirty
            if tp_id in dirty:
                dirty.move_to_end(tp_id)
                old = int(self.l2p[lpn])
                self.l2p[lpn] = psa
                self._since_sync += 1
                return old, EMPTY_EVENTS
        events = self._ensure_resident(lpn)
        old = int(self.l2p[lpn])
        self.l2p[lpn] = psa
        events.merge(self._mark_dirty(self.tp_of(lpn)))
        self._since_sync += 1
        if self._since_sync >= self.sync_interval:
            events.merge(self.checkpoint())
        return old, events

    def trim(self, lpn: int) -> tuple[int, MappingEvents]:
        """Unmap one LPN (TRIM); dirties its TP like an update."""
        return self.update(lpn, UNMAPPED)

    def silent_update(self, lpn: int, psa: int) -> int:
        """Update without metadata cost (used by GC when it migrates a
        sector: real FTLs piggyback those map updates on the migration
        destination block's OOB and the eventual TP write)."""
        self._check_lpn(lpn)
        old = int(self.l2p[lpn])
        self.l2p[lpn] = psa
        return old

    def checkpoint(self) -> MappingEvents:
        """Flush every dirty TP (periodic consistency point)."""
        events = MappingEvents(flush_tps=list(self._dirty.keys()))
        self.stats.tp_flushes += len(self._dirty)
        self.stats.checkpoint_flushes += len(self._dirty)
        self._dirty.clear()
        self._since_sync = 0
        return events

    def note_flushed(self, tp_id: int, ppn: int) -> None:
        """Record where the FTL just stored a TP."""
        self.tp_stored_ppn[tp_id] = ppn

    # ------------------------------------------------------------------
    # Dirty tracking
    # ------------------------------------------------------------------

    def _mark_dirty(self, tp_id: int) -> MappingEvents:
        events = MappingEvents()
        if tp_id in self._dirty:
            self._dirty.move_to_end(tp_id)
            return events
        while len(self._dirty) >= self.dirty_tp_limit:
            victim, _ = self._dirty.popitem(last=False)
            events.flush_tps.append(victim)
            self.stats.tp_flushes += 1
            self.stats.eviction_flushes += 1
        self._dirty[tp_id] = None
        return events

    @property
    def dirty_tp_count(self) -> int:
        return len(self._dirty)

    def is_dirty(self, tp_id: int) -> bool:
        return tp_id in self._dirty

    # ------------------------------------------------------------------
    # Chunk residency
    # ------------------------------------------------------------------

    def _ensure_resident(self, lpn: int) -> MappingEvents:
        events = MappingEvents()
        if not self.chunk_lpns:
            return events
        chunk = self.chunk_of(lpn)
        if chunk in self._resident:
            self._resident.move_to_end(chunk)
            return events
        while len(self._resident) >= self.resident_chunks:
            evicted, _ = self._resident.popitem(last=False)
            # Dirty TPs belonging to the evicted chunk must be persisted.
            for tp_id in self._tps_in_chunk(evicted):
                if tp_id in self._dirty:
                    del self._dirty[tp_id]
                    events.flush_tps.append(tp_id)
                    self.stats.tp_flushes += 1
                    self.stats.eviction_flushes += 1
        self._resident[chunk] = None
        self.stats.chunk_loads += 1
        events.loaded_chunks.append(chunk)
        for tp_id in self._tps_in_chunk(chunk):
            stored = int(self.tp_stored_ppn[tp_id])
            if stored >= 0:
                events.load_tp_ppns.append(stored)
        return events

    def resident_chunk_ids(self) -> list[int]:
        return list(self._resident.keys())

    # ------------------------------------------------------------------

    def mapped_count(self) -> int:
        return int(np.count_nonzero(self.l2p != UNMAPPED))

    def _check_lpn(self, lpn: int) -> None:
        if not 0 <= lpn < self.num_lpns:
            raise IndexError(f"lpn {lpn} out of range [0, {self.num_lpns})")
