"""S.M.A.R.T. statistics as the device exposes them.

The paper's §2.2 relies on the Crucial MX500 being unusually forthcoming:
it reports "Host Program Page Count" (attribute 246) and "FTL Program Page
Count" (attribute 247), both in NAND pages.  This module maintains those
counters plus the usual supporting attributes, and renders a
smartmontools-style table so the black-box tooling consumes the device the
same way ``smartctl -A`` output would be consumed.

Counter semantics (matching the drive's documentation as the paper reads
it): every NAND page program is attributed either to the host (pages whose
content is host data) or to the FTL (GC migrations, mapping metadata,
RAIN parity, pSLC traffic, wear leveling, refresh).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ssd.ops import FTL_REASONS, FlashOp, OpKind, OpReason


@dataclass
class SmartAttribute:
    """One row of the attribute table."""

    attr_id: int
    name: str
    raw: int


@dataclass
class SmartCounters:
    """Running device statistics.

    ``host_program_pages`` / ``ftl_program_pages`` are the two counters
    the Fig 4 experiments are built on.
    """

    host_program_pages: int = 0
    ftl_program_pages: int = 0
    host_sectors_written: int = 0
    host_sectors_read: int = 0
    read_pages: int = 0
    erase_count: int = 0
    gc_program_pages: int = 0
    meta_program_pages: int = 0
    parity_program_pages: int = 0
    pslc_program_pages: int = 0
    wear_program_pages: int = 0
    refresh_program_pages: int = 0
    power_on_hours: int = 0
    unexpected_power_loss: int = 0
    #: derived attributes, synced by the device from FTL state.
    percent_lifetime_remaining: int = 100
    reported_uncorrectable: int = 0
    grown_bad_blocks: int = 0
    relocated_sectors: int = 0
    read_retries: int = 0
    rain_reconstructions: int = 0

    _BY_REASON = {
        OpReason.GC: "gc_program_pages",
        OpReason.META: "meta_program_pages",
        OpReason.PARITY: "parity_program_pages",
        OpReason.PSLC: "pslc_program_pages",
        OpReason.WEAR: "wear_program_pages",
        OpReason.REFRESH: "refresh_program_pages",
    }

    def record(self, op: FlashOp) -> None:
        """Attribute one flash operation."""
        if op.kind is OpKind.PROGRAM:
            if op.reason in FTL_REASONS:
                self.ftl_program_pages += 1
                detail = self._BY_REASON.get(op.reason)
                if detail is not None:
                    setattr(self, detail, getattr(self, detail) + 1)
            else:
                self.host_program_pages += 1
        elif op.kind is OpKind.READ:
            self.read_pages += 1
        elif op.kind is OpKind.ERASE:
            self.erase_count += 1

    # ------------------------------------------------------------------
    # Derived figures used throughout the paper
    # ------------------------------------------------------------------

    @property
    def total_program_pages(self) -> int:
        return self.host_program_pages + self.ftl_program_pages

    def waf(self) -> float:
        """The paper's Fig 4b metric: FTL pages per host page."""
        if not self.host_program_pages:
            return 0.0
        return self.ftl_program_pages / self.host_program_pages

    def host_bytes_per_nand_page(self, sector_size: int) -> float:
        """The paper's Fig 4a metric: host bytes per NAND page program."""
        if not self.total_program_pages:
            return 0.0
        return self.host_sectors_written * sector_size / self.total_program_pages

    def snapshot(self) -> "SmartCounters":
        """A copy, for delta computations between measurement windows."""
        return SmartCounters(**{
            name: getattr(self, name)
            for name in self.__dataclass_fields__
        })

    def delta(self, earlier: "SmartCounters") -> "SmartCounters":
        """Counter deltas since *earlier* (both from the same device)."""
        return SmartCounters(**{
            name: getattr(self, name) - getattr(earlier, name)
            for name in self.__dataclass_fields__
        })

    # ------------------------------------------------------------------
    # smartctl-style rendering
    # ------------------------------------------------------------------

    def attributes(self) -> list[SmartAttribute]:
        return [
            SmartAttribute(5, "Reallocated_Block_Count", self.grown_bad_blocks),
            SmartAttribute(12, "Power_Cycle_Count", 1),
            SmartAttribute(173, "Ave_Block-Erase_Count", self.erase_count),
            SmartAttribute(174, "Unexpect_Power_Loss_Ct", self.unexpected_power_loss),
            SmartAttribute(187, "Reported_Uncorrect", self.reported_uncorrectable),
            SmartAttribute(196, "Reallocated_Event_Count", self.relocated_sectors),
            SmartAttribute(202, "Percent_Lifetime_Remain",
                           self.percent_lifetime_remaining),
            SmartAttribute(210, "RAIN_Successful_Recovery", self.rain_reconstructions),
            SmartAttribute(246, "Total_Host_Sector_Write", self.host_sectors_written),
            SmartAttribute(247, "Host_Program_Page_Count", self.host_program_pages),
            SmartAttribute(248, "FTL_Program_Page_Count", self.ftl_program_pages),
        ]

    def render(self) -> str:
        """An ``smartctl -A``-shaped table."""
        lines = [
            "ID# ATTRIBUTE_NAME          RAW_VALUE",
        ]
        for attr in self.attributes():
            lines.append(f"{attr.attr_id:>3} {attr.name:<24}{attr.raw}")
        return "\n".join(lines)
