"""Open-channel SSD: the paper's transparency upper bound.

§1: "recently proposed open-channel SSDs expose the FTL logic to the
host, yielding highly predictable I/O performance with perfect scheduling
decisions, presenting an upper bound on the improvement potential for SSD
transparency."

:class:`OpenChannelSSD` exports the raw geometry and physical operations
(program/read/erase) over the same channel/die resource timelines the
black-box simulator uses — no firmware FTL, no hidden state.  The
timelines are :class:`repro.sim.kernel.Resource` objects on a shared
:class:`~repro.sim.kernel.Kernel`, the same substrate
:class:`~repro.ssd.timed.TimedSSD` schedules onto.

:class:`HostFtl` is the host-side translation layer that the visibility
enables (LightNVM/pblk-flavoured).  Its predictability comes from two
things a firmware FTL cannot offer a host:

* the host sees the geometry, so it stripes writes perfectly across
  dies and never collides with itself;
* the host controls *when* reclaim happens, so GC is **incremental** —
  at most ``gc_step_pages`` migrations are interleaved per host write,
  bounding the worst-case stall instead of letting multi-block collection
  storms land on unlucky requests.

The ablation bench compares tail latency against the black-box device
under the identical workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import Geometry
from repro.flash.nand import NO_LPN, NandArray
from repro.flash.onfi import (
    encode_erase,
    encode_program,
    encode_read,
    operation_bus_ns,
)
from repro.flash.timing import TimingProfile, profile
from repro.sim import Kernel


@dataclass(frozen=True)
class RawCompletion:
    """Completion of one raw physical operation."""

    kind: str
    target: int
    start_ns: int
    complete_ns: int


class OpenChannelSSD:
    """Geometry-exposing device: raw ops on shared channel/die timelines."""

    def __init__(self, geometry: Geometry, timing_name: str = "mlc") -> None:
        self.geometry = geometry
        self.timing: TimingProfile = profile(timing_name)
        self.nand = NandArray(geometry)
        self.kernel = Kernel()
        self._dies = [self.kernel.resource(f"die/{i}")
                      for i in range(geometry.dies_total)]
        self._channels = [self.kernel.resource(f"channel/{i}")
                          for i in range(geometry.channels)]

    @property
    def now(self) -> int:
        return self.kernel.now

    def program_page(self, ppn: int, at_ns: int,
                     oob: tuple[int, ...] = ()) -> RawCompletion:
        geometry, timing = self.geometry, self.timing
        self.nand.program(ppn, lpn=oob[0] if oob else int(NO_LPN), oob=oob or None)
        die = self._dies[geometry.die_of_ppn(ppn)]
        channel = self._channels[geometry.channel_of_ppn(ppn)]
        onfi = encode_program(geometry, timing, geometry.address(ppn))
        bus = operation_bus_ns(onfi, timing)
        start = max(at_ns, channel.free_at, die.free_at)
        bus_end = channel.hold(start, start + bus, requested_ns=at_ns)
        end = die.hold(bus_end, bus_end + timing.program_ns, requested_ns=at_ns)
        self.kernel.run_until(at_ns)
        return RawCompletion("program", ppn, start, end)

    def read_page(self, ppn: int, at_ns: int) -> RawCompletion:
        geometry, timing = self.geometry, self.timing
        die = self._dies[geometry.die_of_ppn(ppn)]
        channel = self._channels[geometry.channel_of_ppn(ppn)]
        onfi = encode_read(geometry, timing, geometry.address(ppn))
        data_ns = timing.transfer_ns(geometry.page_size)
        cmd_ns = operation_bus_ns(onfi, timing) - data_ns
        start = max(at_ns, channel.free_at, die.free_at)
        cmd_end = channel.hold(start, start + cmd_ns, requested_ns=at_ns)
        array_end = die.hold(cmd_end, cmd_end + timing.read_ns,
                             requested_ns=at_ns)
        bus_start = max(array_end, channel.free_at)
        end = channel.hold(bus_start, bus_start + data_ns,
                           requested_ns=array_end)
        self.kernel.run_until(at_ns)
        return RawCompletion("read", ppn, start, end)

    def erase_block(self, block: int, at_ns: int) -> RawCompletion:
        geometry, timing = self.geometry, self.timing
        self.nand.erase(block)
        die = self._dies[geometry.die_of_block(block)]
        channel = self._channels[geometry.channel_of_block(block)]
        onfi = encode_erase(geometry, timing, geometry.block_address(block))
        bus = operation_bus_ns(onfi, timing)
        start = max(at_ns, channel.free_at, die.free_at)
        bus_end = channel.hold(start, start + bus, requested_ns=at_ns)
        end = die.hold(bus_end, bus_end + timing.erase_ns, requested_ns=at_ns)
        self.kernel.run_until(at_ns)
        return RawCompletion("erase", block, start, end)


@dataclass
class HostFtlStats:
    host_sector_writes: int = 0
    programs: int = 0
    gc_migrated_pages: int = 0
    erases: int = 0
    gc_steps: int = 0


class HostFtl:
    """A host-side FTL over an open-channel device.

    Page-mapped at sector granularity with perfect die striping and
    incremental (bounded-per-request) garbage collection.
    """

    def __init__(
        self,
        device: OpenChannelSSD,
        op_ratio: float = 0.12,
        gc_low_water_blocks: int = 3,
        gc_step_pages: int = 1,
    ) -> None:
        self.device = device
        geometry = device.geometry
        self.geometry = geometry
        spp = geometry.sectors_per_page
        self.num_lpns = int(geometry.capacity_bytes * (1 - op_ratio)
                            ) // geometry.sector_size
        self.l2p = np.full(self.num_lpns, -1, dtype=np.int64)
        self.p2l = np.full(geometry.total_pages * spp, -1, dtype=np.int64)
        self.block_valid = np.zeros(geometry.total_blocks, dtype=np.int32)
        self.gc_low_water_blocks = gc_low_water_blocks
        self.gc_step_pages = gc_step_pages
        self.stats = HostFtlStats()

        planes = geometry.planes_total
        self._free: list[list[int]] = [[] for _ in range(planes)]
        for block in range(geometry.total_blocks):
            self._free[block // geometry.blocks_per_plane].append(block)
        for pool in self._free:
            pool.reverse()
        self._active: dict[tuple[int, str], tuple[int, int]] = {}
        self._write_index = {"host": 0, "gc": 0}
        self._pending: list[int] = []
        #: incremental-GC state: the victim being drained, if any.
        self._gc_victim: int | None = None
        self._gc_cursor = 0
        #: migrated sectors awaiting re-packing into full pages.
        self._gc_pending: list[int] = []

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------

    def write(self, lpn: int, at_ns: int) -> int:
        """Write one sector; returns its completion time.

        The write buffers until a full page is ready (the host knows the
        page size), then programs one perfectly-striped page.  At most
        ``gc_step_pages`` of GC work is interleaved — the bounded-stall
        discipline visibility makes possible.
        """
        if not 0 <= lpn < self.num_lpns:
            raise ValueError(f"lpn {lpn} out of range")
        self.stats.host_sector_writes += 1
        self._pending.append(lpn)
        complete = at_ns
        complete = max(complete, self._gc_step(at_ns))
        if len(self._pending) >= self.geometry.sectors_per_page:
            batch, self._pending = self._pending, []
            complete = max(complete, self._program_batch(batch, "host", at_ns))
        return complete

    def read(self, lpn: int, at_ns: int) -> int:
        psa = int(self.l2p[lpn])
        if psa < 0:
            return at_ns
        ppn = psa // self.geometry.sectors_per_page
        return self.device.read_page(ppn, at_ns).complete_ns

    # ------------------------------------------------------------------

    def _program_batch(self, lpns: list[int], stream: str, at_ns: int) -> int:
        geometry = self.geometry
        spp = geometry.sectors_per_page
        ppn = self._allocate_page(stream)
        completion = self.device.program_page(ppn, at_ns, oob=tuple(lpns))
        self.stats.programs += 1
        block = ppn // geometry.pages_per_block
        for slot, lpn in enumerate(lpns[:spp]):
            psa = ppn * spp + slot
            old = int(self.l2p[lpn])
            if old >= 0 and int(self.p2l[old]) == lpn:
                self.p2l[old] = -1
                self.block_valid[old // spp // geometry.pages_per_block] -= 1
            self.l2p[lpn] = psa
            self.p2l[psa] = lpn
            self.block_valid[block] += 1
        return completion.complete_ns

    def _allocate_page(self, stream: str) -> int:
        geometry = self.geometry
        planes = geometry.planes_total
        index = self._write_index[stream]
        self._write_index[stream] = index + 1
        for offset in range(planes):
            plane = (index + offset) % planes
            key = (plane, stream)
            block, page = self._active.get(key, (-1, geometry.pages_per_block))
            if page >= geometry.pages_per_block:
                if not self._free[plane]:
                    continue
                block, page = self._free[plane].pop(), 0
            self._active[key] = (block, page + 1)
            return block * geometry.pages_per_block + page
        raise RuntimeError("host FTL out of space")

    # ------------------------------------------------------------------
    # Incremental GC
    # ------------------------------------------------------------------

    def _total_free(self) -> int:
        return sum(len(pool) for pool in self._free)

    def _gc_step(self, at_ns: int) -> int:
        """Do a *bounded* slice of reclaim work: the host amortizes GC
        over requests instead of paying it in storms."""
        low_water = self.gc_low_water_blocks * self.geometry.planes_total
        if self._gc_victim is None:
            if self._total_free() > low_water:
                return at_ns
            self._gc_victim = self._pick_victim()
            self._gc_cursor = 0
            if self._gc_victim is None:
                return at_ns
        geometry = self.geometry
        spp = geometry.sectors_per_page
        complete = at_ns
        moved = 0
        victim = self._gc_victim
        base = victim * geometry.pages_per_block
        while moved < self.gc_step_pages and self._gc_cursor < geometry.pages_per_block:
            ppn = base + self._gc_cursor
            self._gc_cursor += 1
            live = [
                int(self.p2l[ppn * spp + slot])
                for slot in range(spp)
                if int(self.p2l[ppn * spp + slot]) >= 0
            ]
            if not live:
                continue
            self.stats.gc_steps += 1
            self.device.read_page(ppn, at_ns)
            # Re-pack: migrated sectors accumulate until a full page is
            # ready, so reclaim never decays page density.
            self._gc_pending.extend(live)
            while len(self._gc_pending) >= spp:
                batch = self._gc_pending[:spp]
                del self._gc_pending[:spp]
                complete = max(complete,
                               self._program_batch(batch, "gc", at_ns))
                self.stats.gc_migrated_pages += 1
            moved += 1
        if self._gc_cursor >= geometry.pages_per_block:
            # The re-pack buffer may still hold this victim's sectors:
            # persist them (one possibly-partial page) before erasing.
            if self._gc_pending:
                batch, self._gc_pending = self._gc_pending, []
                complete = max(complete,
                               self._program_batch(batch, "gc", at_ns))
                self.stats.gc_migrated_pages += 1
            completion = self.device.erase_block(victim, at_ns)
            complete = max(complete, completion.complete_ns)
            self.stats.erases += 1
            plane = victim // geometry.blocks_per_plane
            self._free[plane].append(victim)
            self._gc_victim = None
        return complete

    def _pick_victim(self) -> int | None:
        geometry = self.geometry
        active = {block for block, _ in self._active.values()}
        free = {b for pool in self._free for b in pool}
        best: tuple[int, int] | None = None
        for block in range(geometry.total_blocks):
            if block in active or block in free:
                continue
            if int(self.device.nand.block_write_ptr[block]) < geometry.pages_per_block:
                continue
            valid = int(self.block_valid[block])
            if best is None or valid < best[0]:
                best = (valid, block)
        return best[1] if best else None
