"""Timed execution: the same FTL under a clock.

Latency questions (the paper's Fig 3) need more than op counts: they need
queueing.  :class:`TimedSSD` schedules the FTL's op stream onto the
device's two resource classes —

* **channels**, serializing command/data transfers of every package that
  shares the bus, and
* **dies**, busy for tR/tPROG/tBERS while the array works

— using resource-timeline simulation: each resource holds the time it
next becomes free, ops claim resources in FTL emission order, and a host
request completes when the last op it *synchronously depends on*
finishes.

Synchronicity model (this is what produces realistic write tails): a
host write completes once its sectors are *admitted* to the RAM write
cache.  Cache space is returned when flush programs complete on the
flash, so while the dies keep up, writes finish in
``controller_overhead_ns``; when foreground GC or queueing backs the
dies up, releases lag, the cache fills, and admissions stall for
milliseconds — the GC-induced tail.  Reads always wait for flash.

A :class:`BusTap` can be attached to render every op on one channel into
ONFI pin signals — the hardware-probe substrate of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.flash.geometry import Geometry
from repro.flash.onfi import (
    OnfiOperation,
    encode_erase,
    encode_program,
    encode_read,
    operation_bus_ns,
)
from repro.flash.signals import SignalEmitter, SignalTrace
from repro.flash.timing import PSLC, TimingProfile, profile
from repro.obs.events import CacheStall, HostRequest
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import Ftl
from repro.ssd.ops import FlashOp, OpKind, OpReason
from repro.ssd.smart import SmartCounters


@dataclass(frozen=True)
class CompletedRequest:
    """One finished host request with its timing."""

    kind: str
    lba: int
    nsectors: int
    submit_ns: int
    complete_ns: int

    @property
    def latency_ns(self) -> int:
        return self.complete_ns - self.submit_ns

    @property
    def latency_us(self) -> float:
        return self.latency_ns / 1_000


class BusTap:
    """Probe wiring: renders ops on one channel to ONFI signals.

    This is the simulated counterpart of soldering probes to a flash
    package's pinouts: the tap sees bus traffic for a single channel and
    nothing else.
    """

    def __init__(self, geometry: Geometry, timing: TimingProfile, channel: int = 0) -> None:
        if geometry.chips_per_channel * geometry.dies_per_chip != 1:
            raise ValueError(
                "BusTap renders a single R/B# lane, so it models probing a "
                "single-die package; probe a channel with one die (per-die "
                "ready/busy pins are not modeled separately)"
            )
        self.geometry = geometry
        self.timing = timing
        self.channel = channel
        self.emitter = SignalEmitter(timing)

    @property
    def trace(self) -> SignalTrace:
        return self.emitter.trace

    def observe(self, op: FlashOp, onfi_op: OnfiOperation, start_ns: int) -> None:
        self.emitter.emit(onfi_op, start_ns)


class TimedSSD:
    """Resource-timeline simulation of a :class:`SimulatedSSD`."""

    def __init__(
        self,
        config: SsdConfig,
        model: str = "repro-ssd-timed",
        controller_overhead_ns: int = 8_000,
        bus_tap: BusTap | None = None,
    ) -> None:
        self.config = config
        self.model = model
        self.geometry = config.geometry
        self.timing = profile(config.timing_name)
        self.controller_overhead_ns = controller_overhead_ns
        self.ftl = Ftl(config)
        self.smart = SmartCounters()
        self.bus_tap = bus_tap
        #: blocks operated in pSLC mode program/erase at pSLC speed.
        self._pslc_blocks = frozenset(config.pslc_block_ids())
        self.obs: TraceSink = NULL_SINK
        self.die_free = np.zeros(self.geometry.dies_total, dtype=np.int64)
        self.chan_free = np.zeros(self.geometry.channels, dtype=np.int64)
        self.completed: list[CompletedRequest] = []
        self.now = 0
        # Write-cache admission state: sectors admitted occupy RAM until
        # the flush program that carries them completes on flash.
        self._cache_capacity = self.ftl.cache.capacity
        self._cache_occupied = 0
        self._releases: list[tuple[int, int]] = []  # (complete_ns, sectors)
        self._absorbed_seen = 0

    def attach_sink(self, sink: TraceSink) -> None:
        """Route trace events from the timed layer and the whole FTL
        stack underneath it to *sink*."""
        self.obs = sink
        self.ftl.attach_sink(sink)

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------

    @property
    def num_sectors(self) -> int:
        return self.ftl.num_lpns

    @property
    def sector_size(self) -> int:
        return self.geometry.sector_size

    def submit(self, kind: str, lba: int, nsectors: int, at_ns: int) -> CompletedRequest:
        """Process one host request submitted at *at_ns*.

        Requests must be submitted in non-decreasing time order (the
        workload engine guarantees this).
        """
        at_ns = max(at_ns, self.now)
        self.now = at_ns
        if kind == "write":
            ops = self.ftl.write(lba, nsectors)
            self.smart.host_sectors_written += nsectors
        elif kind == "read":
            ops = self.ftl.read(lba, nsectors)
            self.smart.host_sectors_read += nsectors
        elif kind == "trim":
            ops = self.ftl.trim(lba, nsectors)
        else:
            raise ValueError(f"unknown request kind {kind!r}")

        flash_done = at_ns
        for op in ops:
            self.smart.record(op)
            end = self._schedule_op(op, at_ns)
            flash_done = max(flash_done, end)
            if (op.kind is OpKind.PROGRAM
                    and op.reason in (OpReason.HOST, OpReason.PSLC)):
                # This flush carries cached sectors back out of RAM.
                self._releases.append((end, self.geometry.sectors_per_page))

        if kind == "write":
            complete = self._admit_write(at_ns, nsectors)
        else:
            complete = max(at_ns + self.controller_overhead_ns, flash_done)
        request = CompletedRequest(kind, lba, nsectors, at_ns, complete)
        self.completed.append(request)
        if self.obs.enabled:
            stall = (complete - at_ns - self.controller_overhead_ns
                     if kind == "write" else 0)
            self.obs.emit(HostRequest(
                kind=kind, lba=lba, nsectors=nsectors, submit_ns=at_ns,
                latency_ns=request.latency_ns, stall_ns=max(0, stall),
            ))
        return request

    # ------------------------------------------------------------------
    # Write-cache admission
    # ------------------------------------------------------------------

    def _admit_write(self, at_ns: int, nsectors: int) -> int:
        """When do *nsectors* fit in the cache?  Absorbed sectors (write
        hits) cost nothing; the rest occupy space until flush programs
        release it."""
        absorbed_total = self.ftl.stats.cache_absorbed
        fresh = nsectors - (absorbed_total - self._absorbed_seen)
        self._absorbed_seen = absorbed_total
        self._drain_releases(at_ns)
        self._cache_occupied += max(0, fresh)
        when = at_ns
        if self._cache_occupied > self._cache_capacity and self._releases:
            # Stall until enough flushes complete to fit again.
            self._releases.sort()
            while (self._cache_occupied > self._cache_capacity
                   and self._releases):
                when, sectors = self._releases.pop(0)
                self._cache_occupied = max(0, self._cache_occupied - sectors)
        self._cache_occupied = min(self._cache_occupied,
                                   self._cache_capacity + nsectors)
        if when > at_ns and self.obs.enabled:
            self.obs.emit(CacheStall(stall_ns=when - at_ns,
                                     occupied=self._cache_occupied,
                                     capacity=self._cache_capacity))
        return max(at_ns, when) + self.controller_overhead_ns

    def _drain_releases(self, now: int) -> None:
        kept = []
        for when, sectors in self._releases:
            if when <= now:
                self._cache_occupied = max(0, self._cache_occupied - sectors)
            else:
                kept.append((when, sectors))
        self._releases = kept

    def flush(self, at_ns: int | None = None) -> CompletedRequest:
        """FLUSH CACHE as a timed request."""
        at_ns = self.now if at_ns is None else max(at_ns, self.now)
        self.now = at_ns
        ops = self.ftl.flush()
        complete = at_ns + self.controller_overhead_ns
        for op in ops:
            self.smart.record(op)
            complete = max(complete, self._schedule_op(op, at_ns))
        request = CompletedRequest("flush", 0, 0, at_ns, complete)
        self.completed.append(request)
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="flush", lba=0, nsectors=0,
                                      submit_ns=at_ns,
                                      latency_ns=request.latency_ns))
        return request

    def idle(self, at_ns: int | None = None, max_blocks: int = 8) -> int:
        """A host-idle window: background maintenance runs and occupies
        the dies (delaying whatever the host submits next — the
        "unpredictable background operations" effect)."""
        at_ns = self.now if at_ns is None else max(at_ns, self.now)
        self.now = at_ns
        end = at_ns
        for op in self.ftl.idle_maintenance(max_blocks):
            self.smart.record(op)
            end = max(end, self._schedule_op(op, at_ns))
        return end

    def quiesce(self) -> int:
        """Advance time past all outstanding flash work and cache
        releases (an idle period after preconditioning)."""
        horizon = int(max(int(self.die_free.max()), int(self.chan_free.max()),
                          self.now))
        self.now = horizon
        self._drain_releases(horizon)
        return horizon

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _schedule_op(self, op: FlashOp, earliest: int) -> int:
        geometry = self.geometry
        timing = self.timing
        if op.kind is OpKind.ERASE:
            block = op.target
            array_timing = PSLC if block in self._pslc_blocks else timing
            die = geometry.die_of_block(block)
            channel = geometry.channel_of_block(block)
            onfi = encode_erase(geometry, timing, geometry.block_address(block))
            bus = operation_bus_ns(onfi, timing)
            start = max(earliest, int(self.chan_free[channel]), int(self.die_free[die]))
            self.chan_free[channel] = start + bus
            end = start + bus + array_timing.erase_ns
            self.die_free[die] = end
            self._tap(op, onfi, channel, start)
            return end

        ppn = op.target
        die = geometry.die_of_ppn(ppn)
        channel = geometry.channel_of_ppn(ppn)
        addr = geometry.address(ppn)
        block = ppn // geometry.pages_per_block
        array_timing = PSLC if block in self._pslc_blocks else timing
        if op.kind is OpKind.PROGRAM:
            # ONFI: the controller cannot issue to a busy die, so the
            # bus phase waits for both the channel and the die.
            onfi = encode_program(geometry, timing, addr, op.nbytes or None)
            bus = operation_bus_ns(onfi, timing)
            start = max(earliest, int(self.chan_free[channel]),
                        int(self.die_free[die]))
            bus_end = start + bus
            self.chan_free[channel] = bus_end
            end = bus_end + array_timing.program_ns
            self.die_free[die] = end
            self._tap(op, onfi, channel, start)
            return end

        # Read: command cycles on the bus, array time (tR), then the
        # data moves out over the bus.
        onfi = encode_read(geometry, timing, addr, op.nbytes or None)
        data_ns = timing.transfer_ns(op.nbytes or geometry.page_size)
        cmd_ns = operation_bus_ns(onfi, timing) - data_ns
        start = max(earliest, int(self.chan_free[channel]),
                    int(self.die_free[die]))
        self.chan_free[channel] = start + cmd_ns
        array_end = start + cmd_ns + array_timing.read_ns
        self.die_free[die] = array_end
        bus_start = max(array_end, int(self.chan_free[channel]))
        end = bus_start + data_ns
        self.chan_free[channel] = end
        self._tap(op, onfi, channel, start)
        return end

    def _tap(self, op: FlashOp, onfi: OnfiOperation, channel: int, start: int) -> None:
        if self.bus_tap is not None and channel == self.bus_tap.channel:
            self.bus_tap.observe(op, onfi, start)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def latencies_us(self, kind: str | None = None) -> np.ndarray:
        """Latencies of completed requests, in microseconds."""
        values = [
            r.latency_us for r in self.completed
            if kind is None or r.kind == kind
        ]
        return np.asarray(values, dtype=np.float64)
