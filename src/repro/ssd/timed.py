"""Timed execution: the same FTL under a discrete-event clock.

Latency questions (the paper's Fig 3) need more than op counts: they need
queueing.  :class:`TimedSSD` schedules the FTL's op stream onto the
device's two resource classes —

* **channels**, serializing command/data transfers of every package that
  shares the bus, and
* **dies**, busy for tR/tPROG/tBERS while the array works

— as named :class:`~repro.sim.kernel.Resource` timelines on a
:class:`~repro.sim.kernel.Kernel`: each resource holds the time it next
becomes free, ops claim resources in FTL emission order, and a host
request completes when the last op it *synchronously depends on*
finishes.

Synchronicity model (this is what produces realistic write tails): a
host write completes once its sectors are *admitted* to the RAM write
cache.  Cache space is returned when flush programs complete on the
flash — a :class:`~repro.sim.kernel.CapacityPool` tracks the occupancy
and the heap of scheduled releases — so while the dies keep up, writes
finish in ``controller_overhead_ns``; when foreground GC or queueing
backs the dies up, releases lag, the cache fills, and admissions stall
for milliseconds — the GC-induced tail.  Reads always wait for flash.

Background maintenance can run two ways: the legacy blocking
:meth:`TimedSSD.idle` call (maintenance occupies the dies *now*), or —
after :meth:`TimedSSD.enable_background_maintenance` — as a kernel
process that wakes periodically and does maintenance whenever the host
has left an idle gap, so background work overlaps the gaps between
submissions instead of needing an explicit call.

A :class:`BusTap` can be attached to render every op on one channel into
ONFI pin signals — the hardware-probe substrate of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.flash.errors import FailureInjector
from repro.flash.geometry import Geometry
from repro.flash.onfi import (
    OnfiOperation,
    encode_erase,
    encode_program,
    encode_read,
    operation_bus_ns,
)
from repro.flash.signals import SignalEmitter, SignalTrace
from repro.flash.timing import PSLC, TimingProfile, profile
from repro.obs.events import CacheStall, HostRequest
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.sim.kernel import CapacityPool, Kernel, PowerLoss, Process, Resource
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import Ftl
from repro.ssd.host import HostDeviceBase
from repro.ssd.ops import FlashOp, OpKind, OpReason
from repro.ssd.smart import SmartCounters


class CompletedRequest(NamedTuple):
    """One finished host request with its timing.

    A NamedTuple: one is built per host request on the hot path, where
    frozen-dataclass construction was a measurable cost.
    """

    kind: str
    lba: int
    nsectors: int
    submit_ns: int
    complete_ns: int

    @property
    def latency_ns(self) -> int:
        return self.complete_ns - self.submit_ns

    @property
    def latency_us(self) -> float:
        return self.latency_ns / 1_000


@dataclass(frozen=True)
class BackgroundPolicy:
    """When and how much scheduled background maintenance runs.

    The maintenance process wakes every ``check_interval_ns``; if the
    host has been quiet for ``idle_threshold_ns`` and the flash is
    drained, it runs ``ftl.idle_maintenance(max_blocks)`` and schedules
    the resulting ops — which a later host request then queues behind
    (the §2.1 "unpredictable background operations" effect, without a
    blocking ``idle()`` call).
    """

    idle_threshold_ns: int = 2_000_000
    check_interval_ns: int = 2_000_000
    max_blocks: int = 2


class BusTap:
    """Probe wiring: renders ops on one channel to ONFI signals.

    This is the simulated counterpart of soldering probes to a flash
    package's pinouts: the tap sees bus traffic for a single channel and
    nothing else.
    """

    def __init__(self, geometry: Geometry, timing: TimingProfile, channel: int = 0) -> None:
        if geometry.chips_per_channel * geometry.dies_per_chip != 1:
            raise ValueError(
                "BusTap renders a single R/B# lane, so it models probing a "
                "single-die package; probe a channel with one die (per-die "
                "ready/busy pins are not modeled separately)"
            )
        self.geometry = geometry
        self.timing = timing
        self.channel = channel
        self.emitter = SignalEmitter(timing)

    @property
    def trace(self) -> SignalTrace:
        return self.emitter.trace

    def observe(self, op: FlashOp, onfi_op: OnfiOperation, start_ns: int) -> None:
        self.emitter.emit(onfi_op, start_ns)


class TimedSSD(HostDeviceBase):
    """The FTL scheduled onto channel/die resources under a sim kernel."""

    def __init__(
        self,
        config: SsdConfig,
        model: str = "repro-ssd-timed",
        controller_overhead_ns: int = 8_000,
        bus_tap: BusTap | None = None,
        injector: FailureInjector | None = None,
        fast_path: bool = True,
    ) -> None:
        self.config = config
        self.model = model
        self.geometry = config.geometry
        self.timing = profile(config.timing_name)
        self.controller_overhead_ns = controller_overhead_ns
        #: ``fast_path=False`` forces the per-op ONFI re-encoding path
        #: (and the FTL's general paths) — the measured-in-job reference
        #: for the throughput bench.  Timelines are identical either way.
        self.fast_path = fast_path
        self.ftl = Ftl(config, injector=injector, fast_path=fast_path)
        #: with an injector attached, a pending planned power cut is
        #: honored at the next submission (see :meth:`submit`).
        self._watch_power = injector is not None
        self.smart = SmartCounters()
        self.bus_tap = bus_tap
        #: blocks operated in pSLC mode program/erase at pSLC speed.
        self._pslc_blocks = frozenset(config.pslc_block_ids())
        self.obs: TraceSink = NULL_SINK
        self.kernel = Kernel()
        self._dies: list[Resource] = [
            self.kernel.resource(f"die/{i}")
            for i in range(self.geometry.dies_total)
        ]
        self._channels: list[Resource] = [
            self.kernel.resource(f"channel/{i}")
            for i in range(self.geometry.channels)
        ]
        self.completed: list[CompletedRequest] = []
        #: cached per-(kind, nbytes) bus occupancy: ONFI bus time depends
        #: only on cycle counts and payload length, never on address
        #: values, so encoding once per shape is exact (see _op_bus_ns).
        self._op_ns: dict[tuple[OpKind, int], int | tuple[int, int]] = {}
        # Write-cache admission state: sectors admitted occupy RAM until
        # the flush program that carries them completes on flash.
        self._cache_pool = CapacityPool(self.ftl.cache.capacity)
        self._absorbed_seen = 0
        self._last_host_ns = 0
        self._background: Process | None = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.kernel.now

    @now.setter
    def now(self, value: int) -> None:
        # Hosts may only move time forward (e.g. an FS backend advancing
        # past a synchronous request's completion).
        self.kernel.run_until(max(self.kernel.now, int(value)))

    def attach_sink(self, sink: TraceSink) -> None:
        """Route trace events from the timed layer, the sim kernel's
        resources, and the whole FTL stack underneath to *sink*."""
        self.obs = sink
        self.kernel.attach_sink(sink)
        self.ftl.attach_sink(sink)

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------

    def submit(self, kind: str, lba: int, nsectors: int, at_ns: int) -> CompletedRequest:
        """Process one host request submitted at *at_ns*.

        Requests must be submitted in non-decreasing time order (the
        workload engine guarantees this).  Advancing to *at_ns* first
        fires any kernel events due in the gap — scheduled background
        maintenance runs here, overlapping host idle time.

        When a planned fault injector has a power cut pending (armed by
        a previous request's ``tick``), the plug is pulled before this
        request touches the device: :class:`~repro.sim.kernel.PowerLoss`
        propagates to the caller, and whatever the RAM cache held that
        never reached flash is gone (the crash sweep's semantics).
        """
        kernel = self.kernel
        if self._watch_power and self.ftl.injector.power_cut_pending():
            raise PowerLoss(max(kernel.now, at_ns))
        if at_ns < kernel.now:
            at_ns = kernel.now
        if kernel._fel:
            kernel.run_until(at_ns)
        elif at_ns > kernel.now:
            # run_until with an empty event list only moves the clock;
            # skipping the call matters at millions of requests.
            kernel.now = at_ns
        self._last_host_ns = at_ns
        if kind == "write":
            ops = self.ftl.write(lba, nsectors)
            self.smart.host_sectors_written += nsectors
        elif kind == "read":
            ops = self.ftl.read(lba, nsectors)
            self.smart.host_sectors_read += nsectors
        elif kind == "trim":
            ops = self.ftl.trim(lba, nsectors)
        else:
            raise ValueError(f"unknown request kind {kind!r}")

        flash_done = at_ns
        if ops:
            record = self.smart.record
            schedule_op = self._schedule_op
            spp = self.geometry.sectors_per_page
            schedule_release = self._cache_pool.schedule_release
            for op in ops:
                record(op)
                end = schedule_op(op, at_ns)
                if end > flash_done:
                    flash_done = end
                if (op.kind is OpKind.PROGRAM
                        and op.reason in (OpReason.HOST, OpReason.PSLC)):
                    # This flush carries cached sectors back out of RAM.
                    schedule_release(end, spp)

        if kind == "write":
            complete = self._admit_write(at_ns, nsectors)
        else:
            complete = max(at_ns + self.controller_overhead_ns, flash_done)
        request = CompletedRequest(kind, lba, nsectors, at_ns, complete)
        self.completed.append(request)
        if self.obs.enabled:
            stall = (complete - at_ns - self.controller_overhead_ns
                     if kind == "write" else 0)
            self.obs.emit(HostRequest(
                kind=kind, lba=lba, nsectors=nsectors, submit_ns=at_ns,
                latency_ns=request.latency_ns, stall_ns=max(0, stall),
            ))
        return request

    # -- synchronous sector commands (HostDevice surface) --------------
    #
    # Counter-mode callers (FS models, black-box probes) drive a device
    # one command at a time; on a timed device that means submitting at
    # the current clock and advancing past the completion.

    def write_sectors(self, lba: int, count: int = 1) -> CompletedRequest:
        """Write synchronously at the current clock; time advances past
        the request's completion."""
        return self._submit_sync("write", lba, count)

    def read_sectors(self, lba: int, count: int = 1) -> CompletedRequest:
        return self._submit_sync("read", lba, count)

    def trim_sectors(self, lba: int, count: int = 1) -> CompletedRequest:
        return self._submit_sync("trim", lba, count)

    def _submit_sync(self, kind: str, lba: int, count: int) -> CompletedRequest:
        request = self.submit(kind, lba, count, at_ns=self.now)
        self.now = request.complete_ns
        return request

    # ------------------------------------------------------------------
    # Write-cache admission
    # ------------------------------------------------------------------

    def _admit_write(self, at_ns: int, nsectors: int) -> int:
        """When do *nsectors* fit in the cache?  Absorbed sectors (write
        hits) cost nothing; the rest occupy space until flush programs
        release it."""
        absorbed_total = self.ftl.stats.cache_absorbed
        fresh = nsectors - (absorbed_total - self._absorbed_seen)
        self._absorbed_seen = absorbed_total
        when = self._cache_pool.acquire(at_ns, fresh, overshoot=nsectors)
        if when > at_ns and self.obs.enabled:
            self.obs.emit(CacheStall(stall_ns=when - at_ns,
                                     occupied=self._cache_pool.occupied,
                                     capacity=self._cache_pool.capacity))
        return when + self.controller_overhead_ns

    def flush(self, at_ns: int | None = None) -> CompletedRequest:
        """FLUSH CACHE as a timed request."""
        at_ns = self.now if at_ns is None else max(at_ns, self.now)
        self.kernel.run_until(at_ns)
        self._last_host_ns = at_ns
        ops = self.ftl.flush()
        complete = at_ns + self.controller_overhead_ns
        for op in ops:
            self.smart.record(op)
            complete = max(complete, self._schedule_op(op, at_ns))
        request = CompletedRequest("flush", 0, 0, at_ns, complete)
        self.completed.append(request)
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="flush", lba=0, nsectors=0,
                                      submit_ns=at_ns,
                                      latency_ns=request.latency_ns))
        return request

    def shutdown(self, at_ns: int | None = None) -> CompletedRequest:
        """Clean power-down: flush data, checkpoint the map — timed."""
        flushed = self.flush(at_ns)
        complete = flushed.complete_ns
        for op in self.ftl.checkpoint():
            self.smart.record(op)
            complete = max(complete, self._schedule_op(op, self.now))
        request = CompletedRequest("shutdown", 0, 0, flushed.submit_ns, complete)
        self.completed.append(request)
        if self.obs.enabled:
            self.obs.emit(HostRequest(kind="shutdown", lba=0, nsectors=0,
                                      submit_ns=request.submit_ns,
                                      latency_ns=request.latency_ns))
        return request

    # ------------------------------------------------------------------
    # Background maintenance
    # ------------------------------------------------------------------

    def idle(self, at_ns: int | None = None, max_blocks: int = 8) -> int:
        """A host-idle window: background maintenance runs and occupies
        the dies (delaying whatever the host submits next — the
        "unpredictable background operations" effect).  Blocking form;
        see :meth:`enable_background_maintenance` for the scheduled
        form."""
        at_ns = self.now if at_ns is None else max(at_ns, self.now)
        self.kernel.run_until(at_ns)
        end = at_ns
        for op in self.ftl.idle_maintenance(max_blocks):
            self.smart.record(op)
            end = max(end, self._schedule_op(op, at_ns))
        return end

    def enable_background_maintenance(
        self, policy: BackgroundPolicy | None = None
    ) -> Process:
        """Run idle maintenance as scheduled kernel events.

        A kernel process wakes every ``policy.check_interval_ns``; when
        the host has been quiet past ``policy.idle_threshold_ns`` and
        all flash resources are drained, it performs one maintenance
        round at that instant.  The work overlaps host idle gaps: a
        request submitted later at a time the maintenance made busy
        queues behind it.  Returns the process (``.cancel()`` stops it);
        calling again replaces the previous policy.
        """
        if self._background is not None:
            self._background.cancel()
        self._bg_policy = policy or BackgroundPolicy()
        self._background = self.kernel.spawn(self._background_loop())
        return self._background

    def disable_background_maintenance(self) -> None:
        if self._background is not None:
            self._background.cancel()
            self._background = None

    def _background_loop(self):
        policy = self._bg_policy
        while True:
            yield policy.check_interval_ns
            now = self.kernel.now
            if now - self._last_host_ns < policy.idle_threshold_ns:
                continue
            if self.kernel.horizon() > now:
                continue  # flash still working; wait for a real gap
            for op in self.ftl.idle_maintenance(policy.max_blocks):
                self.smart.record(op)
                self._schedule_op(op, now)

    def quiesce(self) -> int:
        """Advance time past all outstanding flash work and cache
        releases (an idle period after preconditioning).  Scheduled
        background maintenance due in the window runs — and may extend
        it — before the horizon is final."""
        horizon = self.kernel.horizon()
        while True:
            next_at = self.kernel.next_event_at()
            if next_at is None or next_at > horizon:
                break
            self.kernel.run_until(horizon)
            horizon = max(horizon, self.kernel.horizon())
        self.kernel.run_until(horizon)
        self._cache_pool.release_due(horizon)
        return horizon

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def _schedule_op(self, op: FlashOp, earliest: int) -> int:
        """Place one flash op on its channel/die timeline; returns its
        end time.  The fast lane reuses cached bus occupancies instead of
        re-encoding the ONFI cycle list per op; a bus tap needs the real
        cycles, so it forces the encoded path."""
        if self.bus_tap is not None or not self.fast_path:
            return self._schedule_op_encoded(op, earliest)
        kind = op.kind
        key = (kind, op.nbytes)
        ns = self._op_ns.get(key)
        if ns is None:
            ns = self._op_ns[key] = self._op_bus_ns(op)
        geometry = self.geometry
        if kind is OpKind.ERASE:
            block = op.target
            array_timing = PSLC if block in self._pslc_blocks else self.timing
            die = self._dies[geometry.die_of_block(block)]
            channel = self._channels[geometry.channel_of_block(block)]
            start = max(earliest, channel.free_at, die.free_at)
            channel.hold(start, start + ns, requested_ns=earliest)
            return die.hold(start + ns, start + ns + array_timing.erase_ns,
                            requested_ns=earliest)
        ppn = op.target
        die = self._dies[geometry.die_of_ppn(ppn)]
        channel = self._channels[geometry.channel_of_ppn(ppn)]
        block = ppn // geometry.pages_per_block
        array_timing = PSLC if block in self._pslc_blocks else self.timing
        if kind is OpKind.PROGRAM:
            start = max(earliest, channel.free_at, die.free_at)
            bus_end = channel.hold(start, start + ns, requested_ns=earliest)
            return die.hold(bus_end, bus_end + array_timing.program_ns,
                            requested_ns=earliest)
        cmd_ns, data_ns = ns
        start = max(earliest, channel.free_at, die.free_at)
        cmd_end = channel.hold(start, start + cmd_ns, requested_ns=earliest)
        array_end = die.hold(cmd_end, cmd_end + array_timing.read_ns,
                             requested_ns=earliest)
        bus_start = max(array_end, channel.free_at)
        return channel.hold(bus_start, bus_start + data_ns,
                            requested_ns=array_end)

    def _op_bus_ns(self, op: FlashOp) -> int | tuple[int, int]:
        """Bus occupancy for ops shaped like *op*.

        :func:`operation_bus_ns` sums per-cycle times, and the cycle
        *list shape* (command + address counts, payload length) is fixed
        per (kind, nbytes) — address byte values never change the total —
        so encoding one representative op is exact for all of them.
        Reads return ``(cmd_ns, data_ns)``: command cycles and data-out
        occupy the channel on either side of the array busy time.
        """
        geometry = self.geometry
        timing = self.timing
        if op.kind is OpKind.ERASE:
            onfi = encode_erase(geometry, timing,
                                geometry.block_address(op.target))
            return operation_bus_ns(onfi, timing)
        addr = geometry.address(op.target)
        if op.kind is OpKind.PROGRAM:
            onfi = encode_program(geometry, timing, addr, op.nbytes or None)
            return operation_bus_ns(onfi, timing)
        onfi = encode_read(geometry, timing, addr, op.nbytes or None)
        data_ns = timing.transfer_ns(op.nbytes or geometry.page_size)
        return (operation_bus_ns(onfi, timing) - data_ns, data_ns)

    def _schedule_op_encoded(self, op: FlashOp, earliest: int) -> int:
        geometry = self.geometry
        timing = self.timing
        if op.kind is OpKind.ERASE:
            block = op.target
            array_timing = PSLC if block in self._pslc_blocks else timing
            die = self._dies[geometry.die_of_block(block)]
            channel = self._channels[geometry.channel_of_block(block)]
            onfi = encode_erase(geometry, timing, geometry.block_address(block))
            bus = operation_bus_ns(onfi, timing)
            start = max(earliest, channel.free_at, die.free_at)
            channel.hold(start, start + bus, requested_ns=earliest)
            end = die.hold(start + bus, start + bus + array_timing.erase_ns,
                           requested_ns=earliest)
            self._tap(op, onfi, channel, start)
            return end

        ppn = op.target
        die = self._dies[geometry.die_of_ppn(ppn)]
        channel = self._channels[geometry.channel_of_ppn(ppn)]
        addr = geometry.address(ppn)
        block = ppn // geometry.pages_per_block
        array_timing = PSLC if block in self._pslc_blocks else timing
        if op.kind is OpKind.PROGRAM:
            # ONFI: the controller cannot issue to a busy die, so the
            # bus phase waits for both the channel and the die.
            onfi = encode_program(geometry, timing, addr, op.nbytes or None)
            bus = operation_bus_ns(onfi, timing)
            start = max(earliest, channel.free_at, die.free_at)
            bus_end = channel.hold(start, start + bus, requested_ns=earliest)
            end = die.hold(bus_end, bus_end + array_timing.program_ns,
                           requested_ns=earliest)
            self._tap(op, onfi, channel, start)
            return end

        # Read: command cycles on the bus, array time (tR), then the
        # data moves out over the bus.
        onfi = encode_read(geometry, timing, addr, op.nbytes or None)
        data_ns = timing.transfer_ns(op.nbytes or geometry.page_size)
        cmd_ns = operation_bus_ns(onfi, timing) - data_ns
        start = max(earliest, channel.free_at, die.free_at)
        cmd_end = channel.hold(start, start + cmd_ns, requested_ns=earliest)
        array_end = die.hold(cmd_end, cmd_end + array_timing.read_ns,
                             requested_ns=earliest)
        bus_start = max(array_end, channel.free_at)
        end = channel.hold(bus_start, bus_start + data_ns,
                           requested_ns=array_end)
        self._tap(op, onfi, channel, start)
        return end

    def _tap(self, op: FlashOp, onfi: OnfiOperation, channel: Resource,
             start: int) -> None:
        if self.bus_tap is not None and channel is self._channels[self.bus_tap.channel]:
            self.bus_tap.observe(op, onfi, start)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def latencies_us(self, kind: str | None = None) -> np.ndarray:
        """Latencies of completed requests, in microseconds."""
        values = [
            r.latency_us for r in self.completed
            if kind is None or r.kind == kind
        ]
        return np.asarray(values, dtype=np.float64)
