"""Device presets modeled on the drives the paper measured.

Every preset is scaled down from the real device (gigabytes instead of
hundreds of gigabytes) so experiments run in seconds; the *structural*
parameters — page sizes, stripe widths, channel counts, mapping-chunk
shape — follow what the paper reports or what its mechanisms require.
A ``scale`` argument shrinks geometry further for unit tests.
"""

from __future__ import annotations

from repro.flash.geometry import Geometry
from repro.ssd.config import SsdConfig


def mx500_like(scale: int = 1) -> SsdConfig:
    """Crucial MX500 model (the §2.2 black-box target).

    Key structure: 32 KB NAND pages with 15+1 RAIN striping, so that
    host-bytes-per-NAND-page converges at 32 KB * 15/16 = 30 KB (Fig 4a);
    a data-designated write cache; bounded dirty-TP RAM so that the
    Fig 4b working-set union overflows it.
    """
    scale = max(1, scale)
    geometry = Geometry(
        channels=4,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=max(8, 64 // scale),
        pages_per_block=max(16, 128 // scale),
        page_size=32768,
        sector_size=4096,
    )
    return SsdConfig(
        geometry=geometry,
        timing_name="tlc",
        op_ratio=0.07,
        gc_policy="greedy",
        cache_designation="data",
        cache_sectors=512,
        mapping_tp_lpns=2048,
        mapping_dirty_tp_limit=160,
        mapping_sync_interval=4096,
        allocation_scheme="CWDP",
        rain_stripe=15,
    )


def evo840_like(scale: int = 1) -> SsdConfig:
    """Samsung 840 EVO model (the §3.2 JTAG target).

    Key structure: eight channels split between two flash cores by the
    LBA LSB; a TLC array with a pSLC (TurboWrite) buffer fronted by a
    hashed index; a demand-loaded map whose chunks each cover 117.5 MB of
    logical space (30080 sectors = 8 translation pages of 3760 entries).
    """
    scale = max(1, scale)
    geometry = Geometry(
        channels=8,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=max(8, 64 // scale),
        pages_per_block=max(16, 64 // scale),
        page_size=16384,
        sector_size=4096,
    )
    return SsdConfig(
        geometry=geometry,
        timing_name="tlc",
        op_ratio=0.08,
        gc_policy="greedy",
        cache_designation="mapping",  # "the SSD does not use DRAM to cache data"
        cache_sectors=256,
        mapping_tp_lpns=3760,
        mapping_dirty_tp_limit=64,
        mapping_sync_interval=8192,
        mapping_chunk_lpns=30080,  # 117.5 MB of logical space per chunk
        mapping_resident_chunks=4,
        allocation_scheme="CWDP",
        pslc_blocks=max(2, 8 // scale),
    )


def mqsim_baseline(scale: int = 1) -> SsdConfig:
    """The §2.1 fidelity experiment's baseline FTL configuration.

    The paper varies three knobs against this base: GC victim selection
    (greedy -> randomized_greedy), write-cache designation
    (data -> mapping), and page allocation (CWDP -> PDWC).
    """
    scale = max(1, scale)
    geometry = Geometry(
        channels=4,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=max(24, 48 // scale),
        pages_per_block=max(16, 64 // scale),
        page_size=16384,
        sector_size=4096,
    )
    return SsdConfig(
        geometry=geometry,
        timing_name="mlc",
        op_ratio=0.10,
        gc_policy="greedy",
        gc_low_water_blocks=2,
        gc_high_water_blocks=3,
        cache_designation="data",
        cache_sectors=256,
        mapping_tp_lpns=2048,
        mapping_dirty_tp_limit=96,
        mapping_sync_interval=8192,
        allocation_scheme="CWDP",
    )


def ssd64_like(scale: int = 1) -> SsdConfig:
    """Fig 1's smaller, older drive: tight over-provisioning, small
    mapping RAM, TLC timing — ages badly."""
    scale = max(1, scale)
    geometry = Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=max(8, 64 // scale),
        pages_per_block=max(16, 64 // scale),
        page_size=16384,
        sector_size=4096,
    )
    return SsdConfig(
        geometry=geometry,
        timing_name="tlc",
        op_ratio=0.04,
        gc_policy="random",
        cache_designation="data",
        cache_sectors=64,
        mapping_tp_lpns=2048,
        mapping_dirty_tp_limit=32,
        mapping_sync_interval=2048,
        allocation_scheme="DPWC",
    )


def ssd120_like(scale: int = 1) -> SsdConfig:
    """Fig 1's larger drive: generous over-provisioning, greedy GC,
    bigger cache — ages gracefully."""
    scale = max(1, scale)
    geometry = Geometry(
        channels=4,
        chips_per_channel=1,
        dies_per_chip=2,
        planes_per_die=2,
        blocks_per_plane=max(8, 64 // scale),
        pages_per_block=max(16, 64 // scale),
        page_size=16384,
        sector_size=4096,
    )
    return SsdConfig(
        geometry=geometry,
        timing_name="mlc",
        op_ratio=0.12,
        gc_policy="greedy",
        cache_designation="data",
        cache_sectors=512,
        mapping_tp_lpns=2048,
        mapping_dirty_tp_limit=192,
        mapping_sync_interval=8192,
        allocation_scheme="CWDP",
    )


def vertex2_like(scale: int = 1) -> SsdConfig:
    """OCZ Vertex II model (the §3.1 probe target).

    An early-SATA-era drive: asynchronous ONFI bus at probeable signal
    rates, one single-die package per channel (so the tap's single
    R/B# lane is faithful), small pages.
    """
    scale = max(1, scale)
    geometry = Geometry(
        channels=4,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=max(16, 32 // scale),
        pages_per_block=max(16, 64 // scale),
        page_size=8192,
        sector_size=4096,
    )
    return SsdConfig(
        geometry=geometry,
        timing_name="async",
        op_ratio=0.12,
        gc_policy="greedy",
        cache_designation="data",
        cache_sectors=64,
        mapping_tp_lpns=1024,
        mapping_dirty_tp_limit=64,
        mapping_sync_interval=4096,
        allocation_scheme="CWDP",
    )


def tiny(scale: int = 1) -> SsdConfig:
    """A minimal device for unit tests: fast to construct and fill."""
    geometry = Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=8,
        page_size=8192,
        sector_size=4096,
    )
    return SsdConfig(
        geometry=geometry,
        timing_name="mlc",
        op_ratio=0.30,
        gc_low_water_blocks=1,
        gc_high_water_blocks=2,
        cache_sectors=8,
        mapping_tp_lpns=64,
        mapping_dirty_tp_limit=8,
        mapping_sync_interval=256,
    )


PRESETS = {
    "mx500": mx500_like,
    "evo840": evo840_like,
    "mqsim": mqsim_baseline,
    "ssd64": ssd64_like,
    "ssd120": ssd120_like,
    "vertex2": vertex2_like,
    "tiny": tiny,
}
