"""The controller's RAM write cache.

One of the three design knobs the paper varies in its Fig 3 experiment is
"write cache designation (data or mapping metadata)": the same RAM can
buffer host *data* (absorbing overwrites and packing sectors into full
flash pages before programming) or be given to the mapping layer
(holding more dirty translation pages, reducing metadata writes).

:class:`WriteCache` implements the data designation.  The mapping
designation is wired in the FTL: the RAM budget is added to the mapping
table's dirty-TP allowance and the data path runs through a minimal,
one-page staging buffer (sectors are still packed into whole pages, but
nothing is absorbed).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.obs.events import CacheAdmit, CacheFlush
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.policy.base import CacheEvictionPolicy
from repro.ssd.policy.cache import cache_eviction_policies


class WriteCache:
    """Cache of pending host sector writes with a pluggable eviction order.

    ``insert`` returns ``True`` on a *write hit* — the sector was already
    pending, so the new version replaces it and no flash write is owed for
    the older one (write absorption).  When occupancy exceeds the
    capacity, the FTL asks for flush batches until it fits again.  The
    eviction policy (default ``lru``) decides which pending sector each
    flush batch drains next and whether a hit refreshes recency.
    """

    def __init__(
        self,
        capacity_sectors: int,
        eviction: str | CacheEvictionPolicy = "lru",
    ) -> None:
        if capacity_sectors < 1:
            raise ValueError("capacity_sectors must be >= 1")
        if isinstance(eviction, str):
            eviction = cache_eviction_policies.resolve(eviction)()
        self.eviction = eviction.name
        self._on_hit = eviction.on_hit  # bound once: no per-op dispatch
        self._pop = eviction.pop
        self.capacity = capacity_sectors
        self._pending: OrderedDict[int, None] = OrderedDict()
        self.obs: TraceSink = NULL_SINK
        self.hits = 0
        self.insertions = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._pending

    @property
    def needs_flush(self) -> bool:
        return len(self._pending) > self.capacity

    def insert(self, lpn: int) -> bool:
        """Buffer one sector write; returns True if it absorbed an older
        pending write to the same LPN."""
        self.insertions += 1
        if lpn in self._pending:
            self._on_hit(lpn, self._pending)
            self.hits += 1
            if self.obs.enabled:
                self.obs.emit(CacheAdmit(lpn=lpn, absorbed=True))
            return True
        self._pending[lpn] = None
        if self.obs.enabled:
            self.obs.emit(CacheAdmit(lpn=lpn, absorbed=False))
        return False

    def take_flush_batch(self, max_sectors: int) -> list[int]:
        """Remove up to *max_sectors* of the oldest pending sectors.

        The batch is returned sorted by LPN: the FTL packs one batch into
        one flash page, and real caches coalesce neighbouring sectors so
        that sequential streams produce sequentially-packed pages.
        """
        if max_sectors < 1:
            raise ValueError("max_sectors must be >= 1")
        batch = []
        while self._pending and len(batch) < max_sectors:
            batch.append(self._pop(self._pending))
        batch.sort()
        if batch and self.obs.enabled:
            self.obs.emit(CacheFlush(sectors=len(batch),
                                     pending=len(self._pending)))
        return batch

    def drop(self, lpn: int) -> bool:
        """Remove a pending sector without writing it (TRIM path)."""
        if lpn in self._pending:
            del self._pending[lpn]
            return True
        return False

    def drain_batches(self, max_sectors: int) -> list[list[int]]:
        """Empty the cache completely (host flush / shutdown)."""
        batches = []
        while self._pending:
            batches.append(self.take_flush_batch(max_sectors))
        return batches

    @property
    def hit_rate(self) -> float:
        if not self.insertions:
            return 0.0
        return self.hits / self.insertions
