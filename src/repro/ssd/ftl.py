"""The flash translation layer.

This is the "complex layer of proprietary firmware" the paper is about:
it owns the logical-to-physical map, the write cache, page allocation,
garbage collection, RAIN parity, and the pSLC buffer, and it emits a
:class:`~repro.ssd.ops.FlashOp` stream describing every physical
operation it causes.

Write path (host sector granularity)::

    host sector -> write cache (absorb/pack) -> [pSLC buffer] -> data page
                                  \\-> mapping update -> dirty TP -> meta page
                                  \\-> RAIN stripe accounting -> parity page
                                  \\-> free-block pressure -> GC migrations

Accounting conventions (documented because the black-box experiments
measure them):

* Host data page programs count as *host* pages even when they land in
  the pSLC buffer; drain traffic counts as FTL (reason ``PSLC``).
* GC migrations update the map via :meth:`MappingTable.silent_update` —
  real FTLs piggyback those updates on the destination block's OOB, so
  they do not generate additional translation-page writes here.
* RAIN parity pages are counted but held as immediately-invalid overhead
  (parity is reconstructible; GC never migrates it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.errors import (
    PSLC_RELIABILITY,
    RELIABILITY_BY_TIMING,
    FailureInjector,
    ReliabilityModel,
)
from repro.flash.geometry import Geometry
from repro.flash.nand import NO_LPN, NandArray
from repro.obs.events import (
    BlockRetired,
    DegradedModeChanged,
    FlashOpIssued,
    GcFinished,
    GcStarted,
    RainReconstruction,
    ReadRetry,
)
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.allocation import OutOfSpace, PageAllocator
from repro.ssd.cache import WriteCache
from repro.ssd.config import SsdConfig
from repro.ssd.gc import VictimSelector
from repro.ssd.mapping import UNMAPPED, MappingEvents, MappingTable
from repro.ssd.ops import FlashOp, OpKind, OpReason
from repro.ssd.policy import cache_admission_policies, cache_designations
from repro.ssd.rain import RainAccountant
from repro.ssd.slc import PslcBuffer
from repro.ssd.wearlevel import WearLeveler

#: p2l code space: values <= META_P2L_BASE mark metadata pages; the
#: translation-page id is recovered as ``META_P2L_BASE - value``.
META_P2L_BASE = -2

#: p2l value of a slot holding nothing valid.
P2L_NONE = -1


def _tp_to_p2l(tp_id: int) -> int:
    return META_P2L_BASE - tp_id


def _p2l_to_tp(value: int) -> int:
    return META_P2L_BASE - value


class ReadOnlyError(Exception):
    """The device is in read-only degraded mode: grown bad blocks have
    eaten the spare pool down to ``spare_blocks_min`` and accepting more
    writes could strand data with no block to migrate it to.  Reads (and
    draining already-acknowledged cache contents) still work."""


@dataclass
class FtlStats:
    """FTL-internal statistics (invisible to a black-box observer)."""

    host_sector_writes: int = 0
    host_sector_reads: int = 0
    cache_absorbed: int = 0
    gc_invocations: int = 0
    gc_migrated_sectors: int = 0
    pslc_staged_sectors: int = 0
    pslc_drains: int = 0
    blocks_retired: int = 0
    trimmed_sectors: int = 0
    idle_gc_blocks: int = 0
    wear_migrations: int = 0
    refreshed_blocks: int = 0
    uncorrectable_reads: int = 0
    read_retries: int = 0
    rain_reconstructions: int = 0
    relocated_sectors: int = 0


class Ftl:
    """Page-mapped FTL over a :class:`NandArray`."""

    def __init__(
        self,
        config: SsdConfig,
        nand: NandArray | None = None,
        injector: FailureInjector | None = None,
        reliability: ReliabilityModel | None = None,
        *,
        fast_path: bool = True,
    ) -> None:
        self.config = config
        #: ``fast_path=False`` forces the pre-refactor-shaped general
        #: code paths everywhere (per-slot bookkeeping, full plane scans,
        #: allocating mapping results).  It exists as the measured-in-job
        #: reference for the throughput bench and the fast==reference
        #: equivalence tests; results are byte-identical either way.
        self._fast = fast_path
        geometry = config.geometry
        self.geometry = geometry
        self.nand = nand if nand is not None else NandArray(
            geometry, erase_limit=config.erase_limit
        )
        self.injector = injector if injector is not None else FailureInjector()
        self.reliability = (reliability if reliability is not None
                            else RELIABILITY_BY_TIMING[config.timing_name])

        spp = self._spp = geometry.sectors_per_page
        self.num_lpns = config.logical_sectors
        total_psas = geometry.total_pages * spp
        #: physical-sector -> logical-sector reverse map (see p2l codes above).
        self.p2l = np.full(total_psas, P2L_NONE, dtype=np.int64)
        self.sector_valid = np.zeros(total_psas, dtype=bool)
        self.block_valid = np.zeros(geometry.total_blocks, dtype=np.int32)

        # pSLC buffer blocks are striped across planes (TurboWrite-style
        # fixed regions with full die parallelism).
        pslc_block_ids = list(config.pslc_block_ids())
        self.pslc = PslcBuffer(geometry, pslc_block_ids)
        excluded = frozenset(pslc_block_ids)

        self.allocator = PageAllocator(
            geometry, self.nand, config.allocation_scheme, excluded_blocks=excluded
        )
        # Stream routing (e.g. hotcold separation) only exists when the
        # allocation policy declares extra streams; the default path
        # skips the per-page route call entirely.
        self._routed = bool(self.allocator.policy.extra_streams)
        self._route = self.allocator.route

        designation = cache_designations.resolve(config.cache_designation)()
        plan = designation.plan(config.cache_sectors, geometry)
        dirty_limit = config.mapping_dirty_tp_limit + plan.extra_dirty_tps
        self.cache = WriteCache(plan.cache_sectors,
                                eviction=config.cache_eviction)

        admission = cache_admission_policies.resolve(config.cache_admission)()
        #: fast-path flag: skip the per-sector admit() call when the
        #: policy admits unconditionally (the default).
        self._admit_always = admission.always
        self._admit = admission.admit
        #: direct page-packing staging buffer for cache-bypassing
        #: sectors (at most one page's worth pending).
        self._staged: list[int] = []

        self.mapping = MappingTable(
            num_lpns=self.num_lpns,
            tp_lpns=config.mapping_tp_lpns,
            dirty_tp_limit=dirty_limit,
            sync_interval=config.mapping_sync_interval,
            chunk_lpns=config.mapping_chunk_lpns,
            resident_chunks=config.mapping_resident_chunks,
        )
        self.mapping.fast_path = fast_path
        self.allocator.set_gc_watermark(config.gc_low_water_blocks)
        self.selector = VictimSelector(
            config.gc_policy,
            geometry,
            self.nand,
            self.allocator,
            self.block_valid,
            sample_size=config.gc_sample_size,
        )
        self.rain = RainAccountant(config.rain_stripe)
        self.leveler = WearLeveler(
            geometry, self.nand, self.allocator,
            delta=config.wear_leveling_delta,
            policy=config.wear_policy,
            sample_size=config.gc_sample_size,
        ) if config.wear_leveling else None
        #: host-sector-write sequence when each block was first programmed
        #: since its last erase (-1 = not programmed); drives refresh age.
        self.block_birth = np.full(geometry.total_blocks, -1, dtype=np.int64)
        self._op_seq = 0
        #: host commands seen (write/read/trim calls) — the op clock the
        #: fault injector's ``at_op`` triggers count against.
        self._host_ops = 0
        #: terminal degraded state: writes/trims raise ReadOnlyError.
        self.degraded_read_only = False
        self.obs: TraceSink = NULL_SINK
        self.stats = FtlStats()
        self._ops: list[FlashOp] = []
        #: blocks currently being migrated (nested GC must not touch them).
        self._gc_in_flight: set[int] = set()
        #: True while GC migration is writing; migration draws on the
        #: watermark reserve instead of recursively triggering GC.
        self._in_gc = False
        #: name of the policy currently driving maintenance traffic
        #: (labels FlashOpIssued events; "" on the plain host path).
        self._active_policy = ""

    def attach_sink(self, sink: TraceSink) -> None:
        """Route this FTL's trace events (and those of its write cache,
        victim selector, pSLC buffer, and wear leveler) to *sink*.
        Pass :data:`~repro.obs.sinks.NULL_SINK` to detach."""
        self.obs = sink
        self.cache.obs = sink
        self.selector.obs = sink
        self.pslc.obs = sink
        if self.leveler is not None:
            self.leveler.obs = sink
        if hasattr(self.injector, "obs"):
            self.injector.obs = sink

    # ------------------------------------------------------------------
    # Host interface
    # ------------------------------------------------------------------

    def write(self, lpn: int, nsectors: int = 1) -> list[FlashOp]:
        """Write *nsectors* consecutive logical sectors starting at *lpn*."""
        self._check_range(lpn, nsectors)
        self._check_writable()
        self._host_ops += 1
        self.injector.tick(self._host_ops)
        if self._fast and nsectors == 1 and self._admit_always:
            # Single-sector admit-always lane: the dominant request shape
            # (one heap-ordered request per host op) without the range
            # loop or the per-sector admission dispatch.
            ops = self._ops = []
            self.stats.host_sector_writes += 1
            self._op_seq += 1
            cache = self.cache
            if cache.insert(lpn):
                self.stats.cache_absorbed += 1
            while cache.needs_flush:
                self._flush_one_batch()
            return ops
        self._ops = []
        for sector in range(lpn, lpn + nsectors):
            self.stats.host_sector_writes += 1
            self._op_seq += 1
            if not self._admit_always and not self._admit(sector, self.cache):
                self._stage_direct(sector)
                continue
            if self.cache.insert(sector):
                self.stats.cache_absorbed += 1
            while self.cache.needs_flush:
                self._flush_one_batch()
        return self._ops

    def read(self, lpn: int, nsectors: int = 1) -> list[FlashOp]:
        """Read *nsectors* consecutive logical sectors starting at *lpn*."""
        self._check_range(lpn, nsectors)
        self._host_ops += 1
        self.injector.tick(self._host_ops)
        self._ops = []
        for sector in range(lpn, lpn + nsectors):
            self.stats.host_sector_reads += 1
            if sector in self.cache:
                continue  # RAM hit
            if self._staged and sector in self._staged:
                continue  # RAM hit in the bypass staging buffer
            psa = self.pslc.lookup(sector)
            if psa is None:
                psa, events = self.mapping.lookup(sector)
                self._apply_mapping_events(events)
            if psa is not None and psa != UNMAPPED:
                ppn = psa // self.geometry.sectors_per_page
                self._emit(FlashOp(OpKind.READ, ppn, OpReason.HOST,
                                   self.geometry.sector_size))
                self._check_read_integrity(ppn, sector)
        return self._ops

    def _check_read_integrity(self, ppn: int, lpn: int) -> None:
        """Degraded read path: ECC check, read-retry ladder, RAIN
        reconstruction.

        An uncorrectable read comes from two sources: the retention/ECC
        model (expected raw bit errors exceed the ECC budget — a *soft*
        failure real firmware attacks with shifted-sense re-reads) or the
        fault injector (a *hard* failure no retry cures).  The ladder
        runs in both cases, charging one extra flash read per step; on
        exhaustion, a RAIN-protected device rebuilds the page from its
        stripe peers and relocates the sector, otherwise the sector is
        reported uncorrectable (counted, not fatal — real drives report
        the sector and carry on)."""
        hard = self.injector.read_uncorrectable(ppn, lpn)
        budget = self._expected_read_errors(ppn)
        if not hard and (budget is None or budget[0] <= budget[1]):
            return
        config = self.config
        for step in range(1, config.read_retry_steps + 1):
            self.stats.read_retries += 1
            self._emit(FlashOp(OpKind.READ, ppn, OpReason.HOST,
                               self.geometry.sector_size))
            success = (not hard and budget is not None
                       and budget[0] * config.read_retry_rber_factor ** step
                       <= budget[1])
            if self.obs.enabled:
                self.obs.emit(ReadRetry(ppn=ppn, step=step, success=success))
            if success:
                return
        if self.rain.enabled:
            peers = self.rain.peers_of(ppn)
            if peers:
                for peer in sorted(peers):
                    self._emit(FlashOp(OpKind.READ, peer, OpReason.PARITY,
                                       self.geometry.page_size))
                self.stats.rain_reconstructions += 1
                relocated = self._relocate_sector(lpn)
                if self.obs.enabled:
                    self.obs.emit(RainReconstruction(
                        ppn=ppn, stripe_reads=len(peers), relocated=relocated,
                    ))
                return
        self.stats.uncorrectable_reads += 1

    def _expected_read_errors(self, ppn: int) -> tuple[float, float] | None:
        """Retention/ECC model: ``(expected_bit_errors, ecc_limit)`` for
        a page, or None when age modeling is off or the block unborn."""
        if not self.config.ops_per_day:
            return None
        block = ppn // self.geometry.pages_per_block
        birth = int(self.block_birth[block])
        if birth < 0:
            return None
        age_days = (self._op_seq - birth) / self.config.ops_per_day
        model = self.reliability
        if block in self.allocator.excluded_blocks:
            model = PSLC_RELIABILITY  # buffer blocks run in pSLC mode
        cycles = int(self.nand.block_erase_count[block])
        return model.expected_bit_errors(cycles, age_days), model.ecc_correctable

    def _relocate_sector(self, lpn: int) -> bool:
        """Re-program a reconstructed sector to a fresh page so the
        failing physical copy stops being load-bearing."""
        was_in_gc = self._in_gc
        self._in_gc = True
        try:
            self._program_data_page([lpn], stream="gc", reason=OpReason.GC,
                                    silent_map=True)
        finally:
            self._in_gc = was_in_gc
        self.stats.relocated_sectors += 1
        return True

    def trim(self, lpn: int, nsectors: int = 1) -> list[FlashOp]:
        """Discard logical sectors (ATA TRIM)."""
        self._check_range(lpn, nsectors)
        self._check_writable()
        self._host_ops += 1
        self.injector.tick(self._host_ops)
        self._ops = []
        for sector in range(lpn, lpn + nsectors):
            self.stats.trimmed_sectors += 1
            self.cache.drop(sector)
            if self._staged and sector in self._staged:
                self._staged = [s for s in self._staged if s != sector]
            self.pslc.invalidate(sector)
            old, events = self.mapping.trim(sector)
            self._invalidate_old_copy(sector, old, UNMAPPED)
            self._apply_mapping_events(events)
        return self._ops

    def flush(self) -> list[FlashOp]:
        """Drain the write cache and close open RAIN stripes."""
        self._ops = []
        while self._staged:
            self._flush_staged()
        while len(self.cache):
            self._flush_one_batch()
        if self.rain.flush():
            self._program_parity_page()
        return self._ops

    def checkpoint(self) -> list[FlashOp]:
        """Persist all dirty mapping state (clean shutdown)."""
        self._ops = []
        self._apply_mapping_events(self.mapping.checkpoint())
        return self._ops

    # ------------------------------------------------------------------
    # Write machinery
    # ------------------------------------------------------------------

    def _flush_one_batch(self) -> None:
        batch = self.cache.take_flush_batch(self._spp)
        if not batch:
            return
        if self.pslc.enabled and self.pslc.has_space():
            self._stage_batch_in_pslc(batch)
        else:
            self._program_data_page(batch, stream="host", reason=OpReason.HOST)
        self._maybe_drain_pslc()

    def _stage_direct(self, sector: int) -> None:
        """Cache-bypass path: collect sectors in a one-page staging
        buffer and program it the moment it fills."""
        self._staged.append(sector)
        if len(self._staged) >= self.geometry.sectors_per_page:
            self._flush_staged()

    def _flush_staged(self) -> None:
        spp = self.geometry.sectors_per_page
        batch, self._staged = sorted(self._staged[:spp]), self._staged[spp:]
        if not batch:
            return
        if self.pslc.enabled and self.pslc.has_space():
            self._stage_batch_in_pslc(batch)
        else:
            self._program_data_page(batch, stream="host", reason=OpReason.HOST)
        self._maybe_drain_pslc()

    def _program_data_page(
        self, lpns: list[int], stream: str, reason: OpReason,
        *, silent_map: bool = False,
    ) -> None:
        """Program one page holding *lpns* and update all bookkeeping."""
        self._ensure_free_space()
        geometry = self.geometry
        spp = self._spp
        if self._routed:
            stream = self._route(stream, lpns)
        ppn = self._allocate_programmable_page(stream)
        self.nand.program(ppn, lpn=lpns[0], oob=tuple(lpns[:spp]))
        self._emit(FlashOp(OpKind.PROGRAM, ppn, reason, geometry.page_size))
        block = ppn // geometry.pages_per_block
        # Mapping-eviction events are deferred until every sector of the
        # page is mapped: applying them mid-loop programs meta pages,
        # whose allocation can trigger foreground GC while a later slot's
        # old copy is still marked valid — GC would then migrate that
        # superseded copy with a *newer* program sequence than the live
        # data, and newest-wins recovery would resurrect stale sectors.
        pending_events: MappingEvents | None = None
        lpns = lpns[:spp]
        base = ppn * spp
        p2l = self.p2l
        sector_valid = self.sector_valid
        mapping = self.mapping
        # One bump instead of one read-modify-write per slot: nothing
        # reads block_valid mid-loop (metadata work is deferred), so the
        # interleaving is unobservable — including for duplicate LPNs,
        # where a later slot's invalidation of an earlier slot's copy
        # decrements the same counter exactly as the per-slot order did.
        self.block_valid[block] += len(lpns)
        pslc_enabled = self.pslc.enabled
        for slot, lpn in enumerate(lpns):
            psa = base + slot
            p2l[psa] = lpn
            sector_valid[psa] = True
            if silent_map:
                old = mapping.silent_update(lpn, psa)
            else:
                old, events = mapping.update(lpn, psa)
                if not events.empty:
                    if pending_events is None:
                        pending_events = MappingEvents()
                    pending_events.merge(events)
            self._invalidate_old_copy(lpn, old, psa)
            if pslc_enabled:
                # A fresh main-area copy supersedes any pSLC-resident one.
                pslc_psa = self.pslc.lookup(lpn)
                if pslc_psa is not None and pslc_psa != psa:
                    self.pslc.invalidate(lpn)
        if pending_events is not None:
            self._apply_mapping_events(pending_events)
        if self.rain.on_data_page(ppn):
            self._program_parity_page()

    def _program_parity_page(self) -> None:
        self._ensure_free_space()
        ppn = self._allocate_programmable_page("host")
        self.nand.program(ppn, lpn=int(NO_LPN))
        self.rain.note_parity(ppn)
        # Parity is never valid: it is overhead that GC erases freely.
        self._emit(FlashOp(OpKind.PROGRAM, ppn, OpReason.PARITY,
                           self.geometry.page_size))

    def _program_meta_page(self, tp_id: int, reason: OpReason = OpReason.META) -> None:
        self._ensure_free_space()
        geometry = self.geometry
        ppn = self._allocate_programmable_page("meta")
        self.nand.program(ppn, lpn=int(NO_LPN), oob=(_tp_to_p2l(tp_id),))
        self._emit(FlashOp(OpKind.PROGRAM, ppn, reason, geometry.page_size))
        old = int(self.mapping.tp_stored_ppn[tp_id])
        if old >= 0:
            self._invalidate_meta_page(old)
        slot0 = ppn * geometry.sectors_per_page
        self.p2l[slot0] = _tp_to_p2l(tp_id)
        self.sector_valid[slot0] = True
        self.block_valid[ppn // geometry.pages_per_block] += 1
        self.mapping.note_flushed(tp_id, ppn)
        if self.rain.on_data_page(ppn):
            self._program_parity_page()

    def _allocate_programmable_page(self, stream: str) -> int:
        """Allocate a page, handling injected program failures by
        retiring the bad block and allocating elsewhere."""
        while True:
            ppn = self.allocator.allocate_page(stream)
            if not self.injector.program_fails(ppn):
                if ppn % self.geometry.pages_per_block == 0:
                    self.block_birth[ppn // self.geometry.pages_per_block] = (
                        self._op_seq
                    )
                return ppn
            block = ppn // self.geometry.pages_per_block
            plane = block // self.geometry.blocks_per_plane
            self._retire_block(block, stream, plane)

    def _retire_block(self, block: int, stream: str, plane: int) -> None:
        """Program failure: salvage valid data, then retire the block."""
        self.stats.blocks_retired += 1
        self.allocator.abandon_active(stream, plane)
        self.allocator.retire_block(block)
        migrated_before = self.stats.gc_migrated_sectors
        was_in_gc = self._in_gc
        self._in_gc = True
        try:
            self._migrate_block_contents(block, reason=OpReason.GC)
        finally:
            self._in_gc = was_in_gc
        if self.obs.enabled:
            self.obs.emit(BlockRetired(
                block=block, cause="program_fail",
                migrated_sectors=(self.stats.gc_migrated_sectors
                                  - migrated_before),
            ))
        self._check_degradation("program_fail")

    # ------------------------------------------------------------------
    # Graceful degradation
    # ------------------------------------------------------------------

    def spare_blocks(self) -> int:
        """Blocks beyond those strictly needed to hold logical capacity:
        total minus excluded (pSLC), retired (grown bad), and the data
        footprint.  This is the pool grown bad blocks consume."""
        geometry = self.geometry
        sectors_per_block = geometry.sectors_per_page * geometry.pages_per_block
        data_blocks = -(-self.num_lpns // sectors_per_block)  # ceil
        usable = (geometry.total_blocks
                  - len(self.allocator.excluded_blocks)
                  - len(self.allocator.retired_blocks))
        return usable - data_blocks

    def _check_degradation(self, cause: str) -> None:
        """Enter terminal read-only mode when retirement has eaten the
        spare pool below the configured floor."""
        if self.degraded_read_only or not self.config.spare_blocks_min:
            return
        spares = self.spare_blocks()
        if spares < self.config.spare_blocks_min:
            self.degraded_read_only = True
            if self.obs.enabled:
                self.obs.emit(DegradedModeChanged(
                    mode="read_only", reason=cause, spare_blocks=spares,
                ))

    def _check_writable(self) -> None:
        if self.degraded_read_only:
            raise ReadOnlyError(
                f"device is read-only: spare pool fell below "
                f"{self.config.spare_blocks_min} blocks "
                f"({self.stats.blocks_retired} blocks retired)"
            )

    # ------------------------------------------------------------------
    # pSLC
    # ------------------------------------------------------------------

    def _stage_batch_in_pslc(self, lpns: list[int]) -> None:
        ppn, pairs = self.pslc.stage_page(lpns)
        self.stats.pslc_staged_sectors += len(pairs)
        # Host data: counts as a host page even in the buffer.
        self.nand.program(ppn, lpn=pairs[0][0], oob=tuple(lpn for lpn, _ in pairs))
        self._emit(FlashOp(OpKind.PROGRAM, ppn, OpReason.HOST,
                           self.geometry.page_size))
        if not self.pslc.has_space():
            self._drain_pslc_block()

    def _maybe_drain_pslc(self) -> None:
        if not self.pslc.enabled:
            return
        while self.pslc.used_fraction() >= self.config.pslc_drain_threshold:
            if not self._drain_pslc_block():
                break

    def _drain_pslc_block(self) -> bool:
        block = self.pslc.pick_drain_block()
        if block is None:
            return False
        self.stats.pslc_drains += 1
        victims = self.pslc.evict_block(block)
        spp = self.geometry.sectors_per_page
        # Read the source pages once each.
        for ppn in sorted({psa // spp for _, psa in victims}):
            self._emit(FlashOp(OpKind.READ, ppn, OpReason.PSLC,
                               self.geometry.page_size))
        lpns = [lpn for lpn, _ in victims]
        for start in range(0, len(lpns), spp):
            self._program_data_page(lpns[start : start + spp], stream="host",
                                    reason=OpReason.PSLC)
        self.nand.erase(block)
        self._emit(FlashOp(OpKind.ERASE, block, OpReason.PSLC))
        return True

    # ------------------------------------------------------------------
    # Idle maintenance (§2.1's "unpredictable background operations")
    # ------------------------------------------------------------------

    def idle_maintenance(self, max_blocks: int = 8) -> list[FlashOp]:
        """Background work the FTL performs when the host goes quiet:
        idle GC beyond the foreground watermark, static wear leveling,
        and retention refresh.  Returns the flash ops incurred.

        Wear leveling and refresh get a guaranteed slice of the budget:
        under sustained churn, idle GC alone would otherwise starve the
        lifetime mechanisms forever.
        """
        self._ops = []
        wear_share = 1 if (self.leveler is not None
                           and self.leveler.should_level()) else 0
        refresh_share = 1 if self.config.refresh_after_ops else 0
        budget = max(0, max_blocks - wear_share - refresh_share)
        budget -= self._idle_gc(budget)
        if self.leveler is not None and (wear_share or budget > 0):
            budget += wear_share
            budget -= self._wear_level(max(budget, wear_share))
        if self.config.refresh_after_ops and (refresh_share or budget > 0):
            self._refresh_old_blocks(max(budget + refresh_share, refresh_share))
        return self._ops

    def _idle_gc(self, budget: int) -> int:
        target = (self.config.gc_high_water_blocks
                  + self.config.idle_gc_extra_blocks)
        done = 0
        for plane in range(self.geometry.planes_total):
            while (done < budget
                   and self.allocator.free_blocks_in_plane(plane) < target):
                victim = self.selector.select_victim(
                    plane, exclude=self._gc_in_flight
                )
                if victim is None or int(self.block_valid[victim]) >= (
                    self.geometry.pages_per_block
                    * self.geometry.sectors_per_page
                ):
                    break
                self._collect_block(victim, trigger="idle")
                self.stats.idle_gc_blocks += 1
                done += 1
        return done

    def _wear_level(self, budget: int) -> int:
        done = 0
        while done < budget and self.leveler.should_level():
            decision = self.leveler.pick_victim()
            if decision is None:
                break
            block = decision.victim_block
            self._gc_in_flight.add(block)
            self._in_gc = True
            self._active_policy = self.leveler.policy
            try:
                self._migrate_block_contents(block, reason=OpReason.WEAR)
                self.nand.erase(block)
                self._emit(FlashOp(OpKind.ERASE, block, OpReason.WEAR))
                self.allocator.release_block(block)
            finally:
                self._gc_in_flight.discard(block)
                self._in_gc = False
                self._active_policy = ""
            self.stats.wear_migrations += 1
            done += 1
        return done

    def _refresh_old_blocks(self, budget: int) -> int:
        """Rewrite blocks whose data has aged past the refresh deadline
        (flash correct-and-refresh)."""
        horizon = self._op_seq - self.config.refresh_after_ops
        stale = [
            block for block in range(self.geometry.total_blocks)
            if 0 <= int(self.block_birth[block]) <= horizon
            and int(self.block_valid[block]) > 0
            and block not in self.allocator.active_blocks()
            and block not in self.allocator.retired_blocks
            and block not in self.allocator.excluded_blocks
            and self.nand.block_write_ptr[block]
            >= self.geometry.pages_per_block
        ]
        stale.sort(key=lambda b: int(self.block_birth[b]))
        done = 0
        for block in stale[:budget]:
            self._gc_in_flight.add(block)
            self._in_gc = True
            try:
                self._migrate_block_contents(block, reason=OpReason.REFRESH)
                self.nand.erase(block)
                self._emit(FlashOp(OpKind.ERASE, block, OpReason.REFRESH))
                self.allocator.release_block(block)
            finally:
                self._gc_in_flight.discard(block)
                self._in_gc = False
            self.stats.refreshed_blocks += 1
            done += 1
        return done

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def _ensure_free_space(self) -> None:
        if self._in_gc:
            return
        if self._fast and not self.allocator.planes_at_watermark:
            # No plane is at or below the low watermark, so the scan
            # below would visit every plane and do nothing.
            return
        low = self.config.gc_low_water_blocks
        high = self.config.gc_high_water_blocks
        for plane in range(self.geometry.planes_total):
            guard = self.geometry.blocks_per_plane
            while self.allocator.free_blocks_in_plane(plane) <= low and guard:
                victim = self.selector.select_victim(plane, exclude=self._gc_in_flight)
                if victim is None:
                    break
                self._collect_block(victim)
                guard -= 1
                if self.allocator.free_blocks_in_plane(plane) >= high:
                    break

    def _collect_block(self, victim: int, trigger: str = "foreground") -> None:
        self.stats.gc_invocations += 1
        if self.obs.enabled:
            self.obs.emit(GcStarted(victim=victim,
                                    valid_sectors=int(self.block_valid[victim]),
                                    trigger=trigger,
                                    policy=self.selector.policy))
        migrated_before = self.stats.gc_migrated_sectors
        ops_before = len(self._ops)
        erased = False
        self._gc_in_flight.add(victim)
        self._in_gc = True
        self._active_policy = self.selector.policy
        try:
            self._migrate_block_contents(victim, reason=OpReason.GC)
            if self.injector.erase_fails(victim):
                self.stats.blocks_retired += 1
                self.allocator.retire_block(victim)
                if self.obs.enabled:
                    self.obs.emit(BlockRetired(
                        block=victim, cause="erase_fail",
                        migrated_sectors=(self.stats.gc_migrated_sectors
                                          - migrated_before),
                    ))
                self._check_degradation("erase_fail")
                return
            self.nand.erase(victim)
            self._emit(FlashOp(OpKind.ERASE, victim, OpReason.GC))
            self.allocator.release_block(victim)
            erased = True
        finally:
            self._gc_in_flight.discard(victim)
            self._in_gc = False
            self._active_policy = ""
            if self.obs.enabled:
                self.obs.emit(GcFinished(
                    victim=victim,
                    migrated_sectors=(self.stats.gc_migrated_sectors
                                      - migrated_before),
                    flash_ops=len(self._ops) - ops_before,
                    erased=erased,
                ))

    def _migrate_block_contents(self, block: int, reason: OpReason) -> None:
        """Move every valid sector / metadata page out of *block*."""
        geometry = self.geometry
        spp = geometry.sectors_per_page
        first_psa = block * geometry.pages_per_block * spp
        last_psa = first_psa + geometry.pages_per_block * spp
        if self._fast:
            # Array form of the scan below: nonzero() walks ascending, so
            # live_lpns/live_tps keep the same psa order, and clearing
            # the whole slice only re-falsifies already-invalid slots.
            window = self.sector_valid[first_psa:last_psa]
            psas = np.nonzero(window)[0] + first_psa
            codes = self.p2l[psas]
            live_tps = [_p2l_to_tp(int(c)) for c in codes[codes <= META_P2L_BASE]]
            live_lpns = [int(c) for c in codes[codes >= 0]]
            pages_sorted = np.unique(psas // spp)
            self.sector_valid[first_psa:last_psa] = False
            self.p2l[psas] = P2L_NONE
        else:
            live_lpns = []
            live_tps = []
            pages_to_read: set[int] = set()
            for psa in range(first_psa, last_psa):
                if not self.sector_valid[psa]:
                    continue
                code = int(self.p2l[psa])
                pages_to_read.add(psa // spp)
                if code <= META_P2L_BASE:
                    live_tps.append(_p2l_to_tp(code))
                elif code >= 0:
                    live_lpns.append(code)
                self.sector_valid[psa] = False
                self.p2l[psa] = P2L_NONE
            pages_sorted = sorted(pages_to_read)
        self.block_valid[block] = 0
        for ppn in pages_sorted:
            self._emit(FlashOp(OpKind.READ, int(ppn), reason, geometry.page_size))
        self.stats.gc_migrated_sectors += len(live_lpns)
        for start in range(0, len(live_lpns), spp):
            self._program_data_page(
                live_lpns[start : start + spp], stream="gc", reason=reason,
                silent_map=True,
            )
        for tp_id in live_tps:
            self._program_meta_page(tp_id, reason=reason)

    # ------------------------------------------------------------------
    # Shared bookkeeping
    # ------------------------------------------------------------------

    def _apply_mapping_events(self, events: MappingEvents) -> None:
        if events.empty:
            return
        for stored_ppn in events.load_tp_ppns:
            self._emit(FlashOp(OpKind.READ, stored_ppn, OpReason.META,
                               self.geometry.page_size))
        for tp_id in events.flush_tps:
            self._program_meta_page(tp_id)

    def _invalidate_old_copy(self, lpn: int, old: int, new_psa: int) -> None:
        """Invalidate *lpn*'s superseded copy at *old* — but only if the
        reverse map confirms that sector still belongs to *lpn*.

        The ownership check matters because a mapping entry can be
        transiently stale within one host call: GC triggered mid-batch
        (by a metadata flush) may relocate or reclaim sectors between
        the moment a batch was formed and the moment its slots update
        the map.  Invalidating only owned sectors makes those windows
        self-healing instead of corrupting unrelated data.
        """
        if old == UNMAPPED or old == new_psa:
            return
        if int(self.p2l[old]) != lpn:
            return  # the sector has since been reclaimed or re-owned
        self._invalidate_psa(old)

    def _invalidate_psa(self, psa: int) -> None:
        if not self.sector_valid[psa]:
            return
        self.sector_valid[psa] = False
        self.p2l[psa] = P2L_NONE
        self.block_valid[psa // self.geometry.sectors_per_page
                         // self.geometry.pages_per_block] -= 1

    def _invalidate_meta_page(self, ppn: int) -> None:
        slot0 = ppn * self.geometry.sectors_per_page
        if self.sector_valid[slot0] and int(self.p2l[slot0]) <= META_P2L_BASE:
            self._invalidate_psa(slot0)

    def _emit(self, op: FlashOp) -> None:
        self._ops.append(op)
        if self.obs.enabled:
            self.obs.emit(FlashOpIssued(kind=op.kind.value, target=op.target,
                                        reason=op.reason.value,
                                        nbytes=op.nbytes,
                                        policy=self._active_policy))

    def _check_range(self, lpn: int, nsectors: int) -> None:
        if nsectors < 1:
            raise ValueError("nsectors must be >= 1")
        if lpn < 0 or lpn + nsectors > self.num_lpns:
            raise ValueError(
                f"sector range [{lpn}, {lpn + nsectors}) outside logical "
                f"capacity {self.num_lpns}"
            )

    # ------------------------------------------------------------------
    # Integrity checks (used heavily by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the cross-structure invariants that define FTL sanity."""
        spp = self.geometry.sectors_per_page
        # 1. Every mapped LPN points at a valid physical sector that maps back.
        mapped = np.nonzero(self.mapping.l2p != UNMAPPED)[0]
        for lpn in mapped[: 10000]:
            psa = int(self.mapping.l2p[lpn])
            assert self.sector_valid[psa], f"lpn {lpn} -> invalid psa {psa}"
            assert int(self.p2l[psa]) == lpn, (
                f"p2l mismatch: lpn {lpn} -> psa {psa} -> {int(self.p2l[psa])}"
            )
        # 2. Block valid counters match the sector_valid bitmap.
        per_block = self.sector_valid.reshape(
            self.geometry.total_blocks, self.geometry.pages_per_block * spp
        ).sum(axis=1)
        assert np.array_equal(per_block, self.block_valid), "block_valid drift"
        # 3. Valid sectors only exist on programmed pages.
        valid_psas = np.nonzero(self.sector_valid)[0]
        pages = np.unique(valid_psas // spp)
        assert np.all(self.nand.page_state[pages] == 1), "valid sector on free page"
