"""The one host interface both device modes present.

:class:`~repro.ssd.device.SimulatedSSD` (counter mode) and
:class:`~repro.ssd.timed.TimedSSD` (timed mode) used to duplicate their
host-command surface; everything that drives a device — the black-box
studies in :mod:`repro.core.blackbox`, the file-system models in
:mod:`repro.fs`, the workload engine — now programs against the
:class:`HostDevice` protocol instead of a concrete class.

The command set is the sector-addressed block-device surface a host
sees: ``identify``/``write_sectors``/``read_sectors``/``trim_sectors``/
``flush``/``idle``/``shutdown`` plus the SMART observation window.
Return types are mode-specific (counter mode returns the flash ops a
command incurred, timed mode returns the completed, time-stamped
request), which callers that only *drive* a device never inspect.

:class:`HostDeviceBase` is the shared mixin: identity, SMART snapshots
and derived attributes, and trace-sink attachment.  Subclasses provide
``config``, ``model``, ``ftl``, ``smart``, and the command execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.ops import FlashOp
from repro.ssd.smart import SmartCounters


@dataclass
class DeviceInfo:
    """What an INQUIRY/IDENTIFY-style query would return."""

    model: str
    capacity_bytes: int
    sector_size: int


@runtime_checkable
class HostDevice(Protocol):
    """The host-visible surface of a simulated drive (either mode)."""

    model: str
    smart: SmartCounters
    obs: TraceSink

    @property
    def sector_size(self) -> int: ...

    @property
    def num_sectors(self) -> int: ...

    @property
    def capacity_bytes(self) -> int: ...

    def identify(self) -> DeviceInfo: ...

    def attach_sink(self, sink: TraceSink) -> None: ...

    def write_sectors(self, lba: int, count: int = 1): ...

    def read_sectors(self, lba: int, count: int = 1): ...

    def trim_sectors(self, lba: int, count: int = 1): ...

    def flush(self): ...

    def shutdown(self): ...

    def idle(self, max_blocks: int = 8): ...

    def smart_snapshot(self) -> SmartCounters: ...

    def smart_render(self) -> str: ...


class HostDeviceBase:
    """Identity + SMART + sink plumbing shared by both device modes.

    Subclasses set ``config``, ``model``, ``ftl``, ``smart`` and ``obs``
    in ``__init__`` and implement the host commands.
    """

    # -- identity ------------------------------------------------------

    @property
    def sector_size(self) -> int:
        return self.config.geometry.sector_size

    @property
    def num_sectors(self) -> int:
        return self.ftl.num_lpns

    @property
    def capacity_bytes(self) -> int:
        return self.num_sectors * self.sector_size

    def identify(self) -> DeviceInfo:
        return DeviceInfo(self.model, self.capacity_bytes, self.sector_size)

    # -- observability -------------------------------------------------

    def attach_sink(self, sink: TraceSink) -> None:
        """Route trace events from the device and its FTL stack to
        *sink* (pass :data:`~repro.obs.sinks.NULL_SINK` to detach)."""
        self.obs = sink
        self.ftl.attach_sink(sink)

    # -- the black-box observation surface -----------------------------

    def smart_snapshot(self) -> SmartCounters:
        """What ``smartctl -A`` would report right now."""
        self._sync_derived_attributes()
        return self.smart.snapshot()

    def smart_render(self) -> str:
        self._sync_derived_attributes()
        return self.smart.render()

    def _sync_derived_attributes(self) -> None:
        """Derive the firmware-computed attributes from FTL state."""
        mean_erases = float(self.ftl.nand.block_erase_count.mean())
        remaining = 100 - int(100 * mean_erases / self.ftl.nand.erase_limit)
        self.smart.percent_lifetime_remaining = max(0, min(100, remaining))
        self.smart.reported_uncorrectable = self.ftl.stats.uncorrectable_reads
        self.smart.grown_bad_blocks = self.ftl.stats.blocks_retired
        self.smart.relocated_sectors = self.ftl.stats.relocated_sectors
        self.smart.read_retries = self.ftl.stats.read_retries
        self.smart.rain_reconstructions = self.ftl.stats.rain_reconstructions

    def _record(self, ops: list[FlashOp]) -> None:
        for op in ops:
            self.smart.record(op)
