"""Garbage-collection victim selection.

Van Houdt's mean-field analysis (SIGMETRICS '13) showed that the family a
GC victim-selection policy belongs to changes write amplification in
first-order ways; the paper varies "randomized-greedy algorithm or greedy"
as one of its three Fig 3 knobs.

The actual selection algorithms live in
:mod:`repro.ssd.policy.victim`; the :class:`VictimSelector` here owns
the per-run state they share (candidate pool, seeded RNG stream, sample
size) and acts as their decision *view*.  All randomness is seeded for
reproducibility.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.obs.events import GcVictimSelected
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.allocation import PageAllocator
from repro.ssd.policy.base import VictimPolicy
from repro.ssd.policy.victim import victim_policies


class VictimSelector:
    """Selects GC victim blocks within a plane.

    Parameters
    ----------
    policy:
        A registered policy name (see ``victim_policies.names()``, e.g.
        ``greedy``, ``randomized_greedy``, ``d_choices``) or an object
        satisfying :class:`~repro.ssd.policy.base.VictimPolicy`.
    valid_sectors:
        Device-wide per-block valid-sector counts, maintained by the FTL.
    """

    def __init__(
        self,
        policy: str | VictimPolicy,
        geometry: Geometry,
        nand: NandArray,
        allocator: PageAllocator,
        valid_sectors: np.ndarray,
        sample_size: int = 8,
        seed: int = 12345,
    ) -> None:
        if isinstance(policy, str):
            policy = victim_policies.resolve(policy)()
        self._policy: VictimPolicy = policy
        self.policy = policy.name
        self.geometry = geometry
        self.nand = nand
        self.allocator = allocator
        self.valid_sectors = valid_sectors
        self.sample_size = max(2, sample_size)
        self.obs: TraceSink = NULL_SINK
        #: seeded stream shared by every randomized policy; policies read
        #: it (and ``sample_size``) at choose() time, never capture it.
        self.rng = np.random.default_rng(seed)
        self._choose = policy.choose  # bound once: no per-GC dispatch
        # Seed the allocator's sealed-block index from current NAND
        # state: callers may have programmed flash before attaching a
        # selector (crash-recovery replay, tests staging block states).
        allocator.reindex_sealed()

    # ------------------------------------------------------------------

    def candidates(self, plane: int, exclude: Iterable[int] = ()) -> list[int]:
        """Fully-written, non-active, non-retired blocks in *plane*.

        Served from the allocator's incrementally-maintained sealed
        index — O(pool) per call rather than a scan of every block in
        the plane.  Sorted ascending to match the scan order the
        randomized policies' sampling depends on.
        """
        sealed = self.allocator.sealed_blocks(plane)
        if not sealed:
            return []
        exclude = set(exclude)
        if exclude:
            return sorted(b for b in sealed if b not in exclude)
        return sorted(sealed)

    def candidates_scan(self, plane: int, exclude: Iterable[int] = ()) -> list[int]:
        """Reference implementation: full plane scan.

        Kept as the ground truth the incremental index is validated
        against (``tests/ssd/test_gc.py``) and as the baseline for
        ``benchmarks/bench_micro_gc_candidates.py``.
        """
        geometry = self.geometry
        start = plane * geometry.blocks_per_plane
        end = start + geometry.blocks_per_plane
        active = self.allocator.active_blocks()
        retired = self.allocator.retired_blocks
        excluded = set(exclude) | set(self.allocator.excluded_blocks)
        result = []
        for block in range(start, end):
            if block in active or block in retired or block in excluded:
                continue
            if self.nand.block_write_ptr[block] < geometry.pages_per_block:
                continue  # not fully written: still has free pages
            result.append(block)
        return result

    def select_victim(self, plane: int, exclude: Iterable[int] = ()) -> int | None:
        """Pick a victim block in *plane*, or None if nothing is reclaimable."""
        pool = self.candidates(plane, exclude)
        if not pool:
            return None
        victim = self._choose(pool, self)
        if self.obs.enabled:
            self.obs.emit(GcVictimSelected(
                plane=plane, victim=victim, pool_size=len(pool),
                valid_sectors=int(self.valid_sectors[victim]),
                policy=self.policy,
            ))
        return victim
