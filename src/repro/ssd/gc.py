"""Garbage-collection victim selection.

Van Houdt's mean-field analysis (SIGMETRICS '13) showed that the family a
GC victim-selection policy belongs to changes write amplification in
first-order ways; the paper varies "randomized-greedy algorithm or greedy"
as one of its three Fig 3 knobs.

The policies here choose *which* full block to reclaim; the FTL performs
the migration and erase.  All randomness is seeded for reproducibility.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.obs.events import GcVictimSelected
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.allocation import PageAllocator


class VictimSelector:
    """Selects GC victim blocks within a plane.

    Parameters
    ----------
    policy:
        One of ``greedy``, ``randomized_greedy``, ``random``, ``fifo``,
        ``cost_benefit``.
    valid_sectors:
        Device-wide per-block valid-sector counts, maintained by the FTL.
    """

    def __init__(
        self,
        policy: str,
        geometry: Geometry,
        nand: NandArray,
        allocator: PageAllocator,
        valid_sectors: np.ndarray,
        sample_size: int = 8,
        seed: int = 12345,
    ) -> None:
        self.policy = policy
        self.geometry = geometry
        self.nand = nand
        self.allocator = allocator
        self.valid_sectors = valid_sectors
        self.sample_size = max(2, sample_size)
        self.obs: TraceSink = NULL_SINK
        self._rng = np.random.default_rng(seed)
        self._select = {
            "greedy": self._greedy,
            "randomized_greedy": self._randomized_greedy,
            "random": self._random,
            "fifo": self._fifo,
            "cost_benefit": self._cost_benefit,
        }[policy]
        # Seed the allocator's sealed-block index from current NAND
        # state: callers may have programmed flash before attaching a
        # selector (crash-recovery replay, tests staging block states).
        allocator.reindex_sealed()

    # ------------------------------------------------------------------

    def candidates(self, plane: int, exclude: Iterable[int] = ()) -> list[int]:
        """Fully-written, non-active, non-retired blocks in *plane*.

        Served from the allocator's incrementally-maintained sealed
        index — O(pool) per call rather than a scan of every block in
        the plane.  Sorted ascending to match the scan order the
        randomized policies' sampling depends on.
        """
        sealed = self.allocator.sealed_blocks(plane)
        if not sealed:
            return []
        exclude = set(exclude)
        if exclude:
            return sorted(b for b in sealed if b not in exclude)
        return sorted(sealed)

    def candidates_scan(self, plane: int, exclude: Iterable[int] = ()) -> list[int]:
        """Reference implementation: full plane scan.

        Kept as the ground truth the incremental index is validated
        against (``tests/ssd/test_gc.py``) and as the baseline for
        ``benchmarks/bench_micro_gc_candidates.py``.
        """
        geometry = self.geometry
        start = plane * geometry.blocks_per_plane
        end = start + geometry.blocks_per_plane
        active = self.allocator.active_blocks()
        retired = self.allocator.retired_blocks
        excluded = set(exclude) | set(self.allocator.excluded_blocks)
        result = []
        for block in range(start, end):
            if block in active or block in retired or block in excluded:
                continue
            if self.nand.block_write_ptr[block] < geometry.pages_per_block:
                continue  # not fully written: still has free pages
            result.append(block)
        return result

    def select_victim(self, plane: int, exclude: Iterable[int] = ()) -> int | None:
        """Pick a victim block in *plane*, or None if nothing is reclaimable."""
        pool = self.candidates(plane, exclude)
        if not pool:
            return None
        victim = self._select(pool)
        if self.obs.enabled:
            self.obs.emit(GcVictimSelected(
                plane=plane, victim=victim, pool_size=len(pool),
                valid_sectors=int(self.valid_sectors[victim]),
                policy=self.policy,
            ))
        return victim

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------

    def _greedy(self, pool: list[int]) -> int:
        return min(pool, key=lambda b: int(self.valid_sectors[b]))

    def _randomized_greedy(self, pool: list[int]) -> int:
        if len(pool) <= self.sample_size:
            sample = pool
        else:
            index = self._rng.choice(len(pool), size=self.sample_size, replace=False)
            sample = [pool[i] for i in index]
        return min(sample, key=lambda b: int(self.valid_sectors[b]))

    def _random(self, pool: list[int]) -> int:
        return pool[int(self._rng.integers(len(pool)))]

    def _fifo(self, pool: list[int]) -> int:
        seq = self.allocator.block_alloc_seq
        return min(pool, key=lambda b: seq.get(b, 0))

    def _cost_benefit(self, pool: list[int]) -> int:
        """Rosenblum/Ousterhout cost-benefit: maximize age*(1-u)/(2u)."""
        seq = self.allocator.block_alloc_seq
        now = max(seq.values(), default=0) + 1
        sectors_per_block = (
            self.geometry.pages_per_block * self.geometry.sectors_per_page
        )

        def score(block: int) -> float:
            u = int(self.valid_sectors[block]) / sectors_per_block
            age = now - seq.get(block, 0)
            if u >= 1.0:
                return -1.0
            return age * (1.0 - u) / (2.0 * u + 1e-9)

        return max(pool, key=score)
