"""Static wear leveling.

Dynamic allocation alone lets cold data pin blocks at low erase counts
while hot blocks wear out.  Static wear leveling periodically migrates
the *coldest* populated block so its low-wear home returns to the free
pool.  The paper lists wear leveling among the FTL mechanisms that
black-box models cannot see; here it is an optional feature
(``SsdConfig.wear_leveling``) whose traffic is attributed to
``OpReason.WEAR`` so experiments can observe exactly what it costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.obs.events import WearRebalance
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.allocation import PageAllocator


@dataclass
class WearDecision:
    """What the leveler wants migrated, if anything."""

    victim_block: int


class WearLeveler:
    """Chooses cold blocks to rotate back into circulation.

    Triggers when the erase-count spread (max - min over non-retired
    blocks) exceeds ``delta``; the victim is the fully-written block
    with the lowest erase count (the coldest data).
    """

    def __init__(
        self,
        geometry: Geometry,
        nand: NandArray,
        allocator: PageAllocator,
        delta: int = 100,
    ) -> None:
        if delta < 1:
            raise ValueError("delta must be >= 1")
        self.geometry = geometry
        self.nand = nand
        self.allocator = allocator
        self.delta = delta
        self.obs: TraceSink = NULL_SINK
        self.migrations = 0

    def spread(self) -> int:
        counts = self.nand.block_erase_count
        retired = self.allocator.retired_blocks
        if retired:
            mask = np.ones(len(counts), dtype=bool)
            mask[list(retired)] = False
            counts = counts[mask]
        if len(counts) == 0:
            return 0
        return int(counts.max() - counts.min())

    def should_level(self) -> bool:
        return self.spread() > self.delta

    def pick_victim(self) -> WearDecision | None:
        """The coldest fully-written, non-active block."""
        geometry = self.geometry
        active = self.allocator.active_blocks()
        retired = self.allocator.retired_blocks
        excluded = self.allocator.excluded_blocks
        best: tuple[int, int] | None = None
        for block in range(geometry.total_blocks):
            if block in active or block in retired or block in excluded:
                continue
            if self.nand.block_write_ptr[block] < geometry.pages_per_block:
                continue
            erases = int(self.nand.block_erase_count[block])
            if best is None or erases < best[0]:
                best = (erases, block)
        if best is None:
            return None
        self.migrations += 1
        if self.obs.enabled:
            self.obs.emit(WearRebalance(victim=best[1], erase_count=best[0],
                                        spread=self.spread()))
        return WearDecision(victim_block=best[1])
