"""Static wear leveling.

Dynamic allocation alone lets cold data pin blocks at low erase counts
while hot blocks wear out.  Static wear leveling periodically migrates
the *coldest* populated block so its low-wear home returns to the free
pool.  The paper lists wear leveling among the FTL mechanisms that
black-box models cannot see; here it is an optional feature
(``SsdConfig.wear_leveling``) whose traffic is attributed to
``OpReason.WEAR`` so experiments can observe exactly what it costs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import Geometry
from repro.flash.nand import NandArray
from repro.obs.events import WearRebalance
from repro.obs.sinks import NULL_SINK, TraceSink
from repro.ssd.allocation import PageAllocator
from repro.ssd.policy.base import WearPolicy
from repro.ssd.policy.wear import wear_policies


@dataclass
class WearDecision:
    """What the leveler wants migrated, if anything."""

    victim_block: int


class WearLeveler:
    """Chooses cold blocks to rotate back into circulation.

    Triggers when the erase-count spread (max - min over non-retired
    blocks) exceeds ``delta``; which block then migrates is delegated
    to a :class:`~repro.ssd.policy.base.WearPolicy` (default
    ``coldest``: the fully-written block with the lowest erase count).
    """

    def __init__(
        self,
        geometry: Geometry,
        nand: NandArray,
        allocator: PageAllocator,
        delta: int = 100,
        policy: str | WearPolicy = "coldest",
        sample_size: int = 8,
        seed: int = 12345,
    ) -> None:
        if delta < 1:
            raise ValueError("delta must be >= 1")
        if isinstance(policy, str):
            policy = wear_policies.resolve(policy)()
        self.policy = policy.name
        self._pick = policy.pick  # bound once: no per-decision dispatch
        self.geometry = geometry
        self.nand = nand
        self.allocator = allocator
        self.delta = delta
        self.sample_size = max(2, sample_size)
        self.rng = np.random.default_rng(seed)
        self.obs: TraceSink = NULL_SINK
        self.migrations = 0

    def spread(self) -> int:
        counts = self.nand.block_erase_count
        retired = self.allocator.retired_blocks
        if retired:
            mask = np.ones(len(counts), dtype=bool)
            mask[list(retired)] = False
            counts = counts[mask]
        if len(counts) == 0:
            return 0
        return int(counts.max() - counts.min())

    def should_level(self) -> bool:
        return self.spread() > self.delta

    def eligible_blocks(self):
        """Fully-written blocks that are neither active, retired, nor
        excluded — the pool wear policies choose from, in block order."""
        geometry = self.geometry
        active = self.allocator.active_blocks()
        retired = self.allocator.retired_blocks
        excluded = self.allocator.excluded_blocks
        write_ptr = self.nand.block_write_ptr
        for block in range(geometry.total_blocks):
            if block in active or block in retired or block in excluded:
                continue
            if write_ptr[block] < geometry.pages_per_block:
                continue
            yield block

    def pick_victim(self) -> WearDecision | None:
        """The policy's migration victim, or None if nothing is eligible."""
        victim = self._pick(self)
        if victim is None:
            return None
        self.migrations += 1
        if self.obs.enabled:
            self.obs.emit(WearRebalance(
                victim=victim,
                erase_count=int(self.nand.block_erase_count[victim]),
                spread=self.spread()))
        return WearDecision(victim_block=victim)
