"""Write-cache policies: RAM designation, admission, and eviction.

One of the three design knobs the paper varies in its Fig 3 experiment
is "write cache designation (data or mapping metadata)": the same RAM
can buffer host *data* (absorbing overwrites and packing sectors into
full flash pages) or be given to the mapping layer (holding more dirty
translation pages, reducing metadata writes).  The designation policies
here encode exactly that split as a :class:`~repro.ssd.policy.base.CachePlan`.

Admission and eviction are the two remaining cache seams: admission
decides whether a host sector enters the cache at all (or bypasses into
a direct page-packing staging buffer), eviction orders the pending set
for flushing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ssd.policy.base import CachePlan
from repro.ssd.policy.registry import PolicyRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections import OrderedDict

    from repro.flash.geometry import Geometry
    from repro.ssd.cache import WriteCache

#: registry behind ``SsdConfig.cache_designation``.
cache_designations = PolicyRegistry("cache_designation")
#: registry behind ``SsdConfig.cache_admission``.
cache_admission_policies = PolicyRegistry("cache_admission")
#: registry behind ``SsdConfig.cache_eviction``.
cache_eviction_policies = PolicyRegistry("cache_eviction")


# ----------------------------------------------------------------------
# Designation (the Fig 3 knob)
# ----------------------------------------------------------------------


@cache_designations.register(
    "data", schema={"cache_sectors": "RAM budget buffers host sectors"})
class DataDesignation:
    """RAM buffers host data: absorb overwrites, pack full pages."""

    name = "data"

    def plan(self, cache_sectors: int, geometry: "Geometry") -> CachePlan:
        return CachePlan(
            cache_sectors=max(cache_sectors, geometry.sectors_per_page),
            extra_dirty_tps=0,
        )


@cache_designations.register(
    "mapping",
    schema={"cache_sectors": "RAM budget converts to dirty-TP slots"})
class MappingDesignation:
    """RAM buys dirty translation-page slots; data path keeps a minimal
    one-page staging buffer (sectors still pack into whole pages, but
    nothing is absorbed)."""

    name = "mapping"

    def plan(self, cache_sectors: int, geometry: "Geometry") -> CachePlan:
        # One translation page occupies one flash page of RAM.
        extra = cache_sectors * geometry.sector_size // geometry.page_size
        return CachePlan(
            cache_sectors=geometry.sectors_per_page,
            extra_dirty_tps=extra,
        )


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------


@cache_admission_policies.register("always")
class AlwaysAdmit:
    """Every host sector enters the cache (the classic write-back path)."""

    name = "always"
    always = True

    def admit(self, lpn: int, cache: "WriteCache") -> bool:
        return True


@cache_admission_policies.register("bypass")
class BypassAdmit:
    """No sector enters the cache: writes pack straight into pages via
    the FTL's direct staging buffer (write-through; no absorption)."""

    name = "bypass"
    always = False

    def admit(self, lpn: int, cache: "WriteCache") -> bool:
        return False


# ----------------------------------------------------------------------
# Eviction
# ----------------------------------------------------------------------


@cache_eviction_policies.register("lru")
class LruEviction:
    """Flush least-recently-written sectors first (hits refresh age)."""

    name = "lru"

    def on_hit(self, lpn: int, pending: "OrderedDict[int, None]") -> None:
        pending.move_to_end(lpn)

    def pop(self, pending: "OrderedDict[int, None]") -> int:
        return pending.popitem(last=False)[0]


@cache_eviction_policies.register("fifo")
class FifoEviction:
    """Flush in arrival order; overwrites do not refresh a sector's age."""

    name = "fifo"

    def on_hit(self, lpn: int, pending: "OrderedDict[int, None]") -> None:
        pass

    def pop(self, pending: "OrderedDict[int, None]") -> int:
        return pending.popitem(last=False)[0]
