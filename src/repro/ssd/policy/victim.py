"""GC victim-selection policies.

Van Houdt's mean-field analysis (SIGMETRICS '13) showed that the family
a victim-selection policy belongs to changes write amplification in
first-order ways; the paper varies "randomized-greedy algorithm or
greedy" as one of its three Fig 3 knobs.  Policies choose *which* full
block to reclaim; the FTL performs the migration and erase.

All randomness draws from the consuming selector's seeded ``rng``
stream, so a given (policy, seed) pair reproduces the exact block
sequence of the pre-registry implementation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ssd.policy.registry import PolicyRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.gc import VictimSelector

#: registry behind ``SsdConfig.gc_policy``.
victim_policies = PolicyRegistry("gc_policy")


@victim_policies.register("greedy")
class GreedyVictim:
    """Reclaim the block with the fewest valid sectors (min migration)."""

    name = "greedy"

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        valid = view.valid_sectors
        return min(pool, key=lambda b: int(valid[b]))


@victim_policies.register(
    "randomized_greedy",
    schema={"gc_sample_size": "sample size d (drawn without replacement)"},
)
class RandomizedGreedyVictim:
    """Greedy over a random sample of d candidates (windowed greedy)."""

    name = "randomized_greedy"

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        if len(pool) <= view.sample_size:
            sample = pool
        else:
            index = view.rng.choice(len(pool), size=view.sample_size,
                                    replace=False)
            sample = [pool[i] for i in index]
        valid = view.valid_sectors
        return min(sample, key=lambda b: int(valid[b]))


@victim_policies.register("random")
class RandomVictim:
    """Uniformly random reclaimable block (the WAF worst case)."""

    name = "random"

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        return pool[int(view.rng.integers(len(pool)))]


@victim_policies.register("fifo")
class FifoVictim:
    """Oldest-allocated block first (log-structured round-robin)."""

    name = "fifo"

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        seq = view.allocator.block_alloc_seq
        return min(pool, key=lambda b: seq.get(b, 0))


@victim_policies.register("cost_benefit")
class CostBenefitVictim:
    """Rosenblum/Ousterhout cost-benefit: maximize age*(1-u)/(2u)."""

    name = "cost_benefit"

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        seq = view.allocator.block_alloc_seq
        now = max(seq.values(), default=0) + 1
        sectors_per_block = (
            view.geometry.pages_per_block * view.geometry.sectors_per_page
        )
        valid = view.valid_sectors

        def score(block: int) -> float:
            u = int(valid[block]) / sectors_per_block
            age = now - seq.get(block, 0)
            if u >= 1.0:
                return -1.0
            return age * (1.0 - u) / (2.0 * u + 1e-9)

        return max(pool, key=score)


@victim_policies.register(
    "d_choices",
    schema={"gc_sample_size": "sample size d (drawn with replacement)"},
)
class DChoicesVictim:
    """Van Houdt d-choices: d uniform draws WITH replacement, pick the
    emptiest — candidate cost is O(d) regardless of pool size."""

    name = "d_choices"

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        if len(pool) == 1:
            return pool[0]
        index = view.rng.integers(len(pool), size=view.sample_size)
        sample = {pool[int(i)] for i in index}
        valid = view.valid_sectors
        # Block-id tiebreak keeps the pick deterministic across the
        # set's (insertion-ordered but draw-dependent) iteration order.
        return min(sample, key=lambda b: (int(valid[b]), b))


@victim_policies.register("cat")
class CatVictim:
    """Cost-Age-Times (Chiang/Chang): minimize u/(1-u) * cleans / age —
    utilization weighted by how often the block was already erased, so
    worn blocks get reclaimed less eagerly."""

    name = "cat"

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        seq = view.allocator.block_alloc_seq
        now = max(seq.values(), default=0) + 1
        sectors_per_block = (
            view.geometry.pages_per_block * view.geometry.sectors_per_page
        )
        valid = view.valid_sectors
        erases = view.nand.block_erase_count

        def cost(block: int) -> tuple[float, int]:
            u = int(valid[block]) / sectors_per_block
            age = now - seq.get(block, 0)
            score = (u / (1.0 - u + 1e-9)) * (int(erases[block]) + 1) / age
            return (score, block)

        return min(pool, key=cost)
