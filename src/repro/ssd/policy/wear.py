"""Static wear-leveling victim policies.

The leveler triggers when the erase-count spread exceeds its delta;
these policies choose *which* populated block gets rotated back into
circulation.  The decision view is the
:class:`~repro.ssd.wearlevel.WearLeveler` itself: policies iterate its
``eligible_blocks()`` and read erase counts from ``view.nand``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ssd.policy.registry import PolicyRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ssd.wearlevel import WearLeveler

#: registry behind ``SsdConfig.wear_policy``.
wear_policies = PolicyRegistry("wear_policy")


@wear_policies.register("coldest")
class ColdestFirstWear:
    """Migrate the fully-written block with the lowest erase count (the
    coldest data pins the least-worn block)."""

    name = "coldest"

    def pick(self, view: "WearLeveler") -> int | None:
        erases = view.nand.block_erase_count
        best: tuple[int, int] | None = None
        for block in view.eligible_blocks():
            count = int(erases[block])
            if best is None or count < best[0]:
                best = (count, block)
        return None if best is None else best[1]


@wear_policies.register(
    "sampled_cold",
    schema={"gc_sample_size": "blocks sampled per leveling decision"})
class SampledColdWear:
    """Coldest of a seeded random sample of eligible blocks — bounds the
    per-decision scan on large arrays at some leveling precision cost."""

    name = "sampled_cold"

    def pick(self, view: "WearLeveler") -> int | None:
        eligible = list(view.eligible_blocks())
        if not eligible:
            return None
        d = min(len(eligible), max(2, view.sample_size))
        index = view.rng.choice(len(eligible), size=d, replace=False)
        erases = view.nand.block_erase_count
        return min((eligible[int(i)] for i in index),
                   key=lambda b: (int(erases[b]), b))
