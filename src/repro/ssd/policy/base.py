"""Protocol classes for the pluggable FTL policy seams.

These are the contracts the FTL's collaborators (victim selector, page
allocator, write cache, wear leveler) program against.  Implementations
live next door (:mod:`repro.ssd.policy.victim` and friends) and are
looked up by name through the registries in
:mod:`repro.ssd.policy.registry`; nothing in the write path ever
compares policy *strings* — resolution happens once at device build
time and the hot path calls bound methods.

The ``view`` argument of the decision methods is the consuming
component itself (a :class:`~repro.ssd.gc.VictimSelector`, a
:class:`~repro.ssd.wearlevel.WearLeveler`, …): policies read shared
per-run state — RNG stream, sample size, valid-sector counts — from the
component instead of capturing copies, so mutating e.g.
``selector.sample_size`` mid-run behaves exactly as it did before the
policy extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections import OrderedDict

    from repro.flash.geometry import Geometry
    from repro.ssd.cache import WriteCache
    from repro.ssd.gc import VictimSelector
    from repro.ssd.wearlevel import WearLeveler


@runtime_checkable
class VictimPolicy(Protocol):
    """Chooses which sealed block GC reclaims next."""

    name: str

    def choose(self, pool: list[int], view: "VictimSelector") -> int:
        """Pick one block from the non-empty candidate *pool*.

        *view* exposes ``valid_sectors``, ``geometry``, ``nand``,
        ``allocator`` (for allocation stamps), ``sample_size`` and the
        seeded ``rng`` stream shared by randomized policies."""
        ...


@runtime_checkable
class AllocationPolicy(Protocol):
    """Orders physical-page allocation over the parallelism dimensions
    and (optionally) routes host data into separate write streams."""

    name: str
    #: write streams this policy adds beyond the FTL's builtin
    #: ``host`` / ``gc`` / ``meta`` trio.
    extra_streams: tuple[str, ...]

    def bind(self, geometry: "Geometry") -> None:
        """Attach the device geometry (called once by the allocator)."""
        ...

    def plane_for_index(self, index: int) -> int:
        """Plane targeted by the *index*-th allocation of a stream."""
        ...

    def route(self, stream: str, lpns: list[int]) -> str:
        """Final stream for a data-page program of *lpns* (identity for
        scheme-only policies; stream-separating policies may redirect
        ``host`` traffic into one of their ``extra_streams``)."""
        ...


@runtime_checkable
class CacheAdmissionPolicy(Protocol):
    """Decides whether a host sector enters the RAM write cache or
    bypasses it into a direct page-packing staging buffer."""

    name: str
    #: True when the policy admits unconditionally — lets the FTL skip
    #: the per-sector call entirely on the default path.
    always: bool

    def admit(self, lpn: int, cache: "WriteCache") -> bool:
        ...


@runtime_checkable
class CacheEvictionPolicy(Protocol):
    """Orders the write cache's pending sectors for flushing."""

    name: str

    def on_hit(self, lpn: int, pending: "OrderedDict[int, None]") -> None:
        """A pending sector was overwritten (absorbed) in place."""
        ...

    def pop(self, pending: "OrderedDict[int, None]") -> int:
        """Remove and return the next sector to flush."""
        ...


@dataclass(frozen=True)
class CachePlan:
    """How a cache designation splits the controller's RAM budget."""

    #: sectors the data write cache may buffer.
    cache_sectors: int
    #: extra dirty-translation-page slots granted to the mapping layer.
    extra_dirty_tps: int


@runtime_checkable
class CacheDesignationPolicy(Protocol):
    """Designates the controller RAM budget: host data buffering vs.
    mapping metadata (the Fig 3 "write cache designation" knob)."""

    name: str

    def plan(self, cache_sectors: int, geometry: "Geometry") -> CachePlan:
        ...


@runtime_checkable
class WearPolicy(Protocol):
    """Chooses which populated block static wear leveling rotates."""

    name: str

    def pick(self, view: "WearLeveler") -> int | None:
        """The block to migrate, or None if nothing is eligible.
        *view* exposes ``eligible_blocks()``, ``nand`` and ``rng``."""
        ...
