"""Page-allocation policies: plane ordering and stream separation.

Tavakkol et al. (TOPMECS '16) showed that the *order* in which an FTL
spreads consecutive writes over its parallelism dimensions — Channel,
Way (chip), Die, Plane — changes performance substantially; the paper
varies CWDP vs. PDWC as one of its three "basic design features".

Scheme policies (``"CWDP"`` … ``"DPWC"``) are pure orderings: a scheme
string lists dimensions from fastest-varying to slowest.  The
``hotcold`` policy layers *stream separation* on top: host batches
whose sectors were mostly written before are routed to the regular
``host`` stream while first-touch (cold) batches open their own active
block, keeping lifetimes apart the way multi-stream FTLs do.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.ssd.policy.registry import PolicyRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flash.geometry import Geometry

#: registry behind ``SsdConfig.allocation_scheme``.
allocation_policies = PolicyRegistry("allocation_scheme")

#: the scheme permutations the pre-registry config accepted.
SCHEME_NAMES = (
    "CWDP", "CWPD", "CDWP", "CDPW", "CPWD", "CPDW",
    "WCDP", "WDCP", "DWCP", "DCWP", "PDWC", "PWDC", "DPWC",
)


class SchemeAllocation:
    """Dimension-order page allocation over C/W/D/P (no stream routing)."""

    extra_streams: tuple[str, ...] = ()

    def __init__(self, scheme: str) -> None:
        #: the dimension ordering (may differ from ``name`` in subclasses).
        self.scheme = scheme.upper()
        self.name = self.scheme
        self._dims: list[tuple[str, int]] | None = None
        self._geometry: "Geometry | None" = None

    # -- AllocationPolicy -------------------------------------------------

    def bind(self, geometry: "Geometry") -> None:
        self._geometry = geometry
        self._dims = self._parse_scheme(self.scheme, geometry)

    def plane_for_index(self, index: int) -> int:
        coords = {}
        rest = index
        for letter, size in self._dims:
            coords[letter] = rest % size
            rest //= size
        g = self._geometry
        return (
            ((coords["C"] * g.chips_per_channel + coords["W"]) * g.dies_per_chip
             + coords["D"]) * g.planes_per_die + coords["P"]
        )

    def route(self, stream: str, lpns: list[int]) -> str:
        return stream

    # -- scheme machinery -------------------------------------------------

    @staticmethod
    def _parse_scheme(scheme: str, geometry: "Geometry") -> list[tuple[str, int]]:
        sizes = {
            "C": geometry.channels,
            "W": geometry.chips_per_channel,
            "D": geometry.dies_per_chip,
            "P": geometry.planes_per_die,
        }
        seen: list[tuple[str, int]] = []
        for letter in scheme:
            if letter not in sizes:
                raise ValueError(f"allocation scheme letter {letter!r} invalid")
            if letter in (l for l, _ in seen):
                raise ValueError(f"allocation scheme repeats {letter!r}")
            seen.append((letter, sizes[letter]))
        for letter, size in sizes.items():
            if letter not in (l for l, _ in seen):
                seen.append((letter, size))
        return seen


_DIM_NAMES = {"C": "channel", "W": "chip", "D": "die", "P": "plane"}

for _scheme in SCHEME_NAMES:
    allocation_policies.register(
        _scheme,
        (lambda s: (lambda: SchemeAllocation(s)))(_scheme),  # bind per iteration
        summary=(_DIM_NAMES[_scheme[0]] + "-first dimension order "
                 + "/".join(_DIM_NAMES[c] for c in _scheme)),
    )


@allocation_policies.register("hotcold")
class HotColdAllocation(SchemeAllocation):
    """Hot/cold stream separation over a CWDP base order: previously
    written (hot) batches share the ``host`` active block; first-touch
    (cold) batches open a separate ``cold`` stream so short-lived and
    long-lived data stop sharing erase blocks."""

    extra_streams = ("cold",)

    def __init__(self) -> None:
        super().__init__("CWDP")
        self.name = "hotcold"
        #: lpn -> host data-page programs observed (heat estimate).
        self._writes: dict[int, int] = {}

    def route(self, stream: str, lpns: list[int]) -> str:
        if stream != "host":
            return stream
        writes = self._writes
        hot = sum(1 for lpn in lpns if writes.get(lpn, 0) > 0)
        for lpn in lpns:
            writes[lpn] = writes.get(lpn, 0) + 1
        # Majority vote: a batch packed mostly from re-written sectors
        # is hot, first-touch-dominated batches go to the cold stream.
        return "host" if 2 * hot >= len(lpns) else "cold"
