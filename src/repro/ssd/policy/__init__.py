"""Pluggable FTL policy engine.

Each FTL design knob resolves through one :class:`PolicyRegistry`:

==================  ====================================  ==============
``SsdConfig`` knob  registry                              protocol
==================  ====================================  ==============
gc_policy           :data:`victim_policies`               VictimPolicy
allocation_scheme   :data:`allocation_policies`           AllocationPolicy
cache_designation   :data:`cache_designations`            CacheDesignationPolicy
cache_admission     :data:`cache_admission_policies`      CacheAdmissionPolicy
cache_eviction      :data:`cache_eviction_policies`       CacheEvictionPolicy
wear_policy         :data:`wear_policies`                 WearPolicy
==================  ====================================  ==============

To add a policy: subclass nothing, satisfy the protocol, decorate with
``@<registry>.register("your-name")``, and every config, preset, CLI
sweep and the ``repro-ssd policies`` listing picks it up.  See
DESIGN.md ("Policy engine") for a worked 30-line example.
"""

from repro.ssd.policy.allocation import (
    SCHEME_NAMES,
    HotColdAllocation,
    SchemeAllocation,
    allocation_policies,
)
from repro.ssd.policy.base import (
    AllocationPolicy,
    CacheAdmissionPolicy,
    CacheDesignationPolicy,
    CacheEvictionPolicy,
    CachePlan,
    VictimPolicy,
    WearPolicy,
)
from repro.ssd.policy.cache import (
    cache_admission_policies,
    cache_designations,
    cache_eviction_policies,
)
from repro.ssd.policy.registry import PolicyEntry, PolicyRegistry
from repro.ssd.policy.victim import victim_policies
from repro.ssd.policy.wear import wear_policies

#: config knob -> registry, in ``SsdConfig`` field order (drives the
#: ``repro-ssd policies`` listing).
REGISTRIES: dict[str, PolicyRegistry] = {
    reg.knob: reg
    for reg in (
        victim_policies,
        allocation_policies,
        cache_designations,
        cache_admission_policies,
        cache_eviction_policies,
        wear_policies,
    )
}

__all__ = [
    "PolicyEntry",
    "PolicyRegistry",
    "REGISTRIES",
    "SCHEME_NAMES",
    "VictimPolicy",
    "AllocationPolicy",
    "CacheAdmissionPolicy",
    "CacheDesignationPolicy",
    "CacheEvictionPolicy",
    "CachePlan",
    "WearPolicy",
    "SchemeAllocation",
    "HotColdAllocation",
    "victim_policies",
    "allocation_policies",
    "cache_designations",
    "cache_admission_policies",
    "cache_eviction_policies",
    "wear_policies",
]
