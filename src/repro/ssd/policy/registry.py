"""String → factory registries for FTL design knobs.

The paper's Fig 3 point is that *basic* FTL policy choices — invisible
from outside the device — swing tail latency by an order of magnitude.
Each knob (GC victim selection, page allocation, write-cache
designation, cache admission/eviction, wear leveling) gets one
:class:`PolicyRegistry`; :class:`~repro.ssd.config.SsdConfig` keeps its
plain-string knobs and resolves them here, so a config file, a preset,
and a sweep grid all name policies by the same stable strings.

Every entry carries the factory, a one-line summary (the first line of
the factory's docstring unless overridden) and a *schema*: the
``SsdConfig`` fields the policy reads, with a one-line description each.
``repro-ssd policies`` renders exactly this metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping


@dataclass(frozen=True)
class PolicyEntry:
    """One registered policy: how to build it and how to document it."""

    name: str
    factory: Callable[[], Any]
    summary: str
    #: config fields the policy consumes -> one-line description.
    schema: Mapping[str, str] = field(default_factory=dict)


class PolicyRegistry:
    """Name → factory registry for one FTL design knob.

    Factories take no arguments and return a fresh policy object;
    per-run parameters (sample sizes, seeds) are read from the
    consuming component at decision time, which keeps policy objects
    stateless where possible and byte-identical to the pre-registry
    dispatch.
    """

    def __init__(self, knob: str) -> None:
        #: the ``SsdConfig`` field this registry resolves (used in errors).
        self.knob = knob
        self._entries: dict[str, PolicyEntry] = {}

    # -- registration ---------------------------------------------------

    def register(
        self,
        name: str,
        factory: Callable[[], Any] | None = None,
        *,
        summary: str | None = None,
        schema: Mapping[str, str] | None = None,
    ):
        """Register *factory* under *name*.

        Usable as a decorator (``@registry.register("greedy")`` over a
        class) or called directly with an explicit factory.  The
        summary defaults to the first line of the factory's docstring.
        """

        def _add(fn: Callable[[], Any]):
            if name in self._entries:
                raise ValueError(
                    f"{self.knob} policy {name!r} registered twice")
            doc = summary
            if doc is None:
                doc = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ \
                    else ""
            if not doc:
                raise ValueError(
                    f"{self.knob} policy {name!r} needs a docstring or an "
                    f"explicit summary")
            self._entries[name] = PolicyEntry(
                name=name, factory=fn, summary=doc, schema=dict(schema or {}))
            return fn

        if factory is not None:
            return _add(factory)
        return _add

    # -- resolution -----------------------------------------------------

    def resolve(self, name: str) -> Callable[[], Any]:
        """The factory registered under *name*; unknown names raise a
        ``ValueError`` that lists every valid choice."""
        return self.entry(name).factory

    def entry(self, name: str) -> PolicyEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise ValueError(
                f"unknown {self.knob} {name!r}; valid choices: "
                f"{', '.join(sorted(self._entries))}"
            ) from None

    def validate(self, name: str) -> str:
        """Raise (with the valid choices) unless *name* is registered."""
        self.entry(name)
        return name

    # -- introspection --------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """Registered names in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[PolicyEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)
