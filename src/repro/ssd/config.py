"""Every FTL design knob in one place.

The paper's central complaint is that these knobs are invisible from
outside the device.  :class:`SsdConfig` makes them explicit so experiments
can sweep exactly the dimensions the paper varies (GC victim selection,
write-cache designation, page-allocation scheme) plus the mechanisms its
reverse engineering uncovered (RAIN parity, pSLC buffering, demand-loaded
mapping chunks).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.flash.geometry import Geometry
from repro.flash.timing import PROFILES
from repro.ssd.policy import (
    allocation_policies,
    cache_admission_policies,
    cache_designations,
    cache_eviction_policies,
    victim_policies,
    wear_policies,
)

#: GC victim-selection policies (registered in :mod:`repro.ssd.policy.victim`).
GC_POLICIES = victim_policies.names()

#: Write-cache designations (the Fig 3 "write cache designation" knob).
CACHE_DESIGNATIONS = cache_designations.names()

#: Page-allocation orderings over Channel / Way / Die / Plane, plus
#: named policies such as the stream-separating ``hotcold``.
ALLOCATION_SCHEMES = allocation_policies.names()

#: Intra-SSD compression schemes (Fig 2); these live in their own modeled
#: log path (:mod:`repro.ssd.compression`), not in the sector-granularity FTL.
COMPRESSION_SCHEMES = ("none", "fixed", "compact", "chunk4", "re-bp32")


@dataclass(frozen=True)
class SsdConfig:
    """Complete configuration of a simulated SSD.

    Capacity accounting: the flash array provides
    ``geometry.capacity_bytes`` of raw space; ``op_ratio`` of it is
    reserved as over-provisioning, the rest (minus pSLC blocks) is
    exported as logical sectors of ``geometry.sector_size`` bytes.
    """

    geometry: Geometry = field(default_factory=Geometry)
    timing_name: str = "mlc"

    # --- capacity -----------------------------------------------------
    op_ratio: float = 0.07

    # --- garbage collection --------------------------------------------
    gc_policy: str = "greedy"
    #: sample size d for the randomized-greedy (d-choices) policy.
    gc_sample_size: int = 8
    #: foreground GC starts when a plane's free blocks drop to this count.
    gc_low_water_blocks: int = 2
    #: foreground GC stops once the plane is back above this count.
    gc_high_water_blocks: int = 4
    #: idle-time GC keeps this many blocks free beyond the high water
    #: mark (one of §2.1's "unpredictable background operations").
    idle_gc_extra_blocks: int = 2

    # --- write cache ----------------------------------------------------
    cache_designation: str = "data"
    #: RAM budget of the write cache, in host sectors.
    cache_sectors: int = 256
    #: whether host sectors enter the cache (``always``) or bypass it
    #: into a direct page-packing staging buffer (``bypass``).
    cache_admission: str = "always"
    #: flush ordering of pending cache sectors (``lru`` or ``fifo``).
    cache_eviction: str = "lru"

    # --- mapping --------------------------------------------------------
    #: LPNs covered by one translation page (one metadata flash write).
    mapping_tp_lpns: int = 4096
    #: RAM slots for dirty translation pages before forced eviction.
    mapping_dirty_tp_limit: int = 512
    #: host sector writes between periodic metadata checkpoints.
    mapping_sync_interval: int = 8192
    #: LPNs per demand-loaded mapping chunk (0 disables demand loading;
    #: the 840 EVO model uses chunks covering 117.5 MB of LBA space).
    mapping_chunk_lpns: int = 0
    #: resident chunk budget when demand loading is on.
    mapping_resident_chunks: int = 8

    # --- allocation -------------------------------------------------------
    allocation_scheme: str = "CWDP"

    # --- RAIN parity -------------------------------------------------------
    #: data pages per parity page; 0 disables RAIN.
    rain_stripe: int = 0

    # --- pseudo-SLC buffer ---------------------------------------------
    #: blocks (per device) operated as a pSLC write buffer; 0 disables.
    pslc_blocks: int = 0
    #: fraction of the pSLC buffer that triggers background draining.
    pslc_drain_threshold: float = 0.5

    # --- reliability -----------------------------------------------------
    erase_limit: int = 3000
    #: enable static wear leveling (cold block rotation).
    wear_leveling: bool = False
    wear_leveling_delta: int = 100
    #: which block static leveling migrates (``coldest``, ``sampled_cold``).
    wear_policy: str = "coldest"
    #: retention refresh: rewrite blocks older than this many host
    #: sector-writes during idle maintenance (0 disables).
    refresh_after_ops: int = 0
    #: retention time scale: host sector-writes per simulated day of
    #: data age (0 disables retention/ECC modeling on reads).
    ops_per_day: int = 0

    # --- graceful degradation (repro.faults) ---------------------------
    #: read-retry ladder depth on uncorrectable reads (0 disables).  Each
    #: step re-reads with shifted sense voltages, costing one extra flash
    #: read and attenuating the raw bit error rate.
    read_retry_steps: int = 0
    #: RBER attenuation per retry step (expected errors shrink by this
    #: factor each step of the ladder).
    read_retry_rber_factor: float = 0.5
    #: enter read-only degraded mode when grown bad blocks shrink the
    #: spare pool (blocks beyond those needed for logical capacity)
    #: below this count (0 disables the check).
    spare_blocks_min: int = 0

    def __post_init__(self) -> None:
        if self.timing_name not in PROFILES:
            raise ValueError(f"unknown timing profile {self.timing_name!r}")
        # Policy knobs resolve through the registries, whose errors name
        # every valid choice.
        victim_policies.validate(self.gc_policy)
        cache_designations.validate(self.cache_designation)
        cache_admission_policies.validate(self.cache_admission)
        cache_eviction_policies.validate(self.cache_eviction)
        allocation_policies.validate(self.allocation_scheme)
        wear_policies.validate(self.wear_policy)
        if not 0.0 <= self.op_ratio < 0.5:
            raise ValueError("op_ratio must be in [0, 0.5)")
        if self.gc_high_water_blocks < self.gc_low_water_blocks:
            raise ValueError("gc_high_water_blocks must be >= gc_low_water_blocks")
        if self.rain_stripe < 0 or self.rain_stripe == 1:
            raise ValueError("rain_stripe must be 0 (off) or >= 2")
        if self.pslc_blocks < 0:
            raise ValueError("pslc_blocks must be non-negative")
        if self.mapping_tp_lpns <= 0:
            raise ValueError("mapping_tp_lpns must be positive")
        if self.idle_gc_extra_blocks < 0:
            raise ValueError("idle_gc_extra_blocks must be non-negative")
        if self.refresh_after_ops < 0:
            raise ValueError("refresh_after_ops must be non-negative")
        if self.ops_per_day < 0:
            raise ValueError("ops_per_day must be non-negative")
        if self.read_retry_steps < 0:
            raise ValueError("read_retry_steps must be non-negative")
        if not 0.0 < self.read_retry_rber_factor <= 1.0:
            raise ValueError("read_retry_rber_factor must be in (0, 1]")
        if self.spare_blocks_min < 0:
            raise ValueError("spare_blocks_min must be non-negative")

    # ------------------------------------------------------------------
    # Derived capacity
    # ------------------------------------------------------------------

    @property
    def pslc_reserved_bytes(self) -> int:
        return self.pslc_blocks * self.geometry.block_bytes

    def pslc_block_ids(self) -> tuple[int, ...]:
        """Physical blocks reserved for the pSLC buffer, striped across
        planes so the buffer can absorb bursts with full die
        parallelism (as TurboWrite-class regions are laid out)."""
        geometry = self.geometry
        planes = geometry.planes_total
        ids = []
        for i in range(self.pslc_blocks):
            plane = i % planes
            slot = i // planes
            ids.append(plane * geometry.blocks_per_plane + slot)
        return tuple(ids)

    @property
    def logical_sectors(self) -> int:
        """Exported logical capacity, in sectors."""
        usable = self.geometry.capacity_bytes - self.pslc_reserved_bytes
        exported = int(usable * (1.0 - self.op_ratio))
        return exported // self.geometry.sector_size

    @property
    def logical_bytes(self) -> int:
        return self.logical_sectors * self.geometry.sector_size

    def with_changes(self, **kwargs) -> "SsdConfig":
        """Return a copy with the given fields replaced (for sweeps)."""
        return replace(self, **kwargs)
