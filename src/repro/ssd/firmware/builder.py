"""Firmware image generation for the 840-EVO-like device.

The JTAG study needs a *genuine artifact* to reverse engineer: machine
code whose constants and control flow embody the FTL facts the paper
recovered, packed in a vendor-style sectioned image.  The builder
assembles three cores' worth of ISA code from templates:

``core0`` (SATA)
    Reads the pending LBA from MMIO and rings core 1's or core 2's
    doorbell depending on ``lba & 1`` — the LBA-LSB channel split.
``core1`` / ``core2`` (flash)
    Compute the translation-entry address: entry index ``lba >> 3``
    scaled by the entry stride, into one of the core's four mapping
    arrays selected by ``(lba >> 1) & 3``; then probe the pSLC hashed
    index at bucket ``(lba ^ (lba >> 5)) & (buckets - 1)``.

Image layout (the "public format" a de-obfuscation utility would know)::

    +0   magic  "SSDFW840"
    +8   version u32, section_count u32
    +16  section table: name[8] load_addr u32 size u32 offset u32
    ...  section payloads, zero/0xFF padding between sections

The padding is not cosmetic: it is the known plaintext the keystream
attack in :mod:`repro.ssd.firmware.obfuscation` exploits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.ssd.config import SsdConfig
from repro.ssd.firmware.isa import assemble

MAGIC = b"SSDFW840"
SECTION_HEADER = struct.Struct("<8sIII")
HEADER = struct.Struct("<8sII")

#: address-space bases (fixed by the controller design).
CODE_BASE = 0x00000000
SRAM_BASE = 0x10000000
DRAM_BASE = 0x20000000
MMIO_BASE = 0x40000000

#: MMIO registers.
MMIO_LBA = 0x0
MMIO_LEN = 0x4
MMIO_DOORBELL = 0x8

NUM_MAP_ARRAYS = 8
MAP_ENTRY_BYTES = 4
PSLC_BUCKET_BYTES = 8


@dataclass(frozen=True)
class MemoryMap:
    """Where everything lives in the controller's address space."""

    num_lpns: int
    entries_per_array: int
    map_array_bases: tuple[int, ...]
    pslc_index_base: int
    pslc_buckets: int
    dram_base: int = DRAM_BASE
    code_base: int = CODE_BASE
    sram_base: int = SRAM_BASE
    mmio_base: int = MMIO_BASE

    @property
    def map_array_bytes(self) -> int:
        return self.entries_per_array * MAP_ENTRY_BYTES

    @property
    def map_total_bytes(self) -> int:
        return self.map_array_bytes * NUM_MAP_ARRAYS

    @property
    def pslc_index_bytes(self) -> int:
        return self.pslc_buckets * PSLC_BUCKET_BYTES

    def array_of_lpn(self, lpn: int) -> tuple[int, int]:
        """``(array index, byte offset)`` of one LPN's map entry."""
        return lpn % NUM_MAP_ARRAYS, (lpn // NUM_MAP_ARRAYS) * MAP_ENTRY_BYTES

    def entry_address(self, lpn: int) -> int:
        array, offset = self.array_of_lpn(lpn)
        return self.map_array_bases[array] + offset

    def pslc_bucket_of(self, lpn: int) -> int:
        return (lpn ^ (lpn >> 5)) & (self.pslc_buckets - 1)

    def pslc_bucket_address(self, bucket: int) -> int:
        return self.pslc_index_base + bucket * PSLC_BUCKET_BYTES


def memory_map_for(config: SsdConfig, pslc_buckets: int = 4096) -> MemoryMap:
    """Lay out DRAM for a device configuration."""
    if pslc_buckets & (pslc_buckets - 1):
        raise ValueError("pslc_buckets must be a power of two")
    num_lpns = config.logical_sectors
    entries = -(-num_lpns // NUM_MAP_ARRAYS)
    stride = _round_up(entries * MAP_ENTRY_BYTES, 0x1000)
    bases = tuple(DRAM_BASE + i * stride for i in range(NUM_MAP_ARRAYS))
    # The pSLC index comes from a different allocation pool: leave a
    # guard gap so it is not stride-contiguous with the map arrays.
    pslc_base = DRAM_BASE + NUM_MAP_ARRAYS * stride + 0x10000
    return MemoryMap(
        num_lpns=num_lpns,
        entries_per_array=entries,
        map_array_bases=bases,
        pslc_index_base=pslc_base,
        pslc_buckets=pslc_buckets,
    )


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def _hi(value: int) -> int:
    return (value >> 16) & 0xFFFF


def _lo(value: int) -> int:
    return value & 0xFFFF


# ----------------------------------------------------------------------
# Code templates
# ----------------------------------------------------------------------


def sata_core_source(memory_map: MemoryMap) -> str:
    """Core 0: the host-interface dispatcher."""
    mmio = memory_map.mmio_base
    return f"""
sata_entry:
    movi r1, 0x{_lo(mmio):x}
    movt r1, 0x{_hi(mmio):x}
    ldr r0, [r1, 0x{MMIO_LBA:x}]
    and r2, r0, 0x1            ; route by the LBA's least-significant bit
    cmp r2, 0x0
    beq route_even
    movi r3, 0x2
    str r3, [r1, 0x{MMIO_DOORBELL:x}]   ; doorbell flash core 2
    b sata_wait
route_even:
    movi r3, 0x1
    str r3, [r1, 0x{MMIO_DOORBELL:x}]   ; doorbell flash core 1
sata_wait:
    wfi
    b sata_entry
"""


def flash_core_source(memory_map: MemoryMap, core: int) -> str:
    """Cores 1 and 2: map lookup over the core's four arrays + pSLC probe."""
    if core not in (1, 2):
        raise ValueError("flash cores are 1 and 2")
    parity = core - 1
    arrays = [parity, parity + 2, parity + 4, parity + 6]
    bases = [memory_map.map_array_bases[a] for a in arrays]
    mmio = memory_map.mmio_base
    pslc = memory_map.pslc_index_base
    mask = memory_map.pslc_buckets - 1
    return f"""
flash_entry:
    movi r1, 0x{_lo(mmio):x}
    movt r1, 0x{_hi(mmio):x}
    ldr r0, [r1, 0x{MMIO_LBA:x}]
    lsr r4, r0, 0x3            ; entry index = lba / 8
    lsl r4, r4, 0x2            ; * entry stride (4 bytes)
    lsr r5, r0, 0x1
    and r5, r5, 0x3            ; which of this core's four arrays
    cmp r5, 0x0
    beq use_a0
    cmp r5, 0x1
    beq use_a1
    cmp r5, 0x2
    beq use_a2
    movi r6, 0x{_lo(bases[3]):x}
    movt r6, 0x{_hi(bases[3]):x}
    b lookup
use_a0:
    movi r6, 0x{_lo(bases[0]):x}
    movt r6, 0x{_hi(bases[0]):x}
    b lookup
use_a1:
    movi r6, 0x{_lo(bases[1]):x}
    movt r6, 0x{_hi(bases[1]):x}
    b lookup
use_a2:
    movi r6, 0x{_lo(bases[2]):x}
    movt r6, 0x{_hi(bases[2]):x}
lookup:
    addx r6, r4
    ldr r7, [r6, 0x0]          ; translation entry
    lsr r8, r0, 0x5            ; pSLC hashed-index probe:
    xorx r8, r0                ;   h = (lba ^ (lba >> 5)) & (buckets-1)
    and r8, r8, 0x{mask:x}
    lsl r8, r8, 0x3            ;   * bucket stride (8 bytes)
    movi r9, 0x{_lo(pslc):x}
    movt r9, 0x{_hi(pslc):x}
    addx r9, r8
    ldr r10, [r9, 0x0]         ; bucket tag
    wfi
    b flash_entry
"""


#: vendor-ish strings embedded in the image (RE pipelines grep these).
IMAGE_STRINGS = (
    b"EVO840-REPRO-FTL\x00",
    b"TurboWrite\x00",
    b"L2P-CHUNK-LOADER\x00",
    b"SATA-HOST-IF\x00",
)


@dataclass
class Section:
    name: str
    load_addr: int
    data: bytes


@dataclass
class FirmwareImage:
    """A built (plain, unobfuscated) firmware image."""

    memory_map: MemoryMap
    sections: list[Section] = field(default_factory=list)

    def section(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(f"no section {name!r}")

    def to_bytes(self, pad_to: int = 0x8000) -> bytes:
        """Serialize with header, section table, and padding."""
        table_size = HEADER.size + SECTION_HEADER.size * len(self.sections)
        offset = _round_up(table_size, 64)
        entries = []
        payloads = []
        for section in self.sections:
            entries.append(SECTION_HEADER.pack(
                section.name.encode().ljust(8, b"\x00")[:8],
                section.load_addr, len(section.data), offset,
            ))
            payloads.append((offset, section.data))
            offset = _round_up(offset + len(section.data), 64)
        total = max(offset, pad_to)
        image = bytearray(b"\xff" * total)
        image[: HEADER.size] = HEADER.pack(MAGIC, 1, len(self.sections))
        cursor = HEADER.size
        for entry in entries:
            image[cursor : cursor + SECTION_HEADER.size] = entry
            cursor += SECTION_HEADER.size
        for off, data in payloads:
            image[off : off + len(data)] = data
        return bytes(image)


class ImageFormatError(Exception):
    """The bytes do not parse as a firmware image."""


def parse_image(data: bytes) -> list[Section]:
    """Parse a plain image back into sections (the 'public' format)."""
    if len(data) < HEADER.size:
        raise ImageFormatError("image too short")
    magic, version, count = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise ImageFormatError(f"bad magic {magic!r}")
    sections = []
    cursor = HEADER.size
    for _ in range(count):
        if cursor + SECTION_HEADER.size > len(data):
            raise ImageFormatError("truncated section table")
        name, load, size, offset = SECTION_HEADER.unpack_from(data, cursor)
        cursor += SECTION_HEADER.size
        if offset + size > len(data):
            raise ImageFormatError("section payload out of bounds")
        sections.append(Section(name.rstrip(b"\x00").decode(), load,
                                data[offset : offset + size]))
    return sections


def build_firmware(memory_map: MemoryMap) -> FirmwareImage:
    """Assemble all cores and pack the image."""
    core0 = assemble(sata_core_source(memory_map))
    core1 = assemble(flash_core_source(memory_map, 1))
    core2 = assemble(flash_core_source(memory_map, 2))
    code_base = memory_map.code_base
    image = FirmwareImage(memory_map)
    image.sections.append(Section("core0", code_base, core0))
    image.sections.append(Section("core1", code_base + 0x1000, core1))
    image.sections.append(Section("core2", code_base + 0x2000, core2))
    image.sections.append(Section("strings", code_base + 0x3000,
                                  b"".join(IMAGE_STRINGS)))
    # A zero-padded configuration blob: known plaintext for the
    # keystream attack, like the padded tail of real vendor images.
    image.sections.append(Section("config", code_base + 0x4000,
                                  b"\x00" * 2048))
    return image
