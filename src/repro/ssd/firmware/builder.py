"""Firmware image generation for the 840-EVO-like device.

The JTAG study needs a *genuine artifact* to reverse engineer: machine
code whose constants and control flow embody the FTL facts the paper
recovered, packed in a vendor-style sectioned image.  The builder
assembles three cores' worth of ISA code from templates:

``core0`` (SATA)
    Reads the pending LBA from MMIO and rings core 1's or core 2's
    doorbell depending on ``lba & 1`` — the LBA-LSB channel split.
``core1`` / ``core2`` (flash)
    Compute the translation-entry address: entry index ``lba >> 3``
    scaled by the entry stride, into one of the core's four mapping
    arrays selected by ``(lba >> 1) & 3``; then probe the pSLC hashed
    index at bucket ``(lba ^ (lba >> 5)) & (buckets - 1)``.

Image layout (the "public format" a de-obfuscation utility would know)::

    +0   magic  "SSDFW840"
    +8   version u32, section_count u32
    +16  section table: name[8] load_addr u32 size u32 offset u32
    ...  section payloads, zero/0xFF padding between sections

The padding is not cosmetic: it is the known plaintext the keystream
attack in :mod:`repro.ssd.firmware.obfuscation` exploits.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.ssd.config import SsdConfig
from repro.ssd.firmware.isa import assemble

MAGIC = b"SSDFW840"
SECTION_HEADER = struct.Struct("<8sIII")
HEADER = struct.Struct("<8sII")

#: address-space bases (fixed by the controller design).
CODE_BASE = 0x00000000
SRAM_BASE = 0x10000000
DRAM_BASE = 0x20000000
MMIO_BASE = 0x40000000

#: MMIO registers.
MMIO_LBA = 0x0
MMIO_LEN = 0x4
MMIO_DOORBELL = 0x8

#: MMIO latch registers written by the policy cores.  The allocation
#: core stores the C/W/D/P coordinates of each page it places, in the
#: scheme's fastest-to-slowest order — so the *sequence* of store
#: offsets in the code is the dimension permutation itself.
MMIO_DIM_LATCHES = {"C": 0x10, "W": 0x14, "D": 0x18, "P": 0x1C}
MMIO_STREAM = 0x20
MMIO_CACHE_CAP = 0x24
MMIO_CACHE_TP = 0x28
MMIO_GC_VICTIM = 0x2C

NUM_MAP_ARRAYS = 8
MAP_ENTRY_BYTES = 4
PSLC_BUCKET_BYTES = 8

#: DRAM policy tables (what the policy cores' pointer loads resolve to).
#: Each table slot is a 16-byte header (8-byte ASCII tag + padding)
#: followed by 4096 little-endian u32 entries; the recorded base points
#: at entry 0, so the tag sits at ``base - POLICY_TABLE_TAG_BYTES``.
POLICY_TABLE_ENTRIES = 4096
POLICY_TABLE_TAG_BYTES = 16
POLICY_TABLE_STRIDE = 0x5000
POLICY_TABLE_NAMES = (
    "pool", "valid", "seq", "erase", "heat", "cacheslot", "recency",
)
POLICY_TABLE_TAGS = {
    "pool": b"GCPOOL\x00\x00",      # GC candidate pool (sealed blocks)
    "valid": b"BLKVALID",           # per-block valid-sector counts
    "seq": b"ALLOCSEQ",             # per-block allocation stamps (age)
    "erase": b"ERASECNT",           # per-block erase counts (wear)
    "heat": b"HEATTBL\x00",         # per-LPN write heat (stream routing)
    "cacheslot": b"CACHESLT",       # write-cache pending set, eviction order
    "recency": b"RECENCY\x00",      # eviction recency stamps
}

#: SRAM scratch the randomized GC scan spills its drawn sample into.
SCRATCH_BASE = SRAM_BASE + 0x2000
#: SRAM staging buffer the bypass admission path packs sectors into.
STAGING_BASE = SRAM_BASE + 0x3000


@dataclass(frozen=True)
class MemoryMap:
    """Where everything lives in the controller's address space."""

    num_lpns: int
    entries_per_array: int
    map_array_bases: tuple[int, ...]
    pslc_index_base: int
    pslc_buckets: int
    dram_base: int = DRAM_BASE
    code_base: int = CODE_BASE
    sram_base: int = SRAM_BASE
    mmio_base: int = MMIO_BASE
    #: ``(name, entry-0 address)`` per policy table, in layout order.
    #: Empty for maps built before the policy cores existed.
    policy_table_bases: tuple[tuple[str, int], ...] = ()

    @property
    def map_array_bytes(self) -> int:
        return self.entries_per_array * MAP_ENTRY_BYTES

    @property
    def map_total_bytes(self) -> int:
        return self.map_array_bytes * NUM_MAP_ARRAYS

    @property
    def pslc_index_bytes(self) -> int:
        return self.pslc_buckets * PSLC_BUCKET_BYTES

    def array_of_lpn(self, lpn: int) -> tuple[int, int]:
        """``(array index, byte offset)`` of one LPN's map entry."""
        return lpn % NUM_MAP_ARRAYS, (lpn // NUM_MAP_ARRAYS) * MAP_ENTRY_BYTES

    def entry_address(self, lpn: int) -> int:
        array, offset = self.array_of_lpn(lpn)
        return self.map_array_bases[array] + offset

    def pslc_bucket_of(self, lpn: int) -> int:
        return (lpn ^ (lpn >> 5)) & (self.pslc_buckets - 1)

    def pslc_bucket_address(self, bucket: int) -> int:
        return self.pslc_index_base + bucket * PSLC_BUCKET_BYTES

    def policy_table(self, name: str) -> int:
        """Entry-0 address of one policy table."""
        for table, base in self.policy_table_bases:
            if table == name:
                return base
        raise KeyError(f"no policy table {name!r}")

    @property
    def policy_region(self) -> tuple[int, int] | None:
        """``(start, end)`` of DRAM holding the policy tables (tags
        included), or ``None`` on pre-policy maps."""
        if not self.policy_table_bases:
            return None
        first = self.policy_table_bases[0][1] - POLICY_TABLE_TAG_BYTES
        last = (self.policy_table_bases[-1][1]
                + POLICY_TABLE_ENTRIES * MAP_ENTRY_BYTES)
        return first, last


def memory_map_for(config: SsdConfig, pslc_buckets: int = 4096) -> MemoryMap:
    """Lay out DRAM for a device configuration."""
    if pslc_buckets & (pslc_buckets - 1):
        raise ValueError("pslc_buckets must be a power of two")
    num_lpns = config.logical_sectors
    entries = -(-num_lpns // NUM_MAP_ARRAYS)
    stride = _round_up(entries * MAP_ENTRY_BYTES, 0x1000)
    bases = tuple(DRAM_BASE + i * stride for i in range(NUM_MAP_ARRAYS))
    # The pSLC index comes from a different allocation pool: leave a
    # guard gap so it is not stride-contiguous with the map arrays.
    pslc_base = DRAM_BASE + NUM_MAP_ARRAYS * stride + 0x10000
    # Policy tables live past the pSLC index, again behind a guard gap
    # so the stride-fit over map-array pointers never picks them up.
    policy_base = (pslc_base
                   + _round_up(pslc_buckets * PSLC_BUCKET_BYTES, 0x1000)
                   + 0x10000)
    policy_tables = tuple(
        (name, policy_base + i * POLICY_TABLE_STRIDE + POLICY_TABLE_TAG_BYTES)
        for i, name in enumerate(POLICY_TABLE_NAMES)
    )
    return MemoryMap(
        num_lpns=num_lpns,
        entries_per_array=entries,
        map_array_bases=bases,
        pslc_index_base=pslc_base,
        pslc_buckets=pslc_buckets,
        policy_table_bases=policy_tables,
    )


def _round_up(value: int, align: int) -> int:
    return (value + align - 1) // align * align


def _hi(value: int) -> int:
    return (value >> 16) & 0xFFFF


def _lo(value: int) -> int:
    return value & 0xFFFF


# ----------------------------------------------------------------------
# Code templates
# ----------------------------------------------------------------------


def sata_core_source(memory_map: MemoryMap) -> str:
    """Core 0: the host-interface dispatcher."""
    mmio = memory_map.mmio_base
    return f"""
sata_entry:
    movi r1, 0x{_lo(mmio):x}
    movt r1, 0x{_hi(mmio):x}
    ldr r0, [r1, 0x{MMIO_LBA:x}]
    and r2, r0, 0x1            ; route by the LBA's least-significant bit
    cmp r2, 0x0
    beq route_even
    movi r3, 0x2
    str r3, [r1, 0x{MMIO_DOORBELL:x}]   ; doorbell flash core 2
    b sata_wait
route_even:
    movi r3, 0x1
    str r3, [r1, 0x{MMIO_DOORBELL:x}]   ; doorbell flash core 1
sata_wait:
    wfi
    b sata_entry
"""


def flash_core_source(memory_map: MemoryMap, core: int) -> str:
    """Cores 1 and 2: map lookup over the core's four arrays + pSLC probe."""
    if core not in (1, 2):
        raise ValueError("flash cores are 1 and 2")
    parity = core - 1
    arrays = [parity, parity + 2, parity + 4, parity + 6]
    bases = [memory_map.map_array_bases[a] for a in arrays]
    mmio = memory_map.mmio_base
    pslc = memory_map.pslc_index_base
    mask = memory_map.pslc_buckets - 1
    return f"""
flash_entry:
    movi r1, 0x{_lo(mmio):x}
    movt r1, 0x{_hi(mmio):x}
    ldr r0, [r1, 0x{MMIO_LBA:x}]
    lsr r4, r0, 0x3            ; entry index = lba / 8
    lsl r4, r4, 0x2            ; * entry stride (4 bytes)
    lsr r5, r0, 0x1
    and r5, r5, 0x3            ; which of this core's four arrays
    cmp r5, 0x0
    beq use_a0
    cmp r5, 0x1
    beq use_a1
    cmp r5, 0x2
    beq use_a2
    movi r6, 0x{_lo(bases[3]):x}
    movt r6, 0x{_hi(bases[3]):x}
    b lookup
use_a0:
    movi r6, 0x{_lo(bases[0]):x}
    movt r6, 0x{_hi(bases[0]):x}
    b lookup
use_a1:
    movi r6, 0x{_lo(bases[1]):x}
    movt r6, 0x{_hi(bases[1]):x}
    b lookup
use_a2:
    movi r6, 0x{_lo(bases[2]):x}
    movt r6, 0x{_hi(bases[2]):x}
lookup:
    addx r6, r4
    ldr r7, [r6, 0x0]          ; translation entry
    lsr r8, r0, 0x5            ; pSLC hashed-index probe:
    xorx r8, r0                ;   h = (lba ^ (lba >> 5)) & (buckets-1)
    and r8, r8, 0x{mask:x}
    lsl r8, r8, 0x3            ;   * bucket stride (8 bytes)
    movi r9, 0x{_lo(pslc):x}
    movt r9, 0x{_hi(pslc):x}
    addx r9, r8
    ldr r10, [r9, 0x0]         ; bucket tag
    wfi
    b flash_entry
"""


# ----------------------------------------------------------------------
# Policy cores: machine code whose data references and control flow
# encode the six policy knobs.  These sections are what the gray-box
# inference harness (src/repro/infer) statically analyzes; the names
# deliberately avoid the ``core*`` prefix so the legacy §3.2 discovery
# pipeline's map-array stride fit is untouched.
# ----------------------------------------------------------------------

#: Static fingerprint of each GC victim policy's decision inputs:
#: (xorshift rng, SRAM scratch spill, valid xref, seq xref, erase xref).
#: All seven rows are distinct, which is exactly what makes the knob
#: recoverable from the code alone.
GC_FEATURES: dict[str, tuple[bool, bool, bool, bool, bool]] = {
    "greedy":            (False, False, True,  False, False),
    "randomized_greedy": (True,  True,  True,  False, False),
    "random":            (True,  False, False, False, False),
    "fifo":              (False, False, False, True,  False),
    "cost_benefit":      (False, False, True,  True,  False),
    "d_choices":         (True,  False, True,  False, False),
    "cat":               (False, False, True,  True,  True),
}


def _ptr(reg: int, value: int, comment: str = "") -> list[str]:
    tail = f"            ; {comment}" if comment else ""
    return [f"    movi r{reg}, 0x{_lo(value):x}{tail}",
            f"    movt r{reg}, 0x{_hi(value):x}"]


def _xorshift(state: int = 7, tmp: int = 8) -> list[str]:
    """The MUL-free PRNG idiom every sampled policy compiles to."""
    return [
        f"    lsl r{tmp}, r{state}, 0x7      ; xorshift rng step",
        f"    xorx r{state}, r{tmp}",
        f"    lsr r{tmp}, r{state}, 0x9",
        f"    xorx r{state}, r{tmp}",
    ]


def _table_load(idx_reg: int, base_reg: int, comment: str) -> list[str]:
    """Load ``table[idx]`` through a dedicated base-pointer register."""
    return [
        f"    lsl r10, r{idx_reg}, 0x2",
        "    orr r13, r10, 0x0",
        f"    addx r13, r{base_reg}",
        f"    ldr r14, [r13, 0x0]        ; {comment}",
    ]


def gc_core_source(memory_map: MemoryMap, config: SsdConfig) -> str:
    """The victim-selection core for ``config.gc_policy``."""
    policy = config.gc_policy
    if policy not in GC_FEATURES:
        raise ValueError(f"no firmware template for gc policy {policy!r}")
    rng, scratch, valid, seq, erase = GC_FEATURES[policy]
    lines = ["gc_entry:"]
    lines += _ptr(1, memory_map.policy_table("pool"), "GC candidate pool")
    lines += ["    movi r2, 0x0               ; scan cursor"]
    if valid:
        lines += _ptr(3, memory_map.policy_table("valid"), "valid counts")
    if seq:
        lines += _ptr(4, memory_map.policy_table("seq"), "allocation stamps")
    if erase:
        lines += _ptr(5, memory_map.policy_table("erase"), "erase counts")
    if scratch:
        lines += _ptr(6, SCRATCH_BASE, "drawn-sample scratch")
    if rng:
        lines += ["    movi r7, 0xace1            ; rng seed"]
    lines += ["gc_scan:"]
    if rng:
        lines += _xorshift()
        lines += ["    orr r9, r7, 0x0",
                  "    and r9, r9, 0xff           ; random candidate index"]
        bound = 1 if policy == "random" else max(2, config.gc_sample_size)
    else:
        lines += ["    orr r9, r2, 0x0            ; sequential candidate index"]
        bound = POLICY_TABLE_ENTRIES
    lines += [
        "    lsl r10, r9, 0x2",
        "    orr r11, r10, 0x0",
        "    addx r11, r1",
        "    ldr r12, [r11, 0x0]        ; candidate block id",
    ]
    if valid:
        lines += _table_load(12, 3, "valid-sector count")
    if seq:
        lines += _table_load(12, 4, "allocation stamp (block age)")
    if erase:
        lines += _table_load(12, 5, "erase count (block temperature)")
    if scratch:
        lines += ["    str r12, [r6, 0x0]         ; note draw (no replacement)"]
    lines += [
        "    add r2, r2, 0x1",
        f"    cmp r2, 0x{bound:x}",
        "    bne gc_scan",
    ]
    lines += _ptr(0, memory_map.mmio_base)
    lines += [
        f"    str r12, [r0, 0x{MMIO_GC_VICTIM:x}]        ; latch chosen victim",
        "    wfi",
        "    b gc_entry",
    ]
    return "\n".join(lines) + "\n"


def alloc_core_source(memory_map: MemoryMap, config: SsdConfig) -> str:
    """The page-placement core for ``config.allocation_scheme``.

    The scheme permutation is written out literally: one coordinate
    extraction + MMIO latch store per dimension, fastest first.  The
    ``hotcold`` policy prepends its heat-table lookup and cold-stream
    latch to a CWDP base order.
    """
    from repro.ssd.policy.allocation import SchemeAllocation

    name = config.allocation_scheme
    hotcold = name == "hotcold"
    scheme = "CWDP" if hotcold else name
    dims = SchemeAllocation._parse_scheme(scheme, config.geometry)
    lines = ["alloc_entry:"]
    lines += _ptr(1, memory_map.mmio_base, "request registers")
    lines += [f"    ldr r0, [r1, 0x{MMIO_LBA:x}]          ; allocation cursor"]
    if hotcold:
        lines += _ptr(2, memory_map.policy_table("heat"), "per-LPN write heat")
        lines += [
            "    and r3, r0, 0xfff          ; lpn -> heat slot",
            "    lsl r3, r3, 0x2",
            "    orr r5, r3, 0x0",
            "    addx r5, r2",
            "    ldr r6, [r5, 0x0]          ; previous write count",
            "    add r6, r6, 0x1",
            "    str r6, [r5, 0x0]          ; bump heat",
            "    cmp r6, 0x1",
            "    bne place                  ; rewritten: stay on host stream",
            "    movi r7, 0x1",
            f"    str r7, [r1, 0x{MMIO_STREAM:x}]         ; first touch: cold stream",
        ]
    lines += ["place:"]
    shift = 0
    for letter, size in dims:
        bits = max(0, size - 1).bit_length()
        mask = (1 << bits) - 1
        latch = MMIO_DIM_LATCHES[letter]
        lines += [
            f"    lsr r4, r0, 0x{shift:x}",
            f"    and r4, r4, 0x{mask:x}",
            f"    str r4, [r1, 0x{latch:x}]          ; {letter} coordinate",
        ]
        shift += bits
    lines += ["    wfi", "    b alloc_entry"]
    return "\n".join(lines) + "\n"


def cache_core_source(memory_map: MemoryMap, config: SsdConfig) -> str:
    """The write-cache core: designation constants, admission path,
    and eviction bookkeeping."""
    from repro.ssd.policy.cache import (
        cache_admission_policies,
        cache_designations,
    )

    plan = cache_designations.resolve(config.cache_designation)().plan(
        config.cache_sectors, config.geometry
    )
    admits = bool(getattr(
        cache_admission_policies.resolve(config.cache_admission), "always", True
    ))
    lines = ["cache_entry:"]
    lines += _ptr(1, memory_map.mmio_base, "request registers")
    lines += [
        f"    movi r2, 0x{plan.cache_sectors:x}",
        f"    str r2, [r1, 0x{MMIO_CACHE_CAP:x}]          ; cache capacity (sectors)",
        f"    movi r3, 0x{plan.extra_dirty_tps:x}",
        f"    str r3, [r1, 0x{MMIO_CACHE_TP:x}]          ; dirty-TP slots bought",
        f"    ldr r0, [r1, 0x{MMIO_LBA:x}]          ; incoming sector",
    ]
    if admits:
        lines += _ptr(4, memory_map.policy_table("cacheslot"), "pending set")
        lines += [
            "    and r5, r0, 0xfff",
            "    lsl r5, r5, 0x2",
            "    orr r6, r5, 0x0",
            "    addx r6, r4",
            "    str r0, [r6, 0x0]          ; admit into the pending set",
        ]
    else:
        lines += _ptr(4, STAGING_BASE, "direct staging buffer")
        lines += ["    str r0, [r4, 0x0]          ; bypass: pack straight through"]
    # The flush engine is compiled in regardless of admission, so the
    # eviction knob stays recoverable even on bypass builds.
    if config.cache_eviction == "lru":
        lines += _ptr(8, memory_map.policy_table("recency"), "recency stamps")
        lines += [
            "    ldr r9, [r8, 0x0]",
            "    add r9, r9, 0x1",
            "    str r9, [r8, 0x0]          ; hit refreshes the sector's age",
        ]
    lines += ["    wfi", "    b cache_entry"]
    return "\n".join(lines) + "\n"


def wear_core_source(memory_map: MemoryMap, config: SsdConfig) -> str:
    """The wear-leveling core: coldest-block scan, full or sampled."""
    sampled = config.wear_policy == "sampled_cold"
    lines = ["wear_entry:"]
    lines += _ptr(1, memory_map.policy_table("erase"), "erase counts")
    lines += ["    movi r2, 0x0               ; scan cursor"]
    if sampled:
        lines += ["    movi r7, 0xbeef            ; rng seed"]
    lines += ["wear_scan:"]
    if sampled:
        lines += _xorshift()
        lines += ["    orr r9, r7, 0x0",
                  "    and r9, r9, 0xff           ; sampled candidate"]
        bound = 8
    else:
        lines += ["    orr r9, r2, 0x0            ; exhaustive coldest scan"]
        bound = POLICY_TABLE_ENTRIES
    lines += [
        "    lsl r10, r9, 0x2",
        "    orr r11, r10, 0x0",
        "    addx r11, r1",
        "    ldr r12, [r11, 0x0]        ; candidate erase count",
        "    add r2, r2, 0x1",
        f"    cmp r2, 0x{bound:x}",
        "    bne wear_scan",
    ]
    lines += _ptr(0, memory_map.mmio_base)
    lines += [
        f"    str r12, [r0, 0x{MMIO_GC_VICTIM:x}]        ; latch migration source",
        "    wfi",
        "    b wear_entry",
    ]
    return "\n".join(lines) + "\n"


#: section name -> source generator for the four policy cores.
POLICY_SECTIONS = (
    ("pgc", gc_core_source),
    ("palloc", alloc_core_source),
    ("pcache", cache_core_source),
    ("pwear", wear_core_source),
)


#: vendor-ish strings embedded in the image (RE pipelines grep these).
IMAGE_STRINGS = (
    b"EVO840-REPRO-FTL\x00",
    b"TurboWrite\x00",
    b"L2P-CHUNK-LOADER\x00",
    b"SATA-HOST-IF\x00",
)


@dataclass
class Section:
    name: str
    load_addr: int
    data: bytes


@dataclass
class FirmwareImage:
    """A built (plain, unobfuscated) firmware image."""

    memory_map: MemoryMap
    sections: list[Section] = field(default_factory=list)

    def section(self, name: str) -> Section:
        for section in self.sections:
            if section.name == name:
                return section
        raise KeyError(f"no section {name!r}")

    def to_bytes(self, pad_to: int = 0x8000) -> bytes:
        """Serialize with header, section table, and padding."""
        table_size = HEADER.size + SECTION_HEADER.size * len(self.sections)
        offset = _round_up(table_size, 64)
        entries = []
        payloads = []
        for section in self.sections:
            entries.append(SECTION_HEADER.pack(
                section.name.encode().ljust(8, b"\x00")[:8],
                section.load_addr, len(section.data), offset,
            ))
            payloads.append((offset, section.data))
            offset = _round_up(offset + len(section.data), 64)
        total = max(offset, pad_to)
        image = bytearray(b"\xff" * total)
        image[: HEADER.size] = HEADER.pack(MAGIC, 1, len(self.sections))
        cursor = HEADER.size
        for entry in entries:
            image[cursor : cursor + SECTION_HEADER.size] = entry
            cursor += SECTION_HEADER.size
        for off, data in payloads:
            image[off : off + len(data)] = data
        return bytes(image)


class ImageFormatError(Exception):
    """The bytes do not parse as a firmware image."""


def parse_image(data: bytes) -> list[Section]:
    """Parse a plain image back into sections (the 'public' format)."""
    if len(data) < HEADER.size:
        raise ImageFormatError("image too short")
    magic, version, count = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise ImageFormatError(f"bad magic {magic!r}")
    sections = []
    cursor = HEADER.size
    for _ in range(count):
        if cursor + SECTION_HEADER.size > len(data):
            raise ImageFormatError("truncated section table")
        name, load, size, offset = SECTION_HEADER.unpack_from(data, cursor)
        cursor += SECTION_HEADER.size
        if offset + size > len(data):
            raise ImageFormatError("section payload out of bounds")
        sections.append(Section(name.rstrip(b"\x00").decode(), load,
                                data[offset : offset + size]))
    return sections


def build_firmware(memory_map: MemoryMap,
                   config: SsdConfig | None = None) -> FirmwareImage:
    """Assemble all cores and pack the image.

    With *config* the image also carries the four policy cores
    (``pgc``/``palloc``/``pcache``/``pwear``) compiled from the config's
    six policy knobs — the substrate the gray-box inference harness
    reverse engineers.  Without it the image is byte-identical to the
    pre-policy five-section layout.
    """
    core0 = assemble(sata_core_source(memory_map))
    core1 = assemble(flash_core_source(memory_map, 1))
    core2 = assemble(flash_core_source(memory_map, 2))
    code_base = memory_map.code_base
    image = FirmwareImage(memory_map)
    image.sections.append(Section("core0", code_base, core0))
    image.sections.append(Section("core1", code_base + 0x1000, core1))
    image.sections.append(Section("core2", code_base + 0x2000, core2))
    image.sections.append(Section("strings", code_base + 0x3000,
                                  b"".join(IMAGE_STRINGS)))
    # A zero-padded configuration blob: known plaintext for the
    # keystream attack, like the padded tail of real vendor images.
    image.sections.append(Section("config", code_base + 0x4000,
                                  b"\x00" * 2048))
    if config is not None:
        for i, (name, source) in enumerate(POLICY_SECTIONS):
            image.sections.append(Section(
                name, code_base + 0x5000 + i * 0x1000,
                assemble(source(memory_map, config)),
            ))
    return image
