"""Vendor-style firmware image obfuscation, and the attack that undoes it.

Samsung's firmware updates of the 840 era were distributed scrambled; the
paper used an existing de-obfuscation utility [Chen, drive_firmware] to
recover the plain image before disassembly.  This module implements both
sides:

* :func:`obfuscate` applies a periodic rolling-XOR keystream (an LCG over
  bytes), seeded per image — representative of the light scramblers
  vendors actually used;
* :func:`recover_keystream` mounts a classic known-plaintext attack: a
  firmware image is full of padding bytes (0x00 / 0xFF), so for each
  keystream phase the *modal* ciphertext byte is almost surely
  ``pad ^ key[phase]``.  Scoring candidate periods by how "peaky" the
  per-phase histograms are finds the period without any metadata.

The attack is honest: it never reads the seed from the header.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

#: candidate keystream periods the attack tries (vendors use small ones).
CANDIDATE_PERIODS = (16, 32, 64, 128, 256, 512)

#: padding bytes common in firmware images.
PAD_BYTES = (0x00, 0xFF)


def keystream(seed: int, period: int) -> bytes:
    """The scrambler's repeating key: a byte LCG of length *period*."""
    if period <= 0:
        raise ValueError("period must be positive")
    out = bytearray()
    k = seed & 0xFF
    for _ in range(period):
        k = (k * 5 + 7) & 0xFF
        out.append(k)
    return bytes(out)


def obfuscate(plain: bytes, seed: int = 0x5A, period: int = 64) -> bytes:
    """XOR *plain* with the repeating keystream."""
    key = keystream(seed, period)
    data = np.frombuffer(plain, dtype=np.uint8)
    ks = np.frombuffer((key * (len(plain) // period + 1))[: len(plain)],
                       dtype=np.uint8)
    return (data ^ ks).tobytes()


#: obfuscation is an involution with the same key.
deobfuscate_with_key = obfuscate


@dataclass
class KeystreamGuess:
    """Result of the known-plaintext attack."""

    period: int
    key: bytes
    confidence: float  # mean modal-byte frequency across phases (0..1)


#: the public image format's magic — an 8-byte crib at offset 0 (the
#: paper's de-obfuscation tool likewise knew the vendor's file format).
DEFAULT_CRIB = b"SSDFW840"


def recover_keystream(
    cipher: bytes,
    periods: tuple[int, ...] = CANDIDATE_PERIODS,
    crib: bytes = DEFAULT_CRIB,
) -> KeystreamGuess:
    """Recover period and key from ciphertext plus a header crib.

    Padding gives each keystream phase a sharply-peaked ciphertext
    histogram, but the modal byte only determines the key *up to the pad
    value* (``modal = pad ^ key``, and both 0x00 and 0xFF occur).  The
    crib breaks the tie: the known magic pins the first key bytes
    exactly, those vote on which pad dominates globally, and the modal
    bytes of the remaining phases are decoded against that pad.
    """
    if len(cipher) < max(periods) * 4:
        raise ValueError("ciphertext too short for the attack")
    if not crib:
        raise ValueError("a header crib is required to break pad ambiguity")
    data = np.frombuffer(cipher, dtype=np.uint8)
    best: KeystreamGuess | None = None
    for period in periods:
        usable = len(data) - (len(data) % period)
        phases = data[:usable].reshape(-1, period)
        counts = np.apply_along_axis(
            lambda col: np.bincount(col, minlength=256), 0, phases
        )
        modal = counts.argmax(axis=0).astype(np.uint8)
        peakiness = counts.max(axis=0) / phases.shape[0]

        key = bytearray(period)
        pad_votes = {pad: 0 for pad in PAD_BYTES}
        for i, crib_byte in enumerate(crib[: min(len(crib), period)]):
            key[i % period] = cipher[i] ^ crib_byte
            implied_pad = modal[i % period] ^ key[i % period]
            if implied_pad in pad_votes:
                pad_votes[implied_pad] += 1
        pad = max(pad_votes, key=pad_votes.get)
        crib_consistency = (
            sum(pad_votes.values()) / min(len(crib), period)
        )
        for phase in range(min(len(crib), period), period):
            key[phase] = modal[phase] ^ pad
        confidence = float(np.mean(peakiness)) * max(crib_consistency, 0.01)
        guess = KeystreamGuess(period, bytes(key), confidence)
        if best is None or guess.confidence > best.confidence:
            best = guess
    assert best is not None
    return best


def deobfuscate(cipher: bytes) -> tuple[bytes, KeystreamGuess]:
    """Full pipeline: recover the keystream, then strip it."""
    guess = recover_keystream(cipher)
    data = np.frombuffer(cipher, dtype=np.uint8)
    ks = np.frombuffer(
        (guess.key * (len(cipher) // guess.period + 1))[: len(cipher)],
        dtype=np.uint8,
    )
    return (data ^ ks).tobytes(), guess
