"""Generated firmware: ISA, image builder, obfuscation, hackable device."""

from repro.ssd.firmware.builder import (
    FirmwareImage,
    MemoryMap,
    build_firmware,
    memory_map_for,
    parse_image,
)
from repro.ssd.firmware.cpu import Cpu, CpuFault
from repro.ssd.firmware.device import HackableSSD, IDCODE
from repro.ssd.firmware.isa import assemble, disassemble, find_pointer_loads
from repro.ssd.firmware.obfuscation import deobfuscate, obfuscate

__all__ = [
    "HackableSSD", "IDCODE",
    "MemoryMap", "FirmwareImage", "build_firmware", "memory_map_for",
    "parse_image", "assemble", "disassemble", "find_pointer_loads",
    "obfuscate", "deobfuscate", "Cpu", "CpuFault",
]
