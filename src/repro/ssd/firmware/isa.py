"""A small fixed-width controller ISA, with assembler and disassembler.

The 840 EVO's controller is an ARM Cortex-R tri-core; reproducing a full
ARM decoder is beside the point, but the reverse-engineering pipeline
needs *real* machine code to disassemble and analyze — firmware whose
constants and control flow genuinely encode the FTL facts the paper
recovered (the LBA-LSB channel split, the mapping-array base addresses).

So the firmware builder targets this 32-bit ISA:

========  =============================  =================================
encoding  ``[op:8][rd:4][rn:4][imm:16]`` little-endian words
regs      r0..r14, pc is implicit
flags     Z only (set by CMP)
========  =============================  =================================

Instructions: NOP, HALT, WFI, MOVI (rd=imm), MOVT (rd|=imm<<16),
LDR/STR (rd <-> [rn+imm]), ADD/SUB/AND/ORR/LSR/LSL (rd = rn op imm),
CMP (flags = rn vs imm), BEQ/BNE/B/BL (pc-relative, in words), RET.

The idiom ``MOVI rX, lo16; MOVT rX, hi16`` materializes 32-bit pointers —
exactly the pattern the RE pipeline scans for to find data structures in
the controller's address space (as one scans for ``MOVW/MOVT`` pairs in
real ARM firmware).
"""

from __future__ import annotations

import enum
import re
import struct
from dataclasses import dataclass

WORD = 4


class Op(enum.IntEnum):
    NOP = 0x00
    HALT = 0x01
    MOVI = 0x02
    MOVT = 0x03
    LDR = 0x04
    STR = 0x05
    ADD = 0x06
    SUB = 0x07
    AND = 0x08
    ORR = 0x09
    LSR = 0x0A
    LSL = 0x0B
    CMP = 0x0C
    BEQ = 0x0D
    BNE = 0x0E
    B = 0x0F
    BL = 0x10
    RET = 0x11
    WFI = 0x12
    ADDX = 0x13  # rd = rd + rn   (register-register add)
    XOR = 0x14  # rd = rn ^ imm
    XORX = 0x15  # rd = rd ^ rn   (register-register xor)


#: opcodes whose imm field is a signed pc-relative word offset.
BRANCH_OPS = {Op.BEQ, Op.BNE, Op.B, Op.BL}

#: opcodes taking rd, rn, imm
TRIPLE_OPS = {Op.LDR, Op.STR, Op.ADD, Op.SUB, Op.AND, Op.ORR, Op.LSR, Op.LSL,
              Op.XOR}

#: opcodes taking rd, rn (register-register)
PAIR_OPS = {Op.ADDX, Op.XORX}


class AsmError(Exception):
    """Assembly failed (syntax, range, unknown label)."""


@dataclass(frozen=True)
class Insn:
    """One decoded instruction."""

    op: Op
    rd: int = 0
    rn: int = 0
    imm: int = 0

    def encode(self) -> int:
        imm = self.imm & 0xFFFF
        return (int(self.op) << 24) | (self.rd << 20) | (self.rn << 16) | imm

    @property
    def simm(self) -> int:
        """imm as a signed 16-bit value (branch offsets)."""
        return self.imm - 0x10000 if self.imm & 0x8000 else self.imm

    def text(self) -> str:
        op = self.op
        if op in (Op.NOP, Op.HALT, Op.RET, Op.WFI):
            return op.name.lower()
        if op is Op.MOVI or op is Op.MOVT:
            return f"{op.name.lower()} r{self.rd}, 0x{self.imm:x}"
        if op is Op.LDR:
            return f"ldr r{self.rd}, [r{self.rn}, 0x{self.imm:x}]"
        if op is Op.STR:
            return f"str r{self.rd}, [r{self.rn}, 0x{self.imm:x}]"
        if op in TRIPLE_OPS:
            return f"{op.name.lower()} r{self.rd}, r{self.rn}, 0x{self.imm:x}"
        if op in PAIR_OPS:
            return f"{op.name.lower()} r{self.rd}, r{self.rn}"
        if op is Op.CMP:
            return f"cmp r{self.rn}, 0x{self.imm:x}"
        if op in BRANCH_OPS:
            return f"{op.name.lower()} {self.simm}"
        raise AssertionError(f"unhandled op {op!r}")


def decode_word(word: int) -> Insn | None:
    """Decode one 32-bit word; None if the opcode is not in the ISA."""
    opcode = (word >> 24) & 0xFF
    try:
        op = Op(opcode)
    except ValueError:
        return None
    return Insn(op, rd=(word >> 20) & 0xF, rn=(word >> 16) & 0xF,
                imm=word & 0xFFFF)


# ----------------------------------------------------------------------
# Assembler
# ----------------------------------------------------------------------

_REG = r"r(\d{1,2})"
_IMM = r"(-?(?:0x[0-9a-fA-F]+|\d+))"
_PATTERNS = [
    (re.compile(rf"(movi|movt)\s+{_REG}\s*,\s*{_IMM}$"), "ri"),
    (re.compile(rf"(ldr|str)\s+{_REG}\s*,\s*\[\s*{_REG}\s*(?:,\s*{_IMM})?\s*\]$"), "mem"),
    (re.compile(rf"(add|sub|and|orr|lsr|lsl|xor)\s+{_REG}\s*,\s*{_REG}\s*,\s*{_IMM}$"), "rri"),
    (re.compile(rf"(addx|xorx)\s+{_REG}\s*,\s*{_REG}$"), "rr"),
    (re.compile(rf"(cmp)\s+{_REG}\s*,\s*{_IMM}$"), "ni"),
    (re.compile(r"(beq|bne|bl|b)\s+([\w.]+)$"), "label"),
    (re.compile(r"(nop|halt|ret|wfi)$"), "bare"),
]


def _int(text: str) -> int:
    return int(text, 0)


def assemble(source: str, base_pc: int = 0) -> bytes:
    """Two-pass assembly of *source* into little-endian machine code.

    Lines hold one instruction, a ``label:`` definition, or a comment
    (``;`` to end of line).  Branch targets are labels.
    """
    lines = []
    for raw in source.splitlines():
        line = raw.split(";", 1)[0].strip().lower()
        if line:
            lines.append(line)

    labels: dict[str, int] = {}
    insns: list[tuple[str, tuple]] = []
    pc = 0
    for line in lines:
        while ":" in line:
            label, _, line = line.partition(":")
            label = label.strip()
            if not re.fullmatch(r"[\w.]+", label):
                raise AsmError(f"bad label {label!r}")
            if label in labels:
                raise AsmError(f"duplicate label {label!r}")
            labels[label] = pc
            line = line.strip()
        if not line:
            continue
        insns.append((line, (pc,)))
        pc += 1

    words: list[int] = []
    for line, (pc,) in insns:
        words.append(_assemble_line(line, pc, labels).encode())
    return struct.pack(f"<{len(words)}I", *words) if words else b""


def _assemble_line(line: str, pc: int, labels: dict[str, int]) -> Insn:
    for pattern, shape in _PATTERNS:
        match = pattern.fullmatch(line)
        if not match:
            continue
        mnemonic = match.group(1)
        op = Op[mnemonic.upper()]
        if shape == "bare":
            return Insn(op)
        if shape == "ri":
            rd, imm = int(match.group(2)), _int(match.group(3))
            _check_reg(rd), _check_imm(imm)
            return Insn(op, rd=rd, imm=imm & 0xFFFF)
        if shape == "mem":
            rd, rn = int(match.group(2)), int(match.group(3))
            imm = _int(match.group(4)) if match.group(4) else 0
            _check_reg(rd), _check_reg(rn), _check_imm(imm)
            return Insn(op, rd=rd, rn=rn, imm=imm & 0xFFFF)
        if shape == "rri":
            rd, rn, imm = (int(match.group(2)), int(match.group(3)),
                           _int(match.group(4)))
            _check_reg(rd), _check_reg(rn), _check_imm(imm)
            return Insn(op, rd=rd, rn=rn, imm=imm & 0xFFFF)
        if shape == "rr":
            rd, rn = int(match.group(2)), int(match.group(3))
            _check_reg(rd), _check_reg(rn)
            return Insn(op, rd=rd, rn=rn)
        if shape == "ni":
            rn, imm = int(match.group(2)), _int(match.group(3))
            _check_reg(rn), _check_imm(imm)
            return Insn(op, rn=rn, imm=imm & 0xFFFF)
        if shape == "label":
            target = match.group(2)
            if target not in labels:
                raise AsmError(f"unknown label {target!r}")
            offset = labels[target] - pc
            if not -0x8000 <= offset < 0x8000:
                raise AsmError(f"branch to {target!r} out of range")
            return Insn(op, imm=offset & 0xFFFF)
    raise AsmError(f"cannot assemble: {line!r}")


def _check_reg(reg: int) -> None:
    if not 0 <= reg <= 14:
        raise AsmError(f"register r{reg} out of range (r0-r14)")


def _check_imm(imm: int) -> None:
    if not -0x8000 <= imm <= 0xFFFF:
        raise AsmError(f"immediate {imm:#x} does not fit in 16 bits")


# ----------------------------------------------------------------------
# Disassembler
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DisasmLine:
    """One disassembled instruction with its address."""

    addr: int
    word: int
    insn: Insn | None

    def text(self) -> str:
        body = self.insn.text() if self.insn else f".word 0x{self.word:08x}"
        return f"{self.addr:08x}:  {body}"


def disassemble(code: bytes, base: int = 0) -> list[DisasmLine]:
    """Linear-sweep disassembly (firmware here has no inline data)."""
    if len(code) % WORD:
        code = code[: len(code) - len(code) % WORD]
    out = []
    for i, (word,) in enumerate(struct.iter_unpack("<I", code)):
        out.append(DisasmLine(base + i * WORD, word, decode_word(word)))
    return out


def find_pointer_loads(lines: list[DisasmLine]) -> list[tuple[int, int, int]]:
    """Scan for ``MOVI rX, lo; MOVT rX, hi`` pairs.

    Returns ``(addr_of_movi, register, pointer_value)`` triples — the
    standard firmware-RE trick for harvesting data-structure addresses.
    """
    found = []
    by_index = [line for line in lines if line.insn is not None]
    for a, b in zip(by_index, by_index[1:]):
        ia, ib = a.insn, b.insn
        if (ia.op is Op.MOVI and ib.op is Op.MOVT and ia.rd == ib.rd):
            found.append((a.addr, ia.rd, (ib.imm << 16) | ia.imm))
    return found
