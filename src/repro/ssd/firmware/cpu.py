"""A tiny interpreter for the firmware ISA.

Used by tests and the RE pipeline's dynamic analysis: executing the
generated firmware against the device's address space proves the code
really computes what the static analysis claims (e.g. that the SATA
dispatcher routes by the LBA's least-significant bit, or that a flash
core's map lookup lands in the documented array).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.ssd.firmware.isa import WORD, Insn, Op, decode_word


class CpuFault(Exception):
    """Undefined instruction or runaway execution."""


@dataclass
class MemoryTrace:
    """Accesses observed while running (for the dynamic-analysis tests)."""

    loads: list[tuple[int, int]] = field(default_factory=list)  # (addr, value)
    stores: list[tuple[int, int]] = field(default_factory=list)


class Cpu:
    """One core: 15 registers, a Z flag, and a word-addressed bus.

    ``read_word`` / ``write_word`` are callables over the device address
    space; ``code`` is the core's text section, executed at ``code_base``.
    """

    def __init__(
        self,
        code: bytes,
        code_base: int,
        read_word: Callable[[int], int],
        write_word: Callable[[int, int], None],
    ) -> None:
        self.code = code
        self.code_base = code_base
        self.read_word = read_word
        self.write_word = write_word
        self.regs = [0] * 15
        self.z = False
        self.pc = code_base
        self.halted = False
        self.waiting = False
        self.trace = MemoryTrace()
        self._lr = 0

    def _fetch(self) -> Insn:
        offset = self.pc - self.code_base
        if not 0 <= offset < len(self.code) or offset % WORD:
            raise CpuFault(f"pc 0x{self.pc:08x} outside code section")
        word = int.from_bytes(self.code[offset : offset + WORD], "little")
        insn = decode_word(word)
        if insn is None:
            raise CpuFault(f"undefined instruction 0x{word:08x} at 0x{self.pc:08x}")
        return insn

    def step(self) -> None:
        """Execute one instruction."""
        if self.halted or self.waiting:
            return
        insn = self._fetch()
        next_pc = self.pc + WORD
        op, rd, rn = insn.op, insn.rd, insn.rn
        imm = insn.imm
        regs = self.regs
        mask = 0xFFFFFFFF
        if op is Op.NOP:
            pass
        elif op is Op.HALT:
            self.halted = True
        elif op is Op.WFI:
            self.waiting = True
        elif op is Op.MOVI:
            regs[rd] = imm
        elif op is Op.MOVT:
            regs[rd] = ((imm << 16) | (regs[rd] & 0xFFFF)) & mask
        elif op is Op.LDR:
            addr = (regs[rn] + imm) & mask
            value = self.read_word(addr)
            regs[rd] = value & mask
            self.trace.loads.append((addr, regs[rd]))
        elif op is Op.STR:
            addr = (regs[rn] + imm) & mask
            self.write_word(addr, regs[rd] & mask)
            self.trace.stores.append((addr, regs[rd] & mask))
        elif op is Op.ADD:
            regs[rd] = (regs[rn] + imm) & mask
        elif op is Op.SUB:
            regs[rd] = (regs[rn] - imm) & mask
        elif op is Op.AND:
            regs[rd] = regs[rn] & imm
        elif op is Op.ORR:
            regs[rd] = (regs[rn] | imm) & mask
        elif op is Op.XOR:
            regs[rd] = (regs[rn] ^ imm) & mask
        elif op is Op.LSR:
            regs[rd] = (regs[rn] & mask) >> (imm & 31)
        elif op is Op.LSL:
            regs[rd] = (regs[rn] << (imm & 31)) & mask
        elif op is Op.ADDX:
            regs[rd] = (regs[rd] + regs[rn]) & mask
        elif op is Op.XORX:
            regs[rd] = (regs[rd] ^ regs[rn]) & mask
        elif op is Op.CMP:
            self.z = (regs[rn] & mask) == (imm & mask)
        elif op is Op.BEQ:
            if self.z:
                next_pc = self.pc + insn.simm * WORD
        elif op is Op.BNE:
            if not self.z:
                next_pc = self.pc + insn.simm * WORD
        elif op is Op.B:
            next_pc = self.pc + insn.simm * WORD
        elif op is Op.BL:
            self._lr = next_pc
            next_pc = self.pc + insn.simm * WORD
        elif op is Op.RET:
            next_pc = self._lr
        else:  # pragma: no cover - enum is exhaustive
            raise CpuFault(f"unhandled op {op!r}")
        self.pc = next_pc

    def run(self, max_steps: int = 10_000) -> int:
        """Run until HALT/WFI; returns steps executed."""
        steps = 0
        while not self.halted and not self.waiting:
            if steps >= max_steps:
                raise CpuFault(f"no HALT/WFI within {max_steps} steps")
            self.step()
            steps += 1
        return steps

    def resume(self) -> None:
        """Clear a WFI so execution can continue (interrupt delivery)."""
        self.waiting = False
