"""The hackable device: an 840-EVO-like SSD with firmware, DRAM and JTAG.

:class:`HackableSSD` wraps the counter-mode simulator in everything the
§3.2 study interacts with:

* a generated firmware image, plus the obfuscated "firmware update file"
  one would download from the vendor;
* a byte-addressable controller address space, where DRAM contents are
  materialized **from live FTL state** on demand — the mapping arrays
  (interleaved ``lpn % 8``), the pSLC hashed index, and 0xFF for
  mapping chunks that are not demand-loaded yet;
* per-core program counters that move through the firmware's handler
  ranges as the device services requests (what PC sampling over JTAG
  observes).

The JTAG layer (:mod:`repro.core.jtag`) talks to this class only through
:meth:`read_mem` / :meth:`write_mem` / :meth:`core_pc` — the same surface
a real debug port provides.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.ssd.config import SsdConfig
from repro.ssd.device import SimulatedSSD
from repro.ssd.firmware.builder import (
    MAP_ENTRY_BYTES,
    MMIO_BASE,
    MMIO_DOORBELL,
    MMIO_LBA,
    MMIO_LEN,
    NUM_MAP_ARRAYS,
    POLICY_TABLE_ENTRIES,
    POLICY_TABLE_TAG_BYTES,
    POLICY_TABLE_TAGS,
    PSLC_BUCKET_BYTES,
    FirmwareImage,
    MemoryMap,
    build_firmware,
    memory_map_for,
)
from repro.ssd.firmware.isa import WORD, Op, decode_word
from repro.ssd.firmware.obfuscation import obfuscate
from repro.ssd.mapping import UNMAPPED
from repro.ssd.presets import evo840_like

#: serialized entry for "mapped nowhere" (chunk resident, LPN unmapped).
ENTRY_UNMAPPED = 0xFFFFFFFE
#: fill byte for DRAM that holds nothing (incl. not-yet-loaded chunks).
FILL_BYTE = 0xFF

#: IDCODE reported on the debug port (an ARM JTAG-DP, as on real parts).
IDCODE = 0x4BA00477


@dataclass(frozen=True)
class CoreInfo:
    """Where one core's code lives and where it idles."""

    index: int
    load_addr: int
    size: int
    wfi_addr: int


class HackableSSD:
    """An SSD with a debug port left on the board."""

    def __init__(self, config: SsdConfig | None = None, scale: int = 2,
                 update_seed: int = 0x3C, update_period: int = 64,
                 policy_firmware: bool = False) -> None:
        self.config = config if config is not None else evo840_like(scale)
        self.ssd = SimulatedSSD(self.config, model="840 EVO (repro)")
        self.memory_map: MemoryMap = memory_map_for(self.config)
        #: with policy firmware the image carries the four policy cores
        #: and the DRAM policy tables are served from live FTL state.
        self.policy_firmware = policy_firmware
        self.firmware: FirmwareImage = build_firmware(
            self.memory_map, self.config if policy_firmware else None
        )
        self.firmware_plain: bytes = self.firmware.to_bytes()
        #: what the vendor's download site serves.
        self.firmware_update_file: bytes = obfuscate(
            self.firmware_plain, seed=update_seed, period=update_period
        )
        self._rom = self._build_rom()
        self._sram: dict[int, int] = {}
        self.cores = self._locate_cores()
        self._core_pcs = [core.wfi_addr for core in self.cores]
        self._halted = [False] * len(self.cores)
        self._activity = 0
        self._last_lba = 0
        self._last_len = 0
        self._last_doorbell = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_rom(self) -> bytes:
        end = max(s.load_addr + len(s.data) for s in self.firmware.sections)
        rom = bytearray(b"\xff" * end)
        for section in self.firmware.sections:
            rom[section.load_addr : section.load_addr + len(section.data)] = (
                section.data
            )
        return bytes(rom)

    def _locate_cores(self) -> list[CoreInfo]:
        cores = []
        for index in range(3):
            section = self.firmware.section(f"core{index}")
            wfi = section.load_addr
            for offset in range(0, len(section.data), WORD):
                insn = decode_word(
                    int.from_bytes(section.data[offset : offset + WORD], "little")
                )
                if insn is not None and insn.op is Op.WFI:
                    wfi = section.load_addr + offset
                    break
            cores.append(CoreInfo(index, section.load_addr, len(section.data), wfi))
        return cores

    # ------------------------------------------------------------------
    # Host interface (drives PC activity)
    # ------------------------------------------------------------------

    @property
    def num_sectors(self) -> int:
        return self.ssd.num_sectors

    def write_sectors(self, lba: int, count: int = 1):
        self._note_request(lba, count)
        return self.ssd.write_sectors(lba, count)

    def read_sectors(self, lba: int, count: int = 1):
        self._note_request(lba, count)
        return self.ssd.read_sectors(lba, count)

    def trim_sectors(self, lba: int, count: int = 1):
        self._note_request(lba, count)
        return self.ssd.trim_sectors(lba, count)

    def flush(self):
        return self.ssd.flush()

    def _note_request(self, lba: int, count: int) -> None:
        """Advance core PCs the way servicing this request would."""
        self._activity += 1
        self._last_lba = lba
        self._last_len = count
        flash_core = 1 + (lba & 1)
        self._last_doorbell = flash_core
        self._set_pc(0, busy=True)
        for core in (1, 2):
            self._set_pc(core, busy=(core == flash_core))

    def _set_pc(self, index: int, busy: bool) -> None:
        if self._halted[index]:
            return
        core = self.cores[index]
        if not busy:
            self._core_pcs[index] = core.wfi_addr
            return
        words = max(1, core.size // WORD)
        offset = (self._activity * 7 + index * 3) % words
        self._core_pcs[index] = core.load_addr + offset * WORD

    # ------------------------------------------------------------------
    # Debug surface (what JTAG reaches)
    # ------------------------------------------------------------------

    def core_pc(self, index: int) -> int:
        return self._core_pcs[index]

    def halt_core(self, index: int) -> None:
        self._halted[index] = True

    def resume_core(self, index: int) -> None:
        self._halted[index] = False

    def is_halted(self, index: int) -> bool:
        return self._halted[index]

    def read_mem(self, addr: int, length: int) -> bytes:
        """Read the controller address space."""
        if length < 0:
            raise ValueError("length must be non-negative")
        out = bytearray()
        cursor = addr
        remaining = length
        while remaining > 0:
            chunk = self._read_region(cursor, remaining)
            out.extend(chunk)
            cursor += len(chunk)
            remaining -= len(chunk)
        return bytes(out)

    def write_mem(self, addr: int, data: bytes) -> None:
        """Writes land in SRAM and MMIO; other regions are read-only
        (writing code/DRAM through this model is not needed by the
        experiments, and real debug sessions avoid it too)."""
        sram = self.memory_map.sram_base
        if sram <= addr and addr + len(data) <= sram + 0x10000:
            for i, byte in enumerate(data):
                self._sram[addr + i] = byte
            return
        if addr >= MMIO_BASE:
            # Allow poking the doorbell (used to test core wake-up).
            if addr == MMIO_BASE + MMIO_DOORBELL and data:
                self._last_doorbell = data[0]
            return
        raise PermissionError(f"region at 0x{addr:08x} is not writable")

    # ------------------------------------------------------------------
    # Region dispatch
    # ------------------------------------------------------------------

    def _read_region(self, addr: int, max_len: int) -> bytes:
        mm = self.memory_map
        # Code ROM.
        if addr < len(self._rom):
            end = min(len(self._rom), addr + max_len)
            return self._rom[addr:end]
        if addr < mm.sram_base:
            take = min(max_len, mm.sram_base - addr)
            return b"\xff" * take
        # SRAM overlay.
        if addr < mm.sram_base + 0x10000:
            take = min(max_len, mm.sram_base + 0x10000 - addr)
            return bytes(self._sram.get(addr + i, 0) for i in range(take))
        if addr < mm.dram_base:
            take = min(max_len, mm.dram_base - addr)
            return b"\xff" * take
        # DRAM: mapping arrays.
        arrays_end = mm.map_array_bases[-1] + mm.map_array_bytes
        if addr < arrays_end:
            return self._read_map_arrays(addr, max_len)
        if addr < mm.pslc_index_base:
            take = min(max_len, mm.pslc_index_base - addr)
            return b"\xff" * take
        # DRAM: pSLC hashed index.
        pslc_end = mm.pslc_index_base + mm.pslc_index_bytes
        if addr < pslc_end:
            take = min(max_len, pslc_end - addr)
            table = self._serialize_pslc_index()
            start = addr - mm.pslc_index_base
            return table[start : start + take]
        # DRAM: policy tables (live FTL state, policy firmware only).
        region = mm.policy_region if self.policy_firmware else None
        if region is not None and addr < region[1]:
            if addr < region[0]:
                return b"\xff" * min(max_len, region[0] - addr)
            return self._read_policy_region(addr, max_len)
        if addr < MMIO_BASE:
            take = min(max_len, MMIO_BASE - addr)
            return b"\xff" * take
        # MMIO registers.
        return self._read_mmio(addr, max_len)

    def _read_policy_region(self, addr: int, max_len: int) -> bytes:
        """Serve one policy-table slot: 8-byte tag, padding, entries."""
        mm = self.memory_map
        table_bytes = POLICY_TABLE_ENTRIES * MAP_ENTRY_BYTES
        for name, base in mm.policy_table_bases:
            slot_start = base - POLICY_TABLE_TAG_BYTES
            slot_end = base + table_bytes
            if addr < slot_start:
                return b"\xff" * min(max_len, slot_start - addr)
            if addr < base:
                header = POLICY_TABLE_TAGS[name].ljust(
                    POLICY_TABLE_TAG_BYTES, b"\x00"
                )
                offset = addr - slot_start
                return header[offset : offset + min(max_len, base - addr)]
            if addr < slot_end:
                blob = self._policy_table_values(name).tobytes()
                offset = addr - base
                return blob[offset : offset + min(max_len, slot_end - addr)]
        return b"\xff" * min(max_len, MMIO_BASE - addr)

    def _policy_table_values(self, name: str) -> np.ndarray:
        """Live little-endian u32 contents of one policy table."""
        ftl = self.ssd.ftl
        n = POLICY_TABLE_ENTRIES
        values = np.full(n, 0xFFFFFFFF, dtype="<u4")
        if name == "pool":
            # The candidate list GC scans: one entry per physical block.
            total = min(self.config.geometry.total_blocks, n)
            values[:total] = np.arange(total, dtype="<u4")
        elif name == "valid":
            valid = np.asarray(ftl.block_valid)
            k = min(valid.shape[0], n)
            values[:k] = valid[:k].astype("<u4")
        elif name == "seq":
            values[: min(self.config.geometry.total_blocks, n)] = 0
            for block, stamp in ftl.allocator.block_alloc_seq.items():
                if block < n:
                    values[block] = stamp & 0xFFFFFFFF
        elif name == "erase":
            erase = np.asarray(ftl.nand.block_erase_count)
            k = min(erase.shape[0], n)
            values[:k] = erase[:k].astype("<u4")
        elif name == "heat":
            values[:] = 0
            heat = getattr(ftl.allocator.policy, "_writes", None)
            if heat:
                for lpn, count in heat.items():
                    values[lpn % n] = count & 0xFFFFFFFF
        elif name == "cacheslot":
            # Pending sectors in eviction order — what the flush engine
            # would pop first sits in slot 0.
            pending = list(ftl.cache._pending.keys())[:n]
            if pending:
                values[: len(pending)] = np.asarray(pending, dtype="<u4")
        elif name == "recency":
            values[:] = 0
        else:
            raise KeyError(f"no policy table {name!r}")
        return values

    def _read_map_arrays(self, addr: int, max_len: int) -> bytes:
        mm = self.memory_map
        stride = mm.map_array_bases[1] - mm.map_array_bases[0] if (
            NUM_MAP_ARRAYS > 1
        ) else mm.map_array_bytes
        array = (addr - mm.dram_base) // stride
        array = min(array, NUM_MAP_ARRAYS - 1)
        base = mm.map_array_bases[array]
        if addr < base:
            return b"\xff" * min(max_len, base - addr)
        offset = addr - base
        if offset >= mm.map_array_bytes:
            # Alignment gap between the array's end and the next base.
            next_base = (mm.map_array_bases[array + 1]
                         if array + 1 < NUM_MAP_ARRAYS
                         else mm.pslc_index_base)
            return b"\xff" * min(max_len, next_base - addr)
        take = min(max_len, mm.map_array_bytes - offset)
        first_entry = offset // MAP_ENTRY_BYTES
        last_entry = (offset + take - 1) // MAP_ENTRY_BYTES
        count = last_entry - first_entry + 1
        entries = self._serialize_entries(array, first_entry, count)
        blob = entries.tobytes()
        start = offset - first_entry * MAP_ENTRY_BYTES
        return blob[start : start + take]

    def _serialize_entries(self, array: int, first: int, count: int) -> np.ndarray:
        """Little-endian uint32 map entries for one array slice."""
        mapping = self.ssd.ftl.mapping
        indices = np.arange(first, first + count, dtype=np.int64)
        lpns = indices * NUM_MAP_ARRAYS + array
        values = np.full(count, 0xFFFFFFFF, dtype=np.uint32)
        in_range = lpns < mapping.num_lpns
        if np.any(in_range):
            psas = mapping.l2p[lpns[in_range]]
            vals = np.where(psas == UNMAPPED, ENTRY_UNMAPPED,
                            psas.astype(np.int64)).astype(np.uint32)
            values[in_range] = vals
        # Demand loading: entries of non-resident chunks read as 0xFF fill.
        if mapping.chunk_lpns:
            resident = set(mapping.resident_chunk_ids())
            chunks = lpns // mapping.chunk_lpns
            not_loaded = np.array(
                [int(c) not in resident for c in chunks], dtype=bool
            )
            values[not_loaded & in_range] = 0xFFFFFFFF
        return values.astype("<u4")

    def _serialize_pslc_index(self) -> bytes:
        mm = self.memory_map
        buckets = mm.pslc_buckets
        tags = np.full(buckets, 0xFFFFFFFF, dtype="<u4")
        vals = np.full(buckets, 0xFFFFFFFF, dtype="<u4")
        for lpn, psa in self.ssd.ftl.pslc.index.items():
            bucket = mm.pslc_bucket_of(lpn)
            for probe in range(buckets):
                slot = (bucket + probe) % buckets
                if tags[slot] == 0xFFFFFFFF:
                    tags[slot] = lpn
                    vals[slot] = psa
                    break
        interleaved = np.empty(buckets * 2, dtype="<u4")
        interleaved[0::2] = tags
        interleaved[1::2] = vals
        return interleaved.tobytes()

    def _read_mmio(self, addr: int, max_len: int) -> bytes:
        registers = {
            MMIO_BASE + MMIO_LBA: self._last_lba,
            MMIO_BASE + MMIO_LEN: self._last_len,
            MMIO_BASE + MMIO_DOORBELL: self._last_doorbell,
        }
        out = bytearray()
        for i in range(max_len):
            byte_addr = addr + i
            reg = byte_addr & ~0x3
            value = registers.get(reg, 0)
            out.append((value >> ((byte_addr & 0x3) * 8)) & 0xFF)
        return bytes(out)

    # ------------------------------------------------------------------

    def read_word(self, addr: int) -> int:
        return struct.unpack("<I", self.read_mem(addr, 4))[0]

    def write_word(self, addr: int, value: int) -> None:
        self.write_mem(addr, struct.pack("<I", value & 0xFFFFFFFF))
