"""RAIN: redundant array of independent NAND.

Micron-class drives (the Crucial MX500 among them) protect against die
failure by grouping every ``k`` data page programs with one parity page
program.  The paper's Fig 4a attributes the measured "~30 KB of host data
per NAND page write" on the MX500 to exactly this: with 32 KB NAND pages
and a 15+1 stripe, each page write carries on average
``32 KB * 15/16 = 30 KB`` of host data.

The accountant is deliberately simple: it counts data-page programs per
open stripe and says when a parity page is due.  Parity pages are treated
as immediately-invalid overhead (they are reconstructible and are never
migrated by GC), which matches their write-amplification role.
"""

from __future__ import annotations


class RainAccountant:
    """Tracks stripe fill; one parity page per ``stripe`` data pages."""

    def __init__(self, stripe: int) -> None:
        if stripe != 0 and stripe < 2:
            raise ValueError("stripe must be 0 (disabled) or >= 2")
        self.stripe = stripe
        self._fill = 0
        self.parity_pages = 0
        self.data_pages = 0

    @property
    def enabled(self) -> bool:
        return self.stripe > 0

    def on_data_page(self) -> bool:
        """Record one data-page program; True when a parity page is due."""
        self.data_pages += 1
        if not self.enabled:
            return False
        self._fill += 1
        if self._fill >= self.stripe:
            self._fill = 0
            self.parity_pages += 1
            return True
        return False

    def flush(self) -> bool:
        """Close a partial stripe (power-down path); True if parity due."""
        if self.enabled and self._fill > 0:
            self._fill = 0
            self.parity_pages += 1
            return True
        return False

    def overhead_ratio(self) -> float:
        """Parity pages per data page so far."""
        if not self.data_pages:
            return 0.0
        return self.parity_pages / self.data_pages
