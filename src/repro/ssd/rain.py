"""RAIN: redundant array of independent NAND.

Micron-class drives (the Crucial MX500 among them) protect against die
failure by grouping every ``k`` data page programs with one parity page
program.  The paper's Fig 4a attributes the measured "~30 KB of host data
per NAND page write" on the MX500 to exactly this: with 32 KB NAND pages
and a 15+1 stripe, each page write carries on average
``32 KB * 15/16 = 30 KB`` of host data.

The accountant is deliberately simple: it counts data-page programs per
open stripe and says when a parity page is due.  Parity pages are treated
as immediately-invalid overhead (they are reconstructible and are never
migrated by GC), which matches their write-amplification role.
"""

from __future__ import annotations


class RainAccountant:
    """Tracks stripe fill; one parity page per ``stripe`` data pages.

    When callers pass page numbers, the accountant additionally remembers
    stripe membership so the degraded read path can name the peer pages
    it must read to reconstruct an uncorrectable page
    (:meth:`peers_of`).  Membership is kept for the life of the run;
    stripes whose members were since erased still resolve (the
    reconstruction model charges the reads regardless — real parity maps
    are rebuilt lazily too).
    """

    def __init__(self, stripe: int) -> None:
        if stripe != 0 and stripe < 2:
            raise ValueError("stripe must be 0 (disabled) or >= 2")
        self.stripe = stripe
        self._fill = 0
        self.parity_pages = 0
        self.data_pages = 0
        #: data PPNs of the stripe currently being filled.
        self._open_members: list[int] = []
        #: closed stripes awaiting their parity page (LIFO: a nested
        #: parity program — GC triggered by parity allocation — closes
        #: and finalizes the inner stripe first).
        self._pending: list[list[int]] = []
        #: data PPN -> the other pages of its stripe (peers + parity).
        self._stripe_peers: dict[int, tuple[int, ...]] = {}

    @property
    def enabled(self) -> bool:
        return self.stripe > 0

    def on_data_page(self, ppn: int = -1) -> bool:
        """Record one data-page program; True when a parity page is due."""
        self.data_pages += 1
        if not self.enabled:
            return False
        if ppn >= 0:
            self._open_members.append(ppn)
        self._fill += 1
        if self._fill >= self.stripe:
            self._fill = 0
            self.parity_pages += 1
            self._pending.append(self._open_members)
            self._open_members = []
            return True
        return False

    def flush(self) -> bool:
        """Close a partial stripe (power-down path); True if parity due."""
        if self.enabled and self._fill > 0:
            self._fill = 0
            self.parity_pages += 1
            self._pending.append(self._open_members)
            self._open_members = []
            return True
        return False

    def note_parity(self, parity_ppn: int) -> None:
        """Record the parity page of the most recently closed stripe,
        finalizing peer lookups for its members."""
        if not self._pending:
            return
        members = self._pending.pop()
        full = members + [parity_ppn]
        for member in members:
            self._stripe_peers[member] = tuple(
                p for p in full if p != member
            )

    def peers_of(self, ppn: int) -> tuple[int, ...]:
        """Pages to read to reconstruct *ppn* (stripe peers + parity);
        empty when the stripe is unknown (page predates tracking or is
        itself parity)."""
        return self._stripe_peers.get(ppn, ())

    def overhead_ratio(self) -> float:
        """Parity pages per data page so far."""
        if not self.data_pages:
            return 0.0
        return self.parity_pages / self.data_pages
