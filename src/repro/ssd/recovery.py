"""Power-loss recovery: rebuilding FTL state from the flash itself.

An SSD must reconstruct its logical-to-physical map after an unclean
shutdown.  This module implements the classic *full-scan* strategy: every
programmed page carries an OOB record (the LPNs of the sectors it holds,
or the translation-page id for metadata pages) and a monotonic program
sequence number; scanning all pages in sequence order and letting the
newest copy of each sector win rebuilds the map exactly.

Semantics and limitations (shared with early real FTLs):

* data that reached flash — including sectors still in the pSLC buffer —
  is recovered; sectors that only lived in the RAM write cache are lost;
* TRIMs issued after a sector's last program are lost (the sector
  *resurrects*), because trims write nothing to flash in this model;
  drives avoid this by journaling trims with their mapping metadata;
* partially-written blocks are padded to the end (write-pointer
  padding), making every non-free block reclaimable by GC.

The returned :class:`RecoveryReport` quantifies all of it, and
:func:`recover_ftl` hands back a fully operational FTL over the same
NAND array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.errors import FailureInjector
from repro.flash.nand import NO_LPN, NandArray
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import META_P2L_BASE, P2L_NONE, Ftl, _p2l_to_tp
from repro.ssd.mapping import UNMAPPED


@dataclass
class RecoveryReport:
    """What the scan found and rebuilt."""

    pages_scanned: int = 0
    sectors_recovered: int = 0
    pslc_sectors_recovered: int = 0
    translation_pages_found: int = 0
    blocks_padded: int = 0
    stale_copies_skipped: int = 0


def recover_ftl(
    config: SsdConfig,
    nand: NandArray,
    injector: FailureInjector | None = None,
) -> tuple[Ftl, RecoveryReport]:
    """Rebuild a working FTL over *nand* by scanning OOB records."""
    ftl = Ftl(config, nand=nand, injector=injector)
    report = RecoveryReport()
    geometry = config.geometry
    spp = geometry.sectors_per_page
    pslc_blocks = frozenset(config.pslc_block_ids())

    _pad_partial_blocks(ftl, pslc_blocks, report)

    # Scan programmed pages in program order: the newest copy wins.
    programmed = np.nonzero(nand.page_state == 1)[0]
    order = np.argsort(nand.page_seq[programmed], kind="stable")
    winner: dict[int, tuple[int, int]] = {}  # lpn -> (seq, psa)
    tp_winner: dict[int, tuple[int, int]] = {}  # tp -> (seq, ppn)
    for ppn in (int(p) for p in programmed[order]):
        report.pages_scanned += 1
        oob = nand.read_oob(ppn)
        if oob is None:
            continue  # parity / padding: carries no logical content
        seq = int(nand.page_seq[ppn])
        for slot, code in enumerate(oob):
            if code == int(NO_LPN):
                continue
            if code <= META_P2L_BASE:
                tp_winner[_p2l_to_tp(code)] = (seq, ppn)
            elif 0 <= code < ftl.num_lpns:
                previous = winner.get(code)
                if previous is not None:
                    report.stale_copies_skipped += 1
                winner[code] = (seq, ppn * spp + slot)

    _apply_winners(ftl, winner, tp_winner, pslc_blocks, report)
    _rebuild_block_accounting(ftl, pslc_blocks)
    _rebuild_allocator(ftl, pslc_blocks)
    return ftl, report


def _pad_partial_blocks(ftl: Ftl, pslc_blocks: frozenset[int],
                        report: RecoveryReport) -> None:
    """Write-pointer padding: fill half-written blocks so every non-free
    block is fully written (and hence a legal GC candidate)."""
    geometry = ftl.geometry
    nand = ftl.nand
    for block in range(geometry.total_blocks):
        ptr = int(nand.block_write_ptr[block])
        if ptr == 0 or ptr >= geometry.pages_per_block:
            continue
        report.blocks_padded += 1
        for page in range(ptr, geometry.pages_per_block):
            nand.program(block * geometry.pages_per_block + page,
                         lpn=int(NO_LPN))


def _apply_winners(
    ftl: Ftl,
    winner: dict[int, tuple[int, int]],
    tp_winner: dict[int, tuple[int, int]],
    pslc_blocks: frozenset[int],
    report: RecoveryReport,
) -> None:
    geometry = ftl.geometry
    spp = geometry.sectors_per_page
    for lpn, (_, psa) in winner.items():
        block = psa // spp // geometry.pages_per_block
        if block in pslc_blocks:
            ftl.pslc.index[lpn] = psa
            ftl.pslc._valid_by_block[block] = (
                ftl.pslc._valid_by_block.get(block, 0) + 1
            )
            report.pslc_sectors_recovered += 1
        else:
            ftl.mapping.silent_update(lpn, psa)
            ftl.p2l[psa] = lpn
            ftl.sector_valid[psa] = True
            report.sectors_recovered += 1
    for tp_id, (_, ppn) in tp_winner.items():
        ftl.mapping.note_flushed(tp_id, ppn)
        slot0 = ppn * spp
        ftl.p2l[slot0] = META_P2L_BASE - tp_id
        ftl.sector_valid[slot0] = True
        report.translation_pages_found += 1


def _rebuild_block_accounting(ftl: Ftl, pslc_blocks: frozenset[int]) -> None:
    geometry = ftl.geometry
    spp = geometry.sectors_per_page
    per_block = ftl.sector_valid.reshape(
        geometry.total_blocks, geometry.pages_per_block * spp
    ).sum(axis=1)
    ftl.block_valid[:] = per_block.astype(np.int32)


def _rebuild_allocator(ftl: Ftl, pslc_blocks: frozenset[int]) -> None:
    """Free pool = never-programmed blocks (padding filled the rest)."""
    geometry = ftl.geometry
    nand = ftl.nand
    allocator = ftl.allocator
    allocator._free_blocks = [[] for _ in range(geometry.planes_total)]
    allocator._active.clear()
    for block in range(geometry.total_blocks):
        if block in pslc_blocks or block in allocator.retired_blocks:
            continue
        if int(nand.block_write_ptr[block]) == 0:
            plane = block // geometry.blocks_per_plane
            allocator._free_blocks[plane].append(block)
    for pool in allocator._free_blocks:
        pool.sort(reverse=True)
    # Padding just filled every partially-written block, so the GC
    # candidate pool changed under the allocator: rebuild its index.
    allocator.reindex_sealed()
    # pSLC bookkeeping: resume each buffer block at its write pointer.
    pslc = ftl.pslc
    if pslc.enabled:
        for block in pslc.blocks:
            pslc._cursor[block] = int(nand.block_write_ptr[block])
