"""Power-loss recovery: rebuilding FTL state from the flash itself.

An SSD must reconstruct its logical-to-physical map after an unclean
shutdown.  This module implements the classic *full-scan* strategy: every
programmed page carries an OOB record (the LPNs of the sectors it holds,
or the translation-page id for metadata pages) and a monotonic program
sequence number; scanning all pages in sequence order and letting the
newest copy of each sector win rebuilds the map exactly.

Semantics and limitations (shared with early real FTLs):

* data that reached flash — including sectors still in the pSLC buffer —
  is recovered; sectors that only lived in the RAM write cache are lost;
* TRIMs issued after a sector's last program are lost (the sector
  *resurrects*), because trims write nothing to flash in this model;
  drives avoid this by journaling trims with their mapping metadata;
* partially-written blocks are padded to the end (write-pointer
  padding), making every non-free block reclaimable by GC.

The scan honors the ECC model: when retention modeling is enabled
(``config.ops_per_day``), a page whose expected raw bit errors exceed
the ECC budget is *uncorrectable at scan time*.  On a RAIN-protected
device the page is rebuilt from stripe parity
(``rain_reconstructed_pages``); otherwise its sectors are **lost, not
resurrected**: the page was the newest copy, so mapping an older copy
(or anything at all) would silently serve corrupt or stale data.  Lost
sectors read back as unmapped and are counted
(``unrecoverable_pages`` / ``sectors_lost``).  The only clock that
survives power loss is the OOB program-sequence stamp, so page age is
measured in programs-behind-newest and scaled by ``ops_per_day``.

The returned :class:`RecoveryReport` quantifies all of it, and
:func:`recover_ftl` hands back a fully operational FTL over the same
NAND array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.errors import (
    PSLC_RELIABILITY,
    RELIABILITY_BY_TIMING,
    FailureInjector,
    ReliabilityModel,
)
from repro.flash.nand import NO_LPN, NandArray
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import META_P2L_BASE, P2L_NONE, Ftl, _p2l_to_tp
from repro.ssd.mapping import UNMAPPED

#: tombstone marker for a sector whose newest copy was unreadable.
_LOST = -1


@dataclass
class RecoveryReport:
    """What the scan found and rebuilt."""

    pages_scanned: int = 0
    sectors_recovered: int = 0
    pslc_sectors_recovered: int = 0
    translation_pages_found: int = 0
    blocks_padded: int = 0
    stale_copies_skipped: int = 0
    #: pages uncorrectable at scan time and not reconstructable.
    unrecoverable_pages: int = 0
    #: uncorrectable pages rebuilt from RAIN stripe parity.
    rain_reconstructed_pages: int = 0
    #: sectors whose newest copy sat on an unrecoverable page.
    sectors_lost: int = 0


def recover_ftl(
    config: SsdConfig,
    nand: NandArray,
    injector: FailureInjector | None = None,
    reliability: ReliabilityModel | None = None,
) -> tuple[Ftl, RecoveryReport]:
    """Rebuild a working FTL over *nand* by scanning OOB records."""
    ftl = Ftl(config, nand=nand, injector=injector, reliability=reliability)
    report = RecoveryReport()
    geometry = config.geometry
    spp = geometry.sectors_per_page
    pslc_blocks = frozenset(config.pslc_block_ids())

    _pad_partial_blocks(ftl, pslc_blocks, report)

    # Scan programmed pages in program order: the newest copy wins.
    programmed = np.nonzero(nand.page_state == 1)[0]
    order = np.argsort(nand.page_seq[programmed], kind="stable")
    newest_seq = (int(nand.page_seq[programmed].max())
                  if len(programmed) else 0)
    model = (reliability if reliability is not None
             else RELIABILITY_BY_TIMING[config.timing_name])
    winner: dict[int, tuple[int, int]] = {}  # lpn -> (seq, psa or _LOST)
    tp_winner: dict[int, tuple[int, int]] = {}  # tp -> (seq, ppn or _LOST)
    for ppn in (int(p) for p in programmed[order]):
        report.pages_scanned += 1
        oob = nand.read_oob(ppn)
        if oob is None:
            continue  # parity / padding: carries no logical content
        seq = int(nand.page_seq[ppn])
        readable = _page_readable(config, nand, injector, model, pslc_blocks,
                                  ppn, newest_seq)
        if not readable:
            if config.rain_stripe:
                # RAIN first: parity lives on flash, so the stripe can be
                # rebuilt before giving the page up.
                report.rain_reconstructed_pages += 1
                readable = True
            else:
                report.unrecoverable_pages += 1
        for slot, code in enumerate(oob):
            if code == int(NO_LPN):
                continue
            if code <= META_P2L_BASE:
                tp_winner[_p2l_to_tp(code)] = (
                    seq, ppn if readable else _LOST
                )
            elif 0 <= code < ftl.num_lpns:
                previous = winner.get(code)
                if previous is not None:
                    report.stale_copies_skipped += 1
                # An unreadable newest copy still supersedes older ones:
                # resurrecting a stale copy would be silent corruption.
                winner[code] = (seq, ppn * spp + slot if readable else _LOST)

    _apply_winners(ftl, winner, tp_winner, pslc_blocks, report)
    _rebuild_block_accounting(ftl, pslc_blocks)
    _rebuild_allocator(ftl, pslc_blocks)
    return ftl, report


def _page_readable(
    config: SsdConfig,
    nand: NandArray,
    injector: FailureInjector | None,
    model: ReliabilityModel,
    pslc_blocks: frozenset[int],
    ppn: int,
    newest_seq: int,
) -> bool:
    """ECC verdict for one scanned page (injected hard faults first,
    then the wear/retention model when retention modeling is on)."""
    if injector is not None and injector.read_uncorrectable(ppn):
        return False
    if not config.ops_per_day:
        return True
    block = ppn // config.geometry.pages_per_block
    page_model = PSLC_RELIABILITY if block in pslc_blocks else model
    age_days = (newest_seq - int(nand.page_seq[ppn])) / config.ops_per_day
    cycles = int(nand.block_erase_count[block])
    return page_model.is_correctable(cycles, age_days)


def _pad_partial_blocks(ftl: Ftl, pslc_blocks: frozenset[int],
                        report: RecoveryReport) -> None:
    """Write-pointer padding: fill half-written blocks so every non-free
    block is fully written (and hence a legal GC candidate)."""
    geometry = ftl.geometry
    nand = ftl.nand
    for block in range(geometry.total_blocks):
        ptr = int(nand.block_write_ptr[block])
        if ptr == 0 or ptr >= geometry.pages_per_block:
            continue
        report.blocks_padded += 1
        for page in range(ptr, geometry.pages_per_block):
            nand.program(block * geometry.pages_per_block + page,
                         lpn=int(NO_LPN))


def _apply_winners(
    ftl: Ftl,
    winner: dict[int, tuple[int, int]],
    tp_winner: dict[int, tuple[int, int]],
    pslc_blocks: frozenset[int],
    report: RecoveryReport,
) -> None:
    geometry = ftl.geometry
    spp = geometry.sectors_per_page
    for lpn, (_, psa) in winner.items():
        if psa == _LOST:
            report.sectors_lost += 1
            continue  # newest copy unreadable: the sector reads unmapped
        block = psa // spp // geometry.pages_per_block
        if block in pslc_blocks:
            ftl.pslc.index[lpn] = psa
            ftl.pslc._valid_by_block[block] = (
                ftl.pslc._valid_by_block.get(block, 0) + 1
            )
            report.pslc_sectors_recovered += 1
        else:
            ftl.mapping.silent_update(lpn, psa)
            ftl.p2l[psa] = lpn
            ftl.sector_valid[psa] = True
            report.sectors_recovered += 1
    for tp_id, (_, ppn) in tp_winner.items():
        if ppn == _LOST:
            continue  # the TP's flash copy is gone; l2p was rebuilt anyway
        ftl.mapping.note_flushed(tp_id, ppn)
        slot0 = ppn * spp
        ftl.p2l[slot0] = META_P2L_BASE - tp_id
        ftl.sector_valid[slot0] = True
        report.translation_pages_found += 1


def _rebuild_block_accounting(ftl: Ftl, pslc_blocks: frozenset[int]) -> None:
    geometry = ftl.geometry
    spp = geometry.sectors_per_page
    per_block = ftl.sector_valid.reshape(
        geometry.total_blocks, geometry.pages_per_block * spp
    ).sum(axis=1)
    ftl.block_valid[:] = per_block.astype(np.int32)


def _rebuild_allocator(ftl: Ftl, pslc_blocks: frozenset[int]) -> None:
    """Free pool = never-programmed blocks (padding filled the rest)."""
    geometry = ftl.geometry
    nand = ftl.nand
    allocator = ftl.allocator
    allocator._free_blocks = [[] for _ in range(geometry.planes_total)]
    allocator._active.clear()
    for block in range(geometry.total_blocks):
        if block in pslc_blocks or block in allocator.retired_blocks:
            continue
        if int(nand.block_write_ptr[block]) == 0:
            plane = block // geometry.blocks_per_plane
            allocator._free_blocks[plane].append(block)
    for pool in allocator._free_blocks:
        pool.sort(reverse=True)
    # Padding just filled every partially-written block, so the GC
    # candidate pool changed under the allocator: rebuild its index.
    allocator.reindex_sealed()
    # pSLC bookkeeping: resume each buffer block at its write pointer.
    pslc = ftl.pslc
    if pslc.enabled:
        for block in pslc.blocks:
            pslc._cursor[block] = int(nand.block_write_ptr[block])
