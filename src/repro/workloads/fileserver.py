"""A filebench-``fileserver``-style workload over a file-system model.

This is the benchmark behind the paper's Fig 1 (via the F2FS paper's
simulated file server and Geriatrix's reproduction of it): a mix of whole
file creates, appends, whole-file reads, overwrites, and deletes over a
directory of working files.

Run it over a :class:`~repro.fs.vfs.TimedBackend` and the score is
operations per second of simulated device time; over a counter backend it
still exercises the same block pattern (for WAF studies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fs.vfs import FsError, FsModel


@dataclass(frozen=True)
class FileServerConfig:
    """Op mix and file shapes (filebench fileserver flavoured)."""

    working_files: int = 60
    mean_file_sectors: int = 32  # 128 KB files at 4 KB sectors
    append_sectors: int = 4
    overwrite_sectors: int = 4
    #: operation weights: create, delete, append, overwrite, read.
    weights: tuple[float, float, float, float, float] = (0.2, 0.2, 0.2, 0.15, 0.25)

    def __post_init__(self) -> None:
        if self.working_files < 1:
            raise ValueError("working_files must be >= 1")
        if abs(sum(self.weights) - 1.0) > 1e-6:
            raise ValueError("weights must sum to 1")


@dataclass
class FileServerResult:
    operations: int
    elapsed_ns: int
    failed_ops: int

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.operations / (self.elapsed_ns / 1e9)


class FileServerWorkload:
    """Stateful op generator bound to one FS model."""

    OPS = ("create", "delete", "append", "overwrite", "read")

    def __init__(self, fs: FsModel, config: FileServerConfig | None = None,
                 seed: int = 0) -> None:
        self.fs = fs
        self.config = config if config is not None else FileServerConfig()
        self._rng = np.random.default_rng(seed)
        self._serial = 0

    def prepare(self) -> None:
        """Populate the working set."""
        for _ in range(self.config.working_files):
            self._create()

    def run(self, operations: int) -> FileServerResult:
        """Execute *operations* ops; returns the throughput result."""
        t0 = self.fs.backend.now_ns
        failed = 0
        weights = np.asarray(self.config.weights)
        for _ in range(operations):
            op = self.OPS[int(self._rng.choice(len(self.OPS), p=weights))]
            try:
                getattr(self, f"_{op}")()
            except FsError:
                failed += 1
        elapsed = self.fs.backend.now_ns - t0
        return FileServerResult(operations=operations, elapsed_ns=elapsed,
                                failed_ops=failed)

    # ------------------------------------------------------------------

    def _sample_size(self) -> int:
        mean = self.config.mean_file_sectors
        return max(1, int(self._rng.exponential(mean)))

    def _pick_file(self) -> str:
        names = list(self.fs.files)
        if not names:
            raise FsError("no files in working set")
        return names[int(self._rng.integers(len(names)))]

    def _create(self) -> None:
        name = f"fsrv-{self._serial}"
        self._serial += 1
        self.fs.create(name, self._sample_size())

    def _delete(self) -> None:
        self.fs.delete(self._pick_file())

    def _append(self) -> None:
        self.fs.append(self._pick_file(), self.config.append_sectors)

    def _overwrite(self) -> None:
        name = self._pick_file()
        size = self.fs.file_sectors(name)
        count = min(self.config.overwrite_sectors, size)
        offset = 0
        if size > count:
            offset = int(self._rng.integers(size - count))
        self.fs.overwrite(name, offset, count)

    def _read(self) -> None:
        self.fs.read(self._pick_file())
