"""fio-like job specifications.

A :class:`JobSpec` describes one fio job: operation mix, block size,
address pattern, target region, and how much work to do.  The engine
(:mod:`repro.workloads.engine`) runs one or more jobs against a simulated
device, separately or concurrently — the paper's Fig 4b protocol is three
jobs in private regions run twice, once each and once together.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.workloads.patterns import AddressPattern, Region, make_pattern

#: request kinds a job may issue.
RW_MODES = ("write", "randwrite", "read", "randread", "randrw", "trim")

#: how a job submits requests in timed mode.
SUBMISSION_MODES = ("closed", "open")

#: inter-arrival processes for open-loop submission.  ``poisson`` and
#: ``fixed`` are stationary; ``diurnal`` modulates a Poisson process
#: with a sinusoidal load curve, and ``bursty`` is a two-state
#: (normal/burst) modulated Poisson — the noisy-neighbor shape fleet
#: tenants use.
ARRIVAL_MODES = ("poisson", "fixed", "diurnal", "bursty")


@dataclass
class JobSpec:
    """One fio-style job.

    ``bs_sectors`` is the request size in logical sectors (fio ``bs=`` in
    device sector units).  ``io_count`` bounds the number of requests.
    ``read_fraction`` only matters for ``randrw``.  ``pattern_kwargs``
    passes skew parameters to the address pattern (e.g.
    ``{"space_fraction": 0.2, "traffic_fraction": 0.8}``).

    ``submission`` picks the timed-mode submission model: ``"closed"``
    (fio's default — ``iodepth`` outstanding requests, a new one the
    moment a slot frees) or ``"open"`` (requests arrive at
    ``rate_iops`` regardless of completions, so queueing is unbounded
    and saturation shows up as growing tails instead of falling
    throughput).  ``arrival`` shapes open-loop inter-arrival gaps:
    ``"poisson"`` (exponential), ``"fixed"``, ``"diurnal"`` (Poisson
    whose instantaneous rate follows ``rate_iops * (1 +
    diurnal_amplitude * sin(2*pi*t / diurnal_period_s))`` — a
    compressed day/night load curve), or ``"bursty"`` (Poisson
    modulated by a two-state process: geometric bursts of mean
    ``burst_len`` requests at ``burst_multiplier`` times the base rate,
    occupying ``burst_fraction`` of requests in expectation — the
    noisy-neighbor tenant shape).  Counter mode ignores all of these.
    """

    name: str
    rw: str
    region: Region
    bs_sectors: int = 1
    io_count: int = 1000
    iodepth: int = 1
    read_fraction: float = 0.5
    pattern: str | None = None
    pattern_kwargs: dict = field(default_factory=dict)
    seed: int = 0
    submission: str = "closed"
    rate_iops: float = 0.0
    arrival: str = "poisson"
    #: diurnal arrival shape: relative swing of the rate (0 <= a < 1)
    #: and period of one simulated "day" in seconds.
    diurnal_amplitude: float = 0.5
    diurnal_period_s: float = 1.0
    #: bursty arrival shape: rate multiplier inside a burst, mean burst
    #: length in requests, and expected fraction of requests that are
    #: burst traffic.
    burst_multiplier: float = 8.0
    burst_len: int = 32
    burst_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.rw not in RW_MODES:
            raise ValueError(f"unknown rw mode {self.rw!r}; known: {RW_MODES}")
        if self.io_count < 1:
            raise ValueError("io_count must be >= 1")
        if self.iodepth < 1:
            raise ValueError("iodepth must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.submission not in SUBMISSION_MODES:
            raise ValueError(
                f"unknown submission mode {self.submission!r}; "
                f"known: {SUBMISSION_MODES}")
        if self.arrival not in ARRIVAL_MODES:
            raise ValueError(
                f"unknown arrival mode {self.arrival!r}; "
                f"known: {ARRIVAL_MODES}")
        if self.is_open_loop and self.rate_iops <= 0:
            raise ValueError("open-loop submission needs rate_iops > 0")
        if self.arrival == "diurnal":
            if not 0.0 <= self.diurnal_amplitude < 1.0:
                raise ValueError("diurnal_amplitude must be in [0, 1)")
            if self.diurnal_period_s <= 0:
                raise ValueError("diurnal_period_s must be > 0")
        if self.arrival == "bursty":
            if self.burst_multiplier < 1.0:
                raise ValueError("burst_multiplier must be >= 1")
            if self.burst_len < 1:
                raise ValueError("burst_len must be >= 1")
            if not 0.0 < self.burst_fraction < 1.0:
                raise ValueError("burst_fraction must be in (0, 1)")

    @property
    def is_open_loop(self) -> bool:
        return self.submission == "open"

    @property
    def is_sequential(self) -> bool:
        return self.rw in ("write", "read")

    def default_pattern(self) -> str:
        return "sequential" if self.is_sequential else "uniform"

    def make_pattern(self) -> AddressPattern:
        """Build this job's address pattern."""
        name = self.pattern or self.default_pattern()
        return make_pattern(name, self.region, self.bs_sectors, **self.pattern_kwargs)

    def request_kind(self, rng) -> str:
        """The I/O direction of the next request."""
        if self.rw in ("write", "randwrite"):
            return "write"
        if self.rw in ("read", "randread"):
            return "read"
        if self.rw == "trim":
            return "trim"
        return "read" if rng.random() < self.read_fraction else "write"

    @property
    def total_sectors(self) -> int:
        return self.io_count * self.bs_sectors
