"""Workload generation: fio-like jobs, OLTP transactions, file server."""

from repro.workloads.engine import JobResult, RunResult, run_counter, run_timed
from repro.workloads.patterns import Region, make_pattern
from repro.workloads.spec import JobSpec

__all__ = [
    "JobSpec",
    "Region",
    "make_pattern",
    "run_counter",
    "run_timed",
    "JobResult",
    "RunResult",
]

from repro.workloads.trace import (  # noqa: E402
    BlockTrace,
    TraceRecord,
    TraceRecorder,
    replay_counter,
    replay_timed,
)

__all__ += [
    "BlockTrace",
    "TraceRecord",
    "TraceRecorder",
    "replay_counter",
    "replay_timed",
]
