"""Address patterns: where requests land in the LBA space.

These mirror fio's ``random_distribution`` options.  Every pattern draws
sector addresses within a :class:`Region` — a private slice of the LBA
space — which is how the paper's Fig 4b workloads avoid stepping on each
other ("each workload managed its own separate section of the logical
address space").

Addresses are request-aligned: a pattern asked for a request of
``bs_sectors`` returns a start sector such that the whole request stays
inside the region, aligned to the request size (fio's default behaviour
for block-aligned random I/O).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Region:
    """A contiguous slice of the logical address space, in sectors."""

    start: int
    length: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.length <= 0:
            raise ValueError("region must have start >= 0 and length > 0")

    @property
    def end(self) -> int:
        return self.start + self.length

    def slots(self, bs_sectors: int) -> int:
        """How many aligned requests of *bs_sectors* fit in the region."""
        return self.length // bs_sectors


class AddressPattern:
    """Base class: yields aligned start sectors for fixed-size requests."""

    def __init__(self, region: Region, bs_sectors: int) -> None:
        if bs_sectors < 1:
            raise ValueError("bs_sectors must be >= 1")
        if region.slots(bs_sectors) < 1:
            raise ValueError("region smaller than one request")
        self.region = region
        self.bs_sectors = bs_sectors

    def next_lba(self, rng: np.random.Generator) -> int:
        raise NotImplementedError

    def _slot_to_lba(self, slot: int) -> int:
        return self.region.start + slot * self.bs_sectors


class Sequential(AddressPattern):
    """Wrapping sequential writes (fio ``rw=write``)."""

    def __init__(self, region: Region, bs_sectors: int) -> None:
        super().__init__(region, bs_sectors)
        self._cursor = 0

    def next_lba(self, rng: np.random.Generator) -> int:
        lba = self._slot_to_lba(self._cursor)
        self._cursor = (self._cursor + 1) % self.region.slots(self.bs_sectors)
        return lba


class Uniform(AddressPattern):
    """Uniformly random aligned addresses (fio ``random_distribution=random``)."""

    def next_lba(self, rng: np.random.Generator) -> int:
        return self._slot_to_lba(int(rng.integers(self.region.slots(self.bs_sectors))))


class HotCold(AddressPattern):
    """An 80/20-style skew: ``traffic_fraction`` of requests go to the
    first ``space_fraction`` of the region (fio ``random_distribution=zoned``)."""

    def __init__(
        self,
        region: Region,
        bs_sectors: int,
        space_fraction: float = 0.2,
        traffic_fraction: float = 0.8,
    ) -> None:
        super().__init__(region, bs_sectors)
        if not 0 < space_fraction < 1 or not 0 < traffic_fraction < 1:
            raise ValueError("fractions must be in (0, 1)")
        self.space_fraction = space_fraction
        self.traffic_fraction = traffic_fraction
        slots = region.slots(bs_sectors)
        self._hot_slots = max(1, int(slots * space_fraction))
        self._cold_slots = max(1, slots - self._hot_slots)

    def next_lba(self, rng: np.random.Generator) -> int:
        if rng.random() < self.traffic_fraction:
            slot = int(rng.integers(self._hot_slots))
        else:
            slot = self._hot_slots + int(rng.integers(self._cold_slots))
        return self._slot_to_lba(slot)


class Zipf(AddressPattern):
    """Zipfian skew over slots (fio ``random_distribution=zipf:theta``).

    Slot ranks are shuffled so popularity is not correlated with address,
    as fio does.
    """

    def __init__(self, region: Region, bs_sectors: int, theta: float = 1.1,
                 seed: int = 0) -> None:
        super().__init__(region, bs_sectors)
        if theta <= 0:
            raise ValueError("theta must be positive")
        slots = region.slots(bs_sectors)
        ranks = np.arange(1, slots + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, theta)
        self._cdf = np.cumsum(weights / weights.sum())
        self._slot_order = np.random.default_rng(seed).permutation(slots)

    def next_lba(self, rng: np.random.Generator) -> int:
        rank = int(np.searchsorted(self._cdf, rng.random()))
        rank = min(rank, len(self._slot_order) - 1)
        return self._slot_to_lba(int(self._slot_order[rank]))


PATTERNS = {
    "sequential": Sequential,
    "uniform": Uniform,
    "hotcold": HotCold,
    "zipf": Zipf,
}


def make_pattern(name: str, region: Region, bs_sectors: int, **kwargs) -> AddressPattern:
    """Instantiate a pattern by fio-ish name."""
    try:
        cls = PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted(PATTERNS))
        raise KeyError(f"unknown pattern {name!r}; known: {known}") from None
    return cls(region, bs_sectors, **kwargs)
