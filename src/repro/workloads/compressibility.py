"""Synthetic data compressibility.

The intra-SSD compression study (Fig 2) needs to know how small each
4 KB sector compresses, not its actual bytes.  A
:class:`CompressibilityModel` assigns per-class compression ratios with
some spread, mimicking the structure of OLTP data: B-tree index pages and
padded table rows compress very well, WAL/log records moderately, and
any pre-compressed payload not at all.

Ratios are expressed as ``compressed/raw`` (0.25 means 4:1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DataClass:
    """One kind of data with its compressibility distribution."""

    name: str
    mean_ratio: float
    spread: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 < self.mean_ratio <= 1.5:
            raise ValueError("mean_ratio must be in (0, 1.5]")
        if self.spread < 0:
            raise ValueError("spread must be non-negative")


#: The paper's "highly compressible data" regime (Fig 2's x-axis point).
HIGHLY_COMPRESSIBLE = {
    "index": DataClass("index", 0.22, 0.04),
    "table": DataClass("table", 0.25, 0.06),
    "log": DataClass("log", 0.30, 0.05),
}

#: A realistic mixed regime for ablations.
MODERATE = {
    "index": DataClass("index", 0.45, 0.08),
    "table": DataClass("table", 0.55, 0.10),
    "log": DataClass("log", 0.50, 0.08),
}

#: Encrypted / pre-compressed payloads.
INCOMPRESSIBLE = {
    "index": DataClass("index", 1.0, 0.0),
    "table": DataClass("table", 1.0, 0.0),
    "log": DataClass("log", 1.0, 0.0),
}

REGIMES = {
    "high": HIGHLY_COMPRESSIBLE,
    "moderate": MODERATE,
    "incompressible": INCOMPRESSIBLE,
}


class CompressibilityModel:
    """Samples compressed sizes for sector writes, by data class."""

    def __init__(
        self,
        classes: dict[str, DataClass] | None = None,
        sector_size: int = 4096,
        seed: int = 0,
    ) -> None:
        self.classes = dict(classes if classes is not None else HIGHLY_COMPRESSIBLE)
        self.sector_size = sector_size
        self._rng = np.random.default_rng(seed)

    def compressed_size(self, data_class: str) -> int:
        """Compressed byte size of one sector of *data_class* data."""
        try:
            cls = self.classes[data_class]
        except KeyError:
            known = ", ".join(sorted(self.classes))
            raise KeyError(
                f"unknown data class {data_class!r}; known: {known}"
            ) from None
        ratio = cls.mean_ratio
        if cls.spread:
            ratio = float(self._rng.normal(cls.mean_ratio, cls.spread))
        ratio = min(max(ratio, 0.02), 1.0)
        return max(64, int(self.sector_size * ratio))

    def mean_ratio(self) -> float:
        """Average configured ratio across classes (for reporting)."""
        values = [c.mean_ratio for c in self.classes.values()]
        return sum(values) / len(values)
