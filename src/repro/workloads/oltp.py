"""OLTP transaction workload (the Fig 2 driver).

Models a TPC-C-flavoured update mix the way Zuck et al. characterize it
for intra-SSD compression: each transaction dirties a few random table
pages, one or two index pages, and appends write-ahead-log records.  The
workload emits a stream of ``SectorWrite(lpn, data_class)`` events; the
compression experiment feeds them through each scheme and counts flash
page programs per transaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.workloads.compressibility import CompressibilityModel


@dataclass(frozen=True)
class SectorWrite:
    """One 4 KB logical write with its data class."""

    lpn: int
    data_class: str


@dataclass(frozen=True)
class OltpConfig:
    """Shape of the transaction mix.

    The address space is split into table, index, and log areas; the log
    area is written as an append-only ring, the others are updated at
    random (B-tree leaf churn).
    """

    table_pages: int = 8192
    index_pages: int = 2048
    log_pages: int = 4096
    table_updates_per_txn: int = 3
    index_updates_per_txn: int = 2
    log_appends_per_txn: int = 2

    def __post_init__(self) -> None:
        for name in ("table_pages", "index_pages", "log_pages"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    @property
    def total_pages(self) -> int:
        return self.table_pages + self.index_pages + self.log_pages

    @property
    def writes_per_txn(self) -> int:
        return (self.table_updates_per_txn + self.index_updates_per_txn
                + self.log_appends_per_txn)


class OltpWorkload:
    """Generates transactions as streams of classified sector writes."""

    def __init__(self, config: OltpConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else OltpConfig()
        self._rng = np.random.default_rng(seed)
        self._log_cursor = 0
        self.transactions_generated = 0

    def transaction(self) -> list[SectorWrite]:
        """One transaction's sector writes, in commit order."""
        cfg = self.config
        rng = self._rng
        writes: list[SectorWrite] = []
        for _ in range(cfg.table_updates_per_txn):
            lpn = int(rng.integers(cfg.table_pages))
            writes.append(SectorWrite(lpn, "table"))
        index_base = cfg.table_pages
        for _ in range(cfg.index_updates_per_txn):
            lpn = index_base + int(rng.integers(cfg.index_pages))
            writes.append(SectorWrite(lpn, "index"))
        log_base = cfg.table_pages + cfg.index_pages
        for _ in range(cfg.log_appends_per_txn):
            writes.append(SectorWrite(log_base + self._log_cursor, "log"))
            self._log_cursor = (self._log_cursor + 1) % cfg.log_pages
        self.transactions_generated += 1
        return writes

    def stream(self, transactions: int) -> Iterator[list[SectorWrite]]:
        """Yield *transactions* transactions."""
        for _ in range(transactions):
            yield self.transaction()


def flash_writes_per_transaction(
    scheme,
    workload: OltpWorkload,
    model: CompressibilityModel,
    transactions: int,
) -> float:
    """Run *transactions* through one compression scheme.

    Returns flash page programs per transaction, the Fig 2 metric.
    Partial state (open batches) is flushed at the end so short runs are
    not under-counted.
    """
    if transactions < 1:
        raise ValueError("transactions must be >= 1")
    start_programs = scheme.stats.page_programs
    for txn in workload.stream(transactions):
        for write in txn:
            scheme.update(write.lpn, model.compressed_size(write.data_class))
    if hasattr(scheme, "flush"):
        scheme.flush()
    # Count the partially-filled open log page too: it will be programmed.
    programs = scheme.stats.page_programs - start_programs
    if scheme._log._open_fill > 0:
        programs += 1
    return programs / transactions
