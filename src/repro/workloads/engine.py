"""The workload engine: runs fio-style jobs against simulated devices.

Two execution modes mirror the two device modes:

* :func:`run_counter` drives a :class:`~repro.ssd.device.SimulatedSSD`
  and reports per-job SMART-visible page counts — the mode for
  write-amplification studies (Fig 4).  Concurrency is modeled by
  interleaving requests from all jobs round-robin, one request per job
  per round, which matches the paper's "ran all workloads concurrently"
  protocol when jobs are given equal request budgets.

* :func:`run_timed` drives a :class:`~repro.ssd.timed.TimedSSD` with
  closed-loop submission at each job's iodepth (fio's default model) and
  reports latencies and IOPS — the mode for tail-latency studies
  (Fig 3).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.obs.sinks import TraceSink
from repro.ssd.device import SimulatedSSD
from repro.ssd.smart import SmartCounters
from repro.ssd.timed import TimedSSD
from repro.workloads.spec import JobSpec


@dataclass
class JobResult:
    """Outcome of one job in one run."""

    name: str
    requests: int
    sectors: int
    #: request latencies in microseconds (timed mode only).
    latencies_us: np.ndarray | None = None
    #: wall-clock of the run in ns (timed mode only).
    elapsed_ns: int = 0

    @property
    def iops(self) -> float:
        if not self.elapsed_ns:
            return 0.0
        return self.requests / (self.elapsed_ns / 1e9)

    def percentile_us(self, q: float) -> float:
        if self.latencies_us is None or len(self.latencies_us) == 0:
            return 0.0
        return float(np.percentile(self.latencies_us, q))


@dataclass
class RunResult:
    """Outcome of a whole run (one or many jobs)."""

    jobs: dict[str, JobResult]
    smart_delta: SmartCounters
    elapsed_ns: int = 0

    @property
    def waf(self) -> float:
        return self.smart_delta.waf()


def run_counter(
    device: SimulatedSSD,
    jobs: list[JobSpec],
    flush_at_end: bool = True,
    sink: TraceSink | None = None,
) -> RunResult:
    """Run jobs on a counter-mode device, interleaved round-robin.

    Passing *sink* attaches it to the device for the run, so every host
    request, cache event, GC cycle, and flash op it causes is traced.
    """
    if not jobs:
        raise ValueError("no jobs")
    if sink is not None:
        device.attach_sink(sink)
    before = device.smart_snapshot()
    states = [
        (job, job.make_pattern(), np.random.default_rng(job.seed), [0])
        for job in jobs
    ]
    remaining = {job.name: job.io_count for job in jobs}
    results = {
        job.name: JobResult(job.name, 0, 0) for job in jobs
    }
    while any(remaining.values()):
        for job, pattern, rng, _ in states:
            if remaining[job.name] <= 0:
                continue
            remaining[job.name] -= 1
            lba = pattern.next_lba(rng)
            kind = job.request_kind(rng)
            if kind == "write":
                device.write_sectors(lba, job.bs_sectors)
            elif kind == "read":
                device.read_sectors(lba, job.bs_sectors)
            else:
                device.trim_sectors(lba, job.bs_sectors)
            result = results[job.name]
            result.requests += 1
            result.sectors += job.bs_sectors
    if flush_at_end:
        device.flush()
    delta = device.smart.delta(before)
    return RunResult(jobs=results, smart_delta=delta)


def run_timed(
    device: TimedSSD,
    jobs: list[JobSpec],
    start_ns: int | None = None,
    sink: TraceSink | None = None,
) -> RunResult:
    """Run jobs on a timed device with closed-loop submission.

    Each job keeps ``iodepth`` requests outstanding: a new request is
    submitted the moment one of its slots completes.  Jobs share the
    device, so their requests contend for channels and dies — the source
    of the mixed-run interference the paper measures.

    Passing *sink* attaches it to the device for the run (timed
    ``host_request`` events then carry latency and stall attribution).
    """
    if not jobs:
        raise ValueError("no jobs")
    if sink is not None:
        device.attach_sink(sink)
    before = device.smart.snapshot()
    t0 = device.now if start_ns is None else max(start_ns, device.now)

    # Per-job state: (next ready time heap of slots, pattern, rng, left).
    @dataclass
    class _JobState:
        spec: JobSpec
        pattern: object
        rng: np.random.Generator
        slots: list[int] = field(default_factory=list)
        left: int = 0
        lat: list[float] = field(default_factory=list)
        done_at: int = 0

    states = {}
    ready: list[tuple[int, int, str]] = []  # (when, tiebreak, job name)
    for i, job in enumerate(jobs):
        state = _JobState(job, job.make_pattern(),
                          np.random.default_rng(job.seed), left=job.io_count)
        states[job.name] = state
        for d in range(job.iodepth):
            heapq.heappush(ready, (t0, i * 64 + d, job.name))

    seq = len(jobs) * 64
    while ready:
        when, _, name = heapq.heappop(ready)
        state = states[name]
        if state.left <= 0:
            continue
        state.left -= 1
        job = state.spec
        lba = state.pattern.next_lba(state.rng)
        kind = job.request_kind(state.rng)
        request = device.submit(kind, lba, job.bs_sectors, at_ns=when)
        state.lat.append(request.latency_us)
        state.done_at = max(state.done_at, request.complete_ns)
        if state.left > 0:
            seq += 1
            heapq.heappush(ready, (request.complete_ns, seq, name))

    results = {}
    elapsed_total = 0
    for name, state in states.items():
        elapsed = max(0, state.done_at - t0)
        elapsed_total = max(elapsed_total, elapsed)
        results[name] = JobResult(
            name=name,
            requests=len(state.lat),
            sectors=len(state.lat) * state.spec.bs_sectors,
            latencies_us=np.asarray(state.lat),
            elapsed_ns=elapsed,
        )
    delta = device.smart.delta(before)
    return RunResult(jobs=results, smart_delta=delta, elapsed_ns=elapsed_total)
