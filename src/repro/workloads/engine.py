"""The workload engine: runs request sources against simulated devices.

Every workload — fio-style :class:`~repro.workloads.spec.JobSpec`
synthetics, recorded block traces, file-system scenarios, storage
engines (:mod:`repro.engines`) — reaches a device through one
abstraction: the :class:`~repro.workloads.source.RequestSource`.  Both
run functions accept specs and sources interchangeably (specs wrap into
:class:`~repro.workloads.source.JobSource`, byte-identically to the
pre-refactor inline loops).

Two execution modes mirror the two device modes:

* :func:`run_counter` drives a :class:`~repro.ssd.device.SimulatedSSD`
  and reports per-job SMART-visible page counts — the mode for
  write-amplification studies (Fig 4).  Concurrency is modeled by
  interleaving requests from all sources round-robin, one request per
  source per round, which matches the paper's "ran all workloads
  concurrently" protocol when jobs are given equal request budgets.

* :func:`run_timed` drives a :class:`~repro.ssd.timed.TimedSSD` and
  reports latencies and IOPS — the mode for tail-latency studies
  (Fig 3).  Each source submits **closed-loop** at its iodepth (fio's
  default model) or **open-loop** at its arrival schedule (a JobSpec's
  rate process, or a trace's recorded timeline): arrivals are
  independent of completions, so a device that cannot keep up
  accumulates queue — latency grows without bound instead of
  throughput silently dropping.  Open-loop is the honest way to
  measure tails at a target load.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.obs.events import QueueDepth
from repro.obs.sinks import TraceSink
from repro.sim.kernel import PowerLoss
from repro.ssd.allocation import OutOfSpace
from repro.ssd.device import SimulatedSSD
from repro.ssd.ftl import ReadOnlyError
from repro.ssd.smart import SmartCounters
from repro.ssd.timed import TimedSSD
from repro.workloads.source import RequestSource, as_source
from repro.workloads.spec import JobSpec

#: RNG stream constant for open-loop arrival gaps: a separate
#: ``default_rng([seed, _ARRIVAL_STREAM])`` stream so switching
#: submission modes never perturbs a job's address/kind sequence.
_ARRIVAL_STREAM = 0x0A221

#: Degradations a device can announce mid-run that the engine survives:
#: a read-only FTL and an exhausted spare pool fail the offending
#: request (reads and flushes still serve); a power loss kills the
#: device — every later request of every job fails.
_FAULT_EXCEPTIONS = (ReadOnlyError, OutOfSpace, PowerLoss)


class _Degradation:
    """First-failure bookkeeping shared by the timed run loops."""

    __slots__ = ("kind", "at_ns", "ops_before", "dead")

    def __init__(self) -> None:
        self.kind = ""
        self.at_ns = -1
        self.ops_before = -1
        self.dead = False

    def note(self, exc: BaseException, when: int, ok_requests: int) -> None:
        if not self.kind:
            if isinstance(exc, PowerLoss):
                self.kind = "power_cut"
            elif isinstance(exc, ReadOnlyError):
                self.kind = "read_only"
            else:
                self.kind = "out_of_space"
            self.at_ns = when
            self.ops_before = ok_requests
        if isinstance(exc, PowerLoss):
            self.dead = True


@dataclass
class JobResult:
    """Outcome of one job in one run."""

    name: str
    requests: int
    sectors: int
    #: request latencies in microseconds (timed mode only).
    latencies_us: np.ndarray | None = None
    #: wall-clock of the run in ns (timed mode only).
    elapsed_ns: int = 0
    #: requests the device refused (read-only / power-cut degradation);
    #: ``requests`` counts only the ones that completed.
    failed_requests: int = 0

    @property
    def iops(self) -> float:
        if not self.elapsed_ns:
            return 0.0
        return self.requests / (self.elapsed_ns / 1e9)

    def percentile_us(self, q: float) -> float:
        if self.latencies_us is None or len(self.latencies_us) == 0:
            return 0.0
        return float(np.percentile(self.latencies_us, q))


@dataclass
class RunResult:
    """Outcome of a whole run (one or many jobs)."""

    jobs: dict[str, JobResult]
    smart_delta: SmartCounters
    elapsed_ns: int = 0
    #: how the device degraded mid-run, if it did: "" (healthy),
    #: "read_only", "out_of_space", or "power_cut".
    degraded_kind: str = ""
    #: virtual time of the first refused request (-1 = never degraded).
    degraded_at_ns: int = -1
    #: requests completed across all jobs before the first refusal.
    ops_before_degraded: int = -1

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_kind)

    @property
    def waf(self) -> float:
        return self.smart_delta.waf()


def _as_sources(jobs) -> list[RequestSource]:
    """Normalize the engine input list; duplicate names would silently
    merge result slots, so they are rejected."""
    if not jobs:
        raise ValueError("no jobs")
    sources = [as_source(job) for job in jobs]
    names = [s.name for s in sources]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate source names: {names}")
    return sources


def run_counter(
    device: SimulatedSSD,
    jobs: "list[JobSpec | RequestSource]",
    flush_at_end: bool = True,
    sink: TraceSink | None = None,
) -> RunResult:
    """Run sources on a counter-mode device, interleaved round-robin.

    Passing *sink* attaches it to the device for the run, so every host
    request, cache event, GC cycle, and flash op it causes is traced.
    """
    sources = _as_sources(jobs)
    if sink is not None:
        device.attach_sink(sink)
    before = device.smart_snapshot()
    results = {s.name: JobResult(s.name, 0, 0) for s in sources}
    active = sources
    while active:
        still: list[RequestSource] = []
        for source in active:
            request = source.next_request()
            if request is None:
                continue
            kind, lba, sectors = request
            if kind == "write":
                device.write_sectors(lba, sectors)
            elif kind == "read":
                device.read_sectors(lba, sectors)
            elif kind == "trim":
                device.trim_sectors(lba, sectors)
            else:
                device.flush()
            result = results[source.name]
            result.requests += 1
            result.sectors += sectors
            still.append(source)
        active = still
    if flush_at_end:
        device.flush()
    delta = device.smart.delta(before)
    return RunResult(jobs=results, smart_delta=delta)


def _arrival_times(job: JobSpec, t0: int) -> np.ndarray:
    """Precompute an open-loop job's arrival times (ns, int64).

    Gaps come from a dedicated RNG stream keyed on the job seed, so the
    address/kind stream is identical between submission modes — only
    *when* requests arrive differs.  Every gap is at least 1 ns, keeping
    arrivals strictly increasing per job.
    """
    rng = np.random.default_rng([job.seed, _ARRIVAL_STREAM])
    mean_gap_ns = 1e9 / job.rate_iops
    if job.arrival == "poisson":
        gaps = rng.exponential(mean_gap_ns, size=job.io_count)
    elif job.arrival == "diurnal":
        gaps = _diurnal_gaps(job, rng)
    elif job.arrival == "bursty":
        gaps = _bursty_gaps(job, rng)
    else:
        gaps = np.full(job.io_count, mean_gap_ns)
    gaps = np.maximum(gaps.astype(np.int64), 1)
    return t0 + np.cumsum(gaps)


def _diurnal_gaps(job: JobSpec, rng: np.random.Generator) -> np.ndarray:
    """Nonhomogeneous Poisson gaps following a sinusoidal load curve.

    Lewis-Shedler thinning: candidate arrivals are drawn at the peak
    rate ``rate_iops * (1 + amplitude)`` and accepted with probability
    ``rate(t) / rate_peak``, where ``t`` is job-relative time — so the
    accepted stream is exactly Poisson with the time-varying rate.
    Candidates are generated in chunks until ``io_count`` survive.
    """
    amplitude = job.diurnal_amplitude
    if amplitude == 0.0:
        return rng.exponential(1e9 / job.rate_iops, size=job.io_count)
    peak_gap_ns = 1e9 / (job.rate_iops * (1.0 + amplitude))
    omega = 2.0 * np.pi / (job.diurnal_period_s * 1e9)
    accepted: list[np.ndarray] = []
    kept = 0
    clock = 0.0
    while kept < job.io_count:
        chunk = max(256, 2 * (job.io_count - kept))
        candidates = clock + np.cumsum(
            rng.exponential(peak_gap_ns, size=chunk))
        clock = float(candidates[-1])
        thin = (1.0 + amplitude * np.sin(omega * candidates)) / (1.0 + amplitude)
        keep = candidates[rng.random(chunk) < thin]
        accepted.append(keep)
        kept += keep.size
    times = np.concatenate(accepted)[:job.io_count]
    return np.diff(times, prepend=0.0)


def _bursty_gaps(job: JobSpec, rng: np.random.Generator) -> np.ndarray:
    """Two-state modulated Poisson gaps (the noisy-neighbor shape).

    Alternating geometric runs: "normal" requests at the base rate and
    bursts of mean ``burst_len`` requests at ``burst_multiplier`` times
    the base rate, sized so bursts carry ``burst_fraction`` of requests
    in expectation.  Burst traffic rides *on top of* the base rate —
    ``rate_iops`` is the quiescent rate, so bursts genuinely overload.
    """
    mean_gap_ns = 1e9 / job.rate_iops
    burst_gap_ns = mean_gap_ns / job.burst_multiplier
    f = job.burst_fraction
    normal_len = max(job.burst_len * (1.0 - f) / f, 1.0)
    p_normal = min(1.0, 1.0 / normal_len)
    p_burst = min(1.0, 1.0 / job.burst_len)
    segments: list[np.ndarray] = []
    produced = 0
    in_burst = False  # every stream starts in the quiescent state
    while produced < job.io_count:
        if in_burst:
            length = int(rng.geometric(p_burst))
            segments.append(rng.exponential(burst_gap_ns, size=length))
        else:
            length = int(rng.geometric(p_normal))
            segments.append(rng.exponential(mean_gap_ns, size=length))
        produced += length
        in_burst = not in_burst
    return np.concatenate(segments)[:job.io_count]


def _run_timed_single(
    device: TimedSSD, source: RequestSource, t0: int
) -> tuple[list[float], int, int, int, _Degradation]:
    """Bulk-step one source against a fast-path timed device.

    Returns ``(latencies_us, sectors_done, done_at, failed,
    degradation)``.  Byte-identical to the general scheduler loop run
    with this single source: the per-request draws happen in the same
    order, submissions carry the same ``at_ns``, and queue-depth
    accounting (which only feeds trace events) runs exactly when a sink
    is attached.  A degraded device yields a clean partial result:
    refused requests are counted, the surviving ones keep their
    latencies.
    """
    next_request = source.next_request
    submit = device.submit
    lat: list[float] = []
    lat_append = lat.append
    done_at = 0
    failed = 0
    sectors_done = 0
    deg = _Degradation()

    if source.is_open_loop:
        arrivals = source.arrival_times(t0)
        obs = device.obs
        inflight: list[int] = []
        idx = 0
        while (request := next_request()) is not None:
            when = int(arrivals[idx])
            idx += 1
            kind, lba, nsectors = request
            if deg.dead:
                failed += 1
                continue
            try:
                if kind == "flush":
                    done = device.flush(at_ns=when)
                else:
                    done = submit(kind, lba, nsectors, at_ns=when)
            except _FAULT_EXCEPTIONS as exc:
                deg.note(exc, when, len(lat))
                failed += 1
                continue
            complete = done.complete_ns
            lat_append((complete - done.submit_ns) / 1_000)
            sectors_done += nsectors
            if complete > done_at:
                done_at = complete
            if obs.enabled:
                # The inflight heap only feeds QueueDepth events, so it
                # is maintained exactly when someone is listening.
                while inflight and inflight[0] <= when:
                    heapq.heappop(inflight)
                heapq.heappush(inflight, complete)
                obs.emit(QueueDepth(job=source.name, at_ns=when,
                                    depth=len(inflight)))
        return lat, sectors_done, done_at, failed, deg

    if source.iodepth == 1:
        # Strictly sequential: each request is submitted the instant the
        # previous one completes — no ready heap at all.  A refused
        # request takes no device time, so the next submits at the same
        # instant.
        when = t0
        issued = False
        while (request := next_request()) is not None:
            kind, lba, nsectors = request
            if deg.dead:
                failed += 1
                continue
            try:
                if kind == "flush":
                    done = device.flush(at_ns=when)
                else:
                    done = submit(kind, lba, nsectors, at_ns=when)
            except _FAULT_EXCEPTIONS as exc:
                deg.note(exc, when, len(lat))
                failed += 1
                continue
            complete = done.complete_ns
            lat_append((complete - done.submit_ns) / 1_000)
            sectors_done += nsectors
            when = complete
            issued = True
        if issued:
            done_at = when
        return lat, sectors_done, done_at, failed, deg

    # Closed loop, iodepth > 1: a slot heap of (ready time, tiebreak),
    # seeded and sequenced exactly like the general scheduler so the
    # submission order (and therefore every timeline) matches.
    ready: list[tuple[int, int]] = [(t0, d) for d in range(source.iodepth)]
    heapq.heapify(ready)
    seq = 64
    while ready:
        when, _ = heapq.heappop(ready)
        request = next_request()
        if request is None:
            break
        kind, lba, nsectors = request
        if deg.dead:
            failed += 1
            continue
        try:
            if kind == "flush":
                done = device.flush(at_ns=when)
            else:
                done = submit(kind, lba, nsectors, at_ns=when)
        except _FAULT_EXCEPTIONS as exc:
            deg.note(exc, when, len(lat))
            failed += 1
            if not deg.dead and source.remaining != 0:
                # The slot stays alive: re-arm at the same instant so
                # the remaining budget drains (the stream is finite).
                seq += 1
                heapq.heappush(ready, (when, seq))
            continue
        complete = done.complete_ns
        lat_append((complete - done.submit_ns) / 1_000)
        sectors_done += nsectors
        if complete > done_at:
            done_at = complete
        if source.remaining != 0:
            seq += 1
            heapq.heappush(ready, (complete, seq))
    if deg.dead:
        left = source.remaining
        if left:  # slots died with the device; budget never ran
            failed += left
    return lat, sectors_done, done_at, failed, deg


def run_timed(
    device: TimedSSD,
    jobs: "list[JobSpec | RequestSource]",
    start_ns: int | None = None,
    sink: TraceSink | None = None,
) -> RunResult:
    """Run sources on a timed device.

    Closed-loop sources keep ``iodepth`` requests outstanding: a new
    request is submitted the moment one of its slots completes.
    Open-loop sources (an open-submission ``JobSpec``, or a trace
    replaying its recorded timeline) submit at their arrival times
    whatever the device is doing; the per-source queue depth at each
    arrival is emitted as a :class:`~repro.obs.events.QueueDepth`
    event when a sink is attached.  Sources share the device, so their
    requests contend for channels and dies — the source of the mixed-run
    interference the paper measures.

    Passing *sink* attaches it to the device for the run (timed
    ``host_request`` events then carry latency and stall attribution).
    """
    sources = _as_sources(jobs)
    if sink is not None:
        device.attach_sink(sink)
    before = device.smart.snapshot()
    t0 = device.now if start_ns is None else max(start_ns, device.now)

    if len(sources) == 1 and getattr(device, "fast_path", False):
        # One source never contends with another for the ready heap, so
        # the scheduler degenerates to stepping the stream in bulk; the
        # specialized loops above produce the identical submission
        # sequence (same draw order, same arrival/completion times)
        # without one heap push-pop and dict lookup per request.
        source = sources[0]
        lat, sectors, done_at, failed, deg = _run_timed_single(
            device, source, t0)
        elapsed = max(0, done_at - t0)
        results = {source.name: JobResult(
            name=source.name,
            requests=len(lat),
            sectors=sectors,
            latencies_us=np.asarray(lat),
            elapsed_ns=elapsed,
            failed_requests=failed,
        )}
        delta = device.smart.delta(before)
        return RunResult(jobs=results, smart_delta=delta, elapsed_ns=elapsed,
                         degraded_kind=deg.kind, degraded_at_ns=deg.at_ns,
                         ops_before_degraded=deg.ops_before)

    # Per-source scheduler state.
    @dataclass
    class _SourceState:
        source: RequestSource
        issued: int = 0
        lat: list[float] = field(default_factory=list)
        sectors: int = 0
        done_at: int = 0
        arrivals: np.ndarray | None = None
        inflight: list[int] = field(default_factory=list)
        failed: int = 0

    states = {}
    ready: list[tuple[int, int, str]] = []  # (when, tiebreak, source name)
    for i, source in enumerate(sources):
        state = _SourceState(source)
        states[source.name] = state
        if source.is_open_loop:
            state.arrivals = source.arrival_times(t0)
            heapq.heappush(ready, (int(state.arrivals[0]), i * 64, source.name))
        else:
            for d in range(source.iodepth):
                heapq.heappush(ready, (t0, i * 64 + d, source.name))

    seq = len(sources) * 64
    deg = _Degradation()
    while ready:
        when, _, name = heapq.heappop(ready)
        state = states[name]
        source = state.source
        request = source.next_request()
        if request is None:
            continue
        state.issued += 1
        kind, lba, nsectors = request
        if deg.dead:
            state.failed += 1
            continue
        try:
            if kind == "flush":
                done = device.flush(at_ns=when)
            else:
                done = device.submit(kind, lba, nsectors, at_ns=when)
        except _FAULT_EXCEPTIONS as exc:
            deg.note(exc, when,
                     sum(len(s.lat) for s in states.values()))
            state.failed += 1
            if deg.dead:
                continue  # remaining pops drain as failures
            # The source keeps going: open-loop arrivals are immutable,
            # a closed-loop slot re-arms at the same instant (a refused
            # request takes no device time).
            if source.is_open_loop:
                if state.issued < len(state.arrivals):
                    seq += 1
                    next_at = int(state.arrivals[state.issued])
                    heapq.heappush(ready, (next_at, seq, name))
            elif source.remaining != 0:
                seq += 1
                heapq.heappush(ready, (when, seq, name))
            continue
        state.lat.append(done.latency_us)
        state.sectors += nsectors
        state.done_at = max(state.done_at, done.complete_ns)
        if source.is_open_loop:
            # Queue-depth accounting: completions due by this arrival
            # have drained; this request is now in flight.
            while state.inflight and state.inflight[0] <= when:
                heapq.heappop(state.inflight)
            heapq.heappush(state.inflight, done.complete_ns)
            if device.obs.enabled:
                device.obs.emit(QueueDepth(job=name, at_ns=when,
                                           depth=len(state.inflight)))
            if state.issued < len(state.arrivals):
                seq += 1
                next_at = int(state.arrivals[state.issued])
                heapq.heappush(ready, (next_at, seq, name))
        elif source.remaining != 0:
            seq += 1
            heapq.heappush(ready, (done.complete_ns, seq, name))

    results = {}
    elapsed_total = 0
    for name, state in states.items():
        elapsed = max(0, state.done_at - t0)
        elapsed_total = max(elapsed_total, elapsed)
        left = state.source.remaining
        results[name] = JobResult(
            name=name,
            requests=len(state.lat),
            sectors=state.sectors,
            latencies_us=np.asarray(state.lat),
            elapsed_ns=elapsed,
            # a dead device leaves budget in the heap; it all failed.
            failed_requests=state.failed + (left if left else 0),
        )
    delta = device.smart.delta(before)
    return RunResult(jobs=results, smart_delta=delta, elapsed_ns=elapsed_total,
                     degraded_kind=deg.kind, degraded_at_ns=deg.at_ns,
                     ops_before_degraded=deg.ops_before)
