"""The one request-stream abstraction behind every workload.

Until now three request-generation paths grew independently: synthetic
:class:`~repro.workloads.spec.JobSpec` patterns (PR 2's engine),
file-system workloads driving a device through backend adapters, and
:mod:`repro.workloads.trace` replay with no engine integration at all.
Every consumer — the open/closed-loop engine, fleet tenants, exp cells —
had to know which path it was on.

A :class:`RequestSource` is the unification: a pull-based stream of host
requests ``(kind, lba, sectors)`` plus the scheduling attributes the
engine needs (``iodepth`` for closed loop, ``arrival_times`` for open
loop).  The engine consumes *only* this surface, so a synthetic job, a
recorded block trace, a file-system scenario, and a storage engine
(:mod:`repro.engines`) are interchangeable everywhere a workload goes:
``run_counter``/``run_timed``, fleet tenant specs, cached experiment
cells.

Byte-identity is the load-bearing contract: :class:`JobSource` makes
exactly the RNG draws the pre-refactor engine loops made, in the same
order (LBA first, then request kind, from one ``default_rng(seed)``
stream), so every golden figure, fleet pickle, and policy-equivalence
fingerprint is unchanged.  ``tests/regression/
test_request_source_equivalence.py`` pins this the way PR 5's
``test_policy_equivalence.py`` pinned the policy engine.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.workloads.spec import JobSpec
from repro.workloads.trace import BlockTrace, TraceRecord

#: request kinds a source may yield; ``flush`` carries ``lba=0,
#: sectors=0`` and maps to the device's FLUSH CACHE command.
REQUEST_KINDS = ("write", "read", "trim", "flush")


class RequestSource:
    """Base class: a finite, ordered stream of host requests.

    Subclasses set ``name``, ``iodepth`` and ``is_open_loop`` and
    implement :meth:`next_request`.  ``remaining`` returns how many
    requests are left when the source knows (synthetic jobs, traces) or
    ``None`` when the stream's length emerges as it runs (storage
    engines generate block I/O lazily from key-value operations).

    Open-loop sources must know their length: :meth:`arrival_times`
    returns one submission timestamp per request.
    """

    name: str = "source"
    iodepth: int = 1
    is_open_loop: bool = False

    def next_request(self) -> tuple[str, int, int] | None:
        """The next ``(kind, lba, sectors)``, or ``None`` when done."""
        raise NotImplementedError

    @property
    def remaining(self) -> int | None:
        """Requests left to yield, or ``None`` if unknown upfront."""
        return None

    def arrival_times(self, t0: int) -> np.ndarray:
        """Open-loop submission times (ns, int64), one per request."""
        raise NotImplementedError(
            f"{type(self).__name__} is closed-loop; it has no arrival "
            f"schedule")

    def __iter__(self) -> Iterator[tuple[str, int, int]]:
        while (request := self.next_request()) is not None:
            yield request


def as_source(item: "JobSpec | RequestSource") -> RequestSource:
    """Normalize an engine input: specs wrap into :class:`JobSource`,
    sources pass through untouched."""
    if isinstance(item, JobSpec):
        return JobSource(item)
    if isinstance(item, RequestSource):
        return item
    raise TypeError(
        f"expected a JobSpec or RequestSource, got {type(item).__name__}")


# ----------------------------------------------------------------------
# Synthetic jobs (the legacy JobSpec path)
# ----------------------------------------------------------------------


class JobSource(RequestSource):
    """A :class:`JobSpec` as a request source — the legacy path.

    Draw order is the contract: per request, one address draw
    (``pattern.next_lba(rng)``) then one kind draw
    (``job.request_kind(rng)``), both from a single
    ``default_rng(job.seed)`` stream — exactly what the pre-refactor
    engine loops did inline, so the request stream is byte-identical.
    """

    __slots__ = ("job", "name", "iodepth", "is_open_loop", "_left",
                 "_rng", "_next_lba", "_request_kind", "_bs")

    def __init__(self, job: JobSpec) -> None:
        self.job = job
        self.name = job.name
        self.iodepth = job.iodepth
        self.is_open_loop = job.is_open_loop
        self._left = job.io_count
        self._rng = np.random.default_rng(job.seed)
        pattern = job.make_pattern()
        self._next_lba = pattern.next_lba
        self._request_kind = job.request_kind
        self._bs = job.bs_sectors

    def next_request(self) -> tuple[str, int, int] | None:
        if self._left <= 0:
            return None
        self._left -= 1
        rng = self._rng
        lba = self._next_lba(rng)
        return self._request_kind(rng), lba, self._bs

    @property
    def remaining(self) -> int:
        return self._left

    def arrival_times(self, t0: int) -> np.ndarray:
        from repro.workloads.engine import _arrival_times

        return _arrival_times(self.job, t0)


def synthetic_source(
    name: str,
    rw: str,
    num_sectors: int,
    *,
    bs_sectors: int = 1,
    io_count: int = 1000,
    iodepth: int = 1,
    seed: int = 0,
    pattern: str | None = None,
    **spec_kwargs,
) -> JobSource:
    """Build a whole-device synthetic source in one call.

    The builder behind CLI one-off workloads (``repro-ssd trace`` uses
    it for both device modes instead of hand-rolling two near-identical
    ``JobSpec`` constructions) and anywhere else a quick
    "random writes over the full device" stream is needed.
    """
    from repro.workloads.patterns import Region

    job = JobSpec(name, rw, Region(0, num_sectors), bs_sectors=bs_sectors,
                  io_count=io_count, iodepth=iodepth, seed=seed,
                  pattern=pattern, **spec_kwargs)
    return JobSource(job)


# ----------------------------------------------------------------------
# Recorded block traces
# ----------------------------------------------------------------------


class TraceSource(RequestSource):
    """A recorded :class:`~repro.workloads.trace.BlockTrace` as a
    request source.

    Timed runs honour the recorded inter-arrival times (open loop,
    scaled by ``time_scale``: > 1 slows the trace down, < 1 speeds it
    up); counter runs ignore timestamps.  Pass ``submission="closed"``
    to replay request-by-request at ``iodepth`` instead of at the
    recorded timeline.

    ``lba_offset``/``lba_modulo`` relocate the trace into a private
    slice of the LBA space — how fleet tenants replay a trace inside
    their share region: each record lands at
    ``offset + (lba mod modulo)``, so any trace fits any region.
    """

    def __init__(
        self,
        trace: BlockTrace,
        name: str = "trace",
        *,
        time_scale: float = 1.0,
        submission: str = "open",
        iodepth: int = 1,
        lba_offset: int = 0,
        lba_modulo: int | None = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        if submission not in ("open", "closed"):
            raise ValueError(f"unknown submission mode {submission!r}")
        if iodepth < 1:
            raise ValueError("iodepth must be >= 1")
        if lba_offset < 0:
            raise ValueError("lba_offset must be >= 0")
        if lba_modulo is not None and lba_modulo < 1:
            raise ValueError("lba_modulo must be >= 1")
        self.trace = trace
        self.name = name
        self.time_scale = time_scale
        self.is_open_loop = submission == "open"
        self.iodepth = iodepth
        self._offset = lba_offset
        self._modulo = lba_modulo
        self._cursor = 0

    def _map_lba(self, record: TraceRecord) -> int:
        if self._modulo is None:
            return self._offset + record.lba
        sectors = max(1, record.sectors)
        span = max(1, self._modulo - sectors + 1)
        return self._offset + record.lba % span

    def next_request(self) -> tuple[str, int, int] | None:
        records = self.trace.records
        if self._cursor >= len(records):
            return None
        record = records[self._cursor]
        self._cursor += 1
        if record.kind == "flush":
            return "flush", 0, 0
        return record.kind, self._map_lba(record), max(1, record.sectors)

    @property
    def remaining(self) -> int:
        return len(self.trace.records) - self._cursor

    def arrival_times(self, t0: int) -> np.ndarray:
        at_us = np.asarray([r.at_us for r in self.trace.records],
                           dtype=np.float64)
        return t0 + (at_us * 1000.0 * self.time_scale).astype(np.int64)


# ----------------------------------------------------------------------
# File-system workloads
# ----------------------------------------------------------------------


class RecordingBackend:
    """An fs backend that records the block stream instead of driving a
    device.

    File-system models only consult a backend for ``num_sectors`` and
    ``now_ns`` — they never read data back — so running a model against
    this recorder captures the exact block-trace the same model would
    have produced against a real device.  Timestamps are synthesized at
    ``rate_iops`` (the :class:`~repro.workloads.trace.TraceRecorder`
    convention).
    """

    def __init__(self, num_sectors: int, rate_iops: float = 50_000.0) -> None:
        if num_sectors < 1:
            raise ValueError("num_sectors must be >= 1")
        if rate_iops <= 0:
            raise ValueError("rate_iops must be positive")
        self.num_sectors = num_sectors
        self.trace = BlockTrace()
        self._gap_us = 1e6 / rate_iops
        self._clock_us = 0.0

    @property
    def now_ns(self) -> int:
        return int(self._clock_us * 1000)

    def _log(self, kind: str, lba: int, sectors: int) -> None:
        self.trace.append(TraceRecord(kind, lba, sectors, self._clock_us))
        self._clock_us += self._gap_us

    def write(self, lba: int, count: int) -> None:
        self._log("write", lba, count)

    def read(self, lba: int, count: int) -> None:
        self._log("read", lba, count)

    def trim(self, lba: int, count: int) -> None:
        self._log("trim", lba, count)

    def flush(self) -> None:
        self._log("flush", 0, 0)


#: file-system models an :class:`FsSource` can run.
FS_MODELS = ("ext4", "f2fs")


def record_fs_workload(
    fs_model: str,
    num_sectors: int,
    *,
    operations: int = 500,
    seed: int = 0,
    working_files: int = 60,
    rate_iops: float = 50_000.0,
) -> BlockTrace:
    """Run a fileserver scenario over an fs model, capturing its block
    stream as a trace (no device involved)."""
    from repro.workloads.fileserver import FileServerConfig, FileServerWorkload

    if fs_model not in FS_MODELS:
        raise ValueError(f"unknown fs model {fs_model!r}; known: {FS_MODELS}")
    backend = RecordingBackend(num_sectors, rate_iops=rate_iops)
    if fs_model == "ext4":
        from repro.fs.ext4 import Ext4Model

        model = Ext4Model(backend)
    else:
        from repro.fs.f2fs import F2fsModel

        model = F2fsModel(backend)
    workload = FileServerWorkload(
        model, FileServerConfig(working_files=working_files), seed=seed)
    workload.prepare()
    workload.run(operations)
    return backend.trace


class FsSource(TraceSource):
    """A file-system workload as a request source.

    The fs scenario runs at construction against a
    :class:`RecordingBackend`; the captured block trace then replays
    through the engine like any other trace.  Closed-loop by default
    (an fs issues each request when the previous completes — the
    behaviour of the synchronous backend adapters).
    """

    def __init__(
        self,
        fs_model: str,
        num_sectors: int,
        *,
        name: str | None = None,
        operations: int = 500,
        seed: int = 0,
        working_files: int = 60,
        submission: str = "closed",
        iodepth: int = 1,
    ) -> None:
        trace = record_fs_workload(
            fs_model, num_sectors, operations=operations, seed=seed,
            working_files=working_files)
        super().__init__(trace, name or f"fs-{fs_model}",
                         submission=submission, iodepth=iodepth)
        self.fs_model = fs_model
