"""Block-trace recording and replay.

Storage studies live and die by traces: record the request stream an
application (or one of this repo's workload generators) produces, persist
it, and replay it against any device configuration.  The format is a
four-column CSV (``op,lba,sectors,at_us``) — trivially diffable and easy
to produce from real blktrace output.

Recording wraps a device's host interface; replay drives either device
mode.  Timed replay honours the recorded inter-arrival times (open loop,
optionally time-scaled), so a trace captured at one speed can stress a
slower configuration.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

KINDS = ("write", "read", "trim", "flush")


class TraceFormatError(ValueError):
    """A malformed trace, rejected at load time.

    Carries the 1-based line number of the offending row so the error
    names the exact spot instead of failing deep inside the engine
    mid-replay.
    """

    def __init__(self, message: str, line: int | None = None) -> None:
        if line is not None:
            message = f"trace line {line}: {message}"
        super().__init__(message)
        self.line = line


@dataclass(frozen=True)
class TraceRecord:
    """One host request."""

    kind: str
    lba: int
    sectors: int
    at_us: float

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.lba < 0 or self.sectors < 0:
            raise ValueError("lba/sectors must be non-negative")


class BlockTrace:
    """An ordered sequence of host requests."""

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self.records: list[TraceRecord] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        if self.records and record.at_us < self.records[-1].at_us:
            raise ValueError("trace timestamps must be non-decreasing")
        self.records.append(record)

    @property
    def duration_us(self) -> float:
        return self.records[-1].at_us if self.records else 0.0

    def sectors_written(self) -> int:
        return sum(r.sectors for r in self.records if r.kind == "write")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dumps(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["op", "lba", "sectors", "at_us"])
        for record in self.records:
            writer.writerow([record.kind, record.lba, record.sectors,
                             f"{record.at_us:.3f}"])
        return buf.getvalue()

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str, num_sectors: int | None = None) -> "BlockTrace":
        """Parse a trace, validating every row at load time.

        Rejected with a :class:`TraceFormatError` naming the offending
        line: wrong column count, unknown op kinds, unparseable fields,
        timestamps that go backwards, and — when the target device's
        *num_sectors* is given — requests that fall outside the LBA
        space.  Catching these here means a malformed trace fails in
        one obvious place instead of deep inside the engine mid-replay.
        """
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != ["op", "lba", "sectors", "at_us"]:
            raise TraceFormatError(
                f"not a block trace (header {header!r}, "
                f"want op,lba,sectors,at_us)", line=1)
        trace = cls()
        last_at_us = None
        for line, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 4:
                raise TraceFormatError(
                    f"expected 4 columns (op,lba,sectors,at_us), "
                    f"got {len(row)}: {row!r}", line=line)
            kind = row[0]
            try:
                lba, sectors, at_us = int(row[1]), int(row[2]), float(row[3])
            except ValueError:
                raise TraceFormatError(
                    f"unparseable lba/sectors/at_us in {row!r}",
                    line=line) from None
            try:
                record = TraceRecord(kind, lba, sectors, at_us)
            except ValueError as exc:
                raise TraceFormatError(str(exc), line=line) from None
            if last_at_us is not None and at_us < last_at_us:
                raise TraceFormatError(
                    f"at_us goes backwards ({at_us:g} after "
                    f"{last_at_us:g}); trace timestamps must be "
                    f"non-decreasing", line=line)
            if (num_sectors is not None and kind != "flush"
                    and lba + max(1, sectors) > num_sectors):
                raise TraceFormatError(
                    f"request [{lba}, {lba + max(1, sectors)}) outside "
                    f"the device's {num_sectors} sectors", line=line)
            last_at_us = at_us
            trace.records.append(record)
        return trace

    @classmethod
    def load(cls, path: str | Path,
             num_sectors: int | None = None) -> "BlockTrace":
        return cls.loads(Path(path).read_text(), num_sectors=num_sectors)


class TraceRecorder:
    """Wraps a counter-mode device, logging every host request.

    Counter mode has no clock, so timestamps are synthesized at a fixed
    ``rate_iops`` — the recorded trace then replays at that pace.
    """

    def __init__(self, device, rate_iops: float = 50_000.0) -> None:
        self.device = device
        self.trace = BlockTrace()
        self._gap_us = 1e6 / rate_iops
        self._clock_us = 0.0

    @property
    def num_sectors(self) -> int:
        return self.device.num_sectors

    def _log(self, kind: str, lba: int, sectors: int) -> None:
        self.trace.append(TraceRecord(kind, lba, sectors, self._clock_us))
        self._clock_us += self._gap_us

    def write_sectors(self, lba: int, count: int = 1):
        self._log("write", lba, count)
        return self.device.write_sectors(lba, count)

    def read_sectors(self, lba: int, count: int = 1):
        self._log("read", lba, count)
        return self.device.read_sectors(lba, count)

    def trim_sectors(self, lba: int, count: int = 1):
        self._log("trim", lba, count)
        return self.device.trim_sectors(lba, count)

    def flush(self):
        self._log("flush", 0, 0)
        return self.device.flush()


def replay_counter(trace: BlockTrace, device) -> None:
    """Replay onto a counter-mode device (timestamps ignored)."""
    for record in trace:
        if record.kind == "write":
            device.write_sectors(record.lba, record.sectors)
        elif record.kind == "read":
            device.read_sectors(record.lba, record.sectors)
        elif record.kind == "trim":
            device.trim_sectors(record.lba, record.sectors)
        else:
            device.flush()


def replay_timed(trace: BlockTrace, device, time_scale: float = 1.0):
    """Open-loop replay onto a :class:`TimedSSD`, honouring arrival times.

    Returns the completed requests.  ``time_scale > 1`` slows the trace
    down, ``< 1`` speeds it up.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    t0 = device.now
    out = []
    for record in trace:
        at_ns = t0 + int(record.at_us * 1000 * time_scale)
        if record.kind == "flush":
            out.append(device.flush(at_ns=max(at_ns, device.now)))
        else:
            out.append(device.submit(record.kind, record.lba,
                                     max(1, record.sectors), at_ns=at_ns))
    return out
