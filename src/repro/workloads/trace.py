"""Block-trace recording and replay.

Storage studies live and die by traces: record the request stream an
application (or one of this repo's workload generators) produces, persist
it, and replay it against any device configuration.  The format is a
four-column CSV (``op,lba,sectors,at_us``) — trivially diffable and easy
to produce from real blktrace output.

Recording wraps a device's host interface; replay drives either device
mode.  Timed replay honours the recorded inter-arrival times (open loop,
optionally time-scaled), so a trace captured at one speed can stress a
slower configuration.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

KINDS = ("write", "read", "trim", "flush")


@dataclass(frozen=True)
class TraceRecord:
    """One host request."""

    kind: str
    lba: int
    sectors: int
    at_us: float

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")
        if self.lba < 0 or self.sectors < 0:
            raise ValueError("lba/sectors must be non-negative")


class BlockTrace:
    """An ordered sequence of host requests."""

    def __init__(self, records: Iterable[TraceRecord] = ()) -> None:
        self.records: list[TraceRecord] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        if self.records and record.at_us < self.records[-1].at_us:
            raise ValueError("trace timestamps must be non-decreasing")
        self.records.append(record)

    @property
    def duration_us(self) -> float:
        return self.records[-1].at_us if self.records else 0.0

    def sectors_written(self) -> int:
        return sum(r.sectors for r in self.records if r.kind == "write")

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def dumps(self) -> str:
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["op", "lba", "sectors", "at_us"])
        for record in self.records:
            writer.writerow([record.kind, record.lba, record.sectors,
                             f"{record.at_us:.3f}"])
        return buf.getvalue()

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps())
        return path

    @classmethod
    def loads(cls, text: str) -> "BlockTrace":
        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header != ["op", "lba", "sectors", "at_us"]:
            raise ValueError(f"not a block trace (header {header!r})")
        trace = cls()
        for row in reader:
            if not row:
                continue
            trace.append(TraceRecord(row[0], int(row[1]), int(row[2]),
                                     float(row[3])))
        return trace

    @classmethod
    def load(cls, path: str | Path) -> "BlockTrace":
        return cls.loads(Path(path).read_text())


class TraceRecorder:
    """Wraps a counter-mode device, logging every host request.

    Counter mode has no clock, so timestamps are synthesized at a fixed
    ``rate_iops`` — the recorded trace then replays at that pace.
    """

    def __init__(self, device, rate_iops: float = 50_000.0) -> None:
        self.device = device
        self.trace = BlockTrace()
        self._gap_us = 1e6 / rate_iops
        self._clock_us = 0.0

    @property
    def num_sectors(self) -> int:
        return self.device.num_sectors

    def _log(self, kind: str, lba: int, sectors: int) -> None:
        self.trace.append(TraceRecord(kind, lba, sectors, self._clock_us))
        self._clock_us += self._gap_us

    def write_sectors(self, lba: int, count: int = 1):
        self._log("write", lba, count)
        return self.device.write_sectors(lba, count)

    def read_sectors(self, lba: int, count: int = 1):
        self._log("read", lba, count)
        return self.device.read_sectors(lba, count)

    def trim_sectors(self, lba: int, count: int = 1):
        self._log("trim", lba, count)
        return self.device.trim_sectors(lba, count)

    def flush(self):
        self._log("flush", 0, 0)
        return self.device.flush()


def replay_counter(trace: BlockTrace, device) -> None:
    """Replay onto a counter-mode device (timestamps ignored)."""
    for record in trace:
        if record.kind == "write":
            device.write_sectors(record.lba, record.sectors)
        elif record.kind == "read":
            device.read_sectors(record.lba, record.sectors)
        elif record.kind == "trim":
            device.trim_sectors(record.lba, record.sectors)
        else:
            device.flush()


def replay_timed(trace: BlockTrace, device, time_scale: float = 1.0):
    """Open-loop replay onto a :class:`TimedSSD`, honouring arrival times.

    Returns the completed requests.  ``time_scale > 1`` slows the trace
    down, ``< 1`` speeds it up.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    t0 = device.now
    out = []
    for record in trace:
        at_ns = t0 + int(record.at_us * 1000 * time_scale)
        if record.kind == "flush":
            out.append(device.flush(at_ns=max(at_ns, device.now)))
        else:
            out.append(device.submit(record.kind, record.lba,
                                     max(1, record.sectors), at_ns=at_ns))
    return out
