"""Discrete-event simulation kernel (virtual clock, resources, processes).

See :mod:`repro.sim.kernel` for the pieces; :class:`~repro.ssd.timed.TimedSSD`
is the main client.
"""

from repro.sim.kernel import (
    CapacityPool,
    Kernel,
    PowerLoss,
    Process,
    Resource,
    earliest_start,
)

__all__ = ["Kernel", "PowerLoss", "Resource", "CapacityPool", "Process",
           "earliest_start"]
