"""A small discrete-event simulation kernel.

This is the execution substrate under :class:`~repro.ssd.timed.TimedSSD`
and anything else that needs a virtual clock.  It provides four pieces,
deliberately minimal (the shape SimpleSSD and EagleTree converge on, cut
down to what this reproduction needs):

* :class:`Kernel` — a virtual clock plus a future-event list (heapq).
  Callbacks scheduled with :meth:`Kernel.schedule` fire in time order
  when the clock is advanced with :meth:`Kernel.run_until`.
* :class:`Resource` — a named serially-reusable unit (a flash channel, a
  die) modeled as a busy-until timeline.  Claims are resolved in call
  order: ``hold(start, end)`` marks the interval busy and moves
  ``free_at`` forward.  When a trace sink is attached to the kernel,
  every hold emits a :class:`~repro.obs.events.ResourceBusy` event — the
  utilization record behind queueing analyses.
* :class:`CapacityPool` — a finite pool (RAM write-cache space) whose
  releases happen at known future times.  Releases are kept in a heap,
  so an admission that must stall pops only the releases it needs
  instead of re-sorting the whole list (the old ``TimedSSD`` did an
  O(n²) sort-and-pop on every stalled admission).
* :class:`Process` — a generator-based process: yield a delay in ns to
  sleep; the kernel resumes the generator when the clock reaches that
  time.  Background maintenance that must overlap host idle gaps is
  written as a process instead of a blocking call.

Determinism: the kernel breaks ties in (time, schedule order), contains
no wall-clock or RNG state, and resources resolve claims in call order —
so identical inputs produce identical timelines, which is what the
golden-figure regression suite pins.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Callable, Generator

from repro.obs.events import ResourceBusy
from repro.obs.sinks import NULL_SINK, TraceSink

__all__ = ["Kernel", "PowerLoss", "Resource", "CapacityPool", "Process",
           "earliest_start"]


class PowerLoss(Exception):
    """Raised out of the run loop when a scheduled power cut fires.

    Whatever the kernel was mid-way through is abandoned — exactly what
    pulling the plug does.  The fault harness catches this, snapshots
    the flash, and runs recovery; ``at_ns`` records when power died.
    """

    def __init__(self, at_ns: int) -> None:
        super().__init__(f"power lost at {at_ns} ns")
        self.at_ns = at_ns


def earliest_start(at_ns: int, *resources: "Resource") -> int:
    """First instant >= *at_ns* when every resource is free."""
    start = at_ns
    for resource in resources:
        if resource.free_at > start:
            start = resource.free_at
    return start


class Kernel:
    """Virtual clock + future-event list + resource registry."""

    def __init__(self) -> None:
        self.now = 0
        self._fel: list[tuple[int, int, Callable, tuple]] = []
        self._seq = count()
        self._resources: dict[str, Resource] = {}
        self.obs: TraceSink = NULL_SINK

    # -- observability -------------------------------------------------

    def attach_sink(self, sink: TraceSink) -> None:
        """Route resource-busy events to *sink* (NULL_SINK to detach)."""
        self.obs = sink

    # -- resources -----------------------------------------------------

    def resource(self, name: str) -> Resource:
        """The named resource, created on first use."""
        resource = self._resources.get(name)
        if resource is None:
            resource = self._resources[name] = Resource(self, name)
        return resource

    @property
    def resources(self) -> dict[str, Resource]:
        return self._resources

    def horizon(self) -> int:
        """The time by which every resource is free (>= now)."""
        horizon = self.now
        for resource in self._resources.values():
            if resource.free_at > horizon:
                horizon = resource.free_at
        return horizon

    # -- event list ----------------------------------------------------

    def schedule(self, at_ns: int, fn: Callable, *args) -> None:
        """Run ``fn(*args)`` when the clock reaches *at_ns* (clamped to
        now; never in the past)."""
        heapq.heappush(self._fel,
                       (max(int(at_ns), self.now), next(self._seq), fn, args))

    def schedule_batch(self, events: "list[tuple[int, Callable, tuple]]") -> None:
        """Admit many ``(at_ns, fn, args)`` events in one call.

        Equivalent to calling :meth:`schedule` once per event in list
        order — sequence numbers are drawn from the same counter, so the
        firing order is identical — but when the batch is large relative
        to the event list it is cheaper to extend and re-heapify once
        (O(n + k)) than to pay one sift-up per push (O(k log n)).
        """
        now = self.now
        seq = self._seq
        items = [
            (at if (at := int(at_ns)) > now else now, next(seq), fn, args)
            for at_ns, fn, args in events
        ]
        fel = self._fel
        if len(items) > 64 and len(items) >= len(fel):
            # The batch dominates the heap: one O(n + k) heapify beats
            # k sift-ups.  (Repeated small batches against a large heap
            # must NOT re-heapify — that would be O(k * n) overall.)
            fel.extend(items)
            heapq.heapify(fel)
        else:
            push = heapq.heappush
            for item in items:
                push(fel, item)

    def call_after(self, delay_ns: int, fn: Callable, *args) -> None:
        self.schedule(self.now + max(0, int(delay_ns)), fn, *args)

    def power_cut(self, at_ns: int) -> None:
        """Schedule a power loss: when the clock reaches *at_ns*,
        :class:`PowerLoss` is raised out of whichever run loop is
        advancing the clock, abandoning all later events."""
        def _cut() -> None:
            raise PowerLoss(self.now)
        self.schedule(at_ns, _cut)

    @property
    def pending_events(self) -> int:
        return len(self._fel)

    def next_event_at(self) -> int | None:
        """Time of the earliest scheduled event, or None if idle."""
        return self._fel[0][0] if self._fel else None

    def run_until(self, t_ns: int) -> None:
        """Fire every event due at or before *t_ns*, advancing the clock
        through each, then leave the clock at *t_ns*."""
        fel = self._fel
        while fel and fel[0][0] <= t_ns:
            at, _, fn, args = heapq.heappop(fel)
            self.now = at
            fn(*args)
        if t_ns > self.now:
            self.now = t_ns

    def run(self) -> None:
        """Drain the event list completely."""
        fel = self._fel
        while fel:
            at, _, fn, args = heapq.heappop(fel)
            self.now = at
            fn(*args)

    def spawn(self, gen: Generator[int, None, None]) -> Process:
        """Start a generator as a :class:`Process` (first step runs at
        the current time)."""
        return Process(self, gen)


class Process:
    """A generator driven by the kernel: each ``yield delay_ns`` sleeps
    the process until the clock reaches ``now + delay_ns``."""

    def __init__(self, kernel: Kernel, gen: Generator[int, None, None]) -> None:
        self.kernel = kernel
        self.gen = gen
        self.alive = True
        kernel.schedule(kernel.now, self._step)

    def cancel(self) -> None:
        self.alive = False

    def _step(self) -> None:
        if not self.alive:
            return
        try:
            delay_ns = next(self.gen)
        except StopIteration:
            self.alive = False
            return
        self.kernel.call_after(delay_ns, self._step)


class Resource:
    """A named serially-reusable resource with a busy-until timeline.

    ``free_at`` is the next instant the resource can start new work;
    :func:`earliest_start` gates a claim on several resources at once
    (ONFI: the controller cannot issue to a busy die *or* a busy
    channel).  ``hold`` marks a busy interval; callers compute the start
    themselves because multi-resource operations (read = channel cmd +
    die tR + channel data-out) interleave holds on different resources.
    """

    __slots__ = ("kernel", "name", "free_at", "busy_ns", "holds")

    def __init__(self, kernel: Kernel, name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.free_at = 0
        self.busy_ns = 0
        self.holds = 0

    def hold(self, start_ns: int, end_ns: int, requested_ns: int | None = None) -> int:
        """Occupy ``[start_ns, end_ns)``; returns *end_ns*.

        *requested_ns* — when the work first wanted the resource — feeds
        the ``wait_ns`` field of the emitted event (queueing delay).
        """
        self.holds += 1
        self.busy_ns += end_ns - start_ns
        if end_ns > self.free_at:
            self.free_at = end_ns
        obs = self.kernel.obs
        if obs.enabled:
            wait = 0 if requested_ns is None else max(0, start_ns - requested_ns)
            obs.emit(ResourceBusy(resource=self.name, start_ns=start_ns,
                                  busy_ns=end_ns - start_ns, wait_ns=wait))
        return end_ns

    def utilization(self, elapsed_ns: int) -> float:
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / elapsed_ns


class CapacityPool:
    """A finite pool with time-stamped releases (RAM write-cache space).

    ``acquire`` answers "when do *amount* units fit?": releases due by
    *now* are credited first; if the pool still overflows, the earliest
    scheduled future releases are consumed (heap order) and the last one
    popped sets the admission time — the caller stalls until then.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.occupied = 0
        self._releases: list[tuple[int, int]] = []  # (when_ns, amount)

    @property
    def pending_releases(self) -> int:
        return len(self._releases)

    def schedule_release(self, when_ns: int, amount: int) -> None:
        """*amount* units return to the pool at *when_ns*."""
        heapq.heappush(self._releases, (when_ns, amount))

    def release_due(self, now_ns: int) -> None:
        """Credit every release that has happened by *now_ns*."""
        releases = self._releases
        while releases and releases[0][0] <= now_ns:
            _, amount = heapq.heappop(releases)
            self.occupied = max(0, self.occupied - amount)

    def acquire(self, now_ns: int, amount: int, overshoot: int = 0) -> int:
        """Admit *amount* units at *now_ns*; returns the admission time
        (== *now_ns* when the pool has room, later when it must wait for
        scheduled releases).

        *overshoot* caps how far ``occupied`` may exceed ``capacity``
        after admission (in-flight data the device has accepted but not
        yet flushed; the timed SSD passes the request size).
        """
        # release_due(now_ns), inlined: acquire is the write hot path.
        releases = self._releases
        occupied = self.occupied
        while releases and releases[0][0] <= now_ns:
            occupied -= heapq.heappop(releases)[1]
            if occupied < 0:
                occupied = 0
        if amount > 0:
            occupied += amount
        when = now_ns
        capacity = self.capacity
        while occupied > capacity and releases:
            when, freed = heapq.heappop(releases)
            occupied -= freed
            if occupied < 0:
                occupied = 0
        if occupied > capacity + overshoot:
            occupied = capacity + overshoot
        self.occupied = occupied
        return when if when > now_ns else now_ns
