"""The §3.2 reverse-engineering study, as runnable pipeline.

Every function here works **only from the artifact and the debug port**:
the obfuscated firmware update file, JTAG memory reads, PC samples, and
ordinary host I/O used as stimulus.  Nothing reads the simulator's
Python state directly, so each discovery is a real inference — the test
suite corrupts or varies the device to show the discoveries track the
artifact, not the implementation.

The pipeline mirrors the paper's findings on the 840 EVO:

1.  **Firmware analysis** — de-obfuscate the update file (known-plaintext
    keystream attack), parse sections, disassemble, harvest pointer
    constants and the LBA-LSB dispatch idiom.
2.  **Core roles** — sample PCs over JTAG while driving single-sector
    accesses: one core serves the host interface on every request, the
    other two each wake only for one LBA parity.
3.  **Translation map** — diff DRAM around single-sector TRIMs to locate
    live map entries; fit the array-select modulus and entry stride;
    measure occupied bytes against the theoretical minimum.
4.  **Demand-loaded chunks** — touch cold LBA regions and watch map
    spans materialize (and LRU-evict) in fixed-size units.
5.  **pSLC hashed index** — stage writes in the TurboWrite buffer and
    show their index entries scatter non-monotonically (a hash table,
    not an array).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.jtag.dap import JtagProbe
from repro.core.jtag.debugger import Debugger
from repro.ssd.firmware.builder import parse_image
from repro.ssd.firmware.isa import Op, disassemble, find_pointer_loads
from repro.ssd.firmware.obfuscation import deobfuscate

#: controller address-space conventions known from the board (public
#: datasheet-level knowledge: which decode windows are DRAM vs MMIO).
DRAM_WINDOW = (0x20000000, 0x40000000)


# ----------------------------------------------------------------------
# 1. Firmware image analysis (static)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HashIdiom:
    """A recovered hash computation: ``(x ^ (x >> shift)) & mask``."""

    section: str
    shift: int
    mask: int

    @property
    def buckets(self) -> int:
        return self.mask + 1


@dataclass
class FirmwareAnalysis:
    """Static findings from the de-obfuscated update file."""

    keystream_period: int
    keystream_confidence: float
    section_names: list[str]
    #: pointer constants per code section (MOVI/MOVT pairs).
    pointers: dict[str, list[int]]
    #: code sections containing an `AND rX, rY, #1` + branch dispatch.
    lsb_dispatch_sections: list[str]
    strings: list[str]
    #: hash computations recovered from the code (xor-fold idioms).
    hash_idioms: list[HashIdiom] = field(default_factory=list)

    def dram_pointers(self) -> dict[str, list[int]]:
        lo, hi = DRAM_WINDOW
        return {
            name: sorted(p for p in ptrs if lo <= p < hi)
            for name, ptrs in self.pointers.items()
        }


def analyze_update_file(update_file: bytes) -> FirmwareAnalysis:
    """De-obfuscate, parse, disassemble, and scan one update image."""
    plain, guess = deobfuscate(update_file)
    sections = parse_image(plain)
    pointers: dict[str, list[int]] = {}
    lsb_sections: list[str] = []
    strings: list[str] = []
    hash_idioms: list[HashIdiom] = []
    for section in sections:
        if section.name.startswith("core"):
            lines = disassemble(section.data, section.load_addr)
            pointers[section.name] = [v for _, _, v in find_pointer_loads(lines)]
            if _has_lsb_dispatch(lines):
                lsb_sections.append(section.name)
            hash_idioms.extend(_find_hash_idioms(section.name, lines))
        else:
            strings.extend(_ascii_strings(section.data))
    return FirmwareAnalysis(
        keystream_period=guess.period,
        keystream_confidence=guess.confidence,
        section_names=[s.name for s in sections],
        pointers=pointers,
        lsb_dispatch_sections=lsb_sections,
        strings=strings,
        hash_idioms=hash_idioms,
    )


def _has_lsb_dispatch(lines) -> bool:
    """`AND rX, rY, #1` followed shortly by CMP+conditional branch."""
    insns = [line.insn for line in lines if line.insn is not None]
    for i, insn in enumerate(insns):
        if insn.op is Op.AND and insn.imm == 1:
            window = insns[i + 1 : i + 4]
            has_cmp = any(w.op is Op.CMP for w in window)
            has_branch = any(w.op in (Op.BEQ, Op.BNE) for w in window)
            if has_cmp and has_branch:
                return True
    return False


def _find_hash_idioms(section: str, lines) -> list[HashIdiom]:
    """Recognize the xor-fold hashing idiom in a disassembly:

        LSR  rA, rB, #shift
        XORX rA, rB
        AND  rA, rA, #mask        (mask = 2^k - 1)

    i.e. ``(x ^ (x >> shift)) & mask`` — the signature of a power-of-two
    hash-table probe (as opposed to linear array indexing).
    """
    insns = [line.insn for line in lines if line.insn is not None]
    found = []
    for a, b, c in zip(insns, insns[1:], insns[2:]):
        if (a.op is Op.LSR and b.op is Op.XORX and c.op is Op.AND
                and b.rd == a.rd and b.rn == a.rn
                and c.rn == a.rd
                and c.imm & (c.imm + 1) == 0 and c.imm > 0):
            found.append(HashIdiom(section, shift=a.imm, mask=c.imm))
    return found


def _ascii_strings(blob: bytes, min_len: int = 6) -> list[str]:
    out, current = [], bytearray()
    for byte in blob:
        if 0x20 <= byte < 0x7F:
            current.append(byte)
        else:
            if len(current) >= min_len:
                out.append(current.decode())
            current = bytearray()
    if len(current) >= min_len:
        out.append(current.decode())
    return out


# ----------------------------------------------------------------------
# 2. Core-role attribution (dynamic)
# ----------------------------------------------------------------------


@dataclass
class CoreRoles:
    """Which core does what, with the PC evidence."""

    host_interface_core: int | None
    #: flash core serving lba % 2 == 0, and the one serving == 1.
    even_core: int | None
    odd_core: int | None
    activity: dict[str, dict[int, float]] = field(default_factory=dict)

    @property
    def split_by_lsb(self) -> bool:
        return (self.even_core is not None and self.odd_core is not None
                and self.even_core != self.odd_core)


def attribute_core_roles(debugger: Debugger, driver, *,
                         iterations: int = 24) -> CoreRoles:
    """PC-sample cores while issuing even-LBA then odd-LBA accesses.

    ``driver`` is the host block interface (``write_sectors`` is all we
    use).  The idle PC set per core is learned by sampling before any
    stimulus.
    """
    cores = (0, 1, 2)
    idle: dict[int, set[int]] = {
        core: {debugger.probe.sample_pc(core) for _ in range(4)}
        for core in cores
    }

    def run(parity: int):
        return debugger.profile_pcs(
            lambda i: driver.write_sectors((2 * i + parity) % driver.num_sectors, 1),
            iterations, cores,
        )

    even_profile = run(0)
    odd_profile = run(1)
    activity = {
        "even": {c: even_profile.activity_fraction(c, idle[c]) for c in cores},
        "odd": {c: odd_profile.activity_fraction(c, idle[c]) for c in cores},
    }

    always_on = [
        c for c in cores
        if activity["even"][c] > 0.8 and activity["odd"][c] > 0.8
    ]
    even_only = [
        c for c in cores
        if activity["even"][c] > 0.8 and activity["odd"][c] < 0.2
    ]
    odd_only = [
        c for c in cores
        if activity["odd"][c] > 0.8 and activity["even"][c] < 0.2
    ]
    return CoreRoles(
        host_interface_core=always_on[0] if always_on else None,
        even_core=even_only[0] if even_only else None,
        odd_core=odd_only[0] if odd_only else None,
        activity=activity,
    )


# ----------------------------------------------------------------------
# 3. Translation-map structure (memory diffing)
# ----------------------------------------------------------------------


@dataclass
class MapDiscovery:
    """The translation map as recovered over JTAG."""

    array_bases: list[int]
    array_stride_bytes: int
    entry_bytes: int
    select_modulus: int
    entries_fit: bool  # did (array, offset) = f(lba) fit every probe?
    entry_bits_used: int
    measured_map_bytes: int
    theoretical_map_bytes: int

    @property
    def num_arrays(self) -> int:
        return len(self.array_bases)

    @property
    def overhead_ratio(self) -> float:
        if not self.theoretical_map_bytes:
            return 0.0
        return self.measured_map_bytes / self.theoretical_map_bytes


def candidate_map_bases(analysis: FirmwareAnalysis) -> tuple[list[int], list[int]]:
    """Split the firmware's DRAM pointers into (map arrays, other).

    The eight mapping arrays are the dominant uniform-stride family in
    the flash cores' pointer constants; everything else (e.g. the pSLC
    index) falls out as stride outliers.
    """
    pointers = sorted({
        p for name, ptrs in analysis.dram_pointers().items()
        for p in ptrs if name != "core0"
    })
    if len(pointers) < 3:
        return pointers, []
    diffs = np.diff(pointers)
    stride = int(np.bincount(diffs).argmax()) if len(diffs) else 0
    arrays = [pointers[0]]
    others = []
    for p in pointers[1:]:
        if p - arrays[-1] == stride:
            arrays.append(p)
        else:
            others.append(p)
    return arrays, others


def discover_translation_map(
    debugger: Debugger,
    driver,
    array_bases: list[int],
    *,
    verify_probes: int = 16,
    prefill: int = 4096,
    seed: int = 7,
) -> MapDiscovery:
    """Locate live map entries by diffing DRAM around single TRIMs.

    Protocol (two phases, because every JTAG byte costs TCK cycles):

    1. *Hypothesis* — prefill a small LBA region with writes so its
       entries are mapped, then TRIM consecutive sectors one at a time,
       diffing a small window at each candidate base.  Each TRIM flips
       exactly one entry, yielding ``(lba, array, offset)`` triples that
       fix the select modulus and entry stride.
    2. *Verification* — for random LBAs, read only the *predicted* entry
       word before and after a TRIM and check it flips.

    The prefill must be large enough to overflow any write-staging
    buffer (pSLC): entries only reach the DRAM map once data is in the
    main flash area, so probing targets the oldest (drained) prefix.
    """
    span = min(driver.num_sectors, prefill)
    for lba in range(0, span, 4):
        driver.write_sectors(lba, min(4, span - lba))
    driver.flush()

    stride = array_bases[1] - array_bases[0] if len(array_bases) > 1 else 0x1000
    # Hypothesis probes use tiny LBAs, so their entries (at any
    # plausible packing of <= 8 B/entry) sit within the first few
    # hundred bytes of each array -- keep the diff window small, every
    # JTAG byte costs TCK cycles.
    hypothesis_lbas = list(range(2 * len(array_bases)))
    window = min(stride, max(256, len(hypothesis_lbas) * 8))

    observations: list[tuple[int, int, int]] = []
    for lba in hypothesis_lbas:
        before = [debugger.snapshot_region(base, window) for base in array_bases]
        driver.trim_sectors(lba, 1)
        for index, base in enumerate(array_bases):
            after = debugger.snapshot_region(base, window)
            delta = np.nonzero(before[index] != after)[0]
            if len(delta):
                observations.append((lba, index, int(delta[0]) & ~0x3))
                break

    responsive = sorted({array for _, array, _ in observations})
    live_bases = [array_bases[i] for i in responsive]
    modulus = len(live_bases)
    remap = {old: new for new, old in enumerate(responsive)}
    observations = [(lba, remap[a], off) for lba, a, off in observations]
    entry_bytes = _fit_entry_bytes(observations, modulus) if modulus else 4

    fits = bool(observations) and all(
        array == lba % modulus and offset == (lba // modulus) * entry_bytes
        for lba, array, offset in observations
    )
    # Phase 2: verify the fitted layout on random LBAs, one word each.
    rng = np.random.default_rng(seed)
    if fits and modulus:
        # Verify within the oldest half of the prefill: those sectors
        # have certainly been drained out of any staging buffer.
        start = 2 * len(array_bases)
        pool = np.arange(start, max(start + 1, span // 2))
        picks = rng.choice(pool, size=min(verify_probes, len(pool)),
                           replace=False)
        for lba in (int(x) for x in picks):
            addr = live_bases[lba % modulus] + (lba // modulus) * entry_bytes
            before_word = debugger.mdw(addr)[0]
            driver.trim_sectors(lba, 1)
            after_word = debugger.mdw(addr)[0]
            if before_word == after_word:
                fits = False
                break

    bits_used = _scan_entry_bits(debugger, live_bases, entry_bytes,
                                 modulus, span)
    measured = modulus * stride
    # Theoretical: one entry of bits_used bits per exported sector.
    theoretical = driver.num_sectors * bits_used // 8
    return MapDiscovery(
        array_bases=live_bases,
        array_stride_bytes=stride,
        entry_bytes=entry_bytes,
        select_modulus=modulus,
        entries_fit=fits,
        entry_bits_used=bits_used,
        measured_map_bytes=measured,
        theoretical_map_bytes=theoretical,
    )


def _fit_entry_bytes(observations: list[tuple[int, int, int]],
                     modulus: int) -> int:
    """Entry stride from offset deltas between probed LBAs."""
    by_array: dict[int, list[tuple[int, int]]] = {}
    for lba, array, offset in observations:
        by_array.setdefault(array, []).append((lba, offset))
    strides = []
    for pairs in by_array.values():
        pairs.sort()
        for (lba_a, off_a), (lba_b, off_b) in zip(pairs, pairs[1:]):
            d_lba = (lba_b - lba_a) // modulus
            if d_lba > 0 and (off_b - off_a) % d_lba == 0:
                strides.append((off_b - off_a) // d_lba)
    if not strides:
        return 4
    return int(np.bincount(strides).argmax())


def _scan_entry_bits(debugger: Debugger, array_bases: list[int],
                     entry_bytes: int, modulus: int, span: int,
                     samples_per_array: int = 48) -> int:
    """OR together populated entries to find the bits actually used.

    Samples the region known to hold drained, mapped entries (the older
    half of the prefill span) — a full array dump over bit-banged JTAG
    would cost tens of millions of TCK cycles.
    """
    accum = 0
    if not modulus:
        return 1
    entries_mapped = max(1, (span // 2) // modulus)
    step = max(1, entries_mapped // samples_per_array)
    for base in array_bases:
        for entry in range(0, entries_mapped, step):
            value = debugger.mdw(base + entry * entry_bytes)[0]
            if value not in (0xFFFFFFFF, 0xFFFFFFFE):
                accum |= value
    return int(accum).bit_length() or 1


# ----------------------------------------------------------------------
# 4. Demand-loaded map chunks
# ----------------------------------------------------------------------


@dataclass
class ChunkDiscovery:
    """Demand loading of the translation map, as observed."""

    demand_loading: bool
    chunk_bytes_logical: int | None  # LBA-space coverage of one chunk
    resident_chunks: int | None
    eviction_observed: bool


def discover_chunk_loading(
    debugger: Debugger,
    driver,
    array_bases: list[int],
    entry_bytes: int = 4,
    sector_size: int = 4096,
    max_touches: int = 10,
    sample_step: int = 64,
) -> ChunkDiscovery:
    """Touch cold LBA regions; watch map spans materialize and evict.

    Reads are the stimulus (they force map residency without dirtying
    anything).  Array 0 is *sampled* — one entry word every
    ``sample_step`` entries — after each touch; a loaded-entry mask that
    grows in a fixed quantum reveals the chunk size, and any sampled
    position flipping loaded→unloaded is an LRU eviction.
    """
    modulus = len(array_bases)
    if not modulus:
        return ChunkDiscovery(False, None, None, False)
    stride = array_bases[1] - array_bases[0] if modulus > 1 else 0x1000
    base = array_bases[0]
    words_per_array = max(1, stride // 4)
    sample_positions = list(range(0, words_per_array, sample_step))

    def sampled_mask() -> np.ndarray:
        values = [debugger.mdw(base + pos * 4)[0] for pos in sample_positions]
        return np.asarray([v != 0xFFFFFFFF for v in values], dtype=bool)

    masks = [sampled_mask()]
    step = max(1, driver.num_sectors // max_touches)
    for i in range(max_touches):
        lba = min(i * step, driver.num_sectors - 1)
        driver.read_sectors(lba, 1)
        masks.append(sampled_mask())

    counts = [int(m.sum()) for m in masks]
    grew = [b - a for a, b in zip(counts, counts[1:]) if b - a > 0]
    eviction = any(
        bool(np.any(prev & ~cur)) for prev, cur in zip(masks, masks[1:])
    )
    if not grew:
        return ChunkDiscovery(False, None, None, eviction)
    quantum_samples = int(np.bincount(grew).argmax())
    quantum_entries = quantum_samples * sample_step
    # Each entry in array 0 covers `modulus` LBAs of `sector_size` each.
    chunk_bytes = quantum_entries * modulus * sector_size
    peak = max(counts)
    resident = round(peak / quantum_samples) if quantum_samples else None
    return ChunkDiscovery(
        demand_loading=True,
        chunk_bytes_logical=chunk_bytes,
        resident_chunks=resident,
        eviction_observed=eviction,
    )


# ----------------------------------------------------------------------
# 5. pSLC hashed index
# ----------------------------------------------------------------------


@dataclass
class PslcIndexDiscovery:
    """The auxiliary index fronting the pSLC buffer."""

    found: bool
    base: int | None
    bucket_bytes: int | None
    #: |spearman rho| between LPN and bucket position — near 0 for a
    #: hash table, near 1 for a flat array.
    order_correlation: float | None

    @property
    def looks_hashed(self) -> bool:
        return self.found and (self.order_correlation is not None
                               and self.order_correlation < 0.5)


def discover_pslc_index(
    debugger: Debugger,
    driver,
    candidate_bases: list[int],
    window: int = 0x10000,
    burst: int = 24,
) -> PslcIndexDiscovery:
    """Stage a write burst (no flush) and inspect candidate regions.

    Fresh writes live in the pSLC buffer, so their LPNs must appear in
    its index.  Scanning each candidate region for the written LPN tags
    identifies the index; the tag layout's (non-)monotonicity in LPN
    classifies it as hashed or flat.  The burst uses widely-spaced LBAs:
    a flat array keeps them in rank order regardless of spacing, while a
    hash scatters them.
    """
    base_lba = driver.num_sectors // 2
    spacing = max(3, driver.num_sectors // (4 * burst)) | 1
    lbas = [base_lba + spacing * i for i in range(burst)]
    lbas = [lba for lba in lbas if lba < driver.num_sectors]
    for lba in lbas:
        driver.write_sectors(lba, 1)

    for base in candidate_bases:
        words = np.frombuffer(debugger.dump(base, window), dtype="<u4")
        positions = {}
        for lba in lbas:
            hits = np.nonzero(words == lba)[0]
            if len(hits):
                positions[lba] = int(hits[0])
        if len(positions) >= burst // 2:
            stride = _tag_stride(sorted(positions.values()))
            rho = _rank_correlation(
                [lba for lba in lbas if lba in positions],
                [positions[lba] for lba in lbas if lba in positions],
            )
            return PslcIndexDiscovery(
                found=True, base=base,
                bucket_bytes=stride * 4 if stride else None,
                order_correlation=abs(rho),
            )
    return PslcIndexDiscovery(False, None, None, None)


def _tag_stride(positions: list[int]) -> int:
    if len(positions) < 2:
        return 0
    diffs = np.diff(sorted(positions))
    diffs = diffs[diffs > 0]
    if not len(diffs):
        return 0
    return int(np.gcd.reduce(diffs))


def _rank_correlation(x: list, y: list) -> float:
    if len(x) < 3:
        return 1.0
    rx = np.argsort(np.argsort(x)).astype(np.float64)
    ry = np.argsort(np.argsort(y)).astype(np.float64)
    rx -= rx.mean()
    ry -= ry.mean()
    denom = float(np.sqrt((rx ** 2).sum() * (ry ** 2).sum()))
    if denom == 0:
        return 0.0
    return float((rx * ry).sum() / denom)


# ----------------------------------------------------------------------
# The full study
# ----------------------------------------------------------------------


@dataclass
class JtagStudyReport:
    """Everything §3.2 reports, reproduced."""

    idcode: int
    firmware: FirmwareAnalysis
    roles: CoreRoles
    map: MapDiscovery
    chunks: ChunkDiscovery
    pslc: PslcIndexDiscovery
    tck_cycles: int

    def rows(self) -> list[tuple[str, object]]:
        return [
            ("IDCODE", f"0x{self.idcode:08x}"),
            ("keystream period", self.firmware.keystream_period),
            ("host-interface core", self.roles.host_interface_core),
            ("even-LBA flash core", self.roles.even_core),
            ("odd-LBA flash core", self.roles.odd_core),
            ("LBA-LSB split (code)", bool(self.firmware.lsb_dispatch_sections)),
            ("LBA-LSB split (PCs)", self.roles.split_by_lsb),
            ("map arrays", self.map.num_arrays),
            ("entry stride (B)", self.map.entry_bytes),
            ("array select", f"lba % {self.map.select_modulus}"),
            ("layout fits all probes", self.map.entries_fit),
            ("map measured (MiB)", round(self.map.measured_map_bytes / 2**20, 2)),
            ("map theoretical (MiB)",
             round(self.map.theoretical_map_bytes / 2**20, 2)),
            ("entry bits used", self.map.entry_bits_used),
            ("demand-loaded chunks", self.chunks.demand_loading),
            ("chunk coverage (MiB)",
             round((self.chunks.chunk_bytes_logical or 0) / 2**20, 2)),
            ("chunk eviction seen", self.chunks.eviction_observed),
            ("pSLC index found", self.pslc.found),
            ("pSLC index hashed", self.pslc.looks_hashed),
            ("hash fn (from code)",
             (f"(lba ^ (lba >> {self.firmware.hash_idioms[0].shift})) "
              f"% {self.firmware.hash_idioms[0].buckets}"
              if self.firmware.hash_idioms else None)),
            ("TCK cycles spent", self.tck_cycles),
        ]


def run_full_study(device, expected_idcode: int | None = None) -> JtagStudyReport:
    """End-to-end §3.2 reproduction against a :class:`HackableSSD`."""
    from repro.core.jtag.tap import TapController
    from repro.ssd.firmware.device import IDCODE

    tap = TapController(device, IDCODE)
    probe = JtagProbe(tap)
    debugger = Debugger(probe)
    idcode = debugger.check_connection(expected_idcode)

    firmware = analyze_update_file(device.firmware_update_file)
    arrays, others = candidate_map_bases(firmware)
    roles = attribute_core_roles(debugger, device)
    map_discovery = discover_translation_map(debugger, device, arrays)
    chunks = discover_chunk_loading(debugger, device, arrays,
                                    entry_bytes=map_discovery.entry_bytes)
    pslc = discover_pslc_index(debugger, device, others)
    return JtagStudyReport(
        idcode=idcode,
        firmware=firmware,
        roles=roles,
        map=map_discovery,
        chunks=chunks,
        pslc=pslc,
        tck_cycles=probe.tck_cycles,
    )
