"""Bit-banging layer: from GPIO wiggles to register transactions.

:class:`JtagProbe` drives a :class:`~repro.core.jtag.tap.TapController`
strictly through its ``clock(tms, tdi) -> tdo`` pin interface — every
memory word read over this probe really costs the TCK cycles a GPIO
bit-bang session would spend, which the stats expose (JTAG over pin
control is slow; dumping megabytes takes hours on real hardware).
"""

from __future__ import annotations

from repro.core.jtag.tap import DR_WIDTH, IR_BITS, Ir, TapController, TapState


class JtagProbe:
    """Memory/debug access over raw TAP clocking."""

    def __init__(self, tap: TapController) -> None:
        self.tap = tap

    # ------------------------------------------------------------------
    # TAP navigation
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Five TMS=1 clocks reach Test-Logic-Reset from any state."""
        for _ in range(5):
            self.tap.clock(1, 0)
        self.tap.clock(0, 0)  # settle in Run-Test/Idle

    def _to_shift_ir(self) -> None:
        # From Run-Test/Idle: 1,1,0,0 -> Shift-IR.
        for tms in (1, 1, 0, 0):
            self.tap.clock(tms, 0)

    def _to_shift_dr(self) -> None:
        # From Run-Test/Idle: 1,0,0 -> Shift-DR.
        for tms in (1, 0, 0):
            self.tap.clock(tms, 0)

    def _shift(self, value: int, bits: int) -> int:
        """Shift *bits* of *value* LSB-first; last bit exits Shift state."""
        out = 0
        for i in range(bits):
            tms = 1 if i == bits - 1 else 0
            tdo = self.tap.clock(tms, (value >> i) & 1)
            out |= (tdo & 1) << i
        # Exit1 -> Update -> Run-Test/Idle.
        self.tap.clock(1, 0)
        self.tap.clock(0, 0)
        return out

    def write_ir(self, ir: Ir) -> None:
        self._to_shift_ir()
        self._shift(int(ir), IR_BITS)

    def scan_dr(self, ir: Ir, value: int = 0) -> int:
        """One DR scan under *ir*; returns the captured value."""
        self.write_ir(ir)
        self._to_shift_dr()
        return self._shift(value, DR_WIDTH[ir])

    # ------------------------------------------------------------------
    # Debug-port operations
    # ------------------------------------------------------------------

    def idcode(self) -> int:
        return self.scan_dr(Ir.IDCODE)

    def set_address(self, addr: int) -> None:
        self.scan_dr(Ir.ADDR, addr & 0xFFFFFFFF)

    def read_word(self, addr: int) -> int:
        self.set_address(addr)
        return self.scan_dr(Ir.DATA_RD)

    def write_word(self, addr: int, value: int) -> None:
        self.set_address(addr)
        self.scan_dr(Ir.DATA_WR, value & 0xFFFFFFFF)

    def read_block(self, addr: int, nwords: int) -> list[int]:
        """Sequential dump: ADDR once, then DATA_RD scans auto-increment."""
        self.set_address(addr)
        self.write_ir(Ir.DATA_RD)
        out = []
        for _ in range(nwords):
            self._to_shift_dr()
            out.append(self._shift(0, DR_WIDTH[Ir.DATA_RD]))
        return out

    def read_bytes(self, addr: int, length: int) -> bytes:
        """Byte-granularity convenience over word dumps."""
        if length <= 0:
            return b""
        first = addr & ~0x3
        nwords = (addr + length - first + 3) // 4
        words = self.read_block(first, nwords)
        blob = b"".join(w.to_bytes(4, "little") for w in words)
        start = addr - first
        return blob[start : start + length]

    def select_core(self, core: int) -> None:
        self.scan_dr(Ir.CORESEL, core)

    def sample_pc(self, core: int) -> int:
        self.select_core(core)
        return self.scan_dr(Ir.PCSAMPLE)

    def halt(self, core: int) -> None:
        self.select_core(core)
        self.scan_dr(Ir.CTRL, 0b01)

    def resume(self, core: int) -> None:
        self.select_core(core)
        self.scan_dr(Ir.CTRL, 0b10)

    def is_halted(self, core: int) -> bool:
        self.select_core(core)
        return bool(self.scan_dr(Ir.CTRL) & 1)

    @property
    def tck_cycles(self) -> int:
        return self.tap.stats.tck_cycles
