"""IEEE 1149.1 TAP controller, bit-banged like Linux pinctrl would.

The paper drove the 840 EVO's JTAG pins from a Novena's GPIOs through
the kernel's pin-control subsystem.  This module is the corresponding
substrate: a faithful 16-state TAP state machine clocked one
``(TMS, TDI)`` pair at a time, returning TDO each cycle.

The debug logic behind the TAP implements a small instruction set
(IDCODE plus a memory/debug access port) over a
:class:`~repro.ssd.firmware.device.HackableSSD`'s debug surface —
the moral equivalent of an ARM DAP.

Instruction register (4 bits):

======  =========  ====================================================
0xE     IDCODE     DR = 32-bit identification code
0x8     ADDR       DR = 32-bit address register (read/write)
0x9     DATA_RD    capture: DR = mem[addr]; update: addr += 4
0xA     DATA_WR    update: mem[addr] = DR; addr += 4
0xB     CORESEL    DR = 8-bit core select
0xC     PCSAMPLE   capture: DR = selected core's PC
0xD     CTRL       update: bit0 halt / bit1 resume selected core
0xF     BYPASS     1-bit bypass register
======  =========  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TapState(enum.Enum):
    TEST_LOGIC_RESET = "test-logic-reset"
    RUN_TEST_IDLE = "run-test-idle"
    SELECT_DR = "select-dr-scan"
    CAPTURE_DR = "capture-dr"
    SHIFT_DR = "shift-dr"
    EXIT1_DR = "exit1-dr"
    PAUSE_DR = "pause-dr"
    EXIT2_DR = "exit2-dr"
    UPDATE_DR = "update-dr"
    SELECT_IR = "select-ir-scan"
    CAPTURE_IR = "capture-ir"
    SHIFT_IR = "shift-ir"
    EXIT1_IR = "exit1-ir"
    PAUSE_IR = "pause-ir"
    EXIT2_IR = "exit2-ir"
    UPDATE_IR = "update-ir"


S = TapState
#: state transition table: state -> (next if TMS=0, next if TMS=1).
TRANSITIONS: dict[TapState, tuple[TapState, TapState]] = {
    S.TEST_LOGIC_RESET: (S.RUN_TEST_IDLE, S.TEST_LOGIC_RESET),
    S.RUN_TEST_IDLE: (S.RUN_TEST_IDLE, S.SELECT_DR),
    S.SELECT_DR: (S.CAPTURE_DR, S.SELECT_IR),
    S.CAPTURE_DR: (S.SHIFT_DR, S.EXIT1_DR),
    S.SHIFT_DR: (S.SHIFT_DR, S.EXIT1_DR),
    S.EXIT1_DR: (S.PAUSE_DR, S.UPDATE_DR),
    S.PAUSE_DR: (S.PAUSE_DR, S.EXIT2_DR),
    S.EXIT2_DR: (S.SHIFT_DR, S.UPDATE_DR),
    S.UPDATE_DR: (S.RUN_TEST_IDLE, S.SELECT_DR),
    S.SELECT_IR: (S.CAPTURE_IR, S.TEST_LOGIC_RESET),
    S.CAPTURE_IR: (S.SHIFT_IR, S.EXIT1_IR),
    S.SHIFT_IR: (S.SHIFT_IR, S.EXIT1_IR),
    S.EXIT1_IR: (S.PAUSE_IR, S.UPDATE_IR),
    S.PAUSE_IR: (S.PAUSE_IR, S.EXIT2_IR),
    S.EXIT2_IR: (S.SHIFT_IR, S.UPDATE_IR),
    S.UPDATE_IR: (S.RUN_TEST_IDLE, S.SELECT_DR),
}


class Ir(enum.IntEnum):
    ADDR = 0x8
    DATA_RD = 0x9
    DATA_WR = 0xA
    CORESEL = 0xB
    PCSAMPLE = 0xC
    CTRL = 0xD
    IDCODE = 0xE
    BYPASS = 0xF


IR_BITS = 4

#: DR width per instruction.
DR_WIDTH = {
    Ir.ADDR: 32,
    Ir.DATA_RD: 32,
    Ir.DATA_WR: 32,
    Ir.CORESEL: 8,
    Ir.PCSAMPLE: 32,
    Ir.CTRL: 8,
    Ir.IDCODE: 32,
    Ir.BYPASS: 1,
}


@dataclass
class TapStats:
    """Bit-banging effort (real sessions care: GPIO JTAG is slow)."""

    tck_cycles: int = 0
    resets: int = 0


class TapController:
    """The TAP plus its debug-logic registers."""

    def __init__(self, device, idcode: int) -> None:
        self.device = device
        self.idcode = idcode
        self.state = TapState.TEST_LOGIC_RESET
        self.ir = int(Ir.IDCODE)  # 1149.1: IDCODE (or BYPASS) after reset
        self._ir_shift = 0
        self._dr_shift = 0
        self._dr_width = DR_WIDTH[Ir.IDCODE]
        self.addr = 0
        self.core_sel = 0
        self.stats = TapStats()

    # ------------------------------------------------------------------

    def clock(self, tms: int, tdi: int) -> int:
        """One TCK rising edge; returns TDO sampled before the edge."""
        self.stats.tck_cycles += 1
        tdo = self._tdo()
        state = self.state
        if state is TapState.SHIFT_IR:
            self._ir_shift = (self._ir_shift >> 1) | ((tdi & 1) << (IR_BITS - 1))
        elif state is TapState.SHIFT_DR:
            self._dr_shift = (
                (self._dr_shift >> 1) | ((tdi & 1) << (self._dr_width - 1))
            )
        next_state = TRANSITIONS[state][tms & 1]
        self._on_enter(next_state)
        self.state = next_state
        return tdo

    def _tdo(self) -> int:
        if self.state is TapState.SHIFT_IR:
            return self._ir_shift & 1
        if self.state is TapState.SHIFT_DR:
            return self._dr_shift & 1
        return 0

    # ------------------------------------------------------------------

    def _current_ir(self) -> Ir:
        try:
            return Ir(self.ir)
        except ValueError:
            return Ir.BYPASS

    def _on_enter(self, state: TapState) -> None:
        if state is TapState.TEST_LOGIC_RESET:
            self.ir = int(Ir.IDCODE)
            self.stats.resets += 1
            return
        if state is TapState.CAPTURE_IR:
            self._ir_shift = 0b0001  # 1149.1 mandates lsb=1 in IR capture
            return
        if state is TapState.UPDATE_IR:
            self.ir = self._ir_shift & ((1 << IR_BITS) - 1)
            return
        if state is TapState.CAPTURE_DR:
            self._capture_dr()
            return
        if state is TapState.UPDATE_DR:
            self._update_dr()

    def _capture_dr(self) -> None:
        ir = self._current_ir()
        self._dr_width = DR_WIDTH[ir]
        if ir is Ir.IDCODE:
            self._dr_shift = self.idcode
        elif ir is Ir.ADDR:
            self._dr_shift = self.addr
        elif ir is Ir.DATA_RD:
            self._dr_shift = self.device.read_word(self.addr)
        elif ir is Ir.CORESEL:
            self._dr_shift = self.core_sel
        elif ir is Ir.PCSAMPLE:
            self._dr_shift = self.device.core_pc(self.core_sel)
        elif ir is Ir.CTRL:
            self._dr_shift = 1 if self.device.is_halted(self.core_sel) else 0
        else:  # BYPASS / DATA_WR
            self._dr_shift = 0

    def _update_dr(self) -> None:
        ir = self._current_ir()
        value = self._dr_shift
        if ir is Ir.ADDR:
            self.addr = value & 0xFFFFFFFF
        elif ir is Ir.DATA_RD:
            self.addr = (self.addr + 4) & 0xFFFFFFFF  # post-increment reads
        elif ir is Ir.DATA_WR:
            self.device.write_word(self.addr, value)
            self.addr = (self.addr + 4) & 0xFFFFFFFF
        elif ir is Ir.CORESEL:
            self.core_sel = value & 0xFF
        elif ir is Ir.CTRL:
            if value & 0b01:
                self.device.halt_core(self.core_sel)
            if value & 0b10:
                self.device.resume_core(self.core_sel)
