"""JTAG-based SSD hacking (paper §3.2)."""

from repro.core.jtag.dap import JtagProbe
from repro.core.jtag.debugger import Debugger, PcProfile
from repro.core.jtag.discovery import (
    ChunkDiscovery,
    CoreRoles,
    FirmwareAnalysis,
    JtagStudyReport,
    MapDiscovery,
    PslcIndexDiscovery,
    analyze_update_file,
    attribute_core_roles,
    candidate_map_bases,
    discover_chunk_loading,
    discover_pslc_index,
    discover_translation_map,
    run_full_study,
)
from repro.core.jtag.tap import Ir, TapController, TapState

__all__ = [
    "TapController", "TapState", "Ir",
    "JtagProbe", "Debugger", "PcProfile",
    "analyze_update_file", "attribute_core_roles", "candidate_map_bases",
    "discover_translation_map", "discover_chunk_loading",
    "discover_pslc_index", "run_full_study",
    "FirmwareAnalysis", "CoreRoles", "MapDiscovery", "ChunkDiscovery",
    "PslcIndexDiscovery", "JtagStudyReport",
]
