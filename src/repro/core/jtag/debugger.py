"""An OpenOCD-flavoured debug session over the JTAG probe.

Provides the operations the paper's study actually used: verifying the
part answers (IDCODE), dumping memory regions, sampling per-core program
counters while a workload runs, and halting/resuming cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.jtag.dap import JtagProbe


@dataclass
class PcProfile:
    """PC samples per core, collected while a stimulus ran."""

    samples: dict[int, list[int]] = field(default_factory=dict)

    def add(self, core: int, pc: int) -> None:
        self.samples.setdefault(core, []).append(pc)

    def hot_range(self, core: int) -> tuple[int, int] | None:
        """The address span this core spent its time in."""
        values = self.samples.get(core)
        if not values:
            return None
        return min(values), max(values)

    def activity_fraction(self, core: int, idle_pcs: set[int]) -> float:
        """Fraction of samples outside known idle addresses."""
        values = self.samples.get(core)
        if not values:
            return 0.0
        busy = sum(1 for pc in values if pc not in idle_pcs)
        return busy / len(values)


class Debugger:
    """High-level debug workflows (the `openocd` + `telnet 4444` role)."""

    def __init__(self, probe: JtagProbe) -> None:
        self.probe = probe

    # ------------------------------------------------------------------

    def check_connection(self, expected_idcode: int | None = None) -> int:
        """Read and (optionally) verify the IDCODE."""
        self.probe.reset()
        idcode = self.probe.idcode()
        if expected_idcode is not None and idcode != expected_idcode:
            raise ConnectionError(
                f"IDCODE mismatch: got 0x{idcode:08x}, "
                f"expected 0x{expected_idcode:08x}"
            )
        return idcode

    def dump(self, addr: int, length: int) -> bytes:
        """`dump_image`-style memory dump."""
        return self.probe.read_bytes(addr, length)

    def mdw(self, addr: int, count: int = 1) -> list[int]:
        """`mdw`-style word display."""
        return self.probe.read_block(addr, count)

    def halt(self, core: int) -> None:
        self.probe.halt(core)

    def resume(self, core: int) -> None:
        self.probe.resume(core)

    # ------------------------------------------------------------------
    # Dynamic analysis
    # ------------------------------------------------------------------

    def profile_pcs(
        self,
        stimulus: Callable[[int], None],
        iterations: int,
        cores: tuple[int, ...] = (0, 1, 2),
    ) -> PcProfile:
        """Drive *stimulus* and sample every core's PC after each step.

        ``stimulus(i)`` issues the i-th host request; this is the
        "carefully tracing single-sector accesses" loop from §3.2.
        """
        profile = PcProfile()
        for i in range(iterations):
            stimulus(i)
            for core in cores:
                profile.add(core, self.probe.sample_pc(core))
        return profile

    def snapshot_region(self, addr: int, length: int) -> np.ndarray:
        """Region contents as a uint8 array, for memory diffing."""
        return np.frombuffer(self.dump(addr, length), dtype=np.uint8).copy()

    def diff_region(
        self,
        addr: int,
        length: int,
        mutate: Callable[[], None],
    ) -> list[int]:
        """Snapshot, run *mutate*, snapshot again; return changed offsets."""
        before = self.snapshot_region(addr, length)
        mutate()
        after = self.snapshot_region(addr, length)
        return [int(i) for i in np.nonzero(before != after)[0]]

    def find_strings(self, addr: int, length: int, min_len: int = 6) -> list[str]:
        """ASCII strings in a memory region (`strings(1)` over JTAG)."""
        blob = self.dump(addr, length)
        out = []
        current = bytearray()
        for byte in blob:
            if 0x20 <= byte < 0x7F:
                current.append(byte)
            else:
                if len(current) >= min_len:
                    out.append(current.decode())
                current = bytearray()
        if len(current) >= min_len:
            out.append(current.decode())
        return out
