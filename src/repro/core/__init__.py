"""The transparency toolkit: probe, JTAG, black-box, and modeling studies."""
