"""Fig 4a: estimating the NAND page size from SMART counters.

The MX500 reports NAND-page program counts; the paper runs "a simple,
sequential write test of increasing sizes" and divides host bytes by the
page-count delta.  The ratio converges at ~30 KB per NAND page — the
signature of a 32 KB page with 15+1 RAIN parity (32 KB * 15/16 = 30 KB).

The estimator here performs that exact protocol against any
:class:`~repro.ssd.host.HostDevice` using only its host interface and
SMART surface — the probe is device-mode agnostic by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ssd.host import HostDevice


@dataclass(frozen=True)
class SweepPoint:
    """One x/y point of the Fig 4a curve."""

    write_bytes: int
    nand_pages: int
    bytes_per_page: float


@dataclass
class NandPageEstimate:
    points: list[SweepPoint]

    @property
    def converged_bytes_per_page(self) -> float:
        """The asymptote: mean of the last few sweep points."""
        if not self.points:
            return 0.0
        tail = self.points[-3:]
        return sum(p.bytes_per_page for p in tail) / len(tail)


def sequential_write_sweep(
    device: HostDevice,
    sizes_bytes: list[int] | None = None,
    start_lba: int = 0,
) -> NandPageEstimate:
    """Run the Fig 4a protocol: sequential writes of increasing total
    size, measuring host-bytes per NAND page from SMART deltas."""
    sector = device.sector_size
    if sizes_bytes is None:
        sizes_bytes = [sector * (1 << i) for i in range(1, 11)]
    points: list[SweepPoint] = []
    lba = start_lba
    for size in sizes_bytes:
        sectors = max(1, size // sector)
        if lba + sectors > device.num_sectors:
            lba = start_lba
        before = device.smart_snapshot()
        device.write_sectors(lba, sectors)
        device.flush()
        delta = device.smart.delta(before)
        pages = delta.total_program_pages
        lba += sectors
        points.append(SweepPoint(
            write_bytes=sectors * sector,
            nand_pages=pages,
            bytes_per_page=(sectors * sector / pages) if pages else 0.0,
        ))
    return NandPageEstimate(points)
