"""Fig 4b: the black-box WAF extrapolation experiment.

The paper's protocol on the MX500:

1. prime the drive;
2. run three random-write workloads *separately*, each in a private
   slice of the LBA space (4 KB uniform, 4 KB 80/20, 16 KB uniform),
   measuring each run's WAF = FTL pages / host pages from SMART deltas;
3. predict the concurrent run's WAF as the IOPS-weighted average of the
   separate WAFs ("based on the assumption that FTL metadata write
   operations are similar for each type of request, regardless of any
   concurrent operations");
4. run all three *concurrently* and measure the actual WAF.

The paper measures 0.9 against a 0.56 prediction — black-box
extrapolation off by nearly 2×.  This module reproduces the protocol
verbatim against any device factory, so the experiment runs on matched
fresh devices (as remounting/priming the real drive resets comparable
state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exp.cell import Cell
from repro.exp.runner import Runner, run_cells
from repro.ssd.config import SsdConfig
from repro.ssd.host import HostDevice
from repro.workloads.engine import run_counter
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


@dataclass
class WorkloadWaf:
    """One workload's separate-run measurement."""

    name: str
    waf: float
    requests: int
    host_pages: int
    ftl_pages: int


@dataclass
class WafStudy:
    """The full Fig 4b result."""

    separate: list[WorkloadWaf]
    expected_mixed_waf: float
    measured_mixed_waf: float

    @property
    def extrapolation_error(self) -> float:
        """measured / expected — the paper's ~1.6x headline."""
        if self.expected_mixed_waf == 0:
            return 0.0
        return self.measured_mixed_waf / self.expected_mixed_waf


def default_jobs(num_sectors: int, io_count: int = 24_000) -> list[JobSpec]:
    """The paper's three workloads over private thirds of the LBA space."""
    third = num_sectors // 3
    return [
        JobSpec("4k-uniform", "randwrite", Region(0, third),
                bs_sectors=1, io_count=io_count, seed=11),
        JobSpec("4k-8020", "randwrite", Region(third, third),
                bs_sectors=1, io_count=io_count, seed=22,
                pattern="hotcold",
                pattern_kwargs={"space_fraction": 0.2, "traffic_fraction": 0.8}),
        JobSpec("16k-uniform", "randwrite", Region(2 * third, third),
                bs_sectors=4, io_count=io_count // 4, seed=33),
    ]


def prime(device: HostDevice, fraction: float = 0.6, seed: int = 5) -> None:
    """Put the drive in its 'priming stage': sequentially fill a portion
    of the LBA space so the FTL has mapped state but little GC debt."""
    import numpy as np
    sectors = int(device.num_sectors * fraction)
    step = 8
    for lba in range(0, sectors, step):
        device.write_sectors(lba, min(step, sectors - lba))
    device.flush()


@dataclass(frozen=True)
class WafCellSpec:
    """One run of the Fig 4b protocol: prime a fresh device, then run
    the given jobs concurrently and report the SMART WAF delta.  A
    single job models a 'separate' run; the full tuple is the mixed
    run.  Every run is independent (its own fresh device), which is
    what lets the runner execute all four concurrently."""

    config: SsdConfig
    jobs: tuple[JobSpec, ...]
    prime_fraction: float


def measure_waf_cell(spec: WafCellSpec, seed: int = 0) -> WorkloadWaf:
    from repro.ssd.device import SimulatedSSD

    device = SimulatedSSD(spec.config)
    prime(device, spec.prime_fraction)
    before = device.smart_snapshot()
    run_counter(device, list(spec.jobs))
    delta = device.smart.delta(before)
    return WorkloadWaf(
        name="+".join(job.name for job in spec.jobs),
        waf=delta.waf(),
        requests=sum(job.io_count for job in spec.jobs),
        host_pages=delta.host_program_pages,
        ftl_pages=delta.ftl_program_pages,
    )


def run_waf_study(
    device_factory: Callable[[], HostDevice] | None = None,
    jobs: list[JobSpec] | None = None,
    io_count: int = 24_000,
    prime_fraction: float = 0.6,
    config: SsdConfig | None = None,
    runner: Runner | None = None,
) -> WafStudy:
    """Execute the full separate-then-mixed protocol.

    Two entry modes:

    * ``device_factory`` builds one fresh device per run so every run
      starts from an identically-primed drive (legacy serial path —
      closures cannot cross process boundaries);
    * ``config`` describes a :class:`~repro.ssd.device.SimulatedSSD`
      per run, making each of the four runs (three separate + mixed) a
      picklable :class:`~repro.exp.cell.Cell` that *runner* can fan
      out.  Both paths produce identical numbers.
    """
    if (device_factory is None) == (config is None):
        raise ValueError("pass exactly one of device_factory or config")

    if config is not None:
        if jobs is None:
            jobs = default_jobs(config.logical_sectors, io_count)
        specs = [WafCellSpec(config, (job,), prime_fraction) for job in jobs]
        specs.append(WafCellSpec(config, tuple(jobs), prime_fraction))
        cells = [Cell(measure_waf_cell, spec, label=f"waf:{'+'.join(j.name for j in spec.jobs)}")
                 for spec in specs]
        results = run_cells(cells, runner)
        separate = results[:-1]
        measured = results[-1].waf
    else:
        probe_device = device_factory()
        if jobs is None:
            jobs = default_jobs(probe_device.num_sectors, io_count)

        separate = []
        for job in jobs:
            device = device_factory()
            prime(device, prime_fraction)
            before = device.smart_snapshot()
            run_counter(device, [job])
            delta = device.smart.delta(before)
            separate.append(WorkloadWaf(
                name=job.name,
                waf=delta.waf(),
                requests=job.io_count,
                host_pages=delta.host_program_pages,
                ftl_pages=delta.ftl_program_pages,
            ))

        mixed_device = device_factory()
        prime(mixed_device, prime_fraction)
        before = mixed_device.smart_snapshot()
        run_counter(mixed_device, jobs)
        measured = mixed_device.smart.delta(before).waf()

    # The paper's prediction: weight each workload's WAF by its IOPS
    # share.  In the interleaved mixed run each job issues its io_count
    # requests over the same wall-clock, so IOPS weights = request
    # weights.
    total_requests = sum(w.requests for w in separate)
    expected = sum(w.waf * w.requests for w in separate) / total_requests

    return WafStudy(
        separate=separate,
        expected_mixed_waf=expected,
        measured_mixed_waf=measured,
    )
