"""Black-box SMART-statistics analysis (paper §2.2)."""

from repro.core.blackbox.nand_page import (
    NandPageEstimate,
    SweepPoint,
    sequential_write_sweep,
)
from repro.core.blackbox.waf import (
    WafStudy,
    WorkloadWaf,
    default_jobs,
    prime,
    run_waf_study,
)

__all__ = [
    "sequential_write_sweep", "NandPageEstimate", "SweepPoint",
    "run_waf_study", "WafStudy", "WorkloadWaf", "default_jobs", "prime",
]

from repro.core.blackbox.ssdcheck import (  # noqa: E402
    detect_checkpoint_interval,
    detect_fast_buffer,
    detect_write_buffer,
)

__all__ += [
    "detect_write_buffer",
    "detect_checkpoint_interval",
    "detect_fast_buffer",
]
