"""SSDCheck-style feature extraction from latency signatures.

The paper's related work credits SSDCheck (MICRO '18) with extracting
"some basic SSD features, such as write buffer size and number of
internal volumes, using carefully manipulated access patterns" — pure
black-box probing via latency.  This module implements that family of
probes against the timed simulator:

* :func:`detect_write_buffer` — a write burst from idle completes at
  controller speed until the RAM buffer fills; the first admission stall
  marks its capacity.
* :func:`detect_checkpoint_interval` — mapping-metadata checkpoints
  steal device time periodically; the modal gap between latency spikes
  under a steady write stream recovers the interval.
* :func:`detect_fast_buffer` — drives with a pSLC landing area show a
  two-regime write latency profile; the change point sizes the buffer.

Each probe returns both the estimate and its raw evidence so callers can
judge confidence — the paper's point being that this is the hard way to
learn things a vendor could simply document.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ssd.timed import TimedSSD


@dataclass
class BufferProbe:
    """Result of the write-buffer probe."""

    estimated_sectors: int | None
    latencies_us: np.ndarray

    @property
    def found(self) -> bool:
        return self.estimated_sectors is not None


def detect_write_buffer(device: TimedSSD, max_burst: int = 4096,
                        start_lba: int = 0) -> BufferProbe:
    """Burst-write single sectors from idle; the first stall (latency
    far above the controller overhead) marks the RAM buffer capacity."""
    device.quiesce()
    overhead_us = device.controller_overhead_ns / 1000
    latencies = []
    for i in range(max_burst):
        lba = (start_lba + i) % device.num_sectors
        request = device.submit("write", lba, 1, at_ns=device.now)
        latencies.append(request.latency_us)
        if request.latency_us > overhead_us * 4:
            return BufferProbe(i, np.asarray(latencies))
    return BufferProbe(None, np.asarray(latencies))


@dataclass
class PeriodicityProbe:
    """Result of the checkpoint-interval probe."""

    estimated_interval: int | None
    spike_positions: list[int]
    latencies_us: np.ndarray

    @property
    def found(self) -> bool:
        return self.estimated_interval is not None


def detect_checkpoint_interval(
    device: TimedSSD,
    writes: int = 20_000,
    spike_factor: float = 4.0,
    seed: int = 13,
    pacing: float = 1.5,
) -> PeriodicityProbe:
    """Paced random writes; periodic latency spikes betray metadata
    checkpoints.  The estimate is the modal spacing between spikes.

    The stream is throttled to ``pacing`` times the device's sustained
    per-write service time (calibrated with a short closed-loop burst),
    so steady-state admission stalls disappear and only genuine
    background bursts (checkpoints) surface as spikes.
    """
    rng = np.random.default_rng(seed)
    device.quiesce()
    # Calibrate the sustained service rate: issue a burst, then wait for
    # the device to drain it completely (admission completions alone
    # under-estimate the true flash-limited rate).
    calibration = 512
    t0 = device.now
    for _ in range(calibration):
        lba = int(rng.integers(device.num_sectors))
        device.submit("write", lba, 1, at_ns=device.now)
    drained = device.quiesce()
    gap_ns = max(1, int((drained - t0) / calibration * pacing))
    # Empty the write cache so the paced phase starts with headroom
    # (otherwise every admission rides the capacity edge).
    device.flush()
    device.quiesce()

    latencies = np.empty(writes)
    when = device.now
    for i in range(writes):
        lba = int(rng.integers(device.num_sectors))
        request = device.submit("write", lba, 1, at_ns=when)
        latencies[i] = request.latency_us
        when = max(when + gap_ns, device.now)
    # A checkpoint dumps a burst of translation-page programs, and the
    # very first write stalled behind the whole burst is the episode's
    # dominant spike; the decaying wave behind it is collapsed by run
    # grouping.  Keying on the dominant spikes separates checkpoints
    # from routine single-program stalls.
    baseline = np.median(latencies)
    floor = max(float(latencies.max()) * 0.7,
                baseline * spike_factor,
                device.controller_overhead_ns / 1000 * 2)
    spikes = np.nonzero(latencies >= floor)[0]
    if len(spikes) < 3:
        return PeriodicityProbe(None, [int(s) for s in spikes], latencies)
    # Collapse adjacent spikes into runs, then group the runs into
    # episodes: one checkpoint produces a *cluster* of stall waves while
    # the die backlog drains, beating at the cache-refill period.  The
    # checkpoint interval is the spacing between cluster heads.
    starts = [int(spikes[0])]
    for s in spikes[1:]:
        if int(s) - starts[-1] > 16:
            starts.append(int(s))
    if len(starts) < 3:
        return PeriodicityProbe(None, starts, latencies)
    gaps = np.diff(starts)
    intra = float(np.median(gaps))
    heads = [starts[0]] + [
        starts[i + 1] for i, gap in enumerate(gaps) if gap > 2 * intra
    ]
    if len(heads) >= 3:
        estimate = int(np.median(np.diff(heads)))
    else:
        estimate = int(intra)
    return PeriodicityProbe(estimate, heads, latencies)


@dataclass
class FastBufferProbe:
    """Result of the pSLC landing-area probe."""

    estimated_sectors: int | None
    change_point: int | None
    early_mean_us: float
    late_mean_us: float

    @property
    def found(self) -> bool:
        return self.estimated_sectors is not None


def detect_fast_buffer(device: TimedSSD, max_sectors: int = 8192,
                       window: int = 64) -> FastBufferProbe:
    """Sustained sequential writes; a fast landing buffer produces a
    cheap first regime, then sustained speed once drains begin.

    Detects the change point in windowed mean *completion spacing* (the
    drain-limited admission rate), which is steadier than per-request
    latency.
    """
    device.quiesce()
    count = min(max_sectors, device.num_sectors)
    completes = np.empty(count)
    for lba in range(count):
        request = device.submit("write", lba, 1, at_ns=device.now)
        completes[lba] = request.complete_ns
    spacing = np.diff(completes)
    if len(spacing) < 4 * window:
        return FastBufferProbe(None, None, 0.0, 0.0)
    smooth = np.convolve(spacing, np.ones(window) / window, mode="valid")
    early = float(smooth[:window].mean())
    late = float(smooth[-window:].mean())
    if late < early * 1.5:
        return FastBufferProbe(None, None, early / 1000, late / 1000)
    # Two-segment change-point fit: the split minimizing total squared
    # error locates the regime boundary far more robustly than a
    # threshold crossing.
    prefix = np.concatenate([[0.0], np.cumsum(smooth)])
    prefix_sq = np.concatenate([[0.0], np.cumsum(smooth ** 2)])
    n = len(smooth)
    best_split, best_sse = None, np.inf
    for split in range(window, n - window):
        left_n, right_n = split, n - split
        left_sum = prefix[split]
        right_sum = prefix[n] - left_sum
        sse = (
            (prefix_sq[split] - left_sum ** 2 / left_n)
            + (prefix_sq[n] - prefix_sq[split] - right_sum ** 2 / right_n)
        )
        if sse < best_sse:
            best_sse, best_split = sse, split
    change = best_split + window // 2 if best_split is not None else None
    return FastBufferProbe(change, change, early / 1000, late / 1000)
