"""Analytic write-amplification models, and where they hold.

The paper's §2.1 argues SSD *models* are low fidelity.  The nuance its
citations carry (Desnoyers SYSTOR '12, Hu et al. SYSTOR '09, Van Houdt
SIGMETRICS '13) is that *average* write amplification under uniform
random traffic is actually well understood analytically — it is the
tails, the background machinery, and the proprietary features that
models miss.  This module implements the two classic closed-form /
fixed-point results so the repository can show both sides:

* **random victim selection** — the victim's expected valid fraction
  equals the overall hot utilization ``u``, giving exactly
  ``WA = 1 / (1 - u)``;
* **greedy victim selection** — under uniform random writes the victim's
  steady-state valid fraction ``v`` solves the log-structured-array
  fixed point ``(v - 1) / ln(v) = u`` (Menon's LSA analysis, reused by
  Desnoyers), giving ``WA = 1 / (1 - v)`` — strictly better than random.

``measure_steady_waf`` extracts the comparable quantity from the
simulator (GC programs per host program in a post-warm-up window), and
the validation bench sweeps over-provisioning against both predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import Geometry
from repro.ssd.config import SsdConfig
from repro.ssd.device import SimulatedSSD


def waf_random_gc(utilization: float) -> float:
    """Exact steady-state WA for random victim selection under uniform
    random writes: victims look like average blocks."""
    _check_u(utilization)
    return 1.0 / (1.0 - utilization)


def greedy_victim_valid_fraction(utilization: float, tol: float = 1e-12) -> float:
    """Solve ``(v - 1)/ln(v) = u`` for the greedy victim's valid
    fraction ``v`` (bisection; the left side is monotone on (0, 1))."""
    _check_u(utilization)
    if utilization == 0.0:
        return 0.0

    def lhs(v: float) -> float:
        return (v - 1.0) / np.log(v)

    lo, hi = 1e-15, 1.0 - 1e-15
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if lhs(mid) < utilization:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol:
            break
    return (lo + hi) / 2.0


def waf_greedy_gc(utilization: float) -> float:
    """Steady-state WA for greedy victim selection (LSA fixed point)."""
    v = greedy_victim_valid_fraction(utilization)
    return 1.0 / (1.0 - v)


def _check_u(utilization: float) -> None:
    if not 0.0 <= utilization < 1.0:
        raise ValueError("utilization must be in [0, 1)")


@dataclass
class SteadyWafMeasurement:
    """GC write amplification measured in a steady-state window."""

    utilization: float
    waf_gc: float  # 1 + gc programs / host programs
    gc_programs: int
    host_programs: int


#: a block-rich geometry so active/watermark block reserves are a small
#: correction (the analytic models assume none).
_MODEL_GEOMETRY = Geometry(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=64,
    pages_per_block=32,
    page_size=8192,
    sector_size=4096,
)


def measure_steady_waf(
    op_ratio: float,
    gc_policy: str = "greedy",
    warmup_multiple: float = 3.0,
    measure_writes: int = 20_000,
    seed: int = 21,
) -> SteadyWafMeasurement:
    """Simulate uniform random overwrites to steady state and measure
    the GC-only write amplification, comparable to the analytic models.

    Metadata traffic is configured away and the reported utilization is
    the *effective* one — logical sectors over the capacity the FTL can
    actually circulate (excluding open blocks and the GC reserve), since
    the analytic models assume no such overheads.
    """
    config = SsdConfig(
        geometry=_MODEL_GEOMETRY,
        op_ratio=op_ratio,
        gc_policy=gc_policy,
        gc_low_water_blocks=1,
        gc_high_water_blocks=2,
        # The analytic models assume pure data traffic.
        mapping_sync_interval=10**9,
        mapping_dirty_tp_limit=10**6,
        cache_sectors=8,
    )
    device = SimulatedSSD(config)
    rng = np.random.default_rng(seed)
    geometry = config.geometry
    capacity = geometry.total_pages * geometry.sectors_per_page
    for _ in range(int(capacity * warmup_multiple)):
        device.write_sectors(int(rng.integers(device.num_sectors)), 1)
    before = device.smart_snapshot()
    for _ in range(measure_writes):
        device.write_sectors(int(rng.integers(device.num_sectors)), 1)
    delta = device.smart.delta(before)
    host = max(1, delta.host_program_pages)
    waf = 1.0 + (delta.gc_program_pages / host)
    # Effective circulating capacity: total minus open blocks and the
    # per-plane GC reserve.
    reserved_blocks = geometry.planes_total * (
        config.gc_high_water_blocks + len(("host", "gc", "meta"))
    )
    sectors_per_block = geometry.pages_per_block * geometry.sectors_per_page
    effective_capacity = capacity - reserved_blocks * sectors_per_block
    utilization = device.ftl.num_lpns / effective_capacity
    return SteadyWafMeasurement(
        utilization=utilization,
        waf_gc=waf,
        gc_programs=delta.gc_program_pages,
        host_programs=delta.host_program_pages,
    )
