"""Full design-grid sweep over the pluggable FTL policies.

The Fig 3 experiment flips one knob at a time; the registry makes the
*cross product* cheap to express.  This module sweeps GC victim policy
× cache designation × allocation policy — roughly 3× the paper's
original design space once the d-choices, CAT, and hot/cold policies
are included — through the same cell machinery as the fidelity study,
so grids run through the parallel :class:`~repro.exp.runner.Runner`
and land in the content-addressed result cache.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.modeling.fidelity import (
    FidelityStudy,
    FtlVariant,
    run_fidelity_study,
)
from repro.exp.runner import Runner
from repro.ssd.config import SsdConfig

#: default grid axes: the paper's original knob values plus the
#: registry-era additions (d_choices, cat victim policies; hotcold
#: stream-separating allocation).
GRID_GC_POLICIES = ("greedy", "randomized_greedy", "cost_benefit",
                    "d_choices", "cat")
GRID_CACHE_DESIGNATIONS = ("data", "mapping")
GRID_ALLOCATION_POLICIES = ("CWDP", "PDWC", "hotcold")


def variant_name(gc: str, cache: str, alloc: str) -> str:
    """Canonical grid-point name, e.g. ``gc=greedy+cache=data+alloc=CWDP``."""
    return f"gc={gc}+cache={cache}+alloc={alloc}"


def grid_variants(
    base: SsdConfig,
    gc_policies: tuple[str, ...] = GRID_GC_POLICIES,
    designations: tuple[str, ...] = GRID_CACHE_DESIGNATIONS,
    allocations: tuple[str, ...] = GRID_ALLOCATION_POLICIES,
) -> list[FtlVariant]:
    """Every combination of the three axes as an :class:`FtlVariant`.

    Constructing the variant validates each name through the registries,
    so a typo in an axis fails here with the valid choices listed.
    """
    return [
        FtlVariant(
            variant_name(gc, cache, alloc),
            base.with_changes(gc_policy=gc, cache_designation=cache,
                              allocation_scheme=alloc),
        )
        for gc in gc_policies
        for cache in designations
        for alloc in allocations
    ]


def run_policy_grid(
    base: SsdConfig,
    block_sizes_sectors: tuple[int, ...] = (1, 4),
    io_count: int = 2000,
    precondition_fraction: float = 0.75,
    tail_points: int = 40,
    gc_policies: tuple[str, ...] = GRID_GC_POLICIES,
    designations: tuple[str, ...] = GRID_CACHE_DESIGNATIONS,
    allocations: tuple[str, ...] = GRID_ALLOCATION_POLICIES,
    runner: Runner | None = None,
    trace_dir: str | Path | None = None,
) -> FidelityStudy:
    """Measure the full policy cross product at every request size.

    Each grid point is one cell: parallel runners fan the grid out and
    re-runs hit the result cache, exactly as for the fidelity study.
    """
    return run_fidelity_study(
        base,
        block_sizes_sectors=block_sizes_sectors,
        io_count=io_count,
        precondition_fraction=precondition_fraction,
        tail_points=tail_points,
        variants=grid_variants(base, gc_policies, designations, allocations),
        runner=runner,
        trace_dir=trace_dir,
        trace_prefix="policy_grid",
    )


def grid_rows(study: FidelityStudy) -> list[dict]:
    """Flatten a grid study into CSV-ready rows (one per point × size)."""
    rows = []
    for result in study.results:
        axes = dict(part.split("=", 1) for part in result.variant.split("+"))
        rows.append({
            "gc_policy": axes.get("gc", ""),
            "cache_designation": axes.get("cache", ""),
            "allocation": axes.get("alloc", ""),
            "bs_sectors": result.bs_sectors,
            "mean_us": result.summary.mean,
            "p50_us": result.summary.p50,
            "p99_us": result.summary.p99,
            "p999_us": result.summary.p999,
            "max_us": result.summary.max,
            "iops": result.iops,
        })
    return rows
