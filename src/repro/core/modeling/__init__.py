"""SSD model fidelity analysis (paper §2.1)."""

from repro.core.modeling.fidelity import (
    MQSIM_ERROR_MARGIN,
    FidelityStudy,
    FtlVariant,
    VariantResult,
    paper_variants,
    run_fidelity_study,
)

__all__ = [
    "run_fidelity_study", "FidelityStudy", "FtlVariant", "VariantResult",
    "paper_variants", "MQSIM_ERROR_MARGIN",
]

from repro.core.modeling.analytic import (  # noqa: E402
    greedy_victim_valid_fraction,
    measure_steady_waf,
    waf_greedy_gc,
    waf_random_gc,
)

__all__ += [
    "waf_random_gc",
    "waf_greedy_gc",
    "greedy_victim_valid_fraction",
    "measure_steady_waf",
]
