"""Fig 3 / §2.1: how much FTL design choices move the numbers a
simulator claims to predict.

MQSim validated itself against real drives to within 18 % on mean
response time.  The paper's counter-experiment: take a baseline FTL and
flip three *basic* design knobs one at a time —

* GC victim selection: greedy → randomized-greedy,
* write-cache designation: data → mapping metadata,
* page allocation scheme: CWDP → PDWC

— then measure synthetic random-write workloads of increasing request
size.  Mean differences across these *fundamentally different FTLs* sit
near the simulator's own error margin, while 99th-percentile latencies
spread by up to an order of magnitude: the fidelity bar that matters for
tail behaviour is far beyond what the validation establishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.analysis.stats import (
    LatencySummary,
    relative_difference,
    summarize_latencies,
    tail_curve,
)
from repro.exp.cell import Cell
from repro.exp.runner import Runner, run_cells
from repro.ssd.config import SsdConfig
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec

#: MQSim's self-reported accuracy envelope.
MQSIM_ERROR_MARGIN = 0.18


@dataclass(frozen=True)
class FtlVariant:
    """One FTL configuration under comparison."""

    name: str
    config: SsdConfig


def paper_variants(base: SsdConfig) -> list[FtlVariant]:
    """The baseline plus the paper's three single-knob flips."""
    return [
        FtlVariant("baseline", base),
        FtlVariant("gc=randomized_greedy",
                   base.with_changes(gc_policy="randomized_greedy",
                                     gc_sample_size=4)),
        FtlVariant("cache=mapping",
                   base.with_changes(cache_designation="mapping")),
        FtlVariant("alloc=PDWC",
                   base.with_changes(allocation_scheme="PDWC")),
    ]


@dataclass
class VariantResult:
    """One variant's measurements for one workload point."""

    variant: str
    bs_sectors: int
    summary: LatencySummary
    iops: float
    tail_percentiles: np.ndarray
    tail_values_us: np.ndarray


@dataclass
class FidelityStudy:
    """All measurements plus the paper's two headline comparisons."""

    results: list[VariantResult] = field(default_factory=list)

    def of(self, variant: str, bs: int) -> VariantResult:
        for result in self.results:
            if result.variant == variant and result.bs_sectors == bs:
                return result
        raise KeyError((variant, bs))

    def variants(self) -> list[str]:
        seen = []
        for result in self.results:
            if result.variant not in seen:
                seen.append(result.variant)
        return seen

    def block_sizes(self) -> list[int]:
        seen = []
        for result in self.results:
            if result.bs_sectors not in seen:
                seen.append(result.bs_sectors)
        return seen

    def mean_divergence(self, bs: int, baseline: str = "baseline") -> dict[str, float]:
        """Relative mean-latency difference of each variant vs baseline."""
        base = self.of(baseline, bs)
        return {
            result.variant: relative_difference(result.summary.mean,
                                                base.summary.mean)
            for result in self.results
            if result.bs_sectors == bs and result.variant != baseline
        }

    def p99_spread(self, bs: int) -> float:
        """max/min of p99 latency across variants (the Fig 3 headline)."""
        values = [r.summary.p99 for r in self.results if r.bs_sectors == bs]
        positive = [v for v in values if v > 0]
        if len(positive) < 2:
            return 1.0
        return max(positive) / min(positive)

    def within_mqsim_margin(self, bs: int) -> dict[str, bool]:
        """Would each variant pass as 'the same device' at 18% accuracy?"""
        return {
            name: divergence <= MQSIM_ERROR_MARGIN * 1.5
            for name, divergence in self.mean_divergence(bs).items()
        }


@dataclass(frozen=True)
class FidelityCellSpec:
    """One (variant, request size) point of the Fig 3 grid — the unit
    the parallel runner fans out.  ``trace_path`` makes the cell write
    its own JSONL event trace from inside the worker (the parallel
    replacement for the in-process ``on_device`` hook)."""

    variant: str
    config: SsdConfig
    bs_sectors: int
    io_count: int
    precondition_fraction: float
    tail_points: int
    trace_path: str | None = None


def fidelity_trace_path(trace_dir: str | Path, variant: str, bs: int,
                        prefix: str = "fidelity") -> Path:
    """Canonical trace-file name for one fidelity cell."""
    safe = variant.replace("=", "-")
    return Path(trace_dir) / f"{prefix}_{safe}_bs{bs}.jsonl"


def measure_fidelity_cell(
    spec: FidelityCellSpec,
    seed: int = 0,
    _on_device: Callable[[TimedSSD, str, int], None] | None = None,
) -> VariantResult:
    """Measure one variant at one request size on a fresh device.

    Pure in (spec, seed) — the device is built, preconditioned,
    measured, and discarded here, which is what makes the study grid
    embarrassingly parallel.  ``_on_device`` is the legacy in-process
    hook; the picklable path uses ``spec.trace_path`` instead.
    """
    device = TimedSSD(spec.config)
    _precondition(device, spec.precondition_fraction)
    sink = None
    if spec.trace_path is not None:
        from repro.obs.sinks import JsonlSink

        sink = JsonlSink(spec.trace_path)
        device.attach_sink(sink)
    if _on_device is not None:
        _on_device(device, spec.variant, spec.bs_sectors)
    job = JobSpec(
        name=f"{spec.variant}/bs{spec.bs_sectors}",
        rw="randwrite",
        region=Region(0, device.num_sectors),
        bs_sectors=spec.bs_sectors,
        io_count=spec.io_count,
        iodepth=4,
        seed=97,
    )
    result = run_timed(device, [job])
    if sink is not None:
        sink.close()
    job_result = result.jobs[job.name]
    qs, values = tail_curve(job_result.latencies_us, points=spec.tail_points)
    return VariantResult(
        variant=spec.variant,
        bs_sectors=spec.bs_sectors,
        summary=summarize_latencies(job_result.latencies_us),
        iops=job_result.iops,
        tail_percentiles=qs,
        tail_values_us=values,
    )


def run_fidelity_study(
    base: SsdConfig,
    block_sizes_sectors: tuple[int, ...] = (1, 2, 4),
    io_count: int = 2000,
    precondition_fraction: float = 0.75,
    tail_points: int = 40,
    variants: list[FtlVariant] | None = None,
    on_device: Callable[[TimedSSD, str, int], None] | None = None,
    runner: Runner | None = None,
    trace_dir: str | Path | None = None,
    trace_prefix: str = "fidelity",
) -> FidelityStudy:
    """Measure every variant at every request size.

    Devices are preconditioned with a full sequential pass plus random
    overwrites (the standard protocol before measuring SSD latency) so
    GC is active during measurement.

    Every (variant, request size) point is an independent
    :class:`~repro.exp.cell.Cell`; passing *runner* fans them out over
    worker processes (``REPRO_JOBS`` controls the width) with results
    merged back in grid order, byte-identical to the serial run.

    Tracing: pass *trace_dir* to have each cell stream its own JSONL
    event trace (named by :func:`fidelity_trace_path`) from inside the
    worker; traced cells bypass the result cache since the trace is a
    side effect.  ``on_device(device, variant_name, bs_sectors)`` is
    the legacy in-process hook, called after preconditioning — it
    cannot cross a process boundary, so it requires ``runner=None``.
    """
    variants = variants if variants is not None else paper_variants(base)
    if on_device is not None and runner is not None:
        raise ValueError(
            "on_device is an in-process hook; use trace_dir with a runner")
    specs = [
        FidelityCellSpec(
            variant=variant.name,
            config=variant.config,
            bs_sectors=bs,
            io_count=io_count,
            precondition_fraction=precondition_fraction,
            tail_points=tail_points,
            trace_path=(str(fidelity_trace_path(trace_dir, variant.name, bs,
                                                trace_prefix))
                        if trace_dir is not None else None),
        )
        for variant in variants
        for bs in block_sizes_sectors
    ]
    study = FidelityStudy()
    if on_device is not None:
        study.results = [measure_fidelity_cell(spec, _on_device=on_device)
                         for spec in specs]
        return study
    cells = [
        Cell(
            measure_fidelity_cell,
            spec,
            label=f"fidelity:{spec.variant}/bs{spec.bs_sectors}",
            cacheable=spec.trace_path is None,
        )
        for spec in specs
    ]
    study.results = run_cells(cells, runner)
    return study


def _precondition(device: TimedSSD, fraction: float, seed: int = 3) -> None:
    """Sequential fill + random overwrites to reach GC steady state."""
    rng = np.random.default_rng(seed)
    sectors = int(device.num_sectors * fraction)
    step = 8
    for lba in range(0, sectors, step):
        device.submit("write", lba, min(step, sectors - lba), at_ns=device.now)
    for _ in range(sectors // 4):
        lba = int(rng.integers(sectors))
        device.submit("write", lba, 1, at_ns=device.now)
    device.flush()
    device.quiesce()
    device.completed.clear()
