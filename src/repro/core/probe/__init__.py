"""Hardware-probe reverse engineering (paper §3.1)."""

from repro.core.probe.analyzer import (
    ANALYZERS,
    BENCH,
    HOBBYIST,
    TLA7000,
    AnalyzerSpec,
    Capture,
    LogicAnalyzer,
)
from repro.core.probe.decoder import DecodedOp, DecodeResult, decode_capture
from repro.core.probe.inference import (
    HostOpRecord,
    InferenceReport,
    infer_ftl_features,
    signal_activity,
)

__all__ = [
    "LogicAnalyzer", "AnalyzerSpec", "Capture",
    "TLA7000", "BENCH", "HOBBYIST", "ANALYZERS",
    "decode_capture", "DecodedOp", "DecodeResult",
    "infer_ftl_features", "InferenceReport", "HostOpRecord",
    "signal_activity",
]
