"""FTL inference from decoded bus traffic.

This is the payoff of the probe method (§3.1): "using carefully
orchestrated workloads, we can monitor the ensuing command sequences to
the flash packages, and from there, potentially infer firmware policies
and mechanisms".  Given decoded operations (and optionally a log of the
host requests issued while probing), the inference layer recovers:

* the package's **page size** (data-burst lengths of program operations);
* **pages per block** (GCD of erase row addresses — erases are
  block-aligned in the row space);
* **array timings** (tPROG/tR/tBERS from R/B# busy durations);
* **sequential-programming behaviour** (row deltas between consecutive
  programs on one die reveal the write pointer and striping);
* **write amplification on the probed channel** (program bytes observed
  vs. host bytes issued) — the FTL-internal traffic a black-box observer
  cannot attribute;
* **background activity**: flash operations during host-idle windows
  (idle GC and similar "unpredictable background operations").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.probe.decoder import DecodedOp


@dataclass(frozen=True)
class HostOpRecord:
    """One host request issued while the probe was attached."""

    kind: str
    t_start_ns: float
    t_end_ns: float
    sectors: int


@dataclass
class InferenceReport:
    """What the probe experiment learned about the device."""

    programs: int = 0
    reads: int = 0
    erases: int = 0
    page_size_bytes: int | None = None
    pages_per_block: int | None = None
    t_prog_us: float = 0.0
    t_read_us: float = 0.0
    t_erase_us: float = 0.0
    sequential_fraction: float = 0.0
    channel_write_amplification: float | None = None
    background_ops: int = 0

    def rows(self) -> list[tuple[str, object]]:
        """Report as (feature, value) rows for table rendering."""
        return [
            ("programs observed", self.programs),
            ("reads observed", self.reads),
            ("erases observed", self.erases),
            ("page size (B)", self.page_size_bytes),
            ("pages per block", self.pages_per_block),
            ("tPROG (us)", round(self.t_prog_us, 1)),
            ("tR (us)", round(self.t_read_us, 1)),
            ("tBERS (us)", round(self.t_erase_us, 1)),
            ("sequential program fraction", round(self.sequential_fraction, 3)),
            ("channel write amplification", self.channel_write_amplification),
            ("background ops (host idle)", self.background_ops),
        ]


def infer_ftl_features(
    ops: list[DecodedOp],
    host_log: list[HostOpRecord] | None = None,
    sector_size: int = 4096,
) -> InferenceReport:
    """Build an :class:`InferenceReport` from decoded operations."""
    report = InferenceReport()
    programs = [op for op in ops if op.name == "program"]
    reads = [op for op in ops if op.name == "read"]
    erases = [op for op in ops if op.name == "erase"]
    report.programs = len(programs)
    report.reads = len(reads)
    report.erases = len(erases)

    data_sizes = [op.data_bytes for op in programs if op.data_bytes]
    if data_sizes:
        # Full-page programs dominate; the page size is the modal burst.
        values, counts = np.unique(data_sizes, return_counts=True)
        report.page_size_bytes = int(values[np.argmax(counts)])

    erase_rows = sorted({op.row for op in erases if op.row is not None})
    if len(erase_rows) >= 2:
        diffs = np.diff(erase_rows)
        gcd = int(np.gcd.reduce(diffs))
        if gcd > 0:
            report.pages_per_block = gcd
    elif len(erase_rows) == 1 and erase_rows[0] > 0:
        report.pages_per_block = int(erase_rows[0])

    report.t_prog_us = _typical_busy(programs)
    report.t_read_us = _typical_busy(reads)
    report.t_erase_us = _typical_busy(erases)

    rows = [op.row for op in programs if op.row is not None]
    if len(rows) >= 2:
        sequential = sum(1 for a, b in zip(rows, rows[1:]) if b == a + 1)
        report.sequential_fraction = sequential / (len(rows) - 1)

    if host_log:
        host_bytes = sum(
            rec.sectors * sector_size for rec in host_log if rec.kind == "write"
        )
        observed = sum(size for size in data_sizes)
        if host_bytes > 0:
            report.channel_write_amplification = observed / host_bytes
        report.background_ops = _background_ops(ops, host_log)
    return report


def _typical_busy(ops: list[DecodedOp]) -> float:
    """Median busy time: robust against capture-window clipping."""
    busy = [op.busy_ns for op in ops if op.busy_ns > 0]
    if not busy:
        return 0.0
    return float(np.median(busy)) / 1000.0


def _background_ops(ops: list[DecodedOp], host_log: list[HostOpRecord]) -> int:
    """Flash ops that started while no host request was in flight."""
    windows = sorted((rec.t_start_ns, rec.t_end_ns) for rec in host_log)
    count = 0
    for op in ops:
        inside = any(start <= op.t_start_ns <= end for start, end in windows)
        if not inside:
            count += 1
    return count


@dataclass
class SignalActivity:
    """Fig 5's view: bus and busy activity over time, in fixed bins.

    ``control``/``data``/``busy`` are per-bin activity fractions — the
    textual rendering of the paper's oscilloscope-style figure.
    """

    bin_ns: float
    t0: float
    control: np.ndarray = field(default_factory=lambda: np.zeros(0))
    data: np.ndarray = field(default_factory=lambda: np.zeros(0))
    busy: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def render(self, width: int = 64) -> str:
        """ASCII waveform: one row per signal group."""
        def lane(values: np.ndarray, label: str) -> str:
            if len(values) == 0:
                return f"{label:<8}|"
            marks = "".join(
                "#" if v > 0.5 else ("+" if v > 0.05 else ".")
                for v in values[:width]
            )
            return f"{label:<8}|{marks}|"

        return "\n".join([
            lane(self.control, "ctrl"),
            lane(self.data, "data"),
            lane(self.busy, "busy"),
        ])


def signal_activity(capture, bins: int = 64) -> SignalActivity:
    """Bin a capture into control/data/busy activity lanes (Fig 5)."""
    s = capture.samples
    t = s["t"]
    if len(t) == 0:
        return SignalActivity(bin_ns=0.0, t0=0.0)
    edges = np.linspace(t[0], t[-1], bins + 1)
    index = np.clip(np.searchsorted(edges, t, side="right") - 1, 0, bins - 1)
    control = np.zeros(bins)
    data = np.zeros(bins)
    busy = np.zeros(bins)
    counts = np.bincount(index, minlength=bins).astype(np.float64)
    counts[counts == 0] = 1.0
    ctrl_signal = ((s["cle"] == 1) | (s["ale"] == 1)).astype(np.float64)
    data_signal = (
        ((s["we"] == 0) | (s["re"] == 0)) & (s["cle"] == 0) & (s["ale"] == 0)
    ).astype(np.float64)
    busy_signal = (s["rb"] == 0).astype(np.float64)
    np.add.at(control, index, ctrl_signal)
    np.add.at(data, index, data_signal)
    np.add.at(busy, index, busy_signal)
    return SignalActivity(
        bin_ns=float(edges[1] - edges[0]),
        t0=float(t[0]),
        control=control / counts,
        data=data / counts,
        busy=busy / counts,
    )
