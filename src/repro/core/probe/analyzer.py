"""The logic analyzer: finite sample rate, finite buffer, triggers.

The paper (§3.1) attaches probes to a flash package's pinouts and records
the controller↔package conversation with "a high-end logic analyzer
[that] costs around $20,000".  This module models the measurement
instrument honestly: it *samples* the continuous pin waveforms at a fixed
rate into a bounded buffer.  Everything downstream (the decoder) sees
only those samples, so the instrument's limits are real:

* a sample rate below twice the bus strobe rate misses latch edges and
  corrupts decode (you cannot probe a fast bus with a hobbyist analyzer);
* the buffer depth bounds the observation window, so long workloads must
  be captured via triggers, one window at a time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.signals import SignalTrace, render_samples


@dataclass(frozen=True)
class AnalyzerSpec:
    """One instrument model."""

    name: str
    sample_rate_hz: float
    buffer_samples: int
    price_usd: int

    @property
    def sample_period_ns(self) -> float:
        return 1e9 / self.sample_rate_hz

    def window_ns(self) -> float:
        """Longest capture this instrument can hold."""
        return self.buffer_samples * self.sample_period_ns


#: The paper's instrument class: Tektronix TLA7000-like.
TLA7000 = AnalyzerSpec("tla7000", sample_rate_hz=500e6,
                       buffer_samples=4_000_000, price_usd=20_000)

#: A mid-range bench analyzer.
BENCH = AnalyzerSpec("bench", sample_rate_hz=100e6,
                     buffer_samples=1_000_000, price_usd=1_500)

#: A USB hobbyist analyzer: too slow for ONFI data bursts.
HOBBYIST = AnalyzerSpec("hobbyist", sample_rate_hz=10e6,
                        buffer_samples=250_000, price_usd=150)

ANALYZERS = {spec.name: spec for spec in (TLA7000, BENCH, HOBBYIST)}


@dataclass
class Capture:
    """One buffered acquisition: sampled pin arrays plus provenance."""

    spec: AnalyzerSpec
    t0_ns: float
    samples: dict[str, np.ndarray]

    @property
    def num_samples(self) -> int:
        return len(self.samples["t"])

    @property
    def duration_ns(self) -> float:
        if self.num_samples == 0:
            return 0.0
        return float(self.samples["t"][-1] - self.samples["t"][0])


class LogicAnalyzer:
    """Samples a :class:`SignalTrace` through an instrument model."""

    def __init__(self, spec: AnalyzerSpec = TLA7000) -> None:
        self.spec = spec

    def capture(self, trace: SignalTrace, t0: int = 0,
                t1: int | None = None) -> Capture:
        """Acquire from *t0* until the buffer fills (or *t1*)."""
        samples = render_samples(
            trace,
            sample_period_ns=self.spec.sample_period_ns,
            t0=t0,
            t1=t1,
            max_samples=self.spec.buffer_samples,
        )
        return Capture(self.spec, t0, samples)

    def capture_triggered(self, trace: SignalTrace,
                          arm_at: int = 0) -> Capture | None:
        """Arm on bus activity: start capturing at the first command or
        address cycle at or after *arm_at* (CLE/ALE trigger).

        Returns None if the trace stays idle.
        """
        candidates = [
            seg.t0 for seg in trace.segments
            if seg.t0 >= arm_at and (seg.cle or seg.ale)
        ]
        if not candidates:
            return None
        start = min(candidates)
        # Small pre-trigger margin, as real analyzers provide.
        margin = int(self.spec.sample_period_ns * 16)
        return self.capture(trace, t0=max(0, start - margin))

    def windows(self, trace: SignalTrace, start: int = 0,
                max_windows: int = 16) -> list[Capture]:
        """Repeatedly re-arm over a long trace (fill buffer, re-trigger)."""
        captures: list[Capture] = []
        cursor = start
        for _ in range(max_windows):
            capture = self.capture_triggered(trace, arm_at=cursor)
            if capture is None or capture.num_samples == 0:
                break
            captures.append(capture)
            end = capture.samples["t"][-1]
            cursor = int(end) + 1
        return captures
