"""ONFI protocol decoder: from sampled pins back to commands.

Input is *only* a :class:`~repro.core.probe.analyzer.Capture` — arrays of
sampled CLE/ALE/WE#/RE#/R-B#/DQ values.  The decoder recovers the latch
edges, classifies each latched byte (command / address / data) from the
control pins, and parses the resulting cycle stream against the ONFI
command grammar:

    80h  A×5  [data-in]  10h   → PROGRAM   (busy = tPROG on R/B#)
    00h  A×5  30h  [data-out]  → READ      (busy = tR before data)
    60h  A×3  D0h              → ERASE     (busy = tBERS)
    FFh                        → RESET
    70h / 90h / ECh            → status / ID / parameter page

Data-burst lengths are estimated by counting strobe excursions between
command cycles, which is exactly what degrades on an undersampling
instrument: the decoder reports its own health via
:class:`DecodeStats` so experiments can see the instrument's limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.probe.analyzer import Capture
from repro.flash.onfi import Opcode


@dataclass(frozen=True)
class DecodedOp:
    """One reconstructed chip-level operation."""

    name: str
    t_start_ns: float
    t_end_ns: float
    row: int | None = None
    column: int | None = None
    #: estimated payload bytes (strobe count), None for non-data ops.
    data_bytes: int | None = None
    busy_ns: float = 0.0


@dataclass
class DecodeStats:
    """Decoder health: how much of the capture parsed cleanly."""

    command_cycles: int = 0
    address_cycles: int = 0
    data_strobes: int = 0
    ops_decoded: int = 0
    unparsed_cycles: int = 0
    truncated: bool = False

    @property
    def clean(self) -> bool:
        return self.unparsed_cycles == 0 and not self.truncated


@dataclass
class DecodeResult:
    ops: list[DecodedOp] = field(default_factory=list)
    stats: DecodeStats = field(default_factory=DecodeStats)


@dataclass(frozen=True)
class _Cycle:
    kind: str  # "cmd" | "addr" | "data"
    value: int
    t: float
    strobes: int = 1


def _latched_cycles(capture: Capture) -> list[_Cycle]:
    """Recover latch events from sampled strobe edges.

    A byte is latched on each WE# rising edge (input path) or RE# rising
    edge (output path).  Consecutive latches with CLE=ALE=0 are data
    strobes and are run-length folded into one "data" cycle.
    """
    s = capture.samples
    t, cle, ale, we, re_ = s["t"], s["cle"], s["ale"], s["we"], s["re"]
    dq = s["dq"]
    cycles: list[_Cycle] = []
    data_run = 0
    data_t = 0.0

    def flush_data() -> None:
        nonlocal data_run, data_t
        if data_run:
            cycles.append(_Cycle("data", -1, data_t, strobes=data_run))
            data_run = 0

    we_rise = np.nonzero((we[:-1] == 0) & (we[1:] == 1))[0]
    re_rise = np.nonzero((re_[:-1] == 0) & (re_[1:] == 1))[0]
    edges = np.concatenate([we_rise, re_rise])
    edges.sort(kind="stable")
    for i in edges:
        # Pin state while the strobe was low describes the cycle type;
        # DQ is stable there too.
        if cle[i]:
            flush_data()
            cycles.append(_Cycle("cmd", int(dq[i]), float(t[i])))
        elif ale[i]:
            flush_data()
            cycles.append(_Cycle("addr", int(dq[i]), float(t[i])))
        else:
            if data_run == 0:
                data_t = float(t[i])
            data_run += 1
    flush_data()
    return cycles


def _busy_spans(capture: Capture) -> list[tuple[float, float]]:
    """R/B# low intervals, as (start, end) times."""
    s = capture.samples
    rb, t = s["rb"], s["t"]
    spans = []
    falls = np.nonzero((rb[:-1] == 1) & (rb[1:] == 0))[0]
    rises = np.nonzero((rb[:-1] == 0) & (rb[1:] == 1))[0]
    for f in falls:
        later = rises[rises > f]
        end = float(t[later[0]]) if len(later) else float(t[-1])
        spans.append((float(t[f]), end))
    return spans


def _busy_after(spans: list[tuple[float, float]], t: float) -> tuple[float, float] | None:
    for start, end in spans:
        if start >= t - 1.0:
            return start, end
    return None


def decode_capture(capture: Capture) -> DecodeResult:
    """Parse one capture into operations."""
    cycles = _latched_cycles(capture)
    spans = _busy_spans(capture)
    result = DecodeResult()
    stats = result.stats
    for cycle in cycles:
        if cycle.kind == "cmd":
            stats.command_cycles += 1
        elif cycle.kind == "addr":
            stats.address_cycles += 1
        else:
            stats.data_strobes += cycle.strobes

    i = 0
    n = len(cycles)
    while i < n:
        cycle = cycles[i]
        if cycle.kind != "cmd":
            stats.unparsed_cycles += 1
            i += 1
            continue
        op, consumed = _parse_op(cycles, i, spans)
        if op is None:
            stats.unparsed_cycles += 1
            i += 1
            continue
        if consumed + i > n:
            stats.truncated = True
        result.ops.append(op)
        stats.ops_decoded += 1
        i += consumed
    return result


def _addrs(cycles: list[_Cycle], i: int, count: int) -> list[int] | None:
    vals = []
    for j in range(i, i + count):
        if j >= len(cycles) or cycles[j].kind != "addr":
            return None
        vals.append(cycles[j].value)
    return vals


def _parse_op(cycles: list[_Cycle], i: int,
              spans: list[tuple[float, float]]) -> tuple[DecodedOp | None, int]:
    cmd = cycles[i]
    n = len(cycles)

    if cmd.value == Opcode.PROGRAM_1ST:
        addrs = _addrs(cycles, i + 1, 5)
        if addrs is None:
            return None, 1
        j = i + 6
        data = None
        if j < n and cycles[j].kind == "data":
            data = cycles[j].strobes
            j += 1
        if j >= n or cycles[j].kind != "cmd" or cycles[j].value != Opcode.PROGRAM_2ND:
            return None, 1
        busy = _busy_after(spans, cycles[j].t)
        t_end = busy[1] if busy else cycles[j].t
        return DecodedOp(
            "program", cmd.t, t_end,
            row=addrs[2] | (addrs[3] << 8) | (addrs[4] << 16),
            column=addrs[0] | (addrs[1] << 8),
            data_bytes=data,
            busy_ns=(busy[1] - busy[0]) if busy else 0.0,
        ), (j - i) + 1

    if cmd.value == Opcode.READ_1ST:
        addrs = _addrs(cycles, i + 1, 5)
        if addrs is None:
            return None, 1
        j = i + 6
        if j >= n or cycles[j].kind != "cmd" or cycles[j].value != Opcode.READ_2ND:
            return None, 1
        busy = _busy_after(spans, cycles[j].t)
        consumed = (j - i) + 1
        data = None
        if j + 1 < n and cycles[j + 1].kind == "data":
            data = cycles[j + 1].strobes
            consumed += 1
        t_end = cycles[j + (1 if data else 0)].t
        if busy:
            t_end = max(t_end, busy[1])
        return DecodedOp(
            "read", cmd.t, t_end,
            row=addrs[2] | (addrs[3] << 8) | (addrs[4] << 16),
            column=addrs[0] | (addrs[1] << 8),
            data_bytes=data,
            busy_ns=(busy[1] - busy[0]) if busy else 0.0,
        ), consumed

    if cmd.value == Opcode.ERASE_1ST:
        addrs = _addrs(cycles, i + 1, 3)
        if addrs is None:
            return None, 1
        j = i + 4
        if j >= n or cycles[j].kind != "cmd" or cycles[j].value != Opcode.ERASE_2ND:
            return None, 1
        busy = _busy_after(spans, cycles[j].t)
        t_end = busy[1] if busy else cycles[j].t
        return DecodedOp(
            "erase", cmd.t, t_end,
            row=addrs[0] | (addrs[1] << 8) | (addrs[2] << 16),
            busy_ns=(busy[1] - busy[0]) if busy else 0.0,
        ), (j - i) + 1

    if cmd.value == Opcode.RESET:
        return DecodedOp("reset", cmd.t, cmd.t), 1

    if cmd.value == Opcode.READ_STATUS:
        consumed = 1
        if i + 1 < n and cycles[i + 1].kind == "data":
            consumed = 2
        return DecodedOp("read_status", cmd.t, cmd.t), consumed

    if cmd.value == Opcode.READ_ID:
        consumed = 1
        if i + 1 < n and cycles[i + 1].kind == "addr":
            consumed += 1
        if i + consumed < n and cycles[i + consumed].kind == "data":
            consumed += 1
        return DecodedOp("read_id", cmd.t, cmd.t), consumed

    return None, 1


def decode_trace_windows(trace, analyzer, max_windows: int = 64,
                         start: int = 0) -> DecodeResult:
    """Decode a long trace through repeated re-armed captures.

    Real analyzers cannot hold a whole workload in their buffer; the
    standard protocol is trigger → fill buffer → decode → re-arm.  Ops
    split across a window boundary are lost (counted as unparsed), just
    as they are on the bench.  ``start`` arms the first trigger at a
    chosen time (e.g. the beginning of a host-idle period).
    """
    merged = DecodeResult()
    for capture in analyzer.windows(trace, start=start,
                                    max_windows=max_windows):
        result = decode_capture(capture)
        merged.ops.extend(result.ops)
        stats, sub = merged.stats, result.stats
        stats.command_cycles += sub.command_cycles
        stats.address_cycles += sub.address_cycles
        stats.data_strobes += sub.data_strobes
        stats.ops_decoded += sub.ops_decoded
        stats.unparsed_cycles += sub.unparsed_cycles
        stats.truncated = stats.truncated or sub.truncated
    return merged
