"""Deterministic fault injection at the NAND boundary.

:class:`PlannedFaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete per-operation decisions.  It extends the seedable
:class:`~repro.flash.errors.FailureInjector` the FTL already consumes, so
plugging a plan into a device is one constructor argument — the FTL's
bad-block machinery, read path, and the sweep harness all see faults
through the same interface.

Determinism contract: every decision is a pure function of the plan and
the sequence of operations the FTL performs.  Random draws come from one
dedicated ``default_rng([seed, FAULT_STREAM])`` stream, consumed in spec
order per candidate operation; since the FTL itself is deterministic for
a fixed workload seed, a fixed (workload, plan) pair yields an identical
fault schedule on every run, serial or parallel.

The injector keeps an ordered ``log`` of every firing — the ground truth
that traces, SMART counters, and reproducibility tests reconcile against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.plan import (
    DIE_OFFLINE,
    ERASE_FAIL,
    FAULT_STREAM,
    POWER_CUT,
    PROGRAM_FAIL,
    UNCORRECTABLE_READ,
    FaultPlan,
    FaultSpec,
)
from repro.flash.errors import FailureInjector
from repro.flash.geometry import Geometry
from repro.obs.events import FaultInjected
from repro.obs.sinks import NULL_SINK, TraceSink


@dataclass
class _SpecState:
    """Mutable runtime state of one spec."""

    spec: FaultSpec
    fired: int = 0

    @property
    def exhausted(self) -> bool:
        return self.spec.count > 0 and self.fired >= self.spec.count


class PlannedFaultInjector(FailureInjector):
    """A :class:`FailureInjector` driven by a declarative fault plan."""

    def __init__(self, plan: FaultPlan, geometry: Geometry) -> None:
        super().__init__(seed=plan.seed)
        self.plan = plan
        self.geometry = geometry
        self._fault_rng = np.random.default_rng([plan.seed, FAULT_STREAM])
        self._states = [_SpecState(spec) for spec in plan.specs]
        self._op_index = 0
        self._now_ns = -1
        self._offline_dies: set[int] = set()
        self._power_cut = False
        #: ordered record of every firing: (kind, target, op_index).
        self.log: list[tuple[str, int, int]] = []
        self.obs: TraceSink = NULL_SINK

    # ------------------------------------------------------------------
    # Clock hooks
    # ------------------------------------------------------------------

    def tick(self, op_index: int, now_ns: int = -1) -> None:
        """Advance host progress; fires op/time-triggered die-offline and
        power-cut specs (which do not need a candidate operation)."""
        self._op_index = op_index
        if now_ns >= 0:
            self._now_ns = now_ns
        for state in self._states:
            if state.exhausted or state.spec.kind not in (DIE_OFFLINE, POWER_CUT):
                continue
            if not self._triggered(state.spec):
                continue
            state.fired += 1
            if state.spec.kind == DIE_OFFLINE:
                self._offline_dies.add(state.spec.die)
                self._record(DIE_OFFLINE, state.spec.die)
            else:
                self._power_cut = True
                self._record(POWER_CUT, self._op_index)

    def _triggered(self, spec: FaultSpec) -> bool:
        """Did an op/time trigger arm this spec at the current clock?"""
        if spec.at_op >= 0 and self._op_index >= spec.at_op:
            return True
        if spec.at_time_ns >= 0 and 0 <= spec.at_time_ns <= self._now_ns:
            return True
        return False

    def _armed(self, spec: FaultSpec) -> bool:
        """Is this spec live for the next matching candidate operation?"""
        return spec.armed_immediately or self._triggered(spec)

    # ------------------------------------------------------------------
    # Decision points (the NAND boundary)
    # ------------------------------------------------------------------

    def program_fails(self, ppn: int) -> bool:
        if super().program_fails(ppn):
            return True
        block = ppn // self.geometry.pages_per_block
        if self.geometry.die_of_ppn(ppn) in self._offline_dies:
            self.program_failures += 1
            self._record(PROGRAM_FAIL, ppn)
            return True
        if self._fires(PROGRAM_FAIL, block=block):
            self.program_failures += 1
            self._record(PROGRAM_FAIL, ppn)
            return True
        return False

    def erase_fails(self, block_index: int) -> bool:
        if super().erase_fails(block_index):
            return True
        if self.geometry.die_of_block(block_index) in self._offline_dies:
            self.erase_failures += 1
            self._record(ERASE_FAIL, block_index)
            return True
        if self._fires(ERASE_FAIL, block=block_index):
            self.erase_failures += 1
            self._record(ERASE_FAIL, block_index)
            return True
        return False

    def read_uncorrectable(self, ppn: int, lpn: int = -1) -> bool:
        block = ppn // self.geometry.pages_per_block
        if self.geometry.die_of_ppn(ppn) in self._offline_dies:
            self._record(UNCORRECTABLE_READ, ppn)
            return True
        if self._fires(UNCORRECTABLE_READ, block=block, lpn=lpn):
            self._record(UNCORRECTABLE_READ, ppn)
            return True
        return False

    def _fires(self, kind: str, block: int, lpn: int = -1) -> bool:
        for state in self._states:
            spec = state.spec
            if spec.kind != kind or state.exhausted:
                continue
            if not spec.matches_block(block):
                continue
            if lpn >= 0 and not spec.matches_lpn(lpn):
                continue
            if spec.probability > 0.0:
                # Draw exactly one variate per candidate per armed
                # probabilistic spec, in spec order — the schedule is a
                # pure function of the operation sequence.
                if self._fault_rng.random() >= spec.probability:
                    continue
            elif not self._armed(spec):
                continue
            state.fired += 1
            return True
        return False

    # ------------------------------------------------------------------
    # State the FTL / harness reads back
    # ------------------------------------------------------------------

    @property
    def offline_dies(self) -> frozenset[int]:
        return frozenset(self._offline_dies)

    def power_cut_pending(self) -> bool:
        return self._power_cut

    def injected_counts(self) -> dict[str, int]:
        """Firings per kind (ground truth for reconciliation tests)."""
        counts: dict[str, int] = {}
        for kind, _, _ in self.log:
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def _record(self, kind: str, target: int) -> None:
        self.log.append((kind, target, self._op_index))
        if self.obs.enabled:
            self.obs.emit(FaultInjected(kind=kind, target=target))
