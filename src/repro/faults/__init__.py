"""Deterministic fault injection and crash-consistency sweeps.

The subsystem has four pieces:

* :mod:`repro.faults.plan` — declarative, seed-reproducible fault
  schedules (:class:`FaultPlan` / :class:`FaultSpec`);
* :mod:`repro.faults.injection` — :class:`PlannedFaultInjector`, the
  :class:`~repro.flash.errors.FailureInjector` subclass that turns a
  plan into per-operation decisions at the NAND boundary;
* :mod:`repro.faults.sweep` — the crash-consistency sweep harness that
  cuts power at every k-th host op and audits recovery against a
  host-side durability oracle;
* :mod:`repro.faults.cells` — timed latency cells comparing clean vs
  degraded operation.
"""

from repro.faults.cells import (
    FaultLatencyCell,
    FaultLatencyResult,
    run_fault_latency_cell,
)
from repro.faults.injection import PlannedFaultInjector
from repro.faults.plan import (
    DIE_OFFLINE,
    ERASE_FAIL,
    FAULT_KINDS,
    FAULT_STREAM,
    POWER_CUT,
    PROGRAM_FAIL,
    UNCORRECTABLE_READ,
    FaultPlan,
    FaultSpec,
)
from repro.faults.sweep import (
    CrashSweepCell,
    SweepResult,
    SweepWorkload,
    host_ops,
    run_crash_sweep_cell,
)

__all__ = [
    "DIE_OFFLINE",
    "ERASE_FAIL",
    "FAULT_KINDS",
    "FAULT_STREAM",
    "POWER_CUT",
    "PROGRAM_FAIL",
    "UNCORRECTABLE_READ",
    "CrashSweepCell",
    "FaultLatencyCell",
    "FaultLatencyResult",
    "FaultPlan",
    "FaultSpec",
    "PlannedFaultInjector",
    "SweepResult",
    "SweepWorkload",
    "host_ops",
    "run_crash_sweep_cell",
    "run_fault_latency_cell",
]
