"""Declarative, reproducible fault schedules.

The paper's §2.1 argues that background reliability machinery — bad-block
handling, parity rebuilds, refresh — is exactly what makes SSD behavior
opaque.  To measure the *latency cost of reliability* the simulator needs
faults as first-class, reproducible inputs, not ad-hoc test pokes.

A :class:`FaultPlan` is a frozen list of :class:`FaultSpec`s plus a seed.
Every random decision the plan implies is drawn from one dedicated RNG
stream (``default_rng([seed, FAULT_STREAM])``), so a fixed plan produces
a byte-identical fault schedule across runs, processes, and ``--jobs``
settings — the same discipline the workload engine uses for open-loop
arrivals.  Plans are plain frozen dataclasses: picklable (they ride into
worker processes inside experiment cells) and stably hashable (they take
part in :mod:`repro.exp` cache keys).

Triggers compose per spec:

* ``at_op`` — fire once the host-op counter reaches this value;
* ``at_time_ns`` — fire once the virtual clock reaches this value
  (timed devices feed the clock through ``FailureInjector.tick``);
* ``probability`` — fire per candidate operation with this probability,
  drawn from the plan's RNG stream;
* address predicates (``blocks``, ``lpns``, ``die``) restrict which
  physical/logical targets a triggered spec applies to.
"""

from __future__ import annotations

from dataclasses import dataclass

#: RNG stream constant for fault draws (dedicated, like the workload
#: engine's arrival stream, so fault decisions never perturb workload
#: address sequences).
FAULT_STREAM = 0xFA017

#: The fault kinds the injector understands.
PROGRAM_FAIL = "program_fail"
ERASE_FAIL = "erase_fail"
UNCORRECTABLE_READ = "uncorrectable_read"
DIE_OFFLINE = "die_offline"
POWER_CUT = "power_cut"

FAULT_KINDS = (
    PROGRAM_FAIL, ERASE_FAIL, UNCORRECTABLE_READ, DIE_OFFLINE, POWER_CUT,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault source.

    ``count`` bounds how many times a triggered spec fires (0 means
    unlimited — sensible only for probability-driven specs).  A spec with
    neither ``at_op``, ``at_time_ns`` nor ``probability`` set is *armed
    immediately* and fires on the first matching operation.
    """

    kind: str
    #: fire when the host-op counter reaches this value (-1 = disabled).
    at_op: int = -1
    #: fire when the virtual clock reaches this value (-1 = disabled).
    at_time_ns: int = -1
    #: per-candidate-operation probability (0 disables).
    probability: float = 0.0
    #: physical block predicate [lo, hi); None matches everything.
    blocks: tuple[int, int] | None = None
    #: logical sector predicate [lo, hi) for uncorrectable reads.
    lpns: tuple[int, int] | None = None
    #: target die for ``die_offline`` (-1 = invalid for that kind).
    die: int = -1
    #: maximum number of firings (0 = unlimited).
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {FAULT_KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.kind == DIE_OFFLINE and self.die < 0:
            raise ValueError("die_offline needs a target die")
        if self.kind == POWER_CUT and self.at_op < 0 and self.at_time_ns < 0:
            raise ValueError("power_cut needs at_op or at_time_ns")
        if self.count < 0:
            raise ValueError("count must be non-negative")
        for name in ("blocks", "lpns"):
            bounds = getattr(self, name)
            if bounds is not None and bounds[0] >= bounds[1]:
                raise ValueError(f"{name} range {bounds} is empty")

    @property
    def armed_immediately(self) -> bool:
        """No trigger set: the spec applies from the first operation."""
        return (self.at_op < 0 and self.at_time_ns < 0
                and self.probability == 0.0)

    def matches_block(self, block: int) -> bool:
        if self.blocks is None:
            return True
        lo, hi = self.blocks
        return lo <= block < hi

    def matches_lpn(self, lpn: int) -> bool:
        if self.lpns is None:
            return True
        lo, hi = self.lpns
        return lo <= lpn < hi


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered collection of fault specs.

    Order matters only for reproducibility of RNG draws; specs are
    otherwise independent.  The empty plan injects nothing.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def of_kind(self, kind: str) -> tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    @property
    def has_power_cut(self) -> bool:
        return any(s.kind == POWER_CUT for s in self.specs)

    def without_power_cuts(self) -> "FaultPlan":
        """The same plan minus power-cut specs (the crash sweep owns
        power-cut placement itself)."""
        return FaultPlan(
            seed=self.seed,
            specs=tuple(s for s in self.specs if s.kind != POWER_CUT),
        )
