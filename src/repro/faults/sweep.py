"""Crash-consistency sweep: cut power everywhere, recover, audit.

The durability contract of the simulated drive (documented in
:mod:`repro.ssd.recovery`) is three-sided:

1. **No acknowledged-and-flushed write is lost** — a sector whose newest
   host-visible state was ``written`` at the last ``flush()`` and that
   has not been trimmed since MUST be mapped after recovery.
2. **No ghosts** — recovery never maps a sector the host never wrote.
3. **Trim resurrection is bounded to the documented semantics** — a
   trimmed sector may come back (trims write nothing to flash) but is
   counted, never silently ignored.

The sweep enforces this at *every* k-th host operation of a workload:
one device runs the full operation stream; at each cut point the NAND
array is cloned (flash survives power loss, RAM does not), power-loss
recovery runs against the clone, and the recovered FTL is audited
against a host-side oracle — then the original device continues,
untouched.  This makes a full stride-1 sweep O(N·recovery) instead of
O(N²·workload).

Everything here is a pure function of ``(spec, seed)``: sweeps run as
:class:`~repro.exp.cell.Cell`s, fan out across strides on a
:class:`~repro.exp.runner.Runner`, and cache their results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.injection import PlannedFaultInjector
from repro.faults.plan import FaultPlan
from repro.ssd.allocation import OutOfSpace
from repro.ssd.config import SsdConfig
from repro.ssd.ftl import Ftl, ReadOnlyError
from repro.ssd.mapping import UNMAPPED
from repro.ssd.recovery import recover_ftl

#: dedicated RNG stream for sweep workload draws.
_SWEEP_STREAM = 0x5EE9


@dataclass(frozen=True)
class SweepWorkload:
    """A deterministic mixed host-op stream for the sweep.

    Mix fractions select per-op kind (write / trim / read); LBAs and
    burst lengths are drawn uniformly.  ``flush_every`` inserts an
    explicit ``flush()`` (the durability barrier the oracle counts
    acknowledged-flushed state at) every that-many host ops.
    """

    ops: int = 2000
    seed: int = 7
    write_frac: float = 0.60
    trim_frac: float = 0.05
    flush_every: int = 16
    burst_max: int = 4

    def __post_init__(self) -> None:
        if self.ops < 1:
            raise ValueError("ops must be positive")
        if not 0.0 <= self.write_frac + self.trim_frac <= 1.0:
            raise ValueError("write_frac + trim_frac must be in [0, 1]")
        if self.flush_every < 1:
            raise ValueError("flush_every must be positive")
        if self.burst_max < 1:
            raise ValueError("burst_max must be positive")


def host_ops(workload: SweepWorkload, num_sectors: int) -> list[tuple[str, int, int]]:
    """The full ``(kind, lba, count)`` stream a workload denotes —
    a pure function of ``(workload, num_sectors)``."""
    rng = np.random.default_rng([workload.seed, _SWEEP_STREAM])
    ops: list[tuple[str, int, int]] = []
    for _ in range(workload.ops):
        u = float(rng.random())
        count = 1 + int(rng.integers(workload.burst_max))
        lba = int(rng.integers(max(1, num_sectors - count + 1)))
        if u < workload.write_frac:
            ops.append(("write", lba, count))
        elif u < workload.write_frac + workload.trim_frac:
            ops.append(("trim", lba, count))
        else:
            ops.append(("read", lba, count))
    return ops


class _DurabilityOracle:
    """Host-side model of what the drive has promised to keep."""

    def __init__(self) -> None:
        self.current: dict[int, str] = {}
        self.durable: dict[int, str] = {}
        self.trimmed_since_flush: set[int] = set()
        self.ever_written: set[int] = set()

    def write(self, lba: int, count: int) -> None:
        for lpn in range(lba, lba + count):
            self.current[lpn] = "written"
            self.ever_written.add(lpn)

    def trim(self, lba: int, count: int) -> None:
        for lpn in range(lba, lba + count):
            self.current[lpn] = "trimmed"
            self.trimmed_since_flush.add(lpn)

    def flush(self) -> None:
        self.durable = dict(self.current)
        self.trimmed_since_flush.clear()

    @property
    def must_mapped(self) -> set[int]:
        """Sectors recovery is REQUIRED to map: durably written and not
        touched by any trim since the durability barrier (a post-flush
        trim voids the guarantee — the data may legitimately be gone,
        or resurrect; neither outcome is a violation)."""
        return {
            lpn for lpn, state in self.durable.items()
            if state == "written" and lpn not in self.trimmed_since_flush
        }

    @property
    def trimmed_now(self) -> set[int]:
        return {lpn for lpn, s in self.current.items() if s == "trimmed"}


@dataclass(frozen=True)
class CrashSweepCell:
    """One sweep: a workload, cut every ``stride`` ops, optional faults
    (power-cut specs are stripped — the sweep owns cut placement)."""

    config: SsdConfig
    workload: SweepWorkload
    stride: int
    plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise ValueError("stride must be positive")


@dataclass(frozen=True)
class SweepResult:
    """Aggregate audit over every cut point of one sweep (picklable)."""

    stride: int
    ops_run: int
    cuts: int
    #: violations of contract side 1 — MUST be zero.
    lost_sectors: int
    #: violations of contract side 2 — MUST be zero.
    ghost_sectors: int
    #: recovered FTLs that failed invariants or the write probe — MUST be 0.
    recovery_failures: int
    #: documented-semantics occurrences (allowed, counted).
    resurrected_trims: int
    #: ECC losses recovery reported instead of resurrecting.
    unrecoverable_pages: int
    rain_reconstructed_pages: int
    sectors_recovered_total: int
    blocks_retired: int
    entered_read_only: bool
    out_of_space: bool
    #: the injector's complete firing log — the reproducibility witness
    #: compared across runs and across --jobs settings.
    fault_log: tuple[tuple[str, int, int], ...]
    #: first few violations, for debugging ("cut@137 lost lpn 42").
    detail: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return (self.lost_sectors == 0 and self.ghost_sectors == 0
                and self.recovery_failures == 0)


def run_crash_sweep_cell(spec: CrashSweepCell, seed: int = 0) -> SweepResult:
    """Run one crash-consistency sweep (a Cell function)."""
    config = spec.config
    injector = None
    if spec.plan is not None:
        injector = PlannedFaultInjector(spec.plan.without_power_cuts(),
                                        config.geometry)
    ftl = Ftl(config, injector=injector)
    oracle = _DurabilityOracle()
    ops = host_ops(spec.workload, ftl.num_lpns)

    cuts = lost = ghosts = resurrected = failures = 0
    unrecoverable = rain_pages = recovered_total = 0
    entered_read_only = out_of_space = False
    detail: list[str] = []
    ops_run = 0

    for index, (kind, lba, count) in enumerate(ops, start=1):
        try:
            if kind == "write":
                ftl.write(lba, count)
                oracle.write(lba, count)
            elif kind == "trim":
                ftl.trim(lba, count)
                oracle.trim(lba, count)
            else:
                ftl.read(lba, count)
            if index % spec.workload.flush_every == 0:
                ftl.flush()
                oracle.flush()
        except ReadOnlyError:
            entered_read_only = True
            break
        except OutOfSpace:
            out_of_space = True
            break
        ops_run = index
        if index % spec.stride != 0:
            continue

        cuts += 1
        recovered, report = recover_ftl(config, ftl.nand.clone())
        unrecoverable += report.unrecoverable_pages
        rain_pages += report.rain_reconstructed_pages
        recovered_total += report.sectors_recovered

        mapped = set(
            int(lpn) for lpn in np.nonzero(recovered.mapping.l2p != UNMAPPED)[0]
        )
        mapped |= set(recovered.pslc.index.keys())

        missing = oracle.must_mapped - mapped
        lost += len(missing)
        for lpn in sorted(missing)[:3]:
            if len(detail) < 12:
                detail.append(f"cut@{index} lost lpn {lpn}")
        ghost_set = mapped - oracle.ever_written
        ghosts += len(ghost_set)
        for lpn in sorted(ghost_set)[:3]:
            if len(detail) < 12:
                detail.append(f"cut@{index} ghost lpn {lpn}")
        resurrected += len(mapped & oracle.trimmed_now)

        try:
            recovered.check_invariants()
            probe = min(ftl.num_lpns - 1, 0)
            recovered.write(probe, 1)
            recovered.flush()
            recovered.check_invariants()
        except Exception as exc:  # noqa: BLE001 - audit, not control flow
            failures += 1
            if len(detail) < 12:
                detail.append(f"cut@{index} recovery unusable: {exc}")

    return SweepResult(
        stride=spec.stride,
        ops_run=ops_run,
        cuts=cuts,
        lost_sectors=lost,
        ghost_sectors=ghosts,
        recovery_failures=failures,
        resurrected_trims=resurrected,
        unrecoverable_pages=unrecoverable,
        rain_reconstructed_pages=rain_pages,
        sectors_recovered_total=recovered_total,
        blocks_retired=ftl.stats.blocks_retired,
        entered_read_only=entered_read_only,
        out_of_space=out_of_space,
        fault_log=tuple(injector.log) if injector is not None else (),
        detail=tuple(detail),
    )
