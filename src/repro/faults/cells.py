"""Experiment cells measuring the latency cost of graceful degradation.

The paper's thesis is that reliability machinery is a major source of
performance opacity: read retries, parity rebuilds, and bad-block
migrations all spend flash-op time the host never asked for.  These
cells quantify that — the same timed device, the same workload, with
and without a fault plan — so the benchmark can report clean vs
degraded latency distributions side by side.

Cell functions are module-level and pure in ``(spec, seed)`` so they
fan out through :class:`~repro.exp.runner.Runner` and cache cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.injection import PlannedFaultInjector
from repro.faults.plan import FaultPlan
from repro.ssd.config import SsdConfig

#: dedicated RNG stream for fault-latency workload draws.
_LATENCY_STREAM = 0xFA7E


@dataclass(frozen=True)
class FaultLatencyCell:
    """Random writes then reads on a timed device, optionally faulted.

    ``plan=None`` is the clean baseline; the same ``seed`` produces the
    same host-op sequence either way, so latency deltas are purely the
    degradation machinery's doing.
    """

    config: SsdConfig
    plan: FaultPlan | None = None
    writes: int = 600
    reads: int = 600
    seed: int = 11


@dataclass(frozen=True)
class FaultLatencyResult:
    """Latency distribution + degradation accounting (picklable)."""

    read_mean_us: float
    read_p99_us: float
    write_mean_us: float
    write_p99_us: float
    waf: float
    read_retries: int
    rain_reconstructions: int
    relocated_sectors: int
    uncorrectable_reads: int
    blocks_retired: int
    fault_log: tuple[tuple[str, int, int], ...]


def run_fault_latency_cell(spec: FaultLatencyCell,
                           seed: int = 0) -> FaultLatencyResult:
    from repro.ssd.timed import TimedSSD

    injector = None
    if spec.plan is not None:
        injector = PlannedFaultInjector(spec.plan, spec.config.geometry)
    device = TimedSSD(spec.config, injector=injector)
    rng = np.random.default_rng([spec.seed, _LATENCY_STREAM])
    lbas = rng.integers(device.num_sectors, size=spec.writes)

    write_lat = []
    for lba in lbas:
        write_lat.append(device.write_sectors(int(lba), 1).latency_us)
    device.flush()

    read_lat = []
    targets = rng.choice(lbas, size=spec.reads)
    for lba in targets:
        read_lat.append(device.read_sectors(int(lba), 1).latency_us)

    stats = device.ftl.stats
    return FaultLatencyResult(
        read_mean_us=float(np.mean(read_lat)),
        read_p99_us=float(np.percentile(read_lat, 99)),
        write_mean_us=float(np.mean(write_lat)),
        write_p99_us=float(np.percentile(write_lat, 99)),
        waf=device.smart.waf(),
        read_retries=stats.read_retries,
        rain_reconstructions=stats.rain_reconstructions,
        relocated_sectors=stats.relocated_sectors,
        uncorrectable_reads=stats.uncorrectable_reads,
        blocks_retired=stats.blocks_retired,
        fault_log=tuple(injector.log) if injector is not None else (),
    )
