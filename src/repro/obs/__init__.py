"""Observability: typed trace events and pluggable sinks.

The simulator's answer to the paper's transparency complaint, turned on
itself: the FTL, GC, write cache, pSLC buffer, wear leveler, timed
scheduler, and workload engine all emit typed events describing the
internal actions a real SSD hides.  By default every emitter points at
the shared :data:`NULL_SINK` and the instrumentation costs one attribute
check per event; attach a real sink (per device, via
``attach_sink``) to count, summarize, or stream the events as JSONL.

Quick use::

    from repro.obs import CounterSink
    device = SimulatedSSD(tiny())
    sink = CounterSink()
    device.attach_sink(sink)
    ...  # run a workload
    print(sink.summarize())
"""

from repro.obs.events import (
    EVENT_TYPES,
    BtreePageMerge,
    BtreePageSplit,
    CacheAdmit,
    CacheFlush,
    CacheStall,
    CompactionFinished,
    CompactionStarted,
    FlashOpIssued,
    GcFinished,
    GcStarted,
    GcVictimSelected,
    HostRequest,
    MemtableFlush,
    QueueDepth,
    ResourceBusy,
    SlcMigration,
    SstableWritten,
    TraceEvent,
    WearRebalance,
)
from repro.obs.sinks import (
    NULL_SINK,
    CounterSink,
    HistogramSink,
    JsonlSink,
    NullSink,
    TeeSink,
    TraceSink,
    load_trace,
    read_jsonl,
)
from repro.obs.summary import (
    TAIL_BUCKETS,
    BucketAttribution,
    attribute_tail,
    stall_reconciliation,
)

__all__ = [
    "TraceEvent", "EVENT_TYPES",
    "HostRequest", "QueueDepth", "CacheAdmit", "CacheFlush", "CacheStall",
    "GcVictimSelected", "GcStarted", "GcFinished",
    "FlashOpIssued", "ResourceBusy", "WearRebalance", "SlcMigration",
    "MemtableFlush", "SstableWritten",
    "CompactionStarted", "CompactionFinished",
    "BtreePageSplit", "BtreePageMerge",
    "TraceSink", "NullSink", "NULL_SINK",
    "CounterSink", "HistogramSink", "JsonlSink", "TeeSink",
    "read_jsonl", "load_trace",
    "BucketAttribution", "TAIL_BUCKETS",
    "attribute_tail", "stall_reconciliation",
]
