"""Typed trace events emitted by the simulator's hot paths.

The paper's complaint is that SSDs hide the internal events — GC victim
picks, cache flushes, pSLC migrations — that explain their performance.
The simulator used to hide them too: everything surfaced as end-of-run
aggregates.  These events are the missing per-occurrence record.  Each
is a frozen dataclass with

* ``NAME`` — the stable wire name used in JSONL traces and summaries,
* ``METRIC`` — the headline numeric field (if any) that
  :class:`~repro.obs.sinks.HistogramSink` builds distributions over.

Events deliberately carry plain ints/strings (no enums, no numpy
scalars) so a JSONL trace round-trips through ``json`` without custom
encoders and is byte-identical for identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar


@dataclass(frozen=True)
class TraceEvent:
    """Base class: every event serializes to a flat dict."""

    NAME: ClassVar[str] = "event"
    #: field holding the event's headline magnitude, or None.
    METRIC: ClassVar[str | None] = None

    def to_record(self) -> dict:
        record = {"event": self.NAME}
        for f in fields(self):
            record[f.name] = getattr(self, f.name)
        return record

    def metric_value(self) -> float | None:
        if self.METRIC is None:
            return None
        return float(getattr(self, self.METRIC))


# ----------------------------------------------------------------------
# Host / workload layer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HostRequest(TraceEvent):
    """One host command as the device saw it.

    Counter-mode devices emit it with the timing fields at their
    defaults; :class:`~repro.ssd.timed.TimedSSD` fills ``submit_ns``,
    ``latency_ns`` and, for writes, ``stall_ns`` (the portion of the
    latency spent waiting for cache space — the GC-induced tail).
    """

    NAME: ClassVar[str] = "host_request"
    METRIC: ClassVar[str] = "latency_ns"

    kind: str
    lba: int
    nsectors: int
    submit_ns: int = -1
    latency_ns: int = -1
    stall_ns: int = 0

    def metric_value(self) -> float | None:
        # Counter-mode devices leave the timing fields at the -1
        # sentinel; a sum/percentile over sentinels is not a metric.
        if self.latency_ns < 0:
            return None
        return float(self.latency_ns)


@dataclass(frozen=True)
class QueueDepth(TraceEvent):
    """Open-loop submission backlog after one arrival.

    Emitted by the workload engine's open-loop mode: ``depth`` counts
    the job's requests in flight (arrived at the device, not yet
    complete) including the one that just arrived.  Closed-loop jobs
    hold depth constant at ``iodepth`` by construction, so only
    arrival-driven submission emits this.
    """

    NAME: ClassVar[str] = "queue_depth"
    METRIC: ClassVar[str] = "depth"

    job: str
    at_ns: int
    depth: int


# ----------------------------------------------------------------------
# Write cache
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheAdmit(TraceEvent):
    """A host sector entered the RAM write cache.

    ``absorbed`` marks a write hit: an older pending copy of the same
    LPN was superseded, so one flash write was saved.
    """

    NAME: ClassVar[str] = "cache_admit"

    lpn: int
    absorbed: bool


@dataclass(frozen=True)
class CacheFlush(TraceEvent):
    """The cache handed a batch of sectors to the FTL for programming."""

    NAME: ClassVar[str] = "cache_flush"
    METRIC: ClassVar[str] = "sectors"

    sectors: int
    pending: int  #: sectors still buffered after the batch left


@dataclass(frozen=True)
class CacheStall(TraceEvent):
    """A timed write blocked on cache admission.

    Emitted only when the stall is non-zero: the cache was full and the
    request had to wait ``stall_ns`` for flush programs to complete on
    flash and release space.  This is the paper's §2.1 tail mechanism
    made visible.
    """

    NAME: ClassVar[str] = "cache_stall"
    METRIC: ClassVar[str] = "stall_ns"

    stall_ns: int
    occupied: int
    capacity: int


# ----------------------------------------------------------------------
# Garbage collection
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GcVictimSelected(TraceEvent):
    """The victim selector picked a block (before migration starts)."""

    NAME: ClassVar[str] = "gc_victim_selected"
    METRIC: ClassVar[str] = "valid_sectors"

    plane: int
    victim: int
    pool_size: int
    valid_sectors: int
    policy: str


@dataclass(frozen=True)
class GcStarted(TraceEvent):
    """Block collection began. ``trigger`` is ``foreground`` (the host
    write path hit the low watermark) or ``idle`` (background GC)."""

    NAME: ClassVar[str] = "gc_started"
    METRIC: ClassVar[str] = "valid_sectors"

    victim: int
    valid_sectors: int
    trigger: str
    #: victim-selection policy driving this collection ("" if unknown).
    policy: str = ""


@dataclass(frozen=True)
class GcFinished(TraceEvent):
    """Block collection completed (migration + erase or retirement)."""

    NAME: ClassVar[str] = "gc_finished"
    METRIC: ClassVar[str] = "migrated_sectors"

    victim: int
    migrated_sectors: int
    flash_ops: int
    erased: bool


# ----------------------------------------------------------------------
# Flash / maintenance layer
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FlashOpIssued(TraceEvent):
    """One physical flash operation left the FTL."""

    NAME: ClassVar[str] = "flash_op"
    METRIC: ClassVar[str] = "nbytes"

    kind: str  #: read / program / erase
    target: int  #: ppn (reads/programs) or block (erases)
    reason: str  #: host / gc / meta / parity / pslc / wear / refresh
    nbytes: int
    #: policy on whose behalf the op was issued (victim policy during
    #: GC, wear policy during leveling, "" on the plain host path).
    policy: str = ""


@dataclass(frozen=True)
class ResourceBusy(TraceEvent):
    """One busy interval on a named device resource (channel or die).

    Emitted by :class:`repro.sim.kernel.Resource` for every hold while a
    sink is attached: ``busy_ns`` is the occupied interval's length and
    ``wait_ns`` how long the operation queued behind earlier holds
    before starting — summing per resource gives the utilization and
    queueing record behind the timed figures.
    """

    NAME: ClassVar[str] = "resource_busy"
    METRIC: ClassVar[str] = "busy_ns"

    resource: str
    start_ns: int
    busy_ns: int
    wait_ns: int


@dataclass(frozen=True)
class WearRebalance(TraceEvent):
    """Static wear leveling chose a cold block to rotate back into
    circulation."""

    NAME: ClassVar[str] = "wear_rebalance"
    METRIC: ClassVar[str] = "spread"

    victim: int
    erase_count: int
    spread: int


@dataclass(frozen=True)
class SlcMigration(TraceEvent):
    """A pSLC buffer block was drained to the main (MLC/TLC) area."""

    NAME: ClassVar[str] = "slc_migration"
    METRIC: ClassVar[str] = "sectors"

    block: int
    sectors: int


# ----------------------------------------------------------------------
# Storage engines (repro.engines)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MemtableFlush(TraceEvent):
    """An LSM memtable reached its threshold and became an L0 SSTable."""

    NAME: ClassVar[str] = "memtable_flush"
    METRIC: ClassVar[str] = "sectors"

    entries: int
    sectors: int


@dataclass(frozen=True)
class SstableWritten(TraceEvent):
    """One SSTable materialized on flash (memtable flush or compaction
    output)."""

    NAME: ClassVar[str] = "sstable_written"
    METRIC: ClassVar[str] = "sectors"

    level: int
    entries: int
    sectors: int


@dataclass(frozen=True)
class CompactionStarted(TraceEvent):
    """Leveled compaction began merging ``sstables_in`` tables from
    ``level`` into ``level + 1``."""

    NAME: ClassVar[str] = "compaction_started"
    METRIC: ClassVar[str] = "sectors_in"

    level: int
    sstables_in: int
    sectors_in: int


@dataclass(frozen=True)
class CompactionFinished(TraceEvent):
    """A compaction completed: inputs were read and dropped, merged
    outputs written one level down.  ``sectors_written`` is the
    engine-level write amplification this compaction added."""

    NAME: ClassVar[str] = "compaction_finished"
    METRIC: ClassVar[str] = "sectors_written"

    level: int
    sstables_out: int
    sectors_read: int
    sectors_written: int


@dataclass(frozen=True)
class BtreePageSplit(TraceEvent):
    """A B-tree page overflowed and split in two."""

    NAME: ClassVar[str] = "btree_page_split"
    METRIC: ClassVar[str] = "depth"

    page: int
    depth: int


@dataclass(frozen=True)
class BtreePageMerge(TraceEvent):
    """An underfull B-tree page merged into its sibling."""

    NAME: ClassVar[str] = "btree_page_merge"
    METRIC: ClassVar[str] = "depth"

    page: int
    depth: int


# ----------------------------------------------------------------------
# Faults and graceful degradation (repro.faults)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """A planned fault fired at the NAND boundary.

    ``kind`` is one of the :data:`repro.faults.plan.FAULT_KINDS`;
    ``target`` is a PPN (program/read faults), block (erase faults) or
    die index (die_offline).
    """

    NAME: ClassVar[str] = "fault_injected"

    kind: str
    target: int


@dataclass(frozen=True)
class ReadRetry(TraceEvent):
    """One step of the read-retry ladder on an uncorrectable read.

    Real firmware re-reads with shifted sense voltages; each step costs
    an extra flash read and recovers a slice of the raw error budget.
    """

    NAME: ClassVar[str] = "read_retry"
    METRIC: ClassVar[str] = "step"

    ppn: int
    step: int
    success: bool


@dataclass(frozen=True)
class RainReconstruction(TraceEvent):
    """An uncorrectable page was rebuilt from its RAIN stripe peers.

    ``stripe_reads`` counts the peer pages read to reconstruct;
    ``relocated`` is True when the rebuilt sector was re-programmed to a
    fresh page (so the failing copy stops being load-bearing).
    """

    NAME: ClassVar[str] = "rain_reconstruction"
    METRIC: ClassVar[str] = "stripe_reads"

    ppn: int
    stripe_reads: int
    relocated: bool


@dataclass(frozen=True)
class BlockRetired(TraceEvent):
    """A grown bad block left circulation permanently.

    ``cause`` is ``program_fail`` or ``erase_fail``; ``migrated_sectors``
    counts the valid sectors moved off the failing block first.
    """

    NAME: ClassVar[str] = "block_retired"
    METRIC: ClassVar[str] = "migrated_sectors"

    block: int
    cause: str
    migrated_sectors: int


@dataclass(frozen=True)
class DegradedModeChanged(TraceEvent):
    """The FTL changed degradation state (e.g. entered read-only mode
    because the spare-block pool was exhausted by grown bad blocks)."""

    NAME: ClassVar[str] = "degraded_mode"

    mode: str
    reason: str
    spare_blocks: int


@dataclass(frozen=True)
class PowerCut(TraceEvent):
    """Power was cut (by the fault plan or the crash-consistency sweep).

    ``at_op`` is the host-op index after which power was lost (-1 when
    time-triggered); ``at_ns`` the virtual time (-1 in counter mode).
    """

    NAME: ClassVar[str] = "power_cut"

    at_op: int
    at_ns: int


#: Every event type, keyed by wire name (useful for decoding traces).
EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.NAME: cls
    for cls in (
        HostRequest, QueueDepth, CacheAdmit, CacheFlush, CacheStall,
        GcVictimSelected, GcStarted, GcFinished,
        FlashOpIssued, ResourceBusy, WearRebalance, SlcMigration,
        MemtableFlush, SstableWritten, CompactionStarted,
        CompactionFinished, BtreePageSplit, BtreePageMerge,
        FaultInjected, ReadRetry, RainReconstruction, BlockRetired,
        DegradedModeChanged, PowerCut,
    )
}
