"""Trace post-processing: turn an event stream into explanations.

The headline use is the paper's §2.1 question — *why* did the write
tail move?  In the timed simulator a write's latency decomposes exactly
into controller overhead plus cache-admission stall (the time spent
waiting for flush programs, i.e. for GC and queueing, to release cache
space), so a trace lets us attribute each percentile bucket's latency to
stall time and reconcile the p99 inflation against per-event stalls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

#: Percentile buckets used for tail attribution, as (low, high) bounds.
TAIL_BUCKETS: tuple[tuple[float, float], ...] = (
    (0.0, 50.0), (50.0, 90.0), (90.0, 99.0), (99.0, 99.9), (99.9, 100.0),
)


@dataclass(frozen=True)
class BucketAttribution:
    """Stall-time attribution for one percentile bucket of writes."""

    low: float
    high: float
    requests: int
    total_latency_ns: int
    total_stall_ns: int

    @property
    def stall_share(self) -> float:
        """Fraction of this bucket's latency that was admission stall."""
        if self.total_latency_ns <= 0:
            return 0.0
        return self.total_stall_ns / self.total_latency_ns

    def row(self) -> list:
        return [
            f"p{self.low:g}-p{self.high:g}",
            self.requests,
            round(self.total_latency_ns / 1e6, 3),
            round(self.total_stall_ns / 1e6, 3),
            round(self.stall_share, 3),
        ]


def write_records(records: Iterable[dict]) -> list[dict]:
    """The timed write requests in a trace (events with latency info)."""
    return [
        r for r in records
        if r.get("event") == "host_request"
        and r.get("kind") == "write"
        and r.get("latency_ns", -1) >= 0
    ]


def attribute_tail(
    records: Iterable[dict],
    buckets: Sequence[tuple[float, float]] = TAIL_BUCKETS,
) -> list[BucketAttribution]:
    """Split timed writes into latency-percentile buckets and report how
    much of each bucket's time was cache-admission stall."""
    writes = write_records(records)
    if not writes:
        return []
    latencies = np.asarray([r["latency_ns"] for r in writes], dtype=np.float64)
    order = np.argsort(latencies, kind="stable")
    n = len(order)
    out: list[BucketAttribution] = []
    for low, high in buckets:
        lo_idx = int(np.floor(n * low / 100.0))
        hi_idx = n if high >= 100.0 else int(np.floor(n * high / 100.0))
        chosen = [writes[i] for i in order[lo_idx:hi_idx]]
        out.append(BucketAttribution(
            low=low,
            high=high,
            requests=len(chosen),
            total_latency_ns=int(sum(r["latency_ns"] for r in chosen)),
            total_stall_ns=int(sum(r.get("stall_ns", 0) for r in chosen)),
        ))
    return out


def stall_reconciliation(records: Iterable[dict]) -> dict:
    """Cross-check the trace against itself.

    Returns totals that must agree by construction of the timed model:
    the sum of per-request ``stall_ns`` equals the sum of standalone
    ``cache_stall`` events, and every write's latency is
    ``stall_ns + controller overhead`` (so the overhead inferred from
    unstalled writes explains the whole distribution).
    """
    records = list(records)
    writes = write_records(records)
    stall_events = [r for r in records if r.get("event") == "cache_stall"]
    request_stall = sum(r.get("stall_ns", 0) for r in writes)
    event_stall = sum(r["stall_ns"] for r in stall_events)
    overheads = sorted(r["latency_ns"] - r.get("stall_ns", 0) for r in writes)
    return {
        "writes": len(writes),
        "stalled_writes": sum(1 for r in writes if r.get("stall_ns", 0) > 0),
        "request_stall_ns": int(request_stall),
        "event_stall_ns": int(event_stall),
        "overhead_ns": overheads[0] if overheads else 0,
        "overhead_uniform": len(set(overheads)) <= 1,
    }
