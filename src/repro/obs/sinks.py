"""Trace sinks: where instrumented components send their events.

The contract is deliberately tiny so the uninstrumented fast path stays
fast: every instrumented object holds an ``obs`` attribute that defaults
to the shared :data:`NULL_SINK`, and emission sites are guarded as::

    if self.obs.enabled:
        self.obs.emit(SomeEvent(...))

With the default sink that is one attribute check per event; no event
object is ever constructed.  Attaching any real sink flips ``enabled``
and the same sites start streaming typed events.

Sinks are single-threaded (as is the whole simulator) and composable via
:class:`TeeSink`.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import IO, Iterable, Iterator, Protocol, runtime_checkable

from repro.obs.events import TraceEvent


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive trace events."""

    enabled: bool

    def emit(self, event: TraceEvent) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """The default sink: permanently disabled, drops everything."""

    enabled = False

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - guarded out
        pass

    def close(self) -> None:
        pass


#: Shared default instance — ``obs is NULL_SINK`` means "uninstrumented".
NULL_SINK = NullSink()


class CounterSink:
    """Counts events by name and sums their headline metrics.

    The cheapest always-on sink: attach it to answer "how many GC
    cycles / cache stalls / flash ops did this run cause, and how big
    were they in total?".
    """

    enabled = True

    def __init__(self) -> None:
        self.counts: dict[str, int] = defaultdict(int)
        self.metric_totals: dict[str, float] = defaultdict(float)

    def emit(self, event: TraceEvent) -> None:
        self.counts[event.NAME] += 1
        value = event.metric_value()
        if value is not None:
            self.metric_totals[event.NAME] += value

    def close(self) -> None:
        pass

    def count(self, name: str) -> int:
        return self.counts.get(name, 0)

    def total(self, name: str) -> float:
        return self.metric_totals.get(name, 0.0)

    def summarize(self) -> list[list]:
        """Table rows: ``[event, count, metric sum]`` sorted by name
        (events that carried no metric show a dash)."""
        return [
            [name, self.counts[name],
             round(self.metric_totals[name], 3)
             if name in self.metric_totals else "-"]
            for name in sorted(self.counts)
        ]


class HistogramSink:
    """Collects each event's headline metric into per-event samples and
    summarizes them with the experiment-standard percentile stats."""

    enabled = True

    def __init__(self) -> None:
        self.samples: dict[str, list[float]] = defaultdict(list)
        self.counts: dict[str, int] = defaultdict(int)

    def emit(self, event: TraceEvent) -> None:
        self.counts[event.NAME] += 1
        value = event.metric_value()
        if value is not None:
            self.samples[event.NAME].append(value)

    def close(self) -> None:
        pass

    def summary_of(self, name: str):
        from repro.analysis.stats import summarize_latencies

        return summarize_latencies(self.samples.get(name, []))

    def summarize(self) -> list[list]:
        """Table rows: ``[event, count, mean, p50, p99, max]`` of each
        event's headline metric (events without a metric show dashes)."""
        rows: list[list] = []
        for name in sorted(self.counts):
            if name in self.samples:
                s = self.summary_of(name)
                rows.append([name, self.counts[name], round(s.mean, 1),
                             round(s.p50, 1), round(s.p99, 1), round(s.max, 1)])
            else:
                rows.append([name, self.counts[name], "-", "-", "-", "-"])
        return rows


class JsonlSink:
    """Streams events as JSON Lines — one flat object per event.

    Records are written in emission order with no timestamps or ids
    beyond what events carry, so two runs from the same seed produce
    byte-identical traces (the determinism tests rely on this).
    """

    enabled = True

    def __init__(self, destination: str | Path | IO[str]) -> None:
        if hasattr(destination, "write"):
            self._fh: IO[str] = destination  # type: ignore[assignment]
            self._owns = False
            self.path: Path | None = None
        else:
            self.path = Path(destination)
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "w")
            self._owns = True
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        self._fh.write(json.dumps(event.to_record(), separators=(",", ":")))
        self._fh.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._owns and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TeeSink:
    """Fans one event stream out to several sinks."""

    enabled = True

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = [s for s in sinks if s.enabled]

    def emit(self, event: TraceEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl(path: str | Path) -> Iterator[dict]:
    """Decode a :class:`JsonlSink` trace back into records."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def load_trace(path: str | Path) -> list[dict]:
    return list(read_jsonl(path))
