"""NAND timing parameters.

All times are integers in nanoseconds.  The figures follow typical
datasheet values for the respective cell technologies (tR = array read,
tPROG = array program, tBERS = block erase) plus a synchronous-ONFI bus
transfer rate expressed as nanoseconds per byte.

The timed simulator charges, per operation::

    program:  command/address cycles + data-in transfer (bus) + tPROG (die)
    read:     command/address cycles + tR (die) + data-out transfer (bus)
    erase:    command/address cycles + tBERS (die)
"""

from __future__ import annotations

from dataclasses import dataclass

US = 1_000
MS = 1_000_000


@dataclass(frozen=True)
class TimingProfile:
    """Timing of one flash cell mode."""

    name: str
    read_ns: int
    program_ns: int
    erase_ns: int
    #: bus transfer cost per data byte, in ns (e.g. 5 ns/B = 200 MB/s).
    bus_ns_per_byte: float
    #: fixed cost of a command or address cycle on the bus.
    cycle_ns: int = 25

    def transfer_ns(self, nbytes: int) -> int:
        """Bus time to move *nbytes* of data."""
        return int(round(nbytes * self.bus_ns_per_byte))


#: Single-level cell: fast and durable.
SLC = TimingProfile("slc", read_ns=25 * US, program_ns=250 * US, erase_ns=1500 * US,
                    bus_ns_per_byte=5.0)

#: Multi-level cell: the mainstream SATA-era profile (840 EVO class).
MLC = TimingProfile("mlc", read_ns=50 * US, program_ns=900 * US, erase_ns=3500 * US,
                    bus_ns_per_byte=5.0)

#: Triple-level cell: slow programs, used for the "aged budget drive" model.
TLC = TimingProfile("tlc", read_ns=75 * US, program_ns=1800 * US, erase_ns=5 * MS,
                    bus_ns_per_byte=5.0)

#: TLC blocks operated in pseudo-SLC mode (TurboWrite-style buffers).
PSLC = TimingProfile("pslc", read_ns=30 * US, program_ns=300 * US, erase_ns=2 * MS,
                     bus_ns_per_byte=5.0)

#: Asynchronous (ONFI 1.x era) interface, as on the OCZ Vertex II the
#: paper probes: ~40 MB/s bus, slow command cycles.  Probing experiments
#: use this profile — its strobe rates are within reach of real logic
#: analyzers.
ASYNC = TimingProfile("async", read_ns=50 * US, program_ns=900 * US,
                      erase_ns=3500 * US, bus_ns_per_byte=25.0, cycle_ns=100)

PROFILES: dict[str, TimingProfile] = {p.name: p for p in (SLC, MLC, TLC, PSLC, ASYNC)}


def profile(name: str) -> TimingProfile:
    """Look up a timing profile by name, with a helpful error."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown timing profile {name!r}; known: {known}") from None
