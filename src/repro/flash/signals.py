"""Pin-level signal model of the ONFI bus.

The probe experiment in the paper attaches a logic analyzer to a flash
package's pinouts and records the electrical conversation between the SSD
controller and the package.  This module is the *emitting* side: it renders
:class:`~repro.flash.onfi.OnfiOperation` executions into a
:class:`SignalTrace` — a compact, piecewise description of what each pin
does over time.

A trace is a sequence of :class:`BusSegment` values.  Within a segment the
control pins (CLE, ALE) are constant, and the latch strobe (WE# for input,
RE# for output) toggles ``strobes`` times at a uniform rate, latching one
byte per strobe.  R/B# busy periods are kept separately as
:class:`BusyWindow` spans.

The logic-analyzer model (:mod:`repro.core.probe.analyzer`) *samples* a
trace at a finite rate into plain numpy arrays — that sampled form is all
the decoder ever sees, so undersampling genuinely loses command bytes and
undercounts data strobes, mirroring the paper's point that probing needs
expensive high-rate capture hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.onfi import BusCycle, CycleKind, OnfiOperation
from repro.flash.timing import TimingProfile

#: DQ value reported for data-burst segments (payload bytes vary per strobe;
#: the emitter does not record each one).
DATA_DQ = -1


@dataclass(frozen=True)
class BusSegment:
    """A span of bus activity with constant control-pin state."""

    t0: int
    t1: int
    cle: bool
    ale: bool
    dq: int
    strobes: int
    reading: bool

    @property
    def strobe_period_ns(self) -> float:
        if self.strobes == 0:
            return float(self.t1 - self.t0)
        return (self.t1 - self.t0) / self.strobes


@dataclass(frozen=True)
class BusyWindow:
    """A period during which the package holds R/B# low."""

    t0: int
    t1: int


@dataclass
class SignalTrace:
    """Everything a probe wired to one package could observe."""

    segments: list[BusSegment] = field(default_factory=list)
    busy: list[BusyWindow] = field(default_factory=list)
    t_end: int = 0

    def extend(self, other: "SignalTrace") -> None:
        self.segments.extend(other.segments)
        self.busy.extend(other.busy)
        self.t_end = max(self.t_end, other.t_end)

    @property
    def duration_ns(self) -> int:
        return self.t_end

    def window(self, t0: int, t1: int) -> "SignalTrace":
        """Restrict the trace to ``[t0, t1)`` (segments clipped whole)."""
        trace = SignalTrace(t_end=min(self.t_end, t1))
        trace.segments = [s for s in self.segments if s.t0 < t1 and s.t1 > t0]
        trace.busy = [b for b in self.busy if b.t0 < t1 and b.t1 > t0]
        return trace


class SignalEmitter:
    """Renders timed ONFI operations into an accumulating trace."""

    def __init__(self, timing: TimingProfile) -> None:
        self.timing = timing
        self.trace = SignalTrace()

    def emit(self, op: OnfiOperation, start_ns: int) -> int:
        """Render one operation beginning at *start_ns*.

        Returns the time at which the operation (including any busy
        period and trailing data transfer) completes.
        """
        timing = self.timing
        now = start_ns
        busy_start: int | None = None
        for index, cycle in enumerate(op.cycles):
            if busy_start is not None:
                # R/B# was released before this cycle (e.g. read data-out).
                now = max(now, busy_start + op.busy_ns)
                self.trace.busy.append(BusyWindow(busy_start, now))
                busy_start = None
            duration = self._cycle_ns(cycle)
            self.trace.segments.append(self._segment(cycle, now, now + duration))
            now += duration
            if op.busy_after is not None and index == op.busy_after:
                busy_start = now
        if busy_start is not None:
            end = busy_start + op.busy_ns
            self.trace.busy.append(BusyWindow(busy_start, end))
            now = max(now, end)
        self.trace.t_end = max(self.trace.t_end, now)
        return now

    def _cycle_ns(self, cycle: BusCycle) -> int:
        if cycle.kind in (CycleKind.DATA_IN, CycleKind.DATA_OUT):
            return max(1, self.timing.transfer_ns(cycle.nbytes))
        return self.timing.cycle_ns

    @staticmethod
    def _segment(cycle: BusCycle, t0: int, t1: int) -> BusSegment:
        if cycle.kind is CycleKind.CMD:
            return BusSegment(t0, t1, cle=True, ale=False, dq=cycle.value,
                              strobes=1, reading=False)
        if cycle.kind is CycleKind.ADDR:
            return BusSegment(t0, t1, cle=False, ale=True, dq=cycle.value,
                              strobes=1, reading=False)
        if cycle.kind is CycleKind.DATA_IN:
            return BusSegment(t0, t1, cle=False, ale=False, dq=DATA_DQ,
                              strobes=cycle.nbytes, reading=False)
        return BusSegment(t0, t1, cle=False, ale=False, dq=DATA_DQ,
                          strobes=cycle.nbytes, reading=True)


def render_samples(
    trace: SignalTrace,
    sample_period_ns: float,
    t0: int = 0,
    t1: int | None = None,
    max_samples: int | None = None,
) -> dict[str, np.ndarray]:
    """Sample a trace's pins at a uniform rate, as a logic analyzer would.

    Returns arrays ``t`` (ns), ``cle``, ``ale``, ``we``, ``re`` (strobe
    levels), ``rb`` (ready/busy, 1 = ready), and ``dq`` (bus byte, with
    synthetic payload bytes during data bursts and 0xFF when idle).

    The strobe pins are square waves: one low-then-high excursion per
    latched byte.  A sampler slower than twice the strobe rate will miss
    excursions — by design.
    """
    if sample_period_ns <= 0:
        raise ValueError("sample_period_ns must be positive")
    end = trace.t_end if t1 is None else t1
    count = int(max(0, end - t0) / sample_period_ns)
    if max_samples is not None:
        count = min(count, max_samples)
    t = t0 + np.arange(count, dtype=np.float64) * sample_period_ns
    cle = np.zeros(count, dtype=np.uint8)
    ale = np.zeros(count, dtype=np.uint8)
    we = np.ones(count, dtype=np.uint8)
    re = np.ones(count, dtype=np.uint8)
    rb = np.ones(count, dtype=np.uint8)
    dq = np.full(count, 0xFF, dtype=np.int16)

    for seg in trace.segments:
        lo = np.searchsorted(t, seg.t0, side="left")
        hi = np.searchsorted(t, seg.t1, side="left")
        if hi <= lo:
            continue
        cle[lo:hi] = 1 if seg.cle else 0
        ale[lo:hi] = 1 if seg.ale else 0
        # Strobe square wave: low during the first half of each byte slot.
        period = seg.strobe_period_ns
        phase = (t[lo:hi] - seg.t0) % period
        low = (phase < period / 2).astype(np.uint8)
        if seg.reading:
            re[lo:hi] = 1 - low
        else:
            we[lo:hi] = 1 - low
        if seg.dq == DATA_DQ:
            # Deterministic pseudo-payload derived from the byte index.
            byte_index = ((t[lo:hi] - seg.t0) / period).astype(np.int64)
            dq[lo:hi] = ((byte_index * 131) ^ (byte_index >> 7)) & 0xFF
        else:
            dq[lo:hi] = seg.dq

    for window in trace.busy:
        lo = np.searchsorted(t, window.t0, side="left")
        hi = np.searchsorted(t, window.t1, side="left")
        rb[lo:hi] = 0

    return {"t": t, "cle": cle, "ale": ale, "we": we, "re": re, "rb": rb, "dq": dq}
