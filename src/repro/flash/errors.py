"""Flash reliability model: wear-dependent bit errors and op failures.

The paper lists page refreshing and self-healing among the "unpredictable
background operations" that make SSDs hard to model (§2.1).  To exercise
those code paths the simulator needs a reliability substrate: a raw
bit-error-rate (RBER) model that grows with program/erase wear and with
retention time, and an injectable program/erase failure mechanism that the
FTL's bad-block handling consumes.

The RBER shape follows the empirical literature (Cai et al., Schroeder et
al.): roughly exponential in wear, linear-ish in retention age, with
pseudo-SLC blocks an order of magnitude more robust.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ReliabilityModel:
    """Parameters of the error model for one cell mode.

    ``rber(cycles, retention_s)`` returns the expected raw bit error rate;
    the ECC engine corrects up to ``ecc_correctable`` errors per codeword
    of ``codeword_bits`` bits.  A page whose expected errors per codeword
    exceed the ECC limit is an uncorrectable read.
    """

    base_rber: float = 1e-8
    wear_exponent: float = 2.2
    rated_cycles: int = 3000
    retention_rber_per_day: float = 2e-7
    ecc_correctable: int = 40
    codeword_bits: int = 1024 * 8

    def rber(self, erase_cycles: int, retention_days: float = 0.0) -> float:
        """Expected raw bit error rate for a page."""
        wear = (max(0, erase_cycles) / self.rated_cycles) ** self.wear_exponent
        return self.base_rber * (1.0 + 100.0 * wear) + self.retention_rber_per_day * retention_days

    def expected_bit_errors(self, erase_cycles: int, retention_days: float = 0.0) -> float:
        return self.rber(erase_cycles, retention_days) * self.codeword_bits

    def is_correctable(self, erase_cycles: int, retention_days: float = 0.0) -> bool:
        return self.expected_bit_errors(erase_cycles, retention_days) <= self.ecc_correctable

    def refresh_deadline_days(self, erase_cycles: int) -> float:
        """Retention age at which a page crosses the ECC limit.

        This is what a retention-aware refresh policy (flash
        correct-and-refresh) schedules against.
        """
        margin = self.ecc_correctable / self.codeword_bits - self.rber(erase_cycles)
        if margin <= 0:
            return 0.0
        return margin / self.retention_rber_per_day


#: Default models per cell technology.
MLC_RELIABILITY = ReliabilityModel()
TLC_RELIABILITY = ReliabilityModel(base_rber=5e-8, rated_cycles=1000,
                                   retention_rber_per_day=6e-7)
PSLC_RELIABILITY = ReliabilityModel(base_rber=1e-9, rated_cycles=20000,
                                    retention_rber_per_day=2e-8)

#: Reliability model matching each timing profile's cell technology.
RELIABILITY_BY_TIMING: dict[str, ReliabilityModel] = {
    "slc": PSLC_RELIABILITY,
    "mlc": MLC_RELIABILITY,
    "tlc": TLC_RELIABILITY,
    "pslc": PSLC_RELIABILITY,
    "async": MLC_RELIABILITY,
}


class FailureInjector:
    """Deterministic, seedable program/erase failure source.

    A real FTL must tolerate program-status failures (mark the block bad,
    re-allocate, re-program).  Tests drive this injector to exercise the
    FTL's bad-block path.

    Subclasses (notably :class:`repro.faults.injection.PlannedFaultInjector`)
    extend the surface with clock/op hooks and uncorrectable-read faults;
    the base class implements them as no-ops so the FTL can call every
    hook unconditionally.
    """

    def __init__(self, seed: int = 0, program_fail_prob: float = 0.0,
                 erase_fail_prob: float = 0.0) -> None:
        self._rng = np.random.default_rng(seed)
        self.program_fail_prob = program_fail_prob
        self.erase_fail_prob = erase_fail_prob
        self.forced_program_failures: set[int] = set()
        self.forced_erase_failures: set[int] = set()
        self.program_failures = 0
        self.erase_failures = 0

    def force_program_failure(self, ppn: int) -> None:
        """Make the next program of *ppn* report a status failure."""
        self.forced_program_failures.add(ppn)

    def force_erase_failure(self, block_index: int) -> None:
        self.forced_erase_failures.add(block_index)

    def program_fails(self, ppn: int) -> bool:
        if ppn in self.forced_program_failures:
            self.forced_program_failures.discard(ppn)
            self.program_failures += 1
            return True
        if self.program_fail_prob > 0 and self._rng.random() < self.program_fail_prob:
            self.program_failures += 1
            return True
        return False

    def erase_fails(self, block_index: int) -> bool:
        if block_index in self.forced_erase_failures:
            self.forced_erase_failures.discard(block_index)
            self.erase_failures += 1
            return True
        if self.erase_fail_prob > 0 and self._rng.random() < self.erase_fail_prob:
            self.erase_failures += 1
            return True
        return False

    # ------------------------------------------------------------------
    # Extended fault surface (no-ops here; PlannedFaultInjector overrides)
    # ------------------------------------------------------------------

    def tick(self, op_index: int, now_ns: int = -1) -> None:
        """Advance the injector's notion of host progress: *op_index* is
        the host-op counter, *now_ns* the virtual clock when available."""

    def read_uncorrectable(self, ppn: int, lpn: int = -1) -> bool:
        """True when reading *ppn* (holding logical sector *lpn*) must
        report an uncorrectable ECC error regardless of the wear model."""
        return False

    @property
    def offline_dies(self) -> frozenset[int]:
        """Dies the fault plan has taken offline (empty by default)."""
        return frozenset()

    def power_cut_pending(self) -> bool:
        """True when a planned power-cut fault has triggered; the caller
        (sweep harness or timed device) performs the actual cut."""
        return False
