"""ONFI 2.x command-set model.

The Open NAND Flash Interface standardized how controllers talk to flash
packages: every operation is a sequence of *bus cycles* — command bytes
latched while CLE is high, address bytes latched while ALE is high, and
data bytes clocked in or out — followed, for array operations, by a busy
period signalled on the R/B# pin.

This module encodes controller-side operations into
:class:`OnfiOperation` objects (ordered cycle lists plus busy time).  The
signal layer (:mod:`repro.flash.signals`) renders these to pin waveforms;
the probe decoder (:mod:`repro.core.probe.decoder`) reconstructs them from
sampled waveforms, which is exactly what the paper does with a logic
analyzer on a Vertex II package.

Addressing follows the common 5-cycle scheme: two column-address cycles
(byte offset within the page) and three row-address cycles (page within
block and block within LUN).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.flash.geometry import Geometry, PhysicalAddress
from repro.flash.timing import TimingProfile


class Opcode(enum.IntEnum):
    """ONFI command bytes used by this model."""

    READ_1ST = 0x00
    READ_2ND = 0x30
    PROGRAM_1ST = 0x80
    PROGRAM_2ND = 0x10
    ERASE_1ST = 0x60
    ERASE_2ND = 0xD0
    READ_STATUS = 0x70
    READ_ID = 0x90
    PARAM_PAGE = 0xEC
    RESET = 0xFF


class CycleKind(enum.Enum):
    """What a single bus cycle carries."""

    CMD = "cmd"
    ADDR = "addr"
    DATA_IN = "data_in"  # controller -> flash (program payload)
    DATA_OUT = "data_out"  # flash -> controller (read payload)


@dataclass(frozen=True)
class BusCycle:
    """One unit of bus activity.

    ``value`` is the byte on DQ for CMD/ADDR cycles; for data cycles
    ``nbytes`` is the burst length and ``value`` is ignored (the signal
    layer synthesizes payload bytes).
    """

    kind: CycleKind
    value: int = 0
    nbytes: int = 1


@dataclass(frozen=True)
class OnfiOperation:
    """A complete chip-level operation as seen on the bus.

    ``busy_ns`` is how long R/B# stays low after the final launch command
    (tR, tPROG or tBERS); zero for pure bus operations such as RESET.
    ``busy_after`` is the index in ``cycles`` after which the busy period
    begins (reads go busy after READ_2ND, *before* data-out).
    """

    name: str
    cycles: tuple[BusCycle, ...]
    busy_ns: int = 0
    busy_after: int | None = None


# ----------------------------------------------------------------------
# Address packing
# ----------------------------------------------------------------------


def row_address(geometry: Geometry, addr: PhysicalAddress) -> int:
    """Pack plane/block/page into the 3-byte ONFI row address for a die.

    The row address is local to a LUN (die): the low bits select the page
    within the block and the high bits select the block, with the plane
    interleaved at the block level as real parts do.
    """
    blocks_in_die = geometry.planes_per_die * geometry.blocks_per_plane
    block_in_die = addr.plane * geometry.blocks_per_plane + addr.block
    if not 0 <= block_in_die < blocks_in_die:
        raise ValueError("block coordinates out of range for die")
    return block_in_die * geometry.pages_per_block + addr.page


def split_row(geometry: Geometry, row: int) -> tuple[int, int, int]:
    """Inverse of :func:`row_address`: returns ``(plane, block, page)``."""
    block_in_die, page = divmod(row, geometry.pages_per_block)
    plane, block = divmod(block_in_die, geometry.blocks_per_plane)
    return plane, block, page


def _addr_cycles(column: int, row: int, *, include_column: bool = True) -> list[BusCycle]:
    cycles = []
    if include_column:
        cycles.append(BusCycle(CycleKind.ADDR, column & 0xFF))
        cycles.append(BusCycle(CycleKind.ADDR, (column >> 8) & 0xFF))
    cycles.append(BusCycle(CycleKind.ADDR, row & 0xFF))
    cycles.append(BusCycle(CycleKind.ADDR, (row >> 8) & 0xFF))
    cycles.append(BusCycle(CycleKind.ADDR, (row >> 16) & 0xFF))
    return cycles


# ----------------------------------------------------------------------
# Operation encoders
# ----------------------------------------------------------------------


def encode_read(
    geometry: Geometry,
    timing: TimingProfile,
    addr: PhysicalAddress,
    nbytes: int | None = None,
) -> OnfiOperation:
    """Page read: 00h, 5 address cycles, 30h, busy tR, then data out."""
    nbytes = geometry.page_size if nbytes is None else nbytes
    cycles: list[BusCycle] = [BusCycle(CycleKind.CMD, Opcode.READ_1ST)]
    cycles += _addr_cycles(0, row_address(geometry, addr))
    cycles.append(BusCycle(CycleKind.CMD, Opcode.READ_2ND))
    busy_after = len(cycles) - 1
    cycles.append(BusCycle(CycleKind.DATA_OUT, nbytes=nbytes))
    return OnfiOperation(
        "read", tuple(cycles), busy_ns=timing.read_ns, busy_after=busy_after
    )


def encode_program(
    geometry: Geometry,
    timing: TimingProfile,
    addr: PhysicalAddress,
    nbytes: int | None = None,
) -> OnfiOperation:
    """Page program: 80h, 5 address cycles, data in, 10h, busy tPROG."""
    nbytes = geometry.page_size if nbytes is None else nbytes
    cycles: list[BusCycle] = [BusCycle(CycleKind.CMD, Opcode.PROGRAM_1ST)]
    cycles += _addr_cycles(0, row_address(geometry, addr))
    cycles.append(BusCycle(CycleKind.DATA_IN, nbytes=nbytes))
    cycles.append(BusCycle(CycleKind.CMD, Opcode.PROGRAM_2ND))
    return OnfiOperation(
        "program", tuple(cycles), busy_ns=timing.program_ns, busy_after=len(cycles) - 1
    )


def encode_erase(
    geometry: Geometry,
    timing: TimingProfile,
    addr: PhysicalAddress,
) -> OnfiOperation:
    """Block erase: 60h, 3 row-address cycles, D0h, busy tBERS."""
    cycles: list[BusCycle] = [BusCycle(CycleKind.CMD, Opcode.ERASE_1ST)]
    cycles += _addr_cycles(0, row_address(geometry, addr), include_column=False)
    cycles.append(BusCycle(CycleKind.CMD, Opcode.ERASE_2ND))
    return OnfiOperation(
        "erase", tuple(cycles), busy_ns=timing.erase_ns, busy_after=len(cycles) - 1
    )


def encode_reset() -> OnfiOperation:
    return OnfiOperation("reset", (BusCycle(CycleKind.CMD, Opcode.RESET),), busy_ns=500)


def encode_read_status() -> OnfiOperation:
    return OnfiOperation(
        "read_status",
        (
            BusCycle(CycleKind.CMD, Opcode.READ_STATUS),
            BusCycle(CycleKind.DATA_OUT, nbytes=1),
        ),
    )


def encode_read_id() -> OnfiOperation:
    """Read ID: 90h + one address cycle (00h), returns 5 ID bytes."""
    return OnfiOperation(
        "read_id",
        (
            BusCycle(CycleKind.CMD, Opcode.READ_ID),
            BusCycle(CycleKind.ADDR, 0x00),
            BusCycle(CycleKind.DATA_OUT, nbytes=5),
        ),
    )


def operation_bus_ns(op: OnfiOperation, timing: TimingProfile) -> int:
    """Total bus occupancy of an operation, excluding array busy time."""
    total = 0
    for cycle in op.cycles:
        if cycle.kind in (CycleKind.DATA_IN, CycleKind.DATA_OUT):
            total += timing.transfer_ns(cycle.nbytes)
        else:
            total += timing.cycle_ns
    return total
