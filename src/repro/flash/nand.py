"""The NAND flash array: state, constraints, and wear.

:class:`NandArray` models the *physics-level* contract of NAND flash that
every FTL must respect:

* a page can only be programmed when its block has been erased since the
  page was last programmed (erase-before-write);
* pages within a block must be programmed in order (ONFI sequential-page
  programming rule — violating it on a real MLC part corrupts neighbours);
* erases operate on whole blocks and wear the block out;
* each page carries a small out-of-band (OOB) area where the FTL stamps the
  logical page number so that mapping state can be rebuilt after power loss
  (and so a reverse engineer can correlate physical and logical addresses).

Every piece of per-page and per-block state is a flat numpy array —
including the full per-slot OOB records, which used to live in a
``dict[int, tuple]`` that cost one allocation per program and a Python
loop per erase.  ``program`` touches a handful of array cells, ``erase``
is pure slice resets, and ``clone`` is array copies; aggregate wear
figures (:meth:`wear_summary`) and per-block stats (:meth:`block_stats`)
are maintained incrementally instead of being recomputed by full scans
on every call.

The array stores metadata only by default.  Callers that care about byte
content (the firmware/RE experiments) can enable ``store_data`` which
keeps an actual ``bytes`` payload per programmed page.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flash.geometry import Geometry

#: Marker stored in the OOB LPN slot of a page that holds no logical data
#: (e.g. mapping metadata or parity).
NO_LPN = np.int64(-1)

#: ``page_oob_len`` value for a page whose writer stored no OOB record
#: (distinct from an explicitly-stored empty record of length 0).
_NO_OOB = -1


class FlashViolation(Exception):
    """The FTL attempted an operation NAND physics forbids."""


class PageState:
    """Per-page program state (values of :attr:`NandArray.page_state`)."""

    FREE = 0  #: erased, programmable
    PROGRAMMED = 1  #: holds data; must be erased before re-programming


@dataclass
class BlockStats:
    """Read-only summary of one block, for tests and RE tooling."""

    erase_count: int
    programmed_pages: int
    write_pointer: int


@dataclass
class NandCounters:
    """Raw operation counters maintained by the array itself.

    These are ground truth; the SMART counters exposed by the device
    (:mod:`repro.ssd.smart`) are derived from FTL-level accounting and may
    legitimately disagree with these in the same ways a real drive's
    counters disagree with its raw flash activity.
    """

    reads: int = 0
    programs: int = 0
    erases: int = 0
    program_failures: int = 0


class NandArray:
    """Mutable state of every page and block in the device.

    Parameters
    ----------
    geometry:
        Array dimensions.
    erase_limit:
        Rated program/erase cycles per block.  Erasing beyond the limit is
        permitted (real blocks do not stop working at the rated count) but
        raises the block's failure probability via
        :mod:`repro.flash.errors`.
    store_data:
        Keep actual page payloads.  Off by default to keep large
        simulations cheap.
    """

    def __init__(
        self,
        geometry: Geometry,
        *,
        erase_limit: int = 3000,
        store_data: bool = False,
    ) -> None:
        self.geometry = geometry
        self.erase_limit = erase_limit
        self.store_data = store_data
        # Derived geometry scalars, hoisted: the properties recompute
        # their products on every access and program/erase are hot.
        total_pages = self.total_pages = geometry.total_pages
        total_blocks = self.total_blocks = geometry.total_blocks
        self._pages_per_block = geometry.pages_per_block
        self.page_state = np.zeros(total_pages, dtype=np.uint8)
        #: OOB logical-page stamp for each physical page (NO_LPN when none).
        self.page_lpn = np.full(total_pages, NO_LPN, dtype=np.int64)
        #: OOB program sequence stamp (monotonic; -1 = free).  Real FTLs
        #: store this so the newest copy of a sector wins during
        #: power-loss recovery.
        self.page_seq = np.full(total_pages, -1, dtype=np.int64)
        self.block_erase_count = np.zeros(total_blocks, dtype=np.int32)
        #: Next programmable page index within each block.  Under the
        #: sequential-programming rule this doubles as the block's
        #: programmed-page count, which :meth:`block_stats` relies on.
        self.block_write_ptr = np.zeros(total_blocks, dtype=np.int32)
        #: Full per-slot OOB records: row ``ppn`` holds
        #: ``page_oob_len[ppn]`` valid entries (cells past the length are
        #: unspecified; ``page_oob_len == -1`` means no record stored).
        self._oob_slots = max(1, geometry.sectors_per_page)
        self.page_oob = np.full((total_pages, self._oob_slots), NO_LPN,
                                dtype=np.int64)
        self.page_oob_len = np.full(total_pages, _NO_OOB, dtype=np.int16)
        self.counters = NandCounters()
        self._data: dict[int, bytes] = {}
        self._program_counter = 0
        # Incremental wear aggregates (see wear_summary / reindex_wear):
        # running total / max / sum-of-squares plus an erase-count
        # histogram whose smallest occupied bucket is the minimum.
        self._erase_total = 0
        self._erase_max = 0
        self._erase_sumsq = 0
        self._erase_min = 0
        self._erase_hist: dict[int, int] = {0: total_blocks}

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def program(self, ppn: int, lpn: int = int(NO_LPN), data: bytes | None = None,
                oob: tuple[int, ...] | None = None) -> None:
        """Program one page, stamping *lpn* (and optionally a full
        per-slot *oob* record plus a monotonic sequence number) into its
        OOB area.

        Raises :class:`FlashViolation` if the page is not free or is not
        the block's next sequential page.
        """
        if not 0 <= ppn < self.total_pages:
            raise FlashViolation(f"program: ppn {ppn} out of range")
        if self.page_state[ppn] != PageState.FREE:
            raise FlashViolation(
                f"program: ppn {ppn} already programmed (erase-before-write)"
            )
        block, page = divmod(ppn, self._pages_per_block)
        expected = int(self.block_write_ptr[block])
        if page != expected:
            raise FlashViolation(
                f"program: block {block} requires sequential programming; "
                f"next page is {expected}, got {page}"
            )
        if data is not None and len(data) > self.geometry.page_size:
            raise FlashViolation(
                f"program: payload of {len(data)} bytes exceeds page size "
                f"{self.geometry.page_size}"
            )
        self.page_state[ppn] = PageState.PROGRAMMED
        self.page_lpn[ppn] = lpn
        self.page_seq[ppn] = self._program_counter
        self._program_counter += 1
        self.block_write_ptr[block] = page + 1
        self.counters.programs += 1
        if oob is not None:
            n = len(oob)
            if n > self._oob_slots:
                raise FlashViolation(
                    f"program: OOB record of {n} slots exceeds the page's "
                    f"{self._oob_slots} OOB slots"
                )
            self.page_oob[ppn, :n] = oob
            self.page_oob_len[ppn] = n
        if self.store_data and data is not None:
            self._data[ppn] = bytes(data)

    def read(self, ppn: int) -> tuple[int, bytes | None]:
        """Read one page; returns ``(oob_lpn, data_or_None)``.

        Reading a free page is legal on real hardware (it returns all-FF);
        here it returns ``(NO_LPN, None)``.
        """
        if not 0 <= ppn < self.total_pages:
            raise FlashViolation(f"read: ppn {ppn} out of range")
        self.counters.reads += 1
        if self.page_state[ppn] == PageState.FREE:
            return int(NO_LPN), None
        return int(self.page_lpn[ppn]), self._data.get(ppn)

    def erase(self, block_index: int) -> None:
        """Erase one block, freeing all its pages and incrementing wear.

        Pure slice resets over the page arrays; the wear aggregates are
        updated in O(1).
        """
        if not 0 <= block_index < self.total_blocks:
            raise FlashViolation(f"erase: block {block_index} out of range")
        start = block_index * self._pages_per_block
        end = start + self._pages_per_block
        self.page_state[start:end] = PageState.FREE
        self.page_lpn[start:end] = NO_LPN
        self.page_seq[start:end] = -1
        self.page_oob_len[start:end] = _NO_OOB
        self.block_write_ptr[block_index] = 0
        cycles = int(self.block_erase_count[block_index])
        self.block_erase_count[block_index] = cycles + 1
        self._bump_wear(cycles)
        self.counters.erases += 1
        if self.store_data:
            for ppn in range(start, end):
                self._data.pop(ppn, None)

    def clone(self) -> "NandArray":
        """Deep-copy the array state (pages, OOB, wear, counters).

        The crash-consistency sweep snapshots the NAND at each cut point
        and runs power-loss recovery against the copy while the original
        run continues — exactly what pulling the plug preserves: flash
        contents survive, RAM state does not.
        """
        twin = NandArray(self.geometry, erase_limit=self.erase_limit,
                         store_data=self.store_data)
        twin.page_state = self.page_state.copy()
        twin.page_lpn = self.page_lpn.copy()
        twin.page_seq = self.page_seq.copy()
        twin.block_erase_count = self.block_erase_count.copy()
        twin.block_write_ptr = self.block_write_ptr.copy()
        twin.page_oob = self.page_oob.copy()
        twin.page_oob_len = self.page_oob_len.copy()
        twin.counters = NandCounters(
            reads=self.counters.reads,
            programs=self.counters.programs,
            erases=self.counters.erases,
            program_failures=self.counters.program_failures,
        )
        twin._data = dict(self._data)
        twin._program_counter = self._program_counter
        twin._erase_total = self._erase_total
        twin._erase_max = self._erase_max
        twin._erase_sumsq = self._erase_sumsq
        twin._erase_min = self._erase_min
        twin._erase_hist = dict(self._erase_hist)
        return twin

    # ------------------------------------------------------------------
    # Incremental wear accounting
    # ------------------------------------------------------------------

    def _bump_wear(self, old_cycles: int) -> None:
        """Move one block from *old_cycles* to ``old_cycles + 1`` in the
        wear aggregates (O(1) amortized)."""
        new_cycles = old_cycles + 1
        self._erase_total += 1
        self._erase_sumsq += 2 * old_cycles + 1  # (c+1)^2 - c^2
        if new_cycles > self._erase_max:
            self._erase_max = new_cycles
        hist = self._erase_hist
        remaining = hist[old_cycles] - 1
        if remaining:
            hist[old_cycles] = remaining
        else:
            del hist[old_cycles]
        hist[new_cycles] = hist.get(new_cycles, 0) + 1
        if old_cycles == self._erase_min and old_cycles not in hist:
            # The minimum bucket emptied; the new minimum is the smallest
            # occupied bucket (rare — amortized over many erases).
            self._erase_min = min(hist)

    def reindex_wear(self) -> None:
        """Rebuild the incremental wear aggregates from
        ``block_erase_count``.

        Needed when erase counts change behind the array's back (tests
        that stage wear by writing ``block_erase_count`` directly).
        Mirrors the definition :meth:`erase` maintains incrementally.
        """
        erases = self.block_erase_count
        self._erase_total = int(erases.sum())
        self._erase_max = int(erases.max())
        self._erase_min = int(erases.min())
        self._erase_sumsq = int((erases.astype(np.int64) ** 2).sum())
        values, counts = np.unique(erases, return_counts=True)
        self._erase_hist = {int(v): int(c) for v, c in zip(values, counts)}

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def is_free(self, ppn: int) -> bool:
        return bool(self.page_state[ppn] == PageState.FREE)

    def read_oob(self, ppn: int) -> tuple[int, ...] | None:
        """Full per-slot OOB record of a page, if the writer stored one."""
        n = int(self.page_oob_len[ppn])
        if n < 0:
            return None
        return tuple(int(x) for x in self.page_oob[ppn, :n])

    def block_stats(self, block_index: int) -> BlockStats:
        """O(1): under the sequential-programming rule a block's
        programmed-page count *is* its write pointer (pages free only by
        whole-block erase, which resets both)."""
        return BlockStats(
            erase_count=int(self.block_erase_count[block_index]),
            programmed_pages=int(self.block_write_ptr[block_index]),
            write_pointer=int(self.block_write_ptr[block_index]),
        )

    def lpns_in_block(self, block_index: int) -> np.ndarray:
        """OOB LPN stamps of all pages in a block (NO_LPN for free pages)."""
        geometry = self.geometry
        start = block_index * geometry.pages_per_block
        return self.page_lpn[start : start + geometry.pages_per_block].copy()

    def wear_summary(self) -> dict[str, float]:
        """Aggregate wear figures used by wear-leveling tests.

        O(1): served from the incrementally-maintained aggregates, not by
        scanning ``block_erase_count`` (call :meth:`reindex_wear` first if
        erase counts were staged directly).
        """
        n = self.geometry.total_blocks
        total = self._erase_total
        mean = total / n
        variance = self._erase_sumsq / n - mean * mean
        if variance < 0.0:  # floating-point guard for near-zero spread
            variance = 0.0
        return {
            "min": float(self._erase_min),
            "max": float(self._erase_max),
            "mean": float(mean),
            "std": float(np.sqrt(variance)),
            "total": float(total),
        }
