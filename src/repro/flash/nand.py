"""The NAND flash array: state, constraints, and wear.

:class:`NandArray` models the *physics-level* contract of NAND flash that
every FTL must respect:

* a page can only be programmed when its block has been erased since the
  page was last programmed (erase-before-write);
* pages within a block must be programmed in order (ONFI sequential-page
  programming rule — violating it on a real MLC part corrupts neighbours);
* erases operate on whole blocks and wear the block out;
* each page carries a small out-of-band (OOB) area where the FTL stamps the
  logical page number so that mapping state can be rebuilt after power loss
  (and so a reverse engineer can correlate physical and logical addresses).

The array is numpy-backed and stores metadata only by default.  Callers
that care about byte content (the firmware/RE experiments) can enable
``store_data`` which keeps an actual ``bytes`` payload per programmed page.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.flash.geometry import Geometry

#: Marker stored in the OOB LPN slot of a page that holds no logical data
#: (e.g. mapping metadata or parity).
NO_LPN = np.int64(-1)


class FlashViolation(Exception):
    """The FTL attempted an operation NAND physics forbids."""


class PageState:
    """Per-page program state (values of :attr:`NandArray.page_state`)."""

    FREE = 0  #: erased, programmable
    PROGRAMMED = 1  #: holds data; must be erased before re-programming


@dataclass
class BlockStats:
    """Read-only summary of one block, for tests and RE tooling."""

    erase_count: int
    programmed_pages: int
    write_pointer: int


@dataclass
class NandCounters:
    """Raw operation counters maintained by the array itself.

    These are ground truth; the SMART counters exposed by the device
    (:mod:`repro.ssd.smart`) are derived from FTL-level accounting and may
    legitimately disagree with these in the same ways a real drive's
    counters disagree with its raw flash activity.
    """

    reads: int = 0
    programs: int = 0
    erases: int = 0
    program_failures: int = 0


class NandArray:
    """Mutable state of every page and block in the device.

    Parameters
    ----------
    geometry:
        Array dimensions.
    erase_limit:
        Rated program/erase cycles per block.  Erasing beyond the limit is
        permitted (real blocks do not stop working at the rated count) but
        raises the block's failure probability via
        :mod:`repro.flash.errors`.
    store_data:
        Keep actual page payloads.  Off by default to keep large
        simulations cheap.
    """

    def __init__(
        self,
        geometry: Geometry,
        *,
        erase_limit: int = 3000,
        store_data: bool = False,
    ) -> None:
        self.geometry = geometry
        self.erase_limit = erase_limit
        self.store_data = store_data
        total_pages = geometry.total_pages
        total_blocks = geometry.total_blocks
        self.page_state = np.zeros(total_pages, dtype=np.uint8)
        #: OOB logical-page stamp for each physical page (NO_LPN when none).
        self.page_lpn = np.full(total_pages, NO_LPN, dtype=np.int64)
        #: OOB program sequence stamp (monotonic; -1 = free).  Real FTLs
        #: store this so the newest copy of a sector wins during
        #: power-loss recovery.
        self.page_seq = np.full(total_pages, -1, dtype=np.int64)
        self.block_erase_count = np.zeros(total_blocks, dtype=np.int32)
        #: Next programmable page index within each block.
        self.block_write_ptr = np.zeros(total_blocks, dtype=np.int32)
        self.counters = NandCounters()
        self._data: dict[int, bytes] = {}
        #: full per-slot OOB records (tuple of slot LPN codes), when the
        #: writer provides them.
        self._oob: dict[int, tuple[int, ...]] = {}
        self._program_counter = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def program(self, ppn: int, lpn: int = int(NO_LPN), data: bytes | None = None,
                oob: tuple[int, ...] | None = None) -> None:
        """Program one page, stamping *lpn* (and optionally a full
        per-slot *oob* record plus a monotonic sequence number) into its
        OOB area.

        Raises :class:`FlashViolation` if the page is not free or is not
        the block's next sequential page.
        """
        geometry = self.geometry
        if not 0 <= ppn < geometry.total_pages:
            raise FlashViolation(f"program: ppn {ppn} out of range")
        if self.page_state[ppn] != PageState.FREE:
            raise FlashViolation(
                f"program: ppn {ppn} already programmed (erase-before-write)"
            )
        block, page = divmod(ppn, geometry.pages_per_block)
        expected = int(self.block_write_ptr[block])
        if page != expected:
            raise FlashViolation(
                f"program: block {block} requires sequential programming; "
                f"next page is {expected}, got {page}"
            )
        if data is not None and len(data) > geometry.page_size:
            raise FlashViolation(
                f"program: payload of {len(data)} bytes exceeds page size "
                f"{geometry.page_size}"
            )
        self.page_state[ppn] = PageState.PROGRAMMED
        self.page_lpn[ppn] = lpn
        self.page_seq[ppn] = self._program_counter
        self._program_counter += 1
        self.block_write_ptr[block] = page + 1
        self.counters.programs += 1
        if oob is not None:
            self._oob[ppn] = tuple(int(x) for x in oob)
        if self.store_data and data is not None:
            self._data[ppn] = bytes(data)

    def read(self, ppn: int) -> tuple[int, bytes | None]:
        """Read one page; returns ``(oob_lpn, data_or_None)``.

        Reading a free page is legal on real hardware (it returns all-FF);
        here it returns ``(NO_LPN, None)``.
        """
        if not 0 <= ppn < self.geometry.total_pages:
            raise FlashViolation(f"read: ppn {ppn} out of range")
        self.counters.reads += 1
        if self.page_state[ppn] == PageState.FREE:
            return int(NO_LPN), None
        return int(self.page_lpn[ppn]), self._data.get(ppn)

    def erase(self, block_index: int) -> None:
        """Erase one block, freeing all its pages and incrementing wear."""
        geometry = self.geometry
        if not 0 <= block_index < geometry.total_blocks:
            raise FlashViolation(f"erase: block {block_index} out of range")
        start = block_index * geometry.pages_per_block
        end = start + geometry.pages_per_block
        self.page_state[start:end] = PageState.FREE
        self.page_lpn[start:end] = NO_LPN
        self.page_seq[start:end] = -1
        self.block_write_ptr[block_index] = 0
        self.block_erase_count[block_index] += 1
        self.counters.erases += 1
        for ppn in range(start, end):
            self._oob.pop(ppn, None)
            if self.store_data:
                self._data.pop(ppn, None)

    def clone(self) -> "NandArray":
        """Deep-copy the array state (pages, OOB, wear, counters).

        The crash-consistency sweep snapshots the NAND at each cut point
        and runs power-loss recovery against the copy while the original
        run continues — exactly what pulling the plug preserves: flash
        contents survive, RAM state does not.
        """
        twin = NandArray(self.geometry, erase_limit=self.erase_limit,
                         store_data=self.store_data)
        twin.page_state = self.page_state.copy()
        twin.page_lpn = self.page_lpn.copy()
        twin.page_seq = self.page_seq.copy()
        twin.block_erase_count = self.block_erase_count.copy()
        twin.block_write_ptr = self.block_write_ptr.copy()
        twin.counters = NandCounters(
            reads=self.counters.reads,
            programs=self.counters.programs,
            erases=self.counters.erases,
            program_failures=self.counters.program_failures,
        )
        twin._data = dict(self._data)
        twin._oob = dict(self._oob)
        twin._program_counter = self._program_counter
        return twin

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    def is_free(self, ppn: int) -> bool:
        return bool(self.page_state[ppn] == PageState.FREE)

    def read_oob(self, ppn: int) -> tuple[int, ...] | None:
        """Full per-slot OOB record of a page, if the writer stored one."""
        return self._oob.get(ppn)

    def block_stats(self, block_index: int) -> BlockStats:
        geometry = self.geometry
        start = block_index * geometry.pages_per_block
        end = start + geometry.pages_per_block
        programmed = int(
            np.count_nonzero(self.page_state[start:end] == PageState.PROGRAMMED)
        )
        return BlockStats(
            erase_count=int(self.block_erase_count[block_index]),
            programmed_pages=programmed,
            write_pointer=int(self.block_write_ptr[block_index]),
        )

    def lpns_in_block(self, block_index: int) -> np.ndarray:
        """OOB LPN stamps of all pages in a block (NO_LPN for free pages)."""
        geometry = self.geometry
        start = block_index * geometry.pages_per_block
        return self.page_lpn[start : start + geometry.pages_per_block].copy()

    def wear_summary(self) -> dict[str, float]:
        """Aggregate wear figures used by wear-leveling tests."""
        erases = self.block_erase_count
        return {
            "min": float(erases.min()),
            "max": float(erases.max()),
            "mean": float(erases.mean()),
            "std": float(erases.std()),
            "total": float(erases.sum()),
        }
