"""Physical geometry of a NAND flash subsystem.

An SSD's flash is organized as a shallow tree::

    channel -> chip (way) -> die (LUN) -> plane -> block -> page

A *channel* is a shared ONFI bus; all chips on a channel serialize their
data transfers.  A *die* is the unit of array concurrency: one die executes
one read/program/erase at a time.  A *plane* allows multi-plane commands
within a die (not modeled as concurrent here; planes matter for allocation
striping).  A *block* is the erase unit; a *page* the program unit.

Addresses
---------
The library uses two interchangeable representations:

``PhysicalAddress``
    A named tuple ``(channel, chip, die, plane, block, page)``.

*PPN* (physical page number)
    A flat non-negative integer in ``range(geometry.total_pages)``.  The
    flat form is what numpy-backed structures index by.  The packing order
    is page-major within block, block within plane, and so on up the tree,
    so consecutive PPNs within a block are consecutive pages.

Similarly a flat *block index* in ``range(geometry.total_blocks)`` names a
block globally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, NamedTuple


class PhysicalAddress(NamedTuple):
    """Fully-qualified address of one flash page."""

    channel: int
    chip: int
    die: int
    plane: int
    block: int
    page: int


@dataclass(frozen=True)
class Geometry:
    """Dimensions of the flash array and page-size parameters.

    The defaults describe a small, laptop-scale simulated device; the
    device presets in :mod:`repro.ssd.presets` override them.
    """

    channels: int = 8
    chips_per_channel: int = 1
    dies_per_chip: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 128
    pages_per_block: int = 64
    page_size: int = 16384
    oob_size: int = 1024
    sector_size: int = 4096

    def __post_init__(self) -> None:
        for name in (
            "channels",
            "chips_per_channel",
            "dies_per_chip",
            "planes_per_die",
            "blocks_per_plane",
            "pages_per_block",
            "page_size",
            "sector_size",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"geometry field {name} must be positive, got {value}")
        if self.oob_size < 0:
            raise ValueError("oob_size must be non-negative")
        if self.page_size % self.sector_size != 0:
            raise ValueError(
                f"page_size ({self.page_size}) must be a multiple of "
                f"sector_size ({self.sector_size})"
            )

    # ------------------------------------------------------------------
    # Derived sizes
    # ------------------------------------------------------------------

    @property
    def dies_total(self) -> int:
        """Number of dies (units of array concurrency) in the device."""
        return self.channels * self.chips_per_channel * self.dies_per_chip

    @property
    def planes_total(self) -> int:
        return self.dies_total * self.planes_per_die

    @property
    def total_blocks(self) -> int:
        return self.planes_total * self.blocks_per_plane

    @property
    def total_pages(self) -> int:
        return self.total_blocks * self.pages_per_block

    @property
    def capacity_bytes(self) -> int:
        """Raw flash capacity (data area only, excluding OOB)."""
        return self.total_pages * self.page_size

    @property
    def sectors_per_page(self) -> int:
        return self.page_size // self.sector_size

    @property
    def block_bytes(self) -> int:
        return self.pages_per_block * self.page_size

    # ------------------------------------------------------------------
    # Address packing
    # ------------------------------------------------------------------

    def ppn(self, addr: PhysicalAddress) -> int:
        """Flatten a :class:`PhysicalAddress` to a physical page number."""
        self._check(addr)
        block_index = self.block_index(addr)
        return block_index * self.pages_per_block + addr.page

    def address(self, ppn: int) -> PhysicalAddress:
        """Expand a flat PPN back into a :class:`PhysicalAddress`."""
        if not 0 <= ppn < self.total_pages:
            raise ValueError(f"ppn {ppn} out of range [0, {self.total_pages})")
        block_index, page = divmod(ppn, self.pages_per_block)
        return self.block_address(block_index)._replace(page=page)

    def block_index(self, addr: PhysicalAddress) -> int:
        """Flatten the block coordinates of *addr* to a global block index."""
        self._check(addr)
        index = addr.channel
        index = index * self.chips_per_channel + addr.chip
        index = index * self.dies_per_chip + addr.die
        index = index * self.planes_per_die + addr.plane
        index = index * self.blocks_per_plane + addr.block
        return index

    def block_address(self, block_index: int) -> PhysicalAddress:
        """Expand a global block index to an address with ``page=0``."""
        if not 0 <= block_index < self.total_blocks:
            raise ValueError(
                f"block index {block_index} out of range [0, {self.total_blocks})"
            )
        rest, block = divmod(block_index, self.blocks_per_plane)
        rest, plane = divmod(rest, self.planes_per_die)
        rest, die = divmod(rest, self.dies_per_chip)
        channel, chip = divmod(rest, self.chips_per_channel)
        return PhysicalAddress(channel, chip, die, plane, block, 0)

    def die_index(self, addr: PhysicalAddress) -> int:
        """Flatten the die coordinates of *addr* (unit of array busy time)."""
        index = addr.channel
        index = index * self.chips_per_channel + addr.chip
        index = index * self.dies_per_chip + addr.die
        return index

    def die_of_block(self, block_index: int) -> int:
        return block_index // (self.planes_per_die * self.blocks_per_plane)

    def channel_of_block(self, block_index: int) -> int:
        blocks_per_channel = self.total_blocks // self.channels
        return block_index // blocks_per_channel

    def die_of_ppn(self, ppn: int) -> int:
        return self.die_of_block(ppn // self.pages_per_block)

    def channel_of_ppn(self, ppn: int) -> int:
        return self.channel_of_block(ppn // self.pages_per_block)

    # ------------------------------------------------------------------
    # Iteration helpers
    # ------------------------------------------------------------------

    def iter_plane_coords(self) -> Iterator[tuple[int, int, int, int]]:
        """Yield every ``(channel, chip, die, plane)`` coordinate."""
        for channel in range(self.channels):
            for chip in range(self.chips_per_channel):
                for die in range(self.dies_per_chip):
                    for plane in range(self.planes_per_die):
                        yield channel, chip, die, plane

    def _check(self, addr: PhysicalAddress) -> None:
        limits = (
            self.channels,
            self.chips_per_channel,
            self.dies_per_chip,
            self.planes_per_die,
            self.blocks_per_plane,
            self.pages_per_block,
        )
        for value, limit, name in zip(addr, limits, PhysicalAddress._fields):
            if not 0 <= value < limit:
                raise ValueError(
                    f"address field {name}={value} out of range [0, {limit})"
                )
