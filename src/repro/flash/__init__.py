"""NAND flash substrate: geometry, array state, ONFI bus, timing, signals."""

from repro.flash.geometry import Geometry, PhysicalAddress
from repro.flash.nand import (
    NO_LPN,
    FlashViolation,
    NandArray,
    NandCounters,
    PageState,
)
from repro.flash.timing import MLC, PSLC, SLC, TLC, TimingProfile, profile

__all__ = [
    "Geometry",
    "PhysicalAddress",
    "NandArray",
    "NandCounters",
    "FlashViolation",
    "PageState",
    "NO_LPN",
    "TimingProfile",
    "profile",
    "SLC",
    "MLC",
    "TLC",
    "PSLC",
]
