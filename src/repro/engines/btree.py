"""A B+-tree engine atop the block device.

The update-in-place counterpoint to :mod:`repro.engines.lsm`: records
live in fixed-size pages, every put is a read-modify-write of the leaf
that owns the key, and structural churn comes from page splits (inserts)
and merges (deletes) — random single-page writes scattered over the page
pool, where the LSM writes long sequential extents and trims whole
tables.  Same logical ops, opposite block traffic; the contrast is what
makes engine structure × device policy measurable.

Internal nodes are pinned in the buffer pool (real engines cache the
upper levels), so reads cost one leaf-page read and writes one leaf
read-modify-write plus any split/merge page writes.  Freed pages are
trimmed.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from repro.engines.kv import KvEngine, YcsbSpec
from repro.obs.events import BtreePageMerge, BtreePageSplit


@dataclass(frozen=True)
class BTreeConfig:
    """Page geometry knobs.

    ``leaf_capacity`` is keys per leaf; a leaf dropping below
    ``leaf_capacity // 4`` after a delete merges with a sibling when the
    combined load fits.
    """

    page_sectors: int = 4
    leaf_capacity: int = 16
    node_capacity: int = 16

    def __post_init__(self) -> None:
        if self.page_sectors < 1:
            raise ValueError("page_sectors must be >= 1")
        if self.leaf_capacity < 4 or self.node_capacity < 4:
            raise ValueError("leaf/node capacity must be >= 4")

    @property
    def merge_threshold(self) -> int:
        return self.leaf_capacity // 4


@dataclass
class BTreeStats:
    """Structure and traffic accounting."""

    page_reads: int = 0
    page_writes: int = 0
    splits: int = 0
    merges: int = 0
    pages_allocated: int = 0
    pages_freed: int = 0


@dataclass(eq=False)
class _Page:
    """One node: a sorted key list plus children (internal) or values
    (leaf, parallel to ``keys``)."""

    page_id: int
    leaf: bool
    keys: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)
    values: list[int] = field(default_factory=list)


class BTreeEngine(KvEngine):
    """The B+-tree engine as a request source."""

    ENGINE = "btree"

    def __init__(self, spec: YcsbSpec, num_sectors: int,
                 config: BTreeConfig | None = None, **kwargs) -> None:
        super().__init__(spec, num_sectors, **kwargs)
        self.config = config or BTreeConfig()
        cfg = self.config
        self._num_pages = num_sectors // cfg.page_sectors
        min_pages = 2 * max(1, spec.records // cfg.merge_threshold) + 4
        if self._num_pages < min_pages:
            raise ValueError(
                f"btree: {spec.records} records need >= {min_pages} "
                f"pages of {cfg.page_sectors} sectors, device has "
                f"{self._num_pages}")
        self.btree_stats = BTreeStats()
        self._free = list(range(self._num_pages - 1, -1, -1))  # pop() ascending
        self._pages: dict[int, _Page] = {}
        root = self._alloc_page(leaf=True)
        self._root_id = root.page_id
        self._write_page(root)

    # -- page pool ---------------------------------------------------------

    def _alloc_page(self, leaf: bool) -> _Page:
        if not self._free:
            raise RuntimeError("btree: page pool exhausted")
        page = _Page(self._free.pop(), leaf)
        self._pages[page.page_id] = page
        self.btree_stats.pages_allocated += 1
        return page

    def _free_page(self, page: _Page) -> None:
        del self._pages[page.page_id]
        self._free.append(page.page_id)
        self._free.sort(reverse=True)  # keep pop() returning the lowest id
        self.btree_stats.pages_freed += 1
        self._trim(self._lba(page.page_id), self.config.page_sectors)

    def _lba(self, page_id: int) -> int:
        return page_id * self.config.page_sectors

    def _read_page(self, page: _Page) -> None:
        self._read(self._lba(page.page_id), self.config.page_sectors)
        self.btree_stats.page_reads += 1

    def _write_page(self, page: _Page) -> None:
        self._write(self._lba(page.page_id), self.config.page_sectors)
        self.btree_stats.page_writes += 1

    # -- traversal ---------------------------------------------------------

    def _path_to(self, key: int) -> list[_Page]:
        """Root-to-leaf path.  Internal nodes are buffer-pool resident
        (no I/O); only the leaf costs a page read, charged by callers."""
        path = [self._pages[self._root_id]]
        while not path[-1].leaf:
            node = path[-1]
            idx = bisect_right(node.keys, key)
            path.append(self._pages[node.children[idx]])
        return path

    @property
    def depth(self) -> int:
        depth = 1
        node = self._pages[self._root_id]
        while not node.leaf:
            depth += 1
            node = self._pages[node.children[0]]
        return depth

    # -- key-value surface -------------------------------------------------

    def get(self, key: int) -> int | None:
        leaf = self._path_to(key)[-1]
        self._read_page(leaf)
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def put(self, key: int, version: int) -> None:
        path = self._path_to(key)
        leaf = path[-1]
        self._read_page(leaf)  # read-modify-write
        idx = bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = version
        else:
            leaf.keys.insert(idx, key)
            leaf.values.insert(idx, version)
        self._write_page(leaf)
        if len(leaf.keys) > self.config.leaf_capacity:
            self._split(path)

    def delete(self, key: int) -> None:
        path = self._path_to(key)
        leaf = path[-1]
        self._read_page(leaf)
        idx = bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return
        del leaf.keys[idx]
        del leaf.values[idx]
        self._write_page(leaf)
        if (len(leaf.keys) < self.config.merge_threshold
                and len(path) > 1):
            self._maybe_merge(path)

    # -- splits ------------------------------------------------------------

    def _split(self, path: list[_Page]) -> None:
        node = path[-1]
        mid = len(node.keys) // 2
        sibling = self._alloc_page(node.leaf)
        if node.leaf:
            sep = node.keys[mid]
            sibling.keys = node.keys[mid:]
            sibling.values = node.values[mid:]
            del node.keys[mid:]
            del node.values[mid:]
        else:
            # internal split: the middle key moves up, not right
            sep = node.keys[mid]
            sibling.keys = node.keys[mid + 1:]
            sibling.children = node.children[mid + 1:]
            del node.keys[mid:]
            del node.children[mid + 1:]
        self._write_page(node)
        self._write_page(sibling)
        self.btree_stats.splits += 1
        if self.obs.enabled:
            self.obs.emit(BtreePageSplit(page=node.page_id,
                                         depth=len(path)))
        if len(path) == 1:
            # root split: grow the tree by one level
            new_root = self._alloc_page(leaf=False)
            new_root.keys = [sep]
            new_root.children = [node.page_id, sibling.page_id]
            self._root_id = new_root.page_id
            self._write_page(new_root)
            return
        parent = path[-2]
        idx = bisect_right(parent.keys, sep)
        parent.keys.insert(idx, sep)
        parent.children.insert(idx + 1, sibling.page_id)
        self._write_page(parent)
        if len(parent.children) > self.config.node_capacity:
            self._split(path[:-1])

    # -- merges ------------------------------------------------------------

    def _maybe_merge(self, path: list[_Page]) -> None:
        leaf, parent = path[-1], path[-2]
        slot = parent.children.index(leaf.page_id)
        for other_slot in (slot - 1, slot + 1):
            if not 0 <= other_slot < len(parent.children):
                continue
            sibling = self._pages[parent.children[other_slot]]
            if len(sibling.keys) + len(leaf.keys) > self.config.leaf_capacity:
                continue
            left, right = ((sibling, leaf) if other_slot < slot
                           else (leaf, sibling))
            self._read_page(sibling)
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            right_slot = parent.children.index(right.page_id)
            del parent.keys[right_slot - 1]
            del parent.children[right_slot]
            self._write_page(left)
            self._write_page(parent)
            self._free_page(right)
            self.btree_stats.merges += 1
            if self.obs.enabled:
                self.obs.emit(BtreePageMerge(page=left.page_id,
                                             depth=len(path)))
            break
        # root collapse: an internal root with one child shrinks the tree
        root = self._pages[self._root_id]
        if not root.leaf and len(root.children) == 1:
            child = root.children[0]
            self._free_page(root)
            self._root_id = child

    # -- invariants (unit-suite surface) -----------------------------------

    def check_invariants(self) -> None:
        """Walk the tree asserting ordering, fanout, and reachability —
        the split/merge unit suite calls this after every mutation."""
        cfg = self.config
        seen: set[int] = set()

        def walk(page_id: int, lo: int | None, hi: int | None, depth: int) -> int:
            assert page_id not in seen, "page reachable twice"
            seen.add(page_id)
            page = self._pages[page_id]
            assert page.keys == sorted(page.keys), "unsorted keys"
            for k in page.keys:
                assert lo is None or k >= lo, "key below subtree bound"
                assert hi is None or k < hi, "key above subtree bound"
            if page.leaf:
                assert len(page.keys) == len(page.values)
                assert len(page.keys) <= cfg.leaf_capacity, "leaf overflow"
                return depth
            assert len(page.children) == len(page.keys) + 1
            assert len(page.children) <= cfg.node_capacity, "node overflow"
            depths = set()
            bounds = [lo] + list(page.keys) + [hi]
            for i, child in enumerate(page.children):
                depths.add(walk(child, bounds[i], bounds[i + 1], depth + 1))
            assert len(depths) == 1, "leaves at different depths"
            return depths.pop()

        walk(self._root_id, None, None, 1)
        assert len(seen) == len(self._pages), "orphaned pages"
        assert len(seen) + len(self._free) == self._num_pages
