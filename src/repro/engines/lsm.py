"""A log-structured merge-tree engine atop the block device.

The block-traffic-accurate skeleton of a RocksDB-style LSM: puts append
to a write-ahead log and a memtable; memtable flushes materialize L0
SSTables; leveled compaction with a tunable fanout merges tables
downward, reading every input sector and rewriting the survivors; reads
probe bloom filters (real bit arrays — false positives cost real index
reads) before touching flash.  Dropped SSTables are trimmed, so the
device learns about dead data the way a discard-issuing engine tells it.

What matters to the device is the *shape*: sequential SSTable writes,
compaction read/write bursts, trims of whole extents — the polar
opposite of the B-tree's random in-place page updates, and the reason
engine structure × device policy interact (the cross-layer effect the
paper argues is invisible today).

SSTable extents come from a first-fit
:class:`~repro.fs.vfs.FreeSpaceMap` over the LBA space past the WAL
region, so long-running compaction churn fragments the space exactly
like file aging does.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

from repro.engines.kv import KvEngine, YcsbSpec
from repro.fs.vfs import Extent, FreeSpaceMap, FsError
from repro.obs.events import (
    CompactionFinished,
    CompactionStarted,
    MemtableFlush,
    SstableWritten,
)


@dataclass(frozen=True)
class LsmConfig:
    """LSM shape knobs (sector-denominated).

    ``None`` fields are sized from the device at engine construction:
    the WAL takes ~1/16 of the LBA space, the memtable ~1/32, SSTables
    twice the memtable.
    """

    memtable_sectors: int | None = None
    sstable_sectors: int | None = None
    wal_sectors: int | None = None
    fanout: int = 4
    l0_limit: int = 4
    bloom_bits_per_key: int = 8
    bloom_hashes: int = 4
    index_sectors: int = 1

    def sized_for(self, num_sectors: int) -> "LsmConfig":
        from dataclasses import replace

        memtable = self.memtable_sectors or max(8, num_sectors // 32)
        return replace(
            self,
            wal_sectors=self.wal_sectors or max(16, num_sectors // 16),
            memtable_sectors=memtable,
            sstable_sectors=self.sstable_sectors or 2 * memtable,
        )


@dataclass
class LsmStats:
    """Engine-side write/read accounting (the engine's own WAF)."""

    wal_sectors_written: int = 0
    flushes: int = 0
    flush_sectors_written: int = 0
    sstables_written: int = 0
    compactions: int = 0
    compaction_sectors_read: int = 0
    compaction_sectors_written: int = 0
    trimmed_sectors: int = 0
    bloom_probes: int = 0
    bloom_negatives: int = 0
    bloom_false_positives: int = 0
    sstable_reads: int = 0

    @property
    def engine_waf(self) -> float:
        """Engine-level write amplification: sectors the engine wrote
        per sector the host logically put (WAL + flush + compaction)."""
        host = self.wal_sectors_written
        if not host:
            return 0.0
        total = (self.wal_sectors_written + self.flush_sectors_written
                 + self.compaction_sectors_written)
        return total / host


class _Bloom:
    """A real bloom filter: bit array, k derived hash probes per key.

    Hashing is arithmetic (splitmix-style constants), so filters are
    deterministic across runs and platforms — false-positive sequences
    are reproducible.
    """

    __slots__ = ("bits", "hashes")

    _C1 = 0x9E3779B97F4A7C15
    _C2 = 0xBF58476D1CE4E5B9
    _MASK = (1 << 64) - 1

    def __init__(self, keys, bits_per_key: int, hashes: int) -> None:
        m = max(8, bits_per_key * max(1, len(keys)))
        self.bits = np.zeros(m, dtype=bool)
        self.hashes = hashes
        for key in keys:
            for i in range(hashes):
                self.bits[self._probe(key, i) % m] = True

    @classmethod
    def _probe(cls, key: int, i: int) -> int:
        h = (key * cls._C1 + (i + 1) * cls._C2) & cls._MASK
        h ^= h >> 31
        return h & cls._MASK

    def may_contain(self, key: int) -> bool:
        m = len(self.bits)
        return all(self.bits[self._probe(key, i) % m]
                   for i in range(self.hashes))


@dataclass(eq=False)  # identity equality: tables are unique objects
class SsTable:
    """One immutable sorted table: entries, extents, bloom filter."""

    level: int
    seqno: int
    keys: list[int]
    entries: dict[int, int]
    extents: list[Extent]
    sectors: int
    bloom: _Bloom

    @property
    def min_key(self) -> int:
        return self.keys[0]

    @property
    def max_key(self) -> int:
        return self.keys[-1]

    def overlaps(self, lo: int, hi: int) -> bool:
        return self.min_key <= hi and lo <= self.max_key


class LsmEngine(KvEngine):
    """The LSM engine as a request source."""

    ENGINE = "lsm"

    def __init__(self, spec: YcsbSpec, num_sectors: int,
                 config: LsmConfig | None = None, **kwargs) -> None:
        super().__init__(spec, num_sectors, **kwargs)
        self.config = (config or LsmConfig()).sized_for(num_sectors)
        cfg = self.config
        if cfg.wal_sectors >= num_sectors:
            raise ValueError(
                f"lsm: WAL ({cfg.wal_sectors} sectors) leaves no data "
                f"space on a {num_sectors}-sector device")
        data_sectors = num_sectors - cfg.wal_sectors
        if spec.dataset_sectors * 2 > data_sectors:
            raise ValueError(
                f"lsm: dataset of {spec.dataset_sectors} sectors needs "
                f">= 2x headroom, have {data_sectors} data sectors")
        self.space = FreeSpaceMap(cfg.wal_sectors, data_sectors)
        self.lsm_stats = LsmStats()
        self.memtable: dict[int, int] = {}
        #: levels[0] is unsorted (newest last); deeper levels hold
        #: non-overlapping tables sorted by min_key.
        self.levels: list[list[SsTable]] = [[]]
        self._wal_cursor = 0
        self._seqno = 0

    # -- key-value surface -------------------------------------------------

    def put(self, key: int, version: int) -> None:
        cfg = self.config
        value = self.spec.value_sectors
        if self._wal_cursor + value > cfg.wal_sectors:
            self._wal_cursor = 0  # circular log wrap
        self._write(self._wal_cursor, value)
        self._wal_cursor += value
        self.lsm_stats.wal_sectors_written += value
        self.memtable[key] = version
        if len(self.memtable) * value >= cfg.memtable_sectors:
            self._flush_memtable()

    def get(self, key: int) -> int | None:
        if key in self.memtable:
            return self.memtable[key]
        stats = self.lsm_stats
        for level, tables in enumerate(self.levels):
            if level == 0:
                candidates = reversed(tables)  # newest first
            else:
                # non-overlapping + sorted: at most one table can hold it
                idx = bisect_right([t.min_key for t in tables], key) - 1
                candidates = tables[idx:idx + 1] if idx >= 0 else ()
            for table in candidates:
                if not table.overlaps(key, key):
                    continue
                stats.bloom_probes += 1
                if not table.bloom.may_contain(key):
                    stats.bloom_negatives += 1
                    continue
                self._read_probe(table, key)
                if key in table.entries:
                    return table.entries[key]
                stats.bloom_false_positives += 1
        return None

    # -- flush & compaction ------------------------------------------------

    def _flush_memtable(self) -> None:
        entries = dict(self.memtable)
        self.memtable.clear()
        written = self._write_tables(0, entries)
        self.levels[0].extend(written)
        self._flush()  # fsync the new table before the WAL is reusable
        stats = self.lsm_stats
        stats.flushes += 1
        stats.flush_sectors_written += sum(t.sectors for t in written)
        if self.obs.enabled:
            self.obs.emit(MemtableFlush(
                entries=len(entries),
                sectors=sum(t.sectors for t in written)))
        self._maybe_compact()

    def _write_tables(self, level: int, entries: dict[int, int]) -> list[SsTable]:
        """Materialize entries as one or more SSTables at *level*."""
        cfg = self.config
        value = self.spec.value_sectors
        per_table = max(1, (cfg.sstable_sectors - cfg.index_sectors) // value)
        keys = sorted(entries)
        out: list[SsTable] = []
        for start in range(0, len(keys), per_table):
            chunk = keys[start:start + per_table]
            sectors = cfg.index_sectors + len(chunk) * value
            try:
                extents = self.space.allocate(sectors)
            except FsError as exc:
                raise RuntimeError(
                    f"lsm: out of data space writing an L{level} SSTable "
                    f"({exc})") from None
            for extent in extents:
                self._write(extent.start, extent.length)
            self._seqno += 1
            table = SsTable(
                level=level, seqno=self._seqno, keys=chunk,
                entries={k: entries[k] for k in chunk},
                extents=extents, sectors=sectors,
                bloom=_Bloom(chunk, cfg.bloom_bits_per_key,
                             cfg.bloom_hashes))
            out.append(table)
            self.lsm_stats.sstables_written += 1
            if self.obs.enabled:
                self.obs.emit(SstableWritten(
                    level=level, entries=len(chunk), sectors=sectors))
        return out

    def _level_limit_sectors(self, level: int) -> int:
        cfg = self.config
        base = cfg.l0_limit * cfg.sstable_sectors
        return base * cfg.fanout ** (level - 1)

    def _maybe_compact(self) -> None:
        cfg = self.config
        while True:
            if len(self.levels[0]) > cfg.l0_limit:
                self._compact(0, list(self.levels[0]))
                continue
            for level in range(1, len(self.levels)):
                tables = self.levels[level]
                if sum(t.sectors for t in tables) > self._level_limit_sectors(level):
                    oldest = min(tables, key=lambda t: t.seqno)
                    self._compact(level, [oldest])
                    break
            else:
                return

    def _compact(self, level: int, upper: list[SsTable]) -> None:
        target = level + 1
        while len(self.levels) <= target:
            self.levels.append([])
        lo = min(t.min_key for t in upper)
        hi = max(t.max_key for t in upper)
        lower = [t for t in self.levels[target] if t.overlaps(lo, hi)]
        inputs = upper + lower
        sectors_in = sum(t.sectors for t in inputs)
        if self.obs.enabled:
            self.obs.emit(CompactionStarted(
                level=level, sstables_in=len(inputs), sectors_in=sectors_in))
        # Read every input sector (the merge pass), oldest precedence
        # first so newer tables overwrite during the dict merge.
        merged: dict[int, int] = {}
        for table in sorted(lower, key=lambda t: t.seqno):
            merged.update(table.entries)
        for table in sorted(upper, key=lambda t: t.seqno):
            merged.update(table.entries)
        for table in inputs:
            for extent in table.extents:
                self._read(extent.start, extent.length)
            self.lsm_stats.compaction_sectors_read += table.sectors
        outputs = self._write_tables(target, merged)
        self._flush()
        # Drop the inputs: remove from their levels, return the space,
        # and tell the device the sectors are dead.
        self.levels[level] = [t for t in self.levels[level] if t not in upper]
        self.levels[target] = [t for t in self.levels[target]
                               if t not in lower]
        for table in inputs:
            self.space.release(table.extents)
            for extent in table.extents:
                self._trim(extent.start, extent.length)
                self.lsm_stats.trimmed_sectors += extent.length
        self.levels[target].extend(outputs)
        self.levels[target].sort(key=lambda t: t.min_key)
        written = sum(t.sectors for t in outputs)
        stats = self.lsm_stats
        stats.compactions += 1
        stats.compaction_sectors_written += written
        if self.obs.enabled:
            self.obs.emit(CompactionFinished(
                level=level, sstables_out=len(outputs),
                sectors_read=sectors_in, sectors_written=written))

    # -- read path ---------------------------------------------------------

    def _read_probe(self, table: SsTable, key: int) -> None:
        """Index read plus the value block at the key's position."""
        cfg = self.config
        value = self.spec.value_sectors
        rank = bisect_left(table.keys, key)
        if rank >= len(table.keys) or table.keys[rank] != key:
            # false positive: the index read alone settles it
            self._read_at(table, 0, cfg.index_sectors)
        else:
            self._read_at(table, 0, cfg.index_sectors)
            self._read_at(table, cfg.index_sectors + rank * value, value)
        self.lsm_stats.sstable_reads += 1

    def _read_at(self, table: SsTable, offset: int, count: int) -> None:
        """Map a logical in-table range onto its extents and read it."""
        skip, need = offset, count
        for extent in table.extents:
            if need <= 0:
                return
            if skip >= extent.length:
                skip -= extent.length
                continue
            take = min(extent.length - skip, need)
            self._read(extent.start + skip, take)
            skip = 0
            need -= take

    # -- introspection -----------------------------------------------------

    def level_sizes(self) -> list[tuple[int, int]]:
        """(table count, total sectors) per level — compaction
        accounting the unit suite checks against stats."""
        return [(len(tables), sum(t.sectors for t in tables))
                for tables in self.levels]

    def resident_entries(self) -> int:
        return len(self.memtable) + sum(
            len(t.entries) for tables in self.levels for t in tables)
