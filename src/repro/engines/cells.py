"""Cached experiment cells for storage-engine runs.

One cell = one engine × one YCSB mix × one device config, run on a
fresh timed device.  Pure and picklable, so the CLI and the ablation
benchmark fan them out through :class:`~repro.exp.runner.Runner` and
hit the content-addressed result cache on re-runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.kv import YcsbSpec
from repro.ssd.config import SsdConfig

#: engine names `build_engine` understands.
ENGINES = ("lsm", "btree")


def build_engine(name: str, spec: YcsbSpec, num_sectors: int, *,
                 seed: int = 0, iodepth: int = 1, sink=None):
    """Construct an engine by name (the CLI/cell entry point)."""
    if name == "lsm":
        from repro.engines.lsm import LsmEngine

        return LsmEngine(spec, num_sectors, seed=seed, iodepth=iodepth,
                         sink=sink)
    if name == "btree":
        from repro.engines.btree import BTreeEngine

        return BTreeEngine(spec, num_sectors, seed=seed, iodepth=iodepth,
                           sink=sink)
    raise ValueError(f"unknown engine {name!r}; known: {ENGINES}")


@dataclass(frozen=True)
class EngineRunCell:
    """One storage-engine run against a fresh timed device."""

    config: SsdConfig
    engine: str
    spec: YcsbSpec
    iodepth: int = 1


@dataclass(frozen=True)
class EngineRunResult:
    """Picklable engine-run summary: host-visible latency plus the
    engine- and device-side amplification that produced it."""

    engine: str
    mix: str
    requests: int
    failed_requests: int
    read_errors: int
    p50_us: float
    p99_us: float
    p999_us: float
    iops: float
    elapsed_ns: int
    device_waf: float
    engine_waf: float
    #: engine maintenance: LSM compactions / B-tree splits+merges.
    maintenance_ops: int
    sectors: int


def run_engine_cell(spec: EngineRunCell, seed: int = 0) -> EngineRunResult:
    from repro.ssd.timed import TimedSSD
    from repro.workloads.engine import run_timed

    device = TimedSSD(spec.config)
    engine = build_engine(spec.engine, spec.spec, device.num_sectors,
                          seed=seed, iodepth=spec.iodepth)
    result = run_timed(device, [engine])
    job = result.jobs[engine.name]
    lat = job.latencies_us if job.latencies_us is not None else np.asarray([])

    def pct(q: float) -> float:
        return float(np.percentile(lat, q)) if len(lat) else 0.0

    if spec.engine == "lsm":
        engine_waf = engine.lsm_stats.engine_waf
        maintenance = engine.lsm_stats.compactions
    else:
        stats = engine.btree_stats
        writes = stats.page_writes
        engine_waf = writes / max(1, engine.stats.puts)
        maintenance = stats.splits + stats.merges
    return EngineRunResult(
        engine=spec.engine,
        mix=spec.spec.mix,
        requests=job.requests,
        failed_requests=job.failed_requests,
        read_errors=engine.stats.read_errors,
        p50_us=pct(50), p99_us=pct(99), p999_us=pct(99.9),
        iops=job.iops,
        elapsed_ns=job.elapsed_ns,
        device_waf=result.waf,
        engine_waf=engine_waf,
        maintenance_ops=maintenance,
        sectors=job.sectors,
    )
