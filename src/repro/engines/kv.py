"""Key-value workload machinery shared by the storage engines.

The paper's cross-layer argument needs workloads with *application
structure*: a database engine turns the same logical op stream into
completely different block traffic depending on its data structure
(log-structured merge vs. in-place B-tree).  This module provides the
shared pieces:

* :class:`YcsbSpec` — a YCSB-style key-value workload (load phase plus
  a read/update mix over a zipfian or uniform key popularity curve).
* :class:`KvEngine` — the engine base class.  An engine **is a**
  :class:`~repro.workloads.source.RequestSource`: key-value operations
  are consumed lazily and each one expands into the block requests the
  engine's data structure issues for it, so engines plug into
  ``run_counter``/``run_timed``, fleet tenants, and exp cells like any
  other workload.  The stream's length is unknown upfront
  (``remaining`` is ``None``): compactions and splits happen when the
  structure decides, not on a schedule.

Every engine tracks a ground-truth model dict and checks each read
against it (``stats.read_errors``) — the read-after-write invariant the
engine test suites pin under compaction and GC churn.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.obs.sinks import NULL_SINK
from repro.workloads.source import RequestSource

#: read/update mixes, YCSB-style: update fraction by mix name.
#: A = 50/50 read/update, B = 95/5 read-mostly, C = read-only.
YCSB_MIXES = {"a": 0.5, "b": 0.05, "c": 0.0}

#: RNG stream constant for the op mix (dedicated stream, so changing
#: the mix never perturbs anything else derived from the same seed).
_OP_STREAM = 0xE9619

#: Knuth multiplicative scatter: maps a popularity rank to a key so the
#: hottest keys spread across the key space instead of clustering in
#: one SSTable / leaf page.
_SCATTER = 2654435761


@dataclass(frozen=True)
class YcsbSpec:
    """A YCSB-style key-value workload.

    The load phase inserts ``records`` keys in order (YCSB's sequential
    load), then ``operations`` ops draw keys from a zipfian (default) or
    uniform popularity curve and read or update per the mix.  Both
    phases flow through the engine's request stream, so a run measures
    the structure's full lifecycle: load-time flush/split churn included.
    """

    mix: str = "a"
    records: int = 512
    operations: int = 2048
    value_sectors: int = 1
    key_dist: str = "zipfian"
    zipf_theta: float = 0.99

    def __post_init__(self) -> None:
        if self.mix not in YCSB_MIXES:
            known = ", ".join(sorted(YCSB_MIXES))
            raise ValueError(f"unknown YCSB mix {self.mix!r}; known: {known}")
        if self.records < 1:
            raise ValueError("records must be >= 1")
        if self.operations < 0:
            raise ValueError("operations must be >= 0")
        if self.value_sectors < 1:
            raise ValueError("value_sectors must be >= 1")
        if self.key_dist not in ("zipfian", "uniform"):
            raise ValueError(f"unknown key_dist {self.key_dist!r}")
        if not 0.0 < self.zipf_theta < 10.0:
            raise ValueError("zipf_theta must be in (0, 10)")

    @property
    def dataset_sectors(self) -> int:
        return self.records * self.value_sectors


def ycsb_spec_for_device(
    mix: str,
    num_sectors: int,
    *,
    value_sectors: int = 1,
    operations: int | None = None,
    **kwargs,
) -> YcsbSpec:
    """Size a YCSB spec to a device: the dataset takes ~1/6 of the LBA
    space (headroom for engine churn) and the run phase touches every
    record ~4 times by default."""
    records = max(16, num_sectors // (6 * value_sectors))
    if operations is None:
        operations = 4 * records
    return YcsbSpec(mix=mix, records=records, operations=operations,
                    value_sectors=value_sectors, **kwargs)


@dataclass
class KvStats:
    """Operation-level accounting shared by every engine."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    #: reads whose result disagreed with the ground-truth model — the
    #: read-after-write invariant; any nonzero value is an engine bug.
    read_errors: int = 0


class KvEngine(RequestSource):
    """Base class: a key-value engine as a request source.

    Subclasses implement :meth:`put`, :meth:`get` (and optionally
    :meth:`delete`), calling the ``_write/_read/_trim/_flush`` helpers
    to emit the block requests their data structure issues.  The source
    surface pulls one block request at a time, executing key-value ops
    lazily as the queue drains — so the engine composes with closed-loop
    scheduling at any iodepth, and with other sources on a shared
    device.
    """

    #: subclass tag used in default source names ("lsm", "btree").
    ENGINE = "kv"
    is_open_loop = False

    def __init__(
        self,
        spec: YcsbSpec,
        num_sectors: int,
        *,
        name: str | None = None,
        seed: int = 0,
        iodepth: int = 1,
        sink=None,
    ) -> None:
        if num_sectors < 1:
            raise ValueError("num_sectors must be >= 1")
        if iodepth < 1:
            raise ValueError("iodepth must be >= 1")
        self.spec = spec
        self.num_sectors = num_sectors
        self.name = name or f"{self.ENGINE}-{spec.mix}"
        self.iodepth = iodepth
        self.seed = seed
        self.obs = sink if sink is not None else NULL_SINK
        self.stats = KvStats()
        self._pending: deque[tuple[str, int, int]] = deque()
        self._ops = self._op_stream()
        #: ground truth: key -> latest version written.
        self._model: dict[int, int] = {}
        self._version = 0

    # -- RequestSource surface --------------------------------------------

    def next_request(self) -> tuple[str, int, int] | None:
        while not self._pending:
            op = next(self._ops, None)
            if op is None:
                return None
            self._apply(op)
        return self._pending.popleft()

    # ``remaining`` stays at the base ``None``: how many block requests
    # are left depends on compactions/splits that haven't happened yet.

    # -- key-value surface (subclasses) -----------------------------------

    def put(self, key: int, version: int) -> None:
        raise NotImplementedError

    def get(self, key: int) -> int | None:
        raise NotImplementedError

    def delete(self, key: int) -> None:
        raise NotImplementedError(f"{self.ENGINE} does not support delete")

    # -- op generation -----------------------------------------------------

    def _op_stream(self):
        spec = self.spec
        for key in range(spec.records):
            yield ("put", key)
        if not spec.operations:
            return
        rng = np.random.default_rng([self.seed, _OP_STREAM])
        update_fraction = YCSB_MIXES[spec.mix]
        cdf = None
        if spec.key_dist == "zipfian":
            weights = 1.0 / np.arange(1, spec.records + 1) ** spec.zipf_theta
            cdf = np.cumsum(weights)
            cdf /= cdf[-1]
        for _ in range(spec.operations):
            update = rng.random() < update_fraction
            if cdf is None:
                rank = int(rng.integers(spec.records))
            else:
                rank = int(np.searchsorted(cdf, rng.random()))
            key = (rank * _SCATTER) % spec.records
            yield ("put" if update else "get", key)

    def _apply(self, op: tuple[str, int]) -> None:
        kind, key = op
        if kind == "put":
            self._version += 1
            self._model[key] = self._version
            self.put(key, self._version)
            self.stats.puts += 1
        elif kind == "get":
            found = self.get(key)
            if found != self._model.get(key):
                self.stats.read_errors += 1
            self.stats.gets += 1
        else:
            self.delete(key)
            self._model.pop(key, None)
            self.stats.deletes += 1

    # -- block emission helpers -------------------------------------------

    def _write(self, lba: int, sectors: int) -> None:
        self._check(lba, sectors)
        self._pending.append(("write", lba, sectors))

    def _read(self, lba: int, sectors: int) -> None:
        self._check(lba, sectors)
        self._pending.append(("read", lba, sectors))

    def _trim(self, lba: int, sectors: int) -> None:
        self._check(lba, sectors)
        self._pending.append(("trim", lba, sectors))

    def _flush(self) -> None:
        self._pending.append(("flush", 0, 0))

    def _check(self, lba: int, sectors: int) -> None:
        if lba < 0 or sectors < 1 or lba + sectors > self.num_sectors:
            raise ValueError(
                f"{self.name}: request [{lba}, {lba + sectors}) outside "
                f"the device's {self.num_sectors} sectors")
