"""Storage engines: application structure above the block device.

LSM-tree and B+-tree engines that translate key-value workloads into
block traffic, implemented as
:class:`~repro.workloads.source.RequestSource` streams — so an engine
runs anywhere a workload runs (``run_counter``/``run_timed``, fleet
tenants, cached exp cells) and its maintenance traffic (compaction,
split/merge churn) contends with device-internal GC on equal footing.
"""

from repro.engines.btree import BTreeConfig, BTreeEngine, BTreeStats
from repro.engines.cells import (
    ENGINES,
    EngineRunCell,
    EngineRunResult,
    build_engine,
    run_engine_cell,
)
from repro.engines.kv import (
    YCSB_MIXES,
    KvEngine,
    KvStats,
    YcsbSpec,
    ycsb_spec_for_device,
)
from repro.engines.lsm import LsmConfig, LsmEngine, LsmStats, SsTable

__all__ = [
    "YCSB_MIXES", "YcsbSpec", "ycsb_spec_for_device",
    "KvEngine", "KvStats",
    "LsmConfig", "LsmEngine", "LsmStats", "SsTable",
    "BTreeConfig", "BTreeEngine", "BTreeStats",
    "ENGINES", "EngineRunCell", "EngineRunResult",
    "build_engine", "run_engine_cell",
]
