"""Parallel experiment runner with content-addressed result caching.

Every figure in this reproduction is a grid of fully independent
simulation cells; this package is the layer that exploits that.  It
provides:

* :class:`Cell` — a picklable (pure function, config, seed) work unit
  (:mod:`repro.exp.cell`);
* :class:`Runner` — fans cells over a ``ProcessPoolExecutor`` (worker
  count from ``REPRO_JOBS`` / ``--jobs`` / CPU count), merges results
  in deterministic submission order, and attaches the failing cell's
  identity to propagated worker exceptions
  (:mod:`repro.exp.runner`);
* :class:`ResultCache` — a content-addressed on-disk store
  (``~/.cache/repro-ssd`` or ``REPRO_CACHE_DIR``) keyed by the stable
  hash of config + function qualname + seed + code salt, so unchanged
  cells are free on re-run (:mod:`repro.exp.cache`);
* :func:`stable_digest` — the cross-process canonical content hash the
  keys are built from (:mod:`repro.exp.hashing`);
* ready-made cell functions for churn/latency/sweep measurements
  (:mod:`repro.exp.cells`).

Parallel output is byte-identical to serial output: cells are
self-seeded and share nothing, so the runner only changes where — not
what — they compute (enforced by the serial-vs-parallel equivalence
tests under ``tests/regression``).
"""

from repro.exp.cache import CODE_SALT, CacheStats, ResultCache, default_cache_dir
from repro.exp.cell import Cell, CellError, execute_cell
from repro.exp.cells import (
    ChurnCell,
    ChurnResult,
    NandPageSweepCell,
    PslcBurstCell,
    TimedJobCell,
    run_churn_cell,
    run_nand_page_sweep_cell,
    run_pslc_burst_cell,
    run_timed_job_cell,
)
from repro.exp.hashing import stable_digest
from repro.exp.runner import (
    CellTimeout,
    Runner,
    RunnerStats,
    resolve_jobs,
    run_cells,
)

__all__ = [
    "CODE_SALT",
    "CacheStats",
    "Cell",
    "CellError",
    "CellTimeout",
    "ChurnCell",
    "ChurnResult",
    "NandPageSweepCell",
    "PslcBurstCell",
    "ResultCache",
    "Runner",
    "RunnerStats",
    "TimedJobCell",
    "default_cache_dir",
    "execute_cell",
    "resolve_jobs",
    "run_cells",
    "run_churn_cell",
    "run_nand_page_sweep_cell",
    "run_pslc_burst_cell",
    "run_timed_job_cell",
    "stable_digest",
]
