"""The unit of parallel experiment work.

A :class:`Cell` is one independent measurement: a pure, picklable,
module-level function applied to a configuration payload and a seed.
Every figure in this reproduction is a grid of such cells (variant x
block size, policy x workload, ...), which is what makes the experiment
layer embarrassingly parallel: cells share no mutable state, so a
:class:`~repro.exp.runner.Runner` can execute them in any order on any
process and merge results back in submission order.

The contract a cell function must honor:

* top-level (importable by qualified name, so worker processes can
  unpickle it);
* signature ``fn(config, seed) -> result``;
* deterministic — the result depends only on ``(config, seed)``;
* the result pickles (plain dataclasses, numpy arrays, primitives).

Determinism plus the stable content hash of ``(fn, config, seed)`` is
what makes results content-addressable (:mod:`repro.exp.cache`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exp.hashing import stable_digest


@dataclass(frozen=True)
class Cell:
    """One (function, config, seed) experiment unit.

    ``label`` names the cell in progress/error reporting (defaults to
    the function and seed).  ``cacheable=False`` opts a cell out of the
    result cache — required when the cell has side effects beyond its
    return value, e.g. writing a JSONL trace file.
    """

    fn: Callable[[Any, int], Any]
    config: Any
    seed: int = 0
    label: str = ""
    cacheable: bool = True
    #: optional one-line standalone repro command, surfaced by
    #: :class:`CellError`.  Advisory metadata only: deliberately NOT
    #: part of :meth:`key`, so decorating a cell with a repro hint
    #: cannot invalidate its cached result.
    repro: str = ""

    @property
    def identity(self) -> str:
        """Human-readable name for error messages and progress."""
        if self.label:
            return self.label
        return f"{self.fn.__module__}.{self.fn.__qualname__}(seed={self.seed})"

    def key(self, salt: str) -> str:
        """Content-address of this cell's result.

        Stable across processes: built from the function's qualified
        name, the canonical hash of the config, the seed, and a
        code-version *salt* so stale results die with the code that
        produced them.
        """
        return stable_digest((
            "repro.exp.cell",
            salt,
            f"{self.fn.__module__}.{self.fn.__qualname__}",
            self.config,
            self.seed,
        ))


class CellError(RuntimeError):
    """A cell failed in a worker; carries the failing cell's identity.

    Raised in the parent process with the original exception chained,
    so a 40-cell fan-out that dies names exactly which (config, seed)
    to re-run serially for debugging.  The message carries the cell's
    content-address hash (the cache key prefix, so the stale entry can
    be found and purged) and, when the cell declares one, a one-line
    standalone repro command.
    """

    def __init__(self, cell: Cell, index: int, cause: BaseException,
                 salt: str | None = None) -> None:
        self.cell = cell
        self.index = index
        message = (
            f"experiment cell #{index} [{cell.identity}] failed: "
            f"{type(cause).__name__}: {cause}"
        )
        if salt is None:
            from repro.exp.cache import CODE_SALT
            salt = CODE_SALT
        try:
            message += f"\n  cell key {cell.key(salt)[:12]}"
        except TypeError:
            pass  # an unhashable config still gets the plain message
        if cell.repro:
            message += f"\n  rerun standalone: {cell.repro}"
        super().__init__(message)


def execute_cell(cell: Cell) -> Any:
    """Run one cell in the current process (the worker entry point)."""
    return cell.fn(cell.config, cell.seed)
