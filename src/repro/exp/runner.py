"""Fan experiment cells out over worker processes.

The :class:`Runner` is the one place concurrency lives in the
experiment layer: studies build a flat list of :class:`~repro.exp.cell.Cell`
objects and get back results **in submission order**, whatever order
workers finished in — which is why a parallel study is byte-identical
to its serial counterpart (each cell is already deterministic and
self-seeded; the runner only changes *where* it executes).

Worker count resolution (first match wins):

1. the ``jobs`` constructor argument,
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``jobs=1`` (or a single pending cell) runs everything in-process with
no executor, so the serial path has zero multiprocessing overhead and
is always available as the reference behavior.

A worker exception is re-raised in the parent as
:class:`~repro.exp.cell.CellError` carrying the failing cell's identity
(label, function, seed, index) with the original exception chained.

Transient worker death is retried, not fatal: when a worker process
dies abruptly (OOM kill, signal — surfacing as ``BrokenProcessPool``),
the affected cells are resubmitted to a fresh pool up to
``max_pool_retries`` times with jittered backoff, and if the pool keeps
dying (or cannot be created at all, e.g. in a sandbox that forbids
``fork``) the runner degrades to in-process serial execution.  Only
*deterministic* cell exceptions fail fast as :class:`CellError` —
retrying those would just fail again.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Sequence

from repro.exp.cache import CODE_SALT, ResultCache
from repro.exp.cell import Cell, CellError, execute_cell


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from argument, ``REPRO_JOBS``, or the CPU count.

    An explicit worker count below 1 — from either source — is a user
    error and raises :class:`ValueError` naming the offending value,
    instead of surfacing later as an opaque ``ProcessPoolExecutor``
    complaint (or silently running serial when parallelism was asked
    for).  An *unparsable* ``REPRO_JOBS`` is still ignored: a stray env
    var must not crash every study that merely constructs a Runner.
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        return jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            pass  # an unparsable env var must not crash every study
        else:
            if value < 1:
                raise ValueError(f"REPRO_JOBS must be >= 1, got {env!r}")
            return value
    return os.cpu_count() or 1


@dataclass
class RunnerStats:
    """What the last ``run`` did (cumulative across runs)."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    #: pool incidents survived: worker-death retries + serial degrades.
    pool_retries: int = 0
    serial_degrades: int = 0


class Runner:
    """Executes cells over a process pool with optional result caching.

    ``cache=None`` (the default) disables caching; pass a
    :class:`~repro.exp.cache.ResultCache` to make unchanged cells free
    on re-run.  ``salt`` defaults to the package code-version salt so
    cached results die with the code that produced them.
    """

    #: resubmissions of broken-pool cells before degrading to serial.
    max_pool_retries = 2
    #: base backoff before a pool retry (scaled by attempt + jitter);
    #: tests set this to ~0.
    retry_backoff_s = 0.5

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None,
                 salt: str = CODE_SALT) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.salt = salt
        self.stats = RunnerStats()

    def run(self, cells: Sequence[Cell]) -> list[Any]:
        """Execute *cells*, returning results in submission order."""
        started = time.perf_counter()
        results: list[Any] = [None] * len(cells)
        pending: list[int] = []
        for index, cell in enumerate(cells):
            if self.cache is not None and cell.cacheable:
                hit, value = self.cache.get(cell.key(self.salt))
                if hit:
                    results[index] = value
                    self.stats.cache_hits += 1
                    continue
            pending.append(index)

        if self.jobs <= 1 or len(pending) <= 1:
            for index in pending:
                results[index] = self._execute_serial(cells[index], index)
        else:
            self._execute_parallel(cells, pending, results)

        if self.cache is not None:
            for index in pending:
                if cells[index].cacheable:
                    self.cache.put(cells[index].key(self.salt), results[index])

        self.stats.cells += len(cells)
        self.stats.executed += len(pending)
        self.stats.wall_s += time.perf_counter() - started
        return results

    def describe(self) -> str:
        """One status line for CLIs: worker and cache accounting."""
        text = (f"exp: {self.stats.cells} cells, {self.stats.executed} "
                f"executed, jobs={self.jobs}, wall {self.stats.wall_s:.2f}s")
        if self.cache is not None:
            text += f"; cache [{self.cache.stats.describe()}] at {self.cache.root}"
        else:
            text += "; cache disabled"
        return text

    # ------------------------------------------------------------------

    def _execute_serial(self, cell: Cell, index: int) -> Any:
        try:
            return execute_cell(cell)
        except Exception as exc:
            raise CellError(cell, index, exc) from exc

    def _execute_parallel(self, cells: Sequence[Cell], pending: list[int],
                          results: list[Any]) -> None:
        remaining = list(pending)
        attempt = 0
        while remaining:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(remaining)))
            except Exception:
                # The pool cannot even be created (fork forbidden, fd or
                # pid exhaustion): parallelism is a performance feature,
                # not a correctness one, so finish in-process.
                self._degrade_serial(cells, remaining, results)
                return
            broken = self._drain_pool(pool, cells, remaining, results)
            if not broken:
                return
            attempt += 1
            if attempt > self.max_pool_retries:
                # Workers keep dying: stop betting on the pool.  If the
                # cell itself kills its process deterministically this
                # will crash the parent too — but at that point there is
                # no outcome that both completes the study and hides it.
                self._degrade_serial(cells, broken, results)
                return
            self.stats.pool_retries += 1
            if self.retry_backoff_s > 0:
                time.sleep(self.retry_backoff_s * attempt
                           * (1.0 + random.random()))
            remaining = broken

    def _degrade_serial(self, cells: Sequence[Cell], indexes: list[int],
                        results: list[Any]) -> None:
        self.stats.serial_degrades += 1
        for index in indexes:
            results[index] = self._execute_serial(cells[index], index)

    def _drain_pool(self, pool: ProcessPoolExecutor, cells: Sequence[Cell],
                    remaining: list[int], results: list[Any]) -> list[int]:
        """Run *remaining* cells on *pool*; return the indexes that hit
        transient worker death (to be retried), storing everything else.

        Deterministic cell exceptions raise :class:`CellError` for the
        lowest-indexed failure; abrupt worker death (``BrokenProcessPool``
        on the future) and cells cancelled by fail-fast are returned for
        resubmission instead.
        """
        broken: list[int] = []
        failed: tuple[int, BaseException] | None = None
        with pool:
            futures = {
                pool.submit(execute_cell, cells[index]): index
                for index in remaining
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            if not_done and any(f.exception() for f in done):
                # Fail fast: drop cells not yet started, but let the
                # ones already running settle so the failure we report
                # is the lowest-indexed one among everything that ran.
                for future in not_done:
                    future.cancel()
                done, _ = wait(futures)
            for future, index in futures.items():
                if future.cancelled():
                    broken.append(index)
                    continue
                exc = future.exception()
                if exc is None:
                    results[index] = future.result()
                elif isinstance(exc, BrokenProcessPool):
                    broken.append(index)
                else:
                    if failed is None or index < failed[0]:
                        failed = (index, exc)
        if failed is not None:
            index, exc = failed
            raise CellError(cells[index], index, exc) from exc
        return sorted(broken)


def run_cells(cells: Sequence[Cell], runner: Runner | None = None) -> list[Any]:
    """Run cells through *runner*, or serially in-process when ``None``.

    The ``None`` path is the zero-dependency fallback study functions
    use so their legacy signatures keep working unchanged.
    """
    if runner is not None:
        return runner.run(cells)
    out = []
    for index, cell in enumerate(cells):
        try:
            out.append(execute_cell(cell))
        except Exception as exc:
            raise CellError(cell, index, exc) from exc
    return out
