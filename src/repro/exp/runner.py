"""Fan experiment cells out over worker processes.

The :class:`Runner` is the one place concurrency lives in the
experiment layer: studies build a flat list of :class:`~repro.exp.cell.Cell`
objects and get back results **in submission order**, whatever order
workers finished in — which is why a parallel study is byte-identical
to its serial counterpart (each cell is already deterministic and
self-seeded; the runner only changes *where* it executes).

Worker count resolution (first match wins):

1. the ``jobs`` constructor argument,
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``jobs=1`` (or a single pending cell) runs everything in-process with
no executor, so the serial path has zero multiprocessing overhead and
is always available as the reference behavior.

A worker exception is re-raised in the parent as
:class:`~repro.exp.cell.CellError` carrying the failing cell's identity
(label, function, seed, index) with the original exception chained.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Sequence

from repro.exp.cache import CODE_SALT, ResultCache
from repro.exp.cell import Cell, CellError, execute_cell


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from argument, ``REPRO_JOBS``, or the CPU count."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass  # an unparsable env var must not crash every study
    return os.cpu_count() or 1


@dataclass
class RunnerStats:
    """What the last ``run`` did (cumulative across runs)."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0


class Runner:
    """Executes cells over a process pool with optional result caching.

    ``cache=None`` (the default) disables caching; pass a
    :class:`~repro.exp.cache.ResultCache` to make unchanged cells free
    on re-run.  ``salt`` defaults to the package code-version salt so
    cached results die with the code that produced them.
    """

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None,
                 salt: str = CODE_SALT) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.salt = salt
        self.stats = RunnerStats()

    def run(self, cells: Sequence[Cell]) -> list[Any]:
        """Execute *cells*, returning results in submission order."""
        started = time.perf_counter()
        results: list[Any] = [None] * len(cells)
        pending: list[int] = []
        for index, cell in enumerate(cells):
            if self.cache is not None and cell.cacheable:
                hit, value = self.cache.get(cell.key(self.salt))
                if hit:
                    results[index] = value
                    self.stats.cache_hits += 1
                    continue
            pending.append(index)

        if self.jobs <= 1 or len(pending) <= 1:
            for index in pending:
                results[index] = self._execute_serial(cells[index], index)
        else:
            self._execute_parallel(cells, pending, results)

        if self.cache is not None:
            for index in pending:
                if cells[index].cacheable:
                    self.cache.put(cells[index].key(self.salt), results[index])

        self.stats.cells += len(cells)
        self.stats.executed += len(pending)
        self.stats.wall_s += time.perf_counter() - started
        return results

    def describe(self) -> str:
        """One status line for CLIs: worker and cache accounting."""
        text = (f"exp: {self.stats.cells} cells, {self.stats.executed} "
                f"executed, jobs={self.jobs}, wall {self.stats.wall_s:.2f}s")
        if self.cache is not None:
            text += f"; cache [{self.cache.stats.describe()}] at {self.cache.root}"
        else:
            text += "; cache disabled"
        return text

    # ------------------------------------------------------------------

    def _execute_serial(self, cell: Cell, index: int) -> Any:
        try:
            return execute_cell(cell)
        except Exception as exc:
            raise CellError(cell, index, exc) from exc

    def _execute_parallel(self, cells: Sequence[Cell], pending: list[int],
                          results: list[Any]) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(execute_cell, cells[index]): index
                for index in pending
            }
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            if not_done and any(f.exception() for f in done):
                # Fail fast: drop cells not yet started, but let the
                # ones already running settle so the failure we report
                # is the lowest-indexed one among everything that ran.
                for future in not_done:
                    future.cancel()
                done, _ = wait(futures)
            failed: tuple[int, BaseException] | None = None
            for future in done:
                index = futures[future]
                if future.cancelled():
                    continue
                exc = future.exception()
                if exc is not None:
                    if failed is None or index < failed[0]:
                        failed = (index, exc)
                    continue
                results[index] = future.result()
            if failed is not None:
                index, exc = failed
                raise CellError(cells[index], index, exc) from exc


def run_cells(cells: Sequence[Cell], runner: Runner | None = None) -> list[Any]:
    """Run cells through *runner*, or serially in-process when ``None``.

    The ``None`` path is the zero-dependency fallback study functions
    use so their legacy signatures keep working unchanged.
    """
    if runner is not None:
        return runner.run(cells)
    out = []
    for index, cell in enumerate(cells):
        try:
            out.append(execute_cell(cell))
        except Exception as exc:
            raise CellError(cell, index, exc) from exc
    return out
