"""Fan experiment cells out over worker processes.

The :class:`Runner` is the one place concurrency lives in the
experiment layer: studies build a flat list of :class:`~repro.exp.cell.Cell`
objects and get back results **in submission order**, whatever order
workers finished in — which is why a parallel study is byte-identical
to its serial counterpart (each cell is already deterministic and
self-seeded; the runner only changes *where* it executes).

Worker count resolution (first match wins):

1. the ``jobs`` constructor argument,
2. the ``REPRO_JOBS`` environment variable,
3. ``os.cpu_count()``.

``jobs=1`` (or a single pending cell) runs everything in-process with
no executor, so the serial path has zero multiprocessing overhead and
is always available as the reference behavior.

A worker exception is re-raised in the parent as
:class:`~repro.exp.cell.CellError` carrying the failing cell's identity
(label, function, seed, index) with the original exception chained.

Transient worker death is retried, not fatal: when a worker process
dies abruptly (OOM kill, signal — surfacing as ``BrokenProcessPool``),
the affected cells are resubmitted to a fresh pool up to
``max_pool_retries`` times with jittered backoff, and if the pool keeps
dying (or cannot be created at all, e.g. in a sandbox that forbids
``fork``) the runner degrades to in-process serial execution.  Only
*deterministic* cell exceptions fail fast as :class:`CellError` —
retrying those would just fail again.

Two hardening layers on top (PR 9):

* **watchdog** — with ``timeout_s`` set, a window in which *no* future
  settles trips the per-cell wall-clock watchdog: the workers are
  killed, the cells that were occupying them (the first ``jobs``
  pending in submission order — the pool executes FIFO) are retried
  once on a fresh pool, and a cell that trips the watchdog
  ``max_cell_timeouts`` times is quarantined with a named
  :class:`CellTimeout`;
* **keep-going** — with ``keep_going=True``, a failing or quarantined
  cell no longer aborts the run: its slot resolves to ``None``, the
  :class:`CellError` is appended to ``runner.errors``, and the caller
  decides how to fold the hole into its report.  Failed cells are
  never written to the result cache.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Sequence

from repro.exp.cache import CODE_SALT, ResultCache
from repro.exp.cell import Cell, CellError, execute_cell


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from argument, ``REPRO_JOBS``, or the CPU count.

    An explicit worker count below 1 — from either source — is a user
    error and raises :class:`ValueError` naming the offending value,
    instead of surfacing later as an opaque ``ProcessPoolExecutor``
    complaint (or silently running serial when parallelism was asked
    for).  An *unparsable* ``REPRO_JOBS`` is still ignored: a stray env
    var must not crash every study that merely constructs a Runner.
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        return jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            value = int(env)
        except ValueError:
            pass  # an unparsable env var must not crash every study
        else:
            if value < 1:
                raise ValueError(f"REPRO_JOBS must be >= 1, got {env!r}")
            return value
    return os.cpu_count() or 1


class CellTimeout(RuntimeError):
    """A cell exceeded the runner's wall-clock watchdog repeatedly."""


@dataclass
class RunnerStats:
    """What the last ``run`` did (cumulative across runs)."""

    cells: int = 0
    executed: int = 0
    cache_hits: int = 0
    wall_s: float = 0.0
    #: pool incidents survived: worker-death retries + serial degrades.
    pool_retries: int = 0
    serial_degrades: int = 0
    #: watchdog trips (cells suspected of hanging and retried).
    timeouts: int = 0
    #: cells isolated instead of aborting the run: keep-going failures
    #: plus watchdog quarantines.
    quarantined: int = 0


class Runner:
    """Executes cells over a process pool with optional result caching.

    ``cache=None`` (the default) disables caching; pass a
    :class:`~repro.exp.cache.ResultCache` to make unchanged cells free
    on re-run.  ``salt`` defaults to the package code-version salt so
    cached results die with the code that produced them.
    """

    #: resubmissions of broken-pool cells before degrading to serial.
    max_pool_retries = 2
    #: base backoff before a pool retry (scaled by attempt + jitter);
    #: tests set this to ~0.
    retry_backoff_s = 0.5
    #: watchdog trips a cell may cause before being quarantined.
    max_cell_timeouts = 2

    def __init__(self, jobs: int | None = None,
                 cache: ResultCache | None = None,
                 salt: str = CODE_SALT,
                 timeout_s: float | None = None,
                 keep_going: bool = False) -> None:
        self.jobs = resolve_jobs(jobs)
        self.cache = cache
        self.salt = salt
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.timeout_s = timeout_s
        self.keep_going = keep_going
        self.stats = RunnerStats()
        #: isolated failures (keep-going / quarantine), cumulative.
        self.errors: list[CellError] = []

    def run(self, cells: Sequence[Cell]) -> list[Any]:
        """Execute *cells*, returning results in submission order.

        With ``keep_going`` set, cells that failed or were quarantined
        resolve to ``None`` and their :class:`CellError` is appended to
        :attr:`errors`; they are never written to the result cache.
        """
        started = time.perf_counter()
        results: list[Any] = [None] * len(cells)
        pending: list[int] = []
        for index, cell in enumerate(cells):
            if self.cache is not None and cell.cacheable:
                hit, value = self.cache.get(cell.key(self.salt))
                if hit:
                    results[index] = value
                    self.stats.cache_hits += 1
                    continue
            pending.append(index)

        failed_before = len(self.errors)
        if self.jobs <= 1 or len(pending) <= 1:
            for index in pending:
                results[index] = self._execute_serial(cells[index], index)
        else:
            self._execute_parallel(cells, pending, results)

        if self.cache is not None:
            failed_indexes = {e.index for e in self.errors[failed_before:]}
            for index in pending:
                if cells[index].cacheable and index not in failed_indexes:
                    self.cache.put(cells[index].key(self.salt), results[index])

        self.stats.cells += len(cells)
        self.stats.executed += len(pending)
        self.stats.wall_s += time.perf_counter() - started
        return results

    def describe(self) -> str:
        """One status line for CLIs: worker and cache accounting."""
        text = (f"exp: {self.stats.cells} cells, {self.stats.executed} "
                f"executed, {self.stats.cache_hits} cache hits, "
                f"jobs={self.jobs}, wall {self.stats.wall_s:.2f}s")
        incidents = []
        if self.stats.pool_retries:
            incidents.append(f"{self.stats.pool_retries} pool retries")
        if self.stats.serial_degrades:
            incidents.append(f"{self.stats.serial_degrades} serial degrades")
        if self.stats.timeouts:
            incidents.append(f"{self.stats.timeouts} watchdog timeouts")
        if self.stats.quarantined:
            incidents.append(f"{self.stats.quarantined} cells quarantined")
        if incidents:
            text += "; incidents: " + ", ".join(incidents)
        if self.cache is not None:
            text += f"; cache [{self.cache.stats.describe()}] at {self.cache.root}"
        else:
            text += "; cache disabled"
        return text

    # ------------------------------------------------------------------

    def _execute_serial(self, cell: Cell, index: int) -> Any:
        try:
            return execute_cell(cell)
        except Exception as exc:
            if self.keep_going:
                self._record_failure(cell, index, exc)
                return None
            raise CellError(cell, index, exc, salt=self.salt) from exc

    def _record_failure(self, cell: Cell, index: int,
                        exc: BaseException) -> None:
        self.stats.quarantined += 1
        self.errors.append(CellError(cell, index, exc, salt=self.salt))

    def _quarantine(self, cell: Cell, index: int) -> None:
        """A cell hung past the watchdog ``max_cell_timeouts`` times."""
        cause = CellTimeout(
            f"no progress within {self.timeout_s:g}s on "
            f"{self.max_cell_timeouts} attempts (watchdog)")
        error = CellError(cell, index, cause, salt=self.salt)
        self.stats.quarantined += 1
        self.errors.append(error)
        if not self.keep_going:
            raise error from cause

    def _execute_parallel(self, cells: Sequence[Cell], pending: list[int],
                          results: list[Any]) -> None:
        remaining = list(pending)
        attempt = 0
        strikes: dict[int, int] = {}
        while remaining:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(remaining)))
            except Exception:
                # The pool cannot even be created (fork forbidden, fd or
                # pid exhaustion): parallelism is a performance feature,
                # not a correctness one, so finish in-process.
                self._degrade_serial(cells, remaining, results)
                return
            broken, timed = self._drain_pool(pool, cells, remaining, results)
            if not broken and not timed:
                return
            if timed:
                # Watchdog trip, not worker death: the suspects get one
                # retry on a fresh pool (a loaded machine can stall an
                # innocent cell) without burning the pool-retry budget;
                # repeat offenders are quarantined.
                retry: list[int] = []
                for index in timed:
                    strikes[index] = strikes.get(index, 0) + 1
                    if strikes[index] >= self.max_cell_timeouts:
                        self._quarantine(cells[index], index)
                    else:
                        retry.append(index)
                remaining = sorted(broken + retry)
                continue
            attempt += 1
            if attempt > self.max_pool_retries:
                # Workers keep dying: stop betting on the pool.  If the
                # cell itself kills its process deterministically this
                # will crash the parent too — but at that point there is
                # no outcome that both completes the study and hides it.
                self._degrade_serial(cells, broken, results)
                return
            self.stats.pool_retries += 1
            if self.retry_backoff_s > 0:
                time.sleep(self.retry_backoff_s * attempt
                           * (1.0 + random.random()))
            remaining = broken

    def _degrade_serial(self, cells: Sequence[Cell], indexes: list[int],
                        results: list[Any]) -> None:
        self.stats.serial_degrades += 1
        for index in indexes:
            results[index] = self._execute_serial(cells[index], index)

    def _drain_pool(
        self, pool: ProcessPoolExecutor, cells: Sequence[Cell],
        remaining: list[int], results: list[Any],
    ) -> tuple[list[int], list[int]]:
        """Run *remaining* cells on *pool*, storing results as they
        settle; returns ``(broken, timed)`` — indexes to resubmit after
        transient worker death, and indexes suspected of hanging.

        Deterministic cell exceptions raise :class:`CellError` for the
        lowest-indexed failure (or are recorded, under ``keep_going``);
        abrupt worker death (``BrokenProcessPool`` on the future) and
        cells cancelled by fail-fast come back in ``broken``.  With a
        watchdog (``timeout_s``), a wait window in which *nothing*
        settles kills the workers; the cells occupying them — the first
        ``jobs`` pending in submission order, since the pool executes
        FIFO — come back in ``timed`` and the rest in ``broken``.
        """
        broken: list[int] = []
        timed: list[int] = []
        failed: tuple[int, BaseException] | None = None

        def settle(future, index, fail_fast=True) -> None:
            nonlocal failed
            if future.cancelled():
                broken.append(index)
                return
            exc = future.exception()
            if exc is None:
                results[index] = future.result()
            elif isinstance(exc, BrokenProcessPool):
                broken.append(index)
            elif self.keep_going:
                self._record_failure(cells[index], index, exc)
            elif failed is None or index < failed[0]:
                failed = (index, exc)

        with pool:
            pending = {
                pool.submit(execute_cell, cells[index]): index
                for index in remaining
            }
            while pending:
                done, not_done = wait(list(pending), timeout=self.timeout_s,
                                      return_when=FIRST_EXCEPTION)
                if not done:
                    # Watchdog: nothing settled for a full window.  The
                    # hung cells are whatever occupies the workers.
                    suspects = sorted(pending.values())
                    suspects = suspects[:min(self.jobs, len(suspects))]
                    suspect_set = set(suspects)
                    self.stats.timeouts += len(suspects)
                    timed.extend(suspects)
                    broken.extend(i for i in pending.values()
                                  if i not in suspect_set)
                    processes = getattr(pool, "_processes", None) or {}
                    for process in list(processes.values()):
                        process.kill()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pending.clear()
                    break
                for future in done:
                    settle(future, pending.pop(future))
                if failed is not None and pending:
                    # Fail fast: drop cells not yet started, but let the
                    # ones already running settle so the failure we
                    # report is the lowest-indexed one among all that ran.
                    for future in pending:
                        future.cancel()
                    done, _ = wait(list(pending))
                    for future in done:
                        settle(future, pending.pop(future))
                    break
        if failed is not None:
            index, exc = failed
            raise CellError(cells[index], index, exc, salt=self.salt) from exc
        return sorted(broken), sorted(timed)


def run_cells(cells: Sequence[Cell], runner: Runner | None = None) -> list[Any]:
    """Run cells through *runner*, or serially in-process when ``None``.

    The ``None`` path is the zero-dependency fallback study functions
    use so their legacy signatures keep working unchanged.
    """
    if runner is not None:
        return runner.run(cells)
    out = []
    for index, cell in enumerate(cells):
        try:
            out.append(execute_cell(cell))
        except Exception as exc:
            raise CellError(cell, index, exc) from exc
    return out
