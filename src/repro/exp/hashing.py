"""Stable content hashing for experiment configurations.

Cache keys and worker dispatch must be identical across processes and
interpreter invocations, which rules out everything built on Python's
``hash()`` (salted per process via ``PYTHONHASHSEED``) or on ``id()``
(address-dependent) or on incidental ``repr`` details.  This module
canonicalizes a configuration object — dataclasses, containers, numpy
values, functions — into a byte stream with explicit type tags and
hashes it with SHA-256.

Canonicalization rules:

* dataclasses encode as class qualname plus ``(field, value)`` pairs in
  field-declaration order, so two instances are equal iff their fields
  are;
* dicts encode entries sorted by the digest of each key, so insertion
  order never matters;
* sets likewise encode members in digest order;
* functions encode as ``module.qualname`` — the identity under which a
  worker process re-imports them;
* floats encode via ``repr`` (shortest round-trip form, stable across
  CPython versions >= 3.1) and numpy scalars via their Python ``item()``.

Anything unrecognized raises ``TypeError`` rather than silently hashing
an unstable ``repr``.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from pathlib import PurePath
from typing import Any

import numpy as np


def stable_digest(obj: Any) -> str:
    """Hex SHA-256 of *obj*'s canonical encoding (stable across
    processes, machines, and ``PYTHONHASHSEED`` values)."""
    h = hashlib.sha256()
    _encode(obj, h.update)
    return h.hexdigest()


def _encode(obj: Any, emit) -> None:
    # NOTE: bool before int (bool is an int subclass); every branch
    # starts with a distinct type tag so values of different types can
    # never collide byte-wise.
    if obj is None:
        emit(b"N;")
    elif isinstance(obj, bool):
        emit(b"B1;" if obj else b"B0;")
    elif isinstance(obj, int):
        # int(obj) so numpy integer subclasses encode like Python ints.
        emit(b"I" + str(int(obj)).encode() + b";")
    elif isinstance(obj, float):
        # repr(float(obj)) because np.float64 subclasses float but its
        # own repr ("np.float64(0.5)") is not the canonical form.
        emit(b"F" + repr(float(obj)).encode() + b";")
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        emit(b"S" + str(len(raw)).encode() + b":")
        emit(raw)
    elif isinstance(obj, (bytes, bytearray)):
        emit(b"Y" + str(len(obj)).encode() + b":")
        emit(bytes(obj))
    elif isinstance(obj, enum.Enum):
        emit(b"E" + type(obj).__qualname__.encode() + b"." + obj.name.encode() + b";")
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        cls = type(obj)
        emit(b"D" + f"{cls.__module__}.{cls.__qualname__}".encode() + b"{")
        for field in dataclasses.fields(obj):
            emit(field.name.encode() + b"=")
            _encode(getattr(obj, field.name), emit)
        emit(b"}")
    elif isinstance(obj, (list, tuple)):
        emit(b"L" if isinstance(obj, list) else b"T")
        emit(str(len(obj)).encode() + b"[")
        for item in obj:
            _encode(item, emit)
        emit(b"]")
    elif isinstance(obj, dict):
        entries = sorted(
            ((stable_digest(key), key, value) for key, value in obj.items()),
            key=lambda e: e[0],
        )
        emit(b"M" + str(len(entries)).encode() + b"{")
        for _, key, value in entries:
            _encode(key, emit)
            emit(b":")
            _encode(value, emit)
        emit(b"}")
    elif isinstance(obj, (set, frozenset)):
        digests = sorted(stable_digest(item) for item in obj)
        emit(b"X" + str(len(digests)).encode() + b"{")
        for digest in digests:
            emit(digest.encode())
        emit(b"}")
    elif isinstance(obj, np.generic):
        _encode(obj.item(), emit)
    elif isinstance(obj, np.ndarray):
        emit(b"A" + str(obj.dtype).encode() + b"|")
        emit(str(obj.shape).encode() + b"|")
        emit(np.ascontiguousarray(obj).tobytes())
    elif isinstance(obj, PurePath):
        _encode(str(obj), emit)
    elif callable(obj) and hasattr(obj, "__qualname__"):
        module = getattr(obj, "__module__", "") or ""
        emit(b"C" + f"{module}.{obj.__qualname__}".encode() + b";")
    else:
        raise TypeError(
            f"cannot canonically encode {type(obj).__name__!r} for a stable "
            f"hash; add an explicit rule or convert it to a supported type"
        )
