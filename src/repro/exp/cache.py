"""Content-addressed on-disk result cache for experiment cells.

A cell's result is addressed by the stable hash of (function qualname,
config, seed, code salt) — see :meth:`repro.exp.cell.Cell.key` — so an
unchanged cell is free on re-run and any change to its inputs or to the
code version misses cleanly.  Entries are plain pickles laid out as::

    <root>/<salt>/<key[:2]>/<key>.pkl

``<root>`` defaults to ``~/.cache/repro-ssd`` and is overridden by the
``REPRO_CACHE_DIR`` environment variable.  Keeping the salt in the path
(not just the key) lets ``clear()`` drop a whole code generation at
once and keeps directory listings debuggable.

Corrupted entries (truncated writes, foreign junk) are discarded and
recomputed, never fatal: reads trap every unpickling failure, and
writes go through a temp file + ``os.replace`` so a crashed run cannot
leave a half-written entry under its final name.  Each entry embeds the
salt that wrote it, so an entry produced by a different code generation
(or dropped into the wrong directory by hand) is detected and treated
as a miss — with a single warning line for the whole run, not a stack
trace per entry.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro import __version__

#: Code-version salt mixed into every cell key.  Bump the trailing
#: schema number whenever a change alters what existing cell functions
#: compute without changing their configs (the package version covers
#: release-level changes).
CODE_SALT = f"repro-{__version__}-exp3"


def default_cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-ssd``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-ssd"


@dataclass
class CacheStats:
    """Counters the CLI surfaces as cache-stats."""

    hits: int = 0
    misses: int = 0
    stored: int = 0
    discarded: int = 0

    def describe(self) -> str:
        text = f"{self.hits} hits, {self.misses} misses, {self.stored} stored"
        if self.discarded:
            text += f", {self.discarded} corrupt discarded"
        return text


class ResultCache:
    """Pickle store keyed by content address.

    ``get`` returns ``(hit, value)`` rather than a sentinel so cells may
    legitimately cache ``None``.
    """

    def __init__(self, root: str | Path | None = None,
                 salt: str = CODE_SALT) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.salt = salt
        self.stats = CacheStats()
        self._warned = False

    def path_for(self, key: str) -> Path:
        return self.root / self.salt / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> tuple[bool, Any]:
        path = self.path_for(key)
        try:
            with open(path, "rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:
            # Truncated, corrupted, or unpicklable entry: drop it and
            # let the runner recompute.
            return self._discard(path, "unreadable (truncated or corrupt)")
        if (not isinstance(entry, dict) or "value" not in entry
                or entry.get("salt") != self.salt):
            # A pre-wrapper pickle, foreign junk, or an entry written by
            # a different code generation: stale by definition.
            return self._discard(path, "written by a different code version")
        self.stats.hits += 1
        return True, entry["value"]

    def _discard(self, path: Path, why: str) -> tuple[bool, Any]:
        """Drop a bad entry, warn once per cache instance, report miss."""
        self.stats.discarded += 1
        self.stats.misses += 1
        if not self._warned:
            self._warned = True
            print(f"repro.exp: discarding cache entry {path.name}: {why} "
                  f"(recomputing; further discards silent)", file=sys.stderr)
        try:
            path.unlink()
        except OSError:
            pass
        return False, None

    def put(self, key: str, value: Any) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump({"salt": self.salt, "value": value}, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stored += 1

    def clear(self) -> int:
        """Delete every entry under this cache's salt; returns count."""
        base = self.root / self.salt
        removed = 0
        if not base.exists():
            return 0
        for entry in sorted(base.rglob("*.pkl")):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed
