"""Reusable experiment cell functions.

Module-level, pure, and picklable — the building blocks the CLI and the
benchmark suite fan out through :class:`~repro.exp.runner.Runner`.
Each function takes ``(spec, seed)`` where *spec* is a frozen dataclass
carrying everything the measurement needs (including the device
config), and returns a plain picklable result.

Cells that write a JSONL trace (``trace_path`` set) perform disk I/O as
a side effect and must be submitted with ``cacheable=False``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ssd.config import SsdConfig
from repro.workloads.spec import JobSpec

#: Churn address patterns understood by :func:`run_churn_cell`.
CHURN_PATTERNS = ("hotcold", "uniform")


# ----------------------------------------------------------------------
# Counter-mode churn (WAF / GC / mapping studies)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChurnCell:
    """Single-sector random-write churn against a counter-mode device.

    ``hotcold`` draws one uniform [0,1) variate per write to choose the
    hot region (traffic share ``hot_traffic``, space share
    ``1/hot_divisor``); ``uniform`` draws one LBA over the whole device.
    The draw sequences mirror the original serial benchmark loops
    exactly, so migrated studies stay byte-identical to their goldens.
    """

    config: SsdConfig
    writes: int
    pattern: str = "hotcold"
    hot_divisor: int = 5
    hot_traffic: float = 0.8
    trace_path: str | None = None


@dataclass(frozen=True)
class ChurnResult:
    """SMART/FTL aggregates a churn cell reports back."""

    waf: float
    erase_count: int
    gc_migrated_sectors: int
    meta_program_pages: int


def run_churn_cell(spec: ChurnCell, seed: int = 3) -> ChurnResult:
    from repro.ssd.device import SimulatedSSD

    if spec.pattern not in CHURN_PATTERNS:
        raise ValueError(f"unknown churn pattern {spec.pattern!r}")
    device = SimulatedSSD(spec.config)
    sink = None
    if spec.trace_path:
        from repro.obs.sinks import JsonlSink

        sink = JsonlSink(spec.trace_path)
        device.attach_sink(sink)
    rng = np.random.default_rng(seed)
    if spec.pattern == "hotcold":
        hot = max(1, device.num_sectors // spec.hot_divisor)
        for _ in range(spec.writes):
            if rng.random() < spec.hot_traffic:
                lba = int(rng.integers(hot))
            else:
                lba = hot + int(rng.integers(device.num_sectors - hot))
            device.write_sectors(lba, 1)
    else:
        for _ in range(spec.writes):
            device.write_sectors(int(rng.integers(device.num_sectors)), 1)
    device.flush()
    if sink is not None:
        sink.close()
    return ChurnResult(
        waf=device.smart.waf(),
        erase_count=device.smart.erase_count,
        gc_migrated_sectors=device.ftl.stats.gc_migrated_sectors,
        meta_program_pages=device.smart.meta_program_pages,
    )


# ----------------------------------------------------------------------
# Timed single-job run (latency studies, the CLI `latency` command)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TimedJobCell:
    """One fio-style job against a fresh timed device."""

    config: SsdConfig
    job: JobSpec


def run_timed_job_cell(spec: TimedJobCell, seed: int = 0):
    from repro.ssd.timed import TimedSSD
    from repro.workloads.engine import run_timed

    device = TimedSSD(spec.config)
    return run_timed(device, [spec.job])


# ----------------------------------------------------------------------
# Sequential-write NAND-page sweep (Fig 4a family)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NandPageSweepCell:
    """Fig 4a protocol: converged host-bytes-per-NAND-page."""

    config: SsdConfig
    sizes_bytes: tuple[int, ...]


def run_nand_page_sweep_cell(spec: NandPageSweepCell, seed: int = 0) -> float:
    from repro.core.blackbox.nand_page import sequential_write_sweep
    from repro.ssd.device import SimulatedSSD

    device = SimulatedSSD(spec.config)
    estimate = sequential_write_sweep(device, sizes_bytes=list(spec.sizes_bytes))
    return float(estimate.converged_bytes_per_page)


# ----------------------------------------------------------------------
# pSLC burst absorption (timed)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PslcBurstCell:
    """Sequential burst into a timed device; reports mean latency and
    the pSLC drain traffic it left behind."""

    config: SsdConfig
    burst_sectors: int = 160


def run_pslc_burst_cell(spec: PslcBurstCell, seed: int = 0) -> tuple[float, int]:
    from repro.ssd.timed import TimedSSD

    device = TimedSSD(spec.config)
    latencies = []
    for lba in range(0, min(spec.burst_sectors, device.num_sectors), 1):
        request = device.submit("write", lba, 1, at_ns=device.now)
        latencies.append(request.latency_us)
    return float(np.mean(latencies)), device.smart.pslc_program_pages
