"""repro: a reproduction of "Why and How to Increase SSD Performance
Transparency" (HotOS '19).

Subpackages
-----------
``repro.flash``
    NAND substrate: geometry, array physics, ONFI bus, signals, timing.
``repro.ssd``
    The SSD simulator: page-mapped FTL, GC, caching, RAIN, pSLC, SMART,
    compression schemes, timed execution, and generated firmware.
``repro.workloads``
    fio-like job engine, OLTP transactions, file-server mix.
``repro.fs``
    EXT4-like and F2FS-like block-trace models plus Geriatrix-style aging.
``repro.core``
    The paper's contribution: hardware-probe tracing (§3.1), JTAG
    firmware RE (§3.2), black-box SMART analysis (§2.2), and model
    fidelity studies (§2.1).
"""

__version__ = "1.0.0"
