#!/usr/bin/env python3
"""Probe a flash package's ONFI bus with a logic analyzer (paper §3.1).

Attaches a bus tap to one channel of a timed SSD, drives a format-style
workload, captures the pin waveforms with a TLA7000-class analyzer,
renders the Fig 5 activity view (flat → command/address burst → long
data burst → R/B# busy), decodes the ONFI protocol back out of the
samples, and infers FTL features from the decoded operations.

Also demonstrates the instrument constraint the paper discusses: a
hobbyist analyzer at 10 MHz decodes nothing.

Run:  python examples/probe_flash_bus.py
"""

from repro.analysis.report import format_table
from repro.core.probe.analyzer import HOBBYIST, TLA7000, LogicAnalyzer
from repro.core.probe.decoder import decode_trace_windows
from repro.core.probe.inference import (
    HostOpRecord,
    infer_ftl_features,
    signal_activity,
)
from repro.flash.timing import profile
from repro.ssd.presets import vertex2_like
from repro.ssd.timed import BusTap, TimedSSD


def main() -> None:
    # An old-style async-bus device (OCZ Vertex II): probeable rates,
    # single-die packages.
    config = vertex2_like(scale=2)
    tap = BusTap(config.geometry, profile("async"), channel=0)
    device = TimedSSD(config, bus_tap=tap)
    print(f"probing channel {tap.channel} of {config.geometry.channels}; "
          f"bus: {profile('async').bus_ns_per_byte} ns/byte\n")

    # A format-like workload: metadata writes across the address space.
    host_log = []
    stride = device.num_sectors // 48
    for i in range(48):
        lba = i * stride
        request = device.submit("write", lba, 4, at_ns=device.now)
        host_log.append(HostOpRecord("write", request.submit_ns,
                                     request.complete_ns, 4))
    flush = device.flush()
    host_log.append(HostOpRecord("flush", flush.submit_ns,
                                 flush.complete_ns, 0))

    trace = tap.trace
    print(f"captured trace: {trace.duration_ns / 1e6:.2f} ms, "
          f"{len(trace.segments)} bus segments, "
          f"{len(trace.busy)} busy windows\n")

    # ------------------------------------------------------------------
    # Fig 5: the signal-activity view of one capture window.
    # ------------------------------------------------------------------
    analyzer = LogicAnalyzer(TLA7000)
    capture = analyzer.capture_triggered(trace)
    assert capture is not None
    activity = signal_activity(capture, bins=64)
    print("Fig 5 — signal activity on the probed package "
          "('#' dense, '+' sparse, '.' idle):")
    print(activity.render())
    print(f"(window: {capture.duration_ns / 1e6:.2f} ms at "
          f"{TLA7000.sample_rate_hz / 1e6:.0f} MHz)\n")

    # ------------------------------------------------------------------
    # Protocol decode and FTL inference.
    # ------------------------------------------------------------------
    result = decode_trace_windows(trace, analyzer)
    print(f"decoded {len(result.ops)} operations "
          f"(clean={result.stats.clean})")
    report = infer_ftl_features(result.ops, host_log,
                                sector_size=config.geometry.sector_size)
    print(format_table(["feature", "value"], report.rows(),
                       title="\ninferred from the bus"))

    # ------------------------------------------------------------------
    # The instrument matters: try the $150 analyzer.
    # ------------------------------------------------------------------
    cheap = decode_trace_windows(trace, LogicAnalyzer(HOBBYIST))
    print(f"\nhobbyist analyzer ({HOBBYIST.sample_rate_hz / 1e6:.0f} MHz, "
          f"${HOBBYIST.price_usd}): decoded {len(cheap.ops)} ops, "
          f"clean={cheap.stats.clean} — this is why the paper needed a "
          f"${TLA7000.price_usd:,} instrument.")


if __name__ == "__main__":
    main()
