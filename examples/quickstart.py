#!/usr/bin/env python3
"""Quickstart: simulate an SSD, run fio-style workloads, read SMART.

This is the ten-minute tour of the library: build a device from a
preset, run a random-write job against it, look at the SMART counters a
real drive would expose, then re-run the same workload on the timed
simulator to get latency percentiles.

Run:  python examples/quickstart.py
"""

from repro.analysis.report import format_table
from repro.analysis.stats import summarize_latencies
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mx500_like
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_counter, run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A counter-mode device: op counts and SMART, no clock.
    # ------------------------------------------------------------------
    device = SimulatedSSD(mx500_like(scale=2), model="MX500 (repro)")
    info = device.identify()
    print(f"device: {info.model}, {info.capacity_bytes / 2**20:.0f} MiB, "
          f"{info.sector_size} B sectors\n")

    job = JobSpec(
        name="randwrite-4k",
        rw="randwrite",
        region=Region(0, device.num_sectors),
        bs_sectors=1,          # 4 KB requests
        io_count=20_000,
        seed=42,
    )
    result = run_counter(device, [job])
    print("SMART after 20k random 4 KB writes:")
    print(device.smart_render())
    print(f"\nwrite amplification (FTL pages / host pages): "
          f"{result.waf:.3f}")
    print(f"GC invocations: {device.ftl.stats.gc_invocations}, "
          f"migrated sectors: {device.ftl.stats.gc_migrated_sectors}\n")

    # ------------------------------------------------------------------
    # 2. The same workload under the timed simulator: latencies.
    # ------------------------------------------------------------------
    timed = TimedSSD(mx500_like(scale=2))
    timed_job = JobSpec(
        name="randwrite-4k",
        rw="randwrite",
        region=Region(0, timed.num_sectors),
        bs_sectors=1,
        io_count=8_000,
        iodepth=4,
        seed=42,
    )
    timed_result = run_timed(timed, [timed_job])
    job_result = timed_result.jobs["randwrite-4k"]
    summary = summarize_latencies(job_result.latencies_us)
    print(format_table(
        ["metric", "value"],
        [
            ["IOPS", round(job_result.iops)],
            ["mean latency (us)", summary.mean],
            ["p50 (us)", summary.p50],
            ["p99 (us)", summary.p99],
            ["p99.9 (us)", summary.p999],
            ["max (us)", summary.max],
        ],
        title="timed run (closed loop, iodepth 4)",
    ))
    print("\nNote the tail: foreground GC stalls occasional writes by "
          "milliseconds\nwhile the median stays in microseconds — the "
          "opacity problem the paper is about.")


if __name__ == "__main__":
    main()
