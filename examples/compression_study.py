#!/usr/bin/env python3
"""Intra-SSD compression under OLTP (paper §2, Fig 2).

Runs the same OLTP transaction stream through five intra-SSD compression
schemes and reports flash page writes per transaction, normalized to the
`re-bp32` baseline — for highly compressible, moderately compressible,
and incompressible data.

Run:  python examples/compression_study.py
"""

from repro.analysis.report import format_table
from repro.ssd.compression import SCHEMES, make_scheme
from repro.workloads.compressibility import REGIMES, CompressibilityModel
from repro.workloads.oltp import OltpWorkload, flash_writes_per_transaction

TRANSACTIONS = 3000


def main() -> None:
    order = ["re-bp32", "compact", "fixed", "chunk4", "none"]
    for regime_name in ("high", "moderate", "incompressible"):
        rates = {}
        for scheme_name in order:
            rate = flash_writes_per_transaction(
                make_scheme(scheme_name),
                OltpWorkload(seed=1),
                CompressibilityModel(REGIMES[regime_name], seed=1),
                TRANSACTIONS,
            )
            rates[scheme_name] = rate
        baseline = rates["re-bp32"]
        rows = [
            [name, round(rates[name], 3),
             rates[name] / baseline if baseline else 0.0,
             f"+{(rates[name] / baseline - 1) * 100:.0f}%" if baseline else "-"]
            for name in order
        ]
        print(format_table(
            ["scheme", "writes/txn", "normalized", "extra writes"],
            rows,
            title=f"\nFig 2 — {regime_name} compressibility "
                  f"({TRANSACTIONS} transactions)",
        ))
    print(
        "\nFor highly compressible data the worst scheme writes flash at a\n"
        "rate >150% above the best — an FTL-internal choice no datasheet\n"
        "mentions, directly moving device lifetime and performance."
    )


if __name__ == "__main__":
    main()
