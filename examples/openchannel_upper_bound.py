#!/usr/bin/env python3
"""The transparency upper bound: open-channel vs. black-box (paper §1).

"Open-channel SSDs expose the FTL logic to the host, yielding highly
predictable I/O performance with perfect scheduling decisions, presenting
an upper bound on the improvement potential for SSD transparency."

Same flash geometry and timing, same GC-steady-state random-overwrite
workload, two ways to manage it:

* a black-box firmware FTL (the host sees nothing, GC storms land on
  unlucky writes);
* a host FTL over an open-channel device (the host sees the geometry,
  stripes perfectly, and amortizes GC into bounded slices).

Run:  python examples/openchannel_upper_bound.py
"""

import numpy as np

from repro.analysis.report import format_table
from repro.ssd.openchannel import HostFtl, OpenChannelSSD
from repro.ssd.presets import mqsim_baseline
from repro.ssd.timed import TimedSSD

CFG = mqsim_baseline(scale=4)
MEASURE = 5000


def blackbox() -> np.ndarray:
    device = TimedSSD(CFG)
    rng = np.random.default_rng(4)
    span = int(device.num_sectors * 0.8)
    for lba in range(0, span, 8):
        device.submit("write", lba, min(8, span - lba), at_ns=device.now)
    for _ in range(span // 2):
        device.submit("write", int(rng.integers(span)), 1, at_ns=device.now)
    device.quiesce()
    device.completed.clear()
    latencies = []
    for _ in range(MEASURE):
        request = device.submit("write", int(rng.integers(span)), 1,
                                at_ns=device.now)
        latencies.append(request.latency_us)
    return np.asarray(latencies)


def openchannel() -> tuple[np.ndarray, HostFtl]:
    device = OpenChannelSSD(CFG.geometry, CFG.timing_name)
    host = HostFtl(device, op_ratio=0.12, gc_step_pages=1)
    rng = np.random.default_rng(4)
    span = int(host.num_lpns * 0.8)
    now = 0
    for lpn in range(span):
        now = max(now, host.write(lpn, now))
    for _ in range(span // 2):
        now = max(now, host.write(int(rng.integers(span)), now))
    latencies = []
    for _ in range(MEASURE):
        done = host.write(int(rng.integers(span)), now)
        latencies.append((done - now) / 1000)
        now = max(now, done)
    return np.asarray(latencies), host


def main() -> None:
    print("running the black-box drive to GC steady state...")
    bb = blackbox()
    print("running the open-channel host FTL on identical flash...\n")
    oc, host = openchannel()
    rows = []
    for name, lat in (("black-box firmware FTL", bb),
                      ("open-channel + host FTL", oc)):
        p50, p99, p999 = np.percentile(lat, [50, 99, 99.9])
        rows.append([name, round(float(p50), 1), round(float(p99), 1),
                     round(float(p999), 1), round(float(lat.max()), 1)])
    print(format_table(
        ["configuration", "p50 (us)", "p99 (us)", "p99.9 (us)", "max (us)"],
        rows, title="identical flash, identical workload",
    ))
    budget_us = (3 * host.device.timing.program_ns
                 + host.device.timing.erase_ns) / 1000
    print(f"\nhost FTL worst case is hard-bounded by its incremental-GC "
          f"budget (~{budget_us:.0f} us);\nthe firmware FTL's tail is "
          f"whatever its hidden GC decides it is — the paper's point.")


if __name__ == "__main__":
    main()
