#!/usr/bin/env python3
"""Black-box SMART analysis of a drive (paper §2.2, Fig 4).

First estimates the NAND page size from a sequential-write sweep (the
host-bytes-per-page ratio converges at ~30 KB on the MX500 model because
of RAIN parity), then runs the WAF extrapolation experiment: three
random-write workloads measured separately, an IOPS-weighted prediction
for the mixed run, and the actual mixed measurement that blows past it.

Run:  python examples/blackbox_waf.py
"""

from repro.analysis.report import format_table
from repro.core.blackbox.nand_page import sequential_write_sweep
from repro.core.blackbox.waf import run_waf_study
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mx500_like


def main() -> None:
    # ------------------------------------------------------------------
    # Fig 4a: what is a "NAND page", according to SMART?
    # ------------------------------------------------------------------
    device = SimulatedSSD(mx500_like(scale=2), model="MX500 (repro)")
    estimate = sequential_write_sweep(device)
    print(format_table(
        ["host write (KiB)", "NAND pages", "bytes/page"],
        [
            [p.write_bytes // 1024, p.nand_pages, round(p.bytes_per_page)]
            for p in estimate.points
        ],
        title="Fig 4a — sequential write sweep",
    ))
    print(f"\nconverged: {estimate.converged_bytes_per_page / 1024:.1f} KiB "
          "per NAND page  (32 KiB page x 15/16 RAIN stripe = 30 KiB)\n")

    # ------------------------------------------------------------------
    # Fig 4b: black-box WAF extrapolation.
    # ------------------------------------------------------------------
    print("running the three workloads separately, then concurrently "
          "(this takes a minute)...\n")
    study = run_waf_study(lambda: SimulatedSSD(mx500_like(scale=2)),
                          io_count=12_000)
    rows = [[w.name, w.requests, w.host_pages, w.ftl_pages, w.waf]
            for w in study.separate]
    print(format_table(
        ["workload", "requests", "host pages", "FTL pages", "WAF"],
        rows, title="Fig 4b — separate runs",
    ))
    print(f"\nexpected mixed WAF (IOPS-weighted): {study.expected_mixed_waf:.3f}")
    print(f"measured mixed WAF:                  {study.measured_mixed_waf:.3f}")
    print(f"extrapolation error:                 {study.extrapolation_error:.2f}x")
    print(
        "\nThe additive model fails because the mixed run's dirty-mapping\n"
        "working set overflows the FTL's RAM budget — invisible from\n"
        "outside, exactly the paper's point about black-box analysis."
    )


if __name__ == "__main__":
    main()
