#!/usr/bin/env python3
"""Reverse engineer an SSD over its JTAG port (paper §3.2).

Walks the complete 840-EVO-style study against the simulated hackable
device: de-obfuscate the vendor firmware update, disassemble it, harvest
data-structure pointers, then attach to the JTAG port to attribute core
roles, map the translation-table layout, watch mapping chunks demand-load,
and classify the pSLC index as a hash table.

Run:  python examples/reverse_engineer_firmware.py
"""

from repro.analysis.report import format_table
from repro.core.jtag.discovery import analyze_update_file, run_full_study
from repro.ssd.firmware.device import HackableSSD
from repro.ssd.firmware.isa import disassemble
from repro.ssd.firmware.obfuscation import deobfuscate


def main() -> None:
    device = HackableSSD(scale=2)
    print(f"target: {device.ssd.model}, "
          f"{device.num_sectors * 4 // 1024} MiB logical\n")

    # ------------------------------------------------------------------
    # Step 1: the firmware update file, before and after the attack.
    # ------------------------------------------------------------------
    update = device.firmware_update_file
    print(f"vendor update file: {len(update)} bytes, "
          f"first 16: {update[:16].hex()}")
    plain, guess = deobfuscate(update)
    print(f"keystream attack: period={guess.period}, "
          f"confidence={guess.confidence:.2f}")
    print(f"recovered magic: {plain[:8]!r}\n")

    analysis = analyze_update_file(update)
    print("sections:", ", ".join(analysis.section_names))
    print("strings :", ", ".join(analysis.strings))
    print("LBA-LSB dispatch found in:", ", ".join(analysis.lsb_dispatch_sections))

    # A taste of the disassembly the analysis works from.
    from repro.ssd.firmware.builder import parse_image
    core0 = [s for s in parse_image(plain) if s.name == "core0"][0]
    print("\ncore0 disassembly (SATA dispatcher):")
    for line in disassemble(core0.data, core0.load_addr)[:8]:
        print("   ", line.text())

    # ------------------------------------------------------------------
    # Step 2: the live study over JTAG.
    # ------------------------------------------------------------------
    print("\nattaching to JTAG and running the full study "
          "(PC sampling, memory diffing)...\n")
    report = run_full_study(device)
    print(format_table(["finding", "value"], report.rows(),
                       title="§3.2 study results"))

    print(
        "\nCompare with the paper's 840 EVO findings: one SATA core plus two\n"
        "flash cores split by the LBA's least-significant bit; eight mapping\n"
        "arrays occupying more DRAM than the theoretical minimum; map chunks\n"
        "(117.5 MB of logical space each) loaded on demand; and a hashed\n"
        "index in front of the pSLC buffer."
    )


if __name__ == "__main__":
    main()
