#!/usr/bin/env python3
"""File-system aging vs. SSD internals (paper §2, Fig 1).

Reproduces the Geriatrix-style observation: the F2FS/EXT4 throughput
ratio on a file-server workload is not a constant of the file systems —
it depends on the SSD model and on how the image was aged.

Two simulated drives (a lean 'ssd64' and a generous 'ssd120') each run
the file-server benchmark under both file-system models, unaged (U) and
after two aging profiles (A, M).

Run:  python examples/aging_filesystems.py   (takes a few minutes)
"""

from repro.analysis.report import format_table
from repro.fs.aging import PROFILES, AgingProfile, age_filesystem
from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import TimedBackend
from repro.ssd.presets import ssd64_like, ssd120_like
from repro.ssd.timed import TimedSSD
from repro.workloads.fileserver import FileServerConfig, FileServerWorkload

#: shortened aging profiles so the example finishes quickly.
QUICK_PROFILES = {
    "U": PROFILES["U"],
    "A": AgingProfile("A", phases=((0.55, 500), (0.40, 200), (0.58, 350)),
                      size_mu=2.0, size_sigma=0.8, max_file_sectors=64),
    "M": AgingProfile("M", phases=((0.65, 450), (0.40, 250), (0.68, 450)),
                      size_mu=2.6, size_sigma=1.1, max_file_sectors=256),
}


def throughput(device_config, fs_cls, profile) -> float:
    device = TimedSSD(device_config)
    backend = TimedBackend(device)
    if fs_cls is F2fsModel:
        fs = F2fsModel(backend, segment_sectors=256, checkpoint_sectors=32)
    else:
        fs = Ext4Model(backend, journal_sectors=256, metadata_sectors=128)
    age_filesystem(fs, profile, seed=7)
    workload = FileServerWorkload(
        fs, FileServerConfig(working_files=40, mean_file_sectors=16), seed=11
    )
    workload.prepare()
    result = workload.run(600)
    return result.ops_per_second


def main() -> None:
    rows = []
    for model_name, config_fn in (("ssd64", ssd64_like), ("ssd120", ssd120_like)):
        for profile_name, profile in QUICK_PROFILES.items():
            ext4_ops = throughput(config_fn(scale=2), Ext4Model, profile)
            f2fs_ops = throughput(config_fn(scale=2), F2fsModel, profile)
            rows.append([
                model_name, profile_name,
                round(ext4_ops), round(f2fs_ops),
                f2fs_ops / ext4_ops if ext4_ops else 0.0,
            ])
            print(f"  measured {model_name}/{profile_name}")
    print()
    print(format_table(
        ["SSD model", "aging", "ext4 ops/s", "f2fs ops/s", "f2fs/ext4"],
        rows, title="Fig 1 — file-server throughput ratio by model and aging",
    ))
    ratios = [r[4] for r in rows]
    print(f"\nratio range: {min(ratios):.2f} .. {max(ratios):.2f} — "
          "not the uniform '2x across the board' a single-device study "
          "would conclude.")


if __name__ == "__main__":
    main()
