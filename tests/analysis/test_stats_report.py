"""Statistics helpers and table/CSV reporting."""

import numpy as np
import pytest

from repro.analysis.report import format_table, to_csv, write_csv
from repro.analysis.stats import (
    relative_difference,
    summarize_latencies,
    tail_curve,
)


class TestSummarize:
    def test_empty(self):
        summary = summarize_latencies(np.array([]))
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_percentile_ordering(self):
        data = np.random.default_rng(0).exponential(100, size=5000)
        summary = summarize_latencies(data)
        assert summary.p50 <= summary.p95 <= summary.p99 <= summary.p999 <= summary.max
        assert summary.count == 5000

    def test_constant_sample(self):
        summary = summarize_latencies(np.full(10, 7.0))
        assert summary.mean == summary.p50 == summary.max == 7.0

    def test_row_shape(self):
        assert len(summarize_latencies(np.array([1.0])).row()) == 7


class TestTailCurve:
    def test_range_and_monotonicity(self):
        data = np.random.default_rng(1).exponential(10, size=2000)
        qs, values = tail_curve(data, points=20)
        assert qs[0] == 99.0 and qs[-1] == 100.0
        assert np.all(np.diff(values) >= 0)

    def test_empty_data(self):
        qs, values = tail_curve(np.array([]), points=5)
        assert np.all(values == 0)

    def test_points_validated(self):
        with pytest.raises(ValueError):
            tail_curve(np.array([1.0]), points=1)


class TestRelativeDifference:
    def test_symmetric(self):
        assert relative_difference(10, 12) == relative_difference(12, 10)

    def test_zero_pair(self):
        assert relative_difference(0.0, 0.0) == 0.0

    def test_known_value(self):
        assert relative_difference(100, 118) == pytest.approx(18 / 109)


class TestReport:
    HEADERS = ["name", "value", "ok"]
    ROWS = [["alpha", 1.23456, True], ["beta", 2, False]]

    def test_table_alignment(self):
        text = format_table(self.HEADERS, self.ROWS, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text and "1.235" in text
        assert "yes" in text and "no" in text
        # header separator matches widths
        assert set(lines[2].replace("  ", "")) == {"-"}

    def test_csv(self):
        csv_text = to_csv(self.HEADERS, self.ROWS)
        assert csv_text.splitlines()[0] == "name,value,ok"
        assert "alpha" in csv_text

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "x.csv", self.HEADERS, self.ROWS)
        assert path.exists()
        assert "beta" in path.read_text()
