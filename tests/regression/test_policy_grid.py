"""Policy-grid sweeps are runner-invariant and cover every policy.

This is the file CI's policy-grid smoke job runs (with ``REPRO_JOBS=2``):
a tiny-geometry grid must produce byte-identical results serial and
parallel, every registered policy must instantiate, and the variant
names must parse back into their axes.
"""

import numpy as np

from repro.core.modeling.policy_grid import (
    grid_rows,
    grid_variants,
    run_policy_grid,
    variant_name,
)
from repro.exp import ResultCache, Runner
from repro.ssd.ftl import Ftl
from repro.ssd.policy import REGISTRIES
from repro.ssd.presets import mqsim_baseline, tiny

#: A fast sub-grid: one legacy and one registry-era value per axis.
GC = ("greedy", "d_choices")
CACHE = ("data", "mapping")
ALLOC = ("CWDP", "hotcold")


class TestGridEquivalence:
    def test_serial_matches_parallel(self, tmp_path):
        base = mqsim_baseline(scale=8)
        kwargs = dict(block_sizes_sectors=(1,), io_count=150,
                      gc_policies=GC, designations=CACHE, allocations=ALLOC)
        serial = run_policy_grid(base, **kwargs)
        runner = Runner(jobs=2, cache=ResultCache(tmp_path))
        parallel = run_policy_grid(base, runner=runner, **kwargs)
        assert len(serial.results) == len(parallel.results) == 8
        for a, b in zip(serial.results, parallel.results):
            assert (a.variant, a.bs_sectors) == (b.variant, b.bs_sectors)
            assert a.summary == b.summary
            assert a.iops == b.iops
            assert np.array_equal(a.tail_values_us, b.tail_values_us)

    def test_warm_cache_rerun_executes_nothing(self, tmp_path):
        base = mqsim_baseline(scale=8)
        kwargs = dict(block_sizes_sectors=(1,), io_count=150,
                      gc_policies=("greedy",), designations=("data",),
                      allocations=ALLOC)
        cold_runner = Runner(jobs=None, cache=ResultCache(tmp_path))
        cold = run_policy_grid(base, runner=cold_runner, **kwargs)
        warm_runner = Runner(jobs=None, cache=ResultCache(tmp_path))
        warm = run_policy_grid(base, runner=warm_runner, **kwargs)
        assert warm_runner.stats.executed == 0  # every cell a cache hit
        for a, b in zip(cold.results, warm.results):
            assert a.summary == b.summary


class TestGridShape:
    def test_variant_names_round_trip_through_grid_rows(self):
        base = tiny()
        variants = grid_variants(base, GC, CACHE, ALLOC)
        assert len(variants) == 8
        assert variants[0].name == variant_name("greedy", "data", "CWDP")
        study = run_policy_grid(base, block_sizes_sectors=(1,), io_count=120,
                                gc_policies=("greedy",),
                                designations=("data",),
                                allocations=("CWDP", "hotcold"))
        rows = grid_rows(study)
        assert {(r["gc_policy"], r["cache_designation"], r["allocation"])
                for r in rows} == {("greedy", "data", "CWDP"),
                                   ("greedy", "data", "hotcold")}

    def test_every_registered_policy_builds_a_device(self):
        """Every (victim, designation, allocation) registry entry can
        run inside a real FTL — not just the default-grid subset."""
        base = tiny()
        for gc in REGISTRIES["gc_policy"].names():
            Ftl(base.with_changes(gc_policy=gc))
        for cache in REGISTRIES["cache_designation"].names():
            Ftl(base.with_changes(cache_designation=cache))
        for alloc in REGISTRIES["allocation_scheme"].names():
            Ftl(base.with_changes(allocation_scheme=alloc))
        for admission in REGISTRIES["cache_admission"].names():
            Ftl(base.with_changes(cache_admission=admission))
        for eviction in REGISTRIES["cache_eviction"].names():
            Ftl(base.with_changes(cache_eviction=eviction))
        for wear in REGISTRIES["wear_policy"].names():
            Ftl(base.with_changes(wear_policy=wear))
