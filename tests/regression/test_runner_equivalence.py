"""Serial vs parallel equivalence: the runner must change *where* cells
execute, never *what* they compute.

These are the tests CI runs with ``REPRO_JOBS=2``; the studies are
scaled down so the whole file stays fast, but they exercise the same
cell functions as the full benchmarks, so byte-identical results here
imply the golden figure CSVs are runner-invariant.
"""

import numpy as np

from repro.core.blackbox.waf import run_waf_study
from repro.core.modeling.fidelity import run_fidelity_study
from repro.exp import Cell, ChurnCell, ResultCache, Runner, run_churn_cell
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny


class TestFidelityEquivalence:
    def test_parallel_study_identical_to_serial(self, tmp_path):
        base = tiny()
        serial = run_fidelity_study(base, block_sizes_sectors=(1, 2),
                                    io_count=300)
        runner = Runner(jobs=None, cache=ResultCache(tmp_path))
        parallel = run_fidelity_study(base, block_sizes_sectors=(1, 2),
                                      io_count=300, runner=runner)
        assert len(serial.results) == len(parallel.results)
        for a, b in zip(serial.results, parallel.results):
            assert (a.variant, a.bs_sectors) == (b.variant, b.bs_sectors)
            assert a.summary == b.summary
            assert a.iops == b.iops
            assert np.array_equal(a.tail_percentiles, b.tail_percentiles)
            assert np.array_equal(a.tail_values_us, b.tail_values_us)

    def test_warm_cache_rerun_identical(self, tmp_path):
        base = tiny()
        cold_runner = Runner(jobs=None, cache=ResultCache(tmp_path))
        cold = run_fidelity_study(base, block_sizes_sectors=(1,),
                                  io_count=300, runner=cold_runner)
        warm_runner = Runner(jobs=None, cache=ResultCache(tmp_path))
        warm = run_fidelity_study(base, block_sizes_sectors=(1,),
                                  io_count=300, runner=warm_runner)
        assert warm_runner.stats.executed == 0  # every cell a cache hit
        for a, b in zip(cold.results, warm.results):
            assert a.summary == b.summary
            assert np.array_equal(a.tail_values_us, b.tail_values_us)


class TestWafEquivalence:
    def test_config_path_matches_legacy_factory_path(self):
        config = tiny()
        legacy = run_waf_study(
            device_factory=lambda: SimulatedSSD(config), io_count=500)
        runner = Runner(jobs=None, cache=None)
        parallel = run_waf_study(config=config, io_count=500, runner=runner)
        assert [w.waf for w in legacy.separate] == \
            [w.waf for w in parallel.separate]
        assert [w.host_pages for w in legacy.separate] == \
            [w.host_pages for w in parallel.separate]
        assert legacy.measured_mixed_waf == parallel.measured_mixed_waf
        assert legacy.expected_mixed_waf == parallel.expected_mixed_waf


class TestChurnEquivalence:
    def test_churn_cell_matches_inline_loop(self):
        """The migrated ablation benches rely on ChurnCell replaying the
        original serial RNG draw sequence exactly."""
        config = tiny().with_changes(gc_policy="greedy")
        device = SimulatedSSD(config)
        rng = np.random.default_rng(3)
        hot = max(1, device.num_sectors // 5)
        for _ in range(2000):
            if rng.random() < 0.8:
                lba = int(rng.integers(hot))
            else:
                lba = hot + int(rng.integers(device.num_sectors - hot))
            device.write_sectors(lba, 1)
        device.flush()

        result = run_churn_cell(ChurnCell(config=config, writes=2000), seed=3)
        assert result.waf == device.smart.waf()
        assert result.erase_count == device.smart.erase_count
        assert result.gc_migrated_sectors == device.ftl.stats.gc_migrated_sectors

    def test_parallel_churn_identical(self, tmp_path):
        cells = [
            Cell(run_churn_cell,
                 ChurnCell(config=tiny().with_changes(gc_policy=p),
                           writes=1200),
                 seed=3, label=f"gc:{p}")
            for p in ("greedy", "random", "fifo")
        ]
        assert Runner(jobs=1).run(cells) == Runner(jobs=2).run(cells)
