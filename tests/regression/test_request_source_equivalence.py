"""RequestSource adapter vs the legacy paths: byte-identical streams.

The PR-10 refactor routes every workload through
:class:`~repro.workloads.source.RequestSource`.  The contract is that
the legacy paths did not move: a :class:`JobSource` makes exactly the
RNG draws the pre-refactor engine loops made inline (LBA draw, then
kind draw, one ``default_rng(seed)`` stream), fleet devices get the
same per-tenant streams from ``device_sources`` as ``device_jobs``
produced, and a file-system scenario replayed from its recorded trace
drives a device identically to running the model against the device
directly.  These tests pin all three, fingerprint-style, the way
``test_policy_equivalence.py`` pinned the policy engine.
"""

import hashlib

import numpy as np
import pytest

from repro.fs.ext4 import Ext4Model
from repro.fs.f2fs import F2fsModel
from repro.fs.vfs import CounterBackend
from repro.fleet.spec import FleetSpec, default_tenants
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mqsim_baseline, tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_counter, run_timed
from repro.workloads.fileserver import FileServerConfig, FileServerWorkload
from repro.workloads.patterns import Region
from repro.workloads.source import FsSource, JobSource
from repro.workloads.spec import JobSpec

#: the golden scale: enough requests to cross GC/pattern state churn.
GOLDEN_IO = 5_000


def _legacy_stream(job: JobSpec):
    """The pre-refactor engine loops' request generation, verbatim:
    one rng, LBA draw first, then kind draw."""
    rng = np.random.default_rng(job.seed)
    pattern = job.make_pattern()
    for _ in range(job.io_count):
        lba = pattern.next_lba(rng)
        yield job.request_kind(rng), lba, job.bs_sectors


def _fingerprint(stream) -> str:
    h = hashlib.sha256()
    for kind, lba, sectors in stream:
        h.update(f"{kind},{lba},{sectors};".encode())
    return h.hexdigest()


GOLDEN_JOBS = [
    JobSpec("uniform", "randwrite", Region(0, 44_236),
            io_count=GOLDEN_IO, seed=7),
    JobSpec("mixed-zipf", "randrw", Region(0, 44_236), bs_sectors=4,
            io_count=GOLDEN_IO, seed=11, pattern="zipf",
            read_fraction=0.3),
    JobSpec("hotcold", "randwrite", Region(100, 30_000),
            io_count=GOLDEN_IO, seed=23, pattern="hotcold"),
    JobSpec("sequential", "write", Region(0, 44_236), bs_sectors=8,
            io_count=GOLDEN_IO, seed=1),
    JobSpec("open-zipf", "randrw", Region(0, 44_236), io_count=GOLDEN_IO,
            seed=5, submission="open", rate_iops=50_000.0,
            arrival="poisson"),
]


class TestJobStreamIdentity:
    @pytest.mark.parametrize("job", GOLDEN_JOBS, ids=lambda j: j.name)
    def test_adapter_stream_matches_legacy_draw_order(self, job):
        assert _fingerprint(JobSource(job)) == _fingerprint(
            _legacy_stream(job))

    def test_open_loop_arrivals_unchanged(self):
        # arrivals come from the dedicated [seed, 0x0A221] stream the
        # legacy engine used; the adapter must not perturb them.
        job = GOLDEN_JOBS[-1]
        from repro.workloads.engine import _arrival_times

        np.testing.assert_array_equal(JobSource(job).arrival_times(1234),
                                      _arrival_times(job, 1234))


class TestRunIdentity:
    """run_*(JobSpec) and run_*(JobSource) are the same run."""

    @pytest.mark.parametrize("iodepth,submission", [
        (1, "closed"), (8, "closed"), (1, "open")])
    def test_timed_runs_identical(self, iodepth, submission):
        kwargs = {"rate_iops": 40_000.0} if submission == "open" else {}
        results = {}
        for wrap in (False, True):
            config = mqsim_baseline()
            device = TimedSSD(config)
            job = JobSpec("j", "randwrite", Region(0, config.logical_sectors),
                          io_count=3_000, bs_sectors=2, seed=11,
                          iodepth=iodepth, submission=submission, **kwargs)
            results[wrap] = run_timed(device,
                                      [JobSource(job) if wrap else job])
        spec_run, source_run = results[False], results[True]
        np.testing.assert_array_equal(spec_run.jobs["j"].latencies_us,
                                      source_run.jobs["j"].latencies_us)
        assert spec_run.elapsed_ns == source_run.elapsed_ns
        assert spec_run.smart_delta == source_run.smart_delta

    def test_counter_runs_identical(self):
        smarts = {}
        for wrap in (False, True):
            device = SimulatedSSD(tiny())
            jobs = [JobSpec("a", "randwrite", Region(0, 716),
                            io_count=2_000, seed=3),
                    JobSpec("b", "randrw", Region(0, 716),
                            io_count=2_000, seed=4)]
            if wrap:
                jobs = [JobSource(j) for j in jobs]
            run = run_counter(device, jobs)
            smarts[wrap] = (run.smart_delta, device.smart)
        assert smarts[False] == smarts[True]


class TestFleetIdentity:
    """device_sources() is device_jobs() for synthetic tenant mixes."""

    def test_sources_wrap_the_same_jobs(self):
        spec = FleetSpec(tenants=default_tenants(), devices=4)
        num = spec.device_config().logical_sectors
        for device_index in (0, 3):
            jobs = spec.device_jobs(device_index, num)
            sources = spec.device_sources(device_index, num)
            assert [s.job for s in sources] == jobs

    def test_device_run_identical_through_either_path(self):
        spec = FleetSpec(tenants=default_tenants(), devices=1)
        config = spec.device_config()
        runs = {}
        for use_sources in (False, True):
            device = TimedSSD(config)
            if use_sources:
                workload = spec.device_sources(0, device.num_sectors)
            else:
                workload = spec.device_jobs(0, device.num_sectors)
            runs[use_sources] = run_timed(device, workload)
        jobs_run, sources_run = runs[False], runs[True]
        assert jobs_run.smart_delta == sources_run.smart_delta
        assert jobs_run.elapsed_ns == sources_run.elapsed_ns
        for name, outcome in jobs_run.jobs.items():
            np.testing.assert_array_equal(
                outcome.latencies_us, sources_run.jobs[name].latencies_us)


class TestFsIdentity:
    """An fs scenario replayed from its recording drives the device
    exactly like running the model against the device directly."""

    @pytest.mark.parametrize("model_cls,model_name", [
        (Ext4Model, "ext4"), (F2fsModel, "f2fs")])
    def test_replay_matches_direct_run(self, model_cls, model_name):
        config = mqsim_baseline(scale=4)

        direct = SimulatedSSD(config)
        model = model_cls(CounterBackend(direct))
        workload = FileServerWorkload(
            model, FileServerConfig(working_files=12), seed=6)
        workload.prepare()
        workload.run(60)

        replayed = SimulatedSSD(config)
        source = FsSource(model_name, replayed.num_sectors, operations=60,
                          seed=6, working_files=12)
        run_counter(replayed, [source], flush_at_end=False)

        assert direct.smart == replayed.smart
