"""Fast path vs reference mode: byte-identical results.

``fast_path=False`` on :class:`TimedSSD` / :class:`Ftl` /
``MappingTable`` forces the pre-refactor-shaped general code paths
(per-op ONFI re-encoding, allocating mapping results, full plane scans,
per-slot bookkeeping).  The throughput bench uses it as its baseline;
these tests pin that the two modes are observationally identical — op
streams, timelines, statistics, and every state array."""

import numpy as np
import pytest

from repro.ssd.ftl import Ftl
from repro.ssd.presets import mqsim_baseline, tiny
from repro.ssd.timed import TimedSSD
from repro.workloads.engine import run_timed
from repro.workloads.patterns import Region
from repro.workloads.spec import JobSpec


def _assert_same_state(fast: Ftl, ref: Ftl) -> None:
    np.testing.assert_array_equal(fast.mapping.l2p, ref.mapping.l2p)
    np.testing.assert_array_equal(fast.p2l, ref.p2l)
    np.testing.assert_array_equal(fast.sector_valid, ref.sector_valid)
    np.testing.assert_array_equal(fast.block_valid, ref.block_valid)
    np.testing.assert_array_equal(fast.nand.page_state, ref.nand.page_state)
    np.testing.assert_array_equal(fast.nand.page_lpn, ref.nand.page_lpn)
    np.testing.assert_array_equal(fast.nand.page_seq, ref.nand.page_seq)
    np.testing.assert_array_equal(fast.nand.block_erase_count,
                                  ref.nand.block_erase_count)
    np.testing.assert_array_equal(fast.nand.block_write_ptr,
                                  ref.nand.block_write_ptr)
    assert fast.nand.wear_summary() == ref.nand.wear_summary()
    assert fast.stats == ref.stats
    assert fast.mapping.stats == ref.mapping.stats
    assert fast.cache.hits == ref.cache.hits


def test_ftl_op_streams_identical_under_gc_churn():
    config = tiny()
    fast = Ftl(config)
    ref = Ftl(config, fast_path=False)
    rng = np.random.default_rng(23)
    num = config.logical_sectors
    for i in range(4_000):
        lpn = int(rng.integers(num))
        choice = i % 7
        if choice < 5:
            assert fast.write(lpn) == ref.write(lpn)
        elif choice == 5:
            assert fast.read(lpn) == ref.read(lpn)
        else:
            assert fast.trim(lpn) == ref.trim(lpn)
    assert fast.flush() == ref.flush()
    _assert_same_state(fast, ref)


@pytest.mark.parametrize("submission,kwargs", [
    ("closed", {"iodepth": 1}),
    ("closed", {"iodepth": 8}),
    ("open", {"rate_iops": 40_000.0}),
])
def test_timed_runs_identical(submission, kwargs):
    results = {}
    for fast in (True, False):
        config = mqsim_baseline()
        device = TimedSSD(config, fast_path=fast)
        job = JobSpec(name="j", rw="randwrite",
                      region=Region(0, config.logical_sectors),
                      io_count=3_000, bs_sectors=2, seed=11,
                      submission=submission, **kwargs)
        run = run_timed(device, [job])
        results[fast] = (run, device)

    run_fast, dev_fast = results[True]
    run_ref, dev_ref = results[False]
    np.testing.assert_array_equal(run_fast.jobs["j"].latencies_us,
                                  run_ref.jobs["j"].latencies_us)
    assert run_fast.elapsed_ns == run_ref.elapsed_ns
    assert dev_fast.completed == dev_ref.completed
    assert dev_fast.smart == dev_ref.smart
    _assert_same_state(dev_fast.ftl, dev_ref.ftl)


def test_single_job_engine_loop_matches_general_scheduler():
    # The single-job bulk-stepping loop is gated on device.fast_path;
    # flipping the flag after construction keeps the FTL fast lanes but
    # routes the same job through the general multi-job scheduler (and
    # the encoded op path) — results must be identical either way.
    runs = {}
    for fast in (True, False):
        config = tiny()
        device = TimedSSD(config, fast_path=True)
        device.fast_path = fast
        job = JobSpec(name="j", rw="write", region=Region(0, 600),
                      io_count=2_000, bs_sectors=1, iodepth=4, seed=3)
        runs[fast] = run_timed(device, [job])
    np.testing.assert_array_equal(runs[True].jobs["j"].latencies_us,
                                  runs[False].jobs["j"].latencies_us)
    assert runs[True].elapsed_ns == runs[False].elapsed_ns
    assert runs[True].smart_delta == runs[False].smart_delta
