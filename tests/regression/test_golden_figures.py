"""Golden-figure regression tests.

The benchmarks under ``benchmarks/`` regenerate the paper's figures and
persist them to ``bench_results/*.csv``; those CSVs are the pinned
record of what this reproduction produces.  ROADMAP.md tells every PR to
"refactor freely" — these tests are what makes that safe: they re-run
the cheap, deterministic studies at reduced scale and assert the
headline numbers still agree with the pinned CSVs within stated
tolerances, so a fidelity regression fails tier-1 instead of silently
shifting a figure.

Scale notes: the reduced runs use smaller geometries / request counts
than the benchmarks, so scale-dependent magnitudes (absolute WAF, erase
counts) are compared through scale-invariant headlines — convergence
asymptotes, ratios, orderings — with tolerances stated at each assert.
"""

import csv
from pathlib import Path

import numpy as np
import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent.parent / "bench_results"


def golden_rows(name: str) -> list[dict]:
    path = RESULTS_DIR / f"{name}.csv"
    assert path.exists(), f"golden figure {path} missing"
    with open(path) as fh:
        return list(csv.DictReader(fh))


class TestFig4aNandPageConvergence:
    """Fig 4a headline: host bytes per NAND page converge at the RAIN
    signature 32 KiB * 15/16 ≈ 30 KiB.  The asymptote is structural
    (page size and stripe width), so it is scale-invariant."""

    @pytest.fixture(scope="class")
    def estimate(self):
        from repro.core.blackbox.nand_page import sequential_write_sweep
        from repro.ssd.device import SimulatedSSD
        from repro.ssd.presets import mx500_like

        device = SimulatedSSD(mx500_like(scale=4))
        sector = device.sector_size
        return sequential_write_sweep(
            device, sizes_bytes=[sector * (1 << i) for i in range(1, 11)]
        )

    def test_converged_ratio_matches_golden(self, estimate):
        rows = golden_rows("fig4a_nand_page")
        golden_tail = [float(r["bytes/page"]) for r in rows[-3:]]
        golden_converged = sum(golden_tail) / len(golden_tail)
        # Tolerance: 2% — the asymptote depends only on page size and
        # RAIN stripe, not on geometry scale.
        assert estimate.converged_bytes_per_page == pytest.approx(
            golden_converged, rel=0.02
        )

    def test_curve_shape_matches_golden(self, estimate):
        rows = golden_rows("fig4a_nand_page")
        # Small writes sit below the asymptote in both runs, and the
        # curve is (weakly) increasing toward it.
        golden_first = float(rows[0]["bytes/page"])
        assert golden_first < float(rows[-1]["bytes/page"])
        ratios = [p.bytes_per_page for p in estimate.points]
        assert ratios[0] < estimate.converged_bytes_per_page
        assert ratios[-1] == pytest.approx(
            estimate.converged_bytes_per_page, rel=0.05
        )


class TestFig4bWafExtrapolationGap:
    """Fig 4b headline: the additive (IOPS-weighted) WAF prediction
    undershoots the measured mixed run.  The pinned gap is ~1.87x; at
    reduced scale the gap shrinks but must stay well above 1 and within
    a stated band of the golden ratio."""

    @pytest.fixture(scope="class")
    def study(self):
        from repro.core.blackbox.waf import run_waf_study
        from repro.ssd.device import SimulatedSSD
        from repro.ssd.presets import mx500_like

        return run_waf_study(
            lambda: SimulatedSSD(mx500_like(scale=4)),
            io_count=4000,
            prime_fraction=0.5,
        )

    @staticmethod
    def golden_error() -> float:
        rows = golden_rows("fig4b_waf")
        by_name = {r["workload"]: r for r in rows}
        expected = float(by_name["expected mixed (weighted)"]["WAF"])
        measured = float(by_name["measured mixed"]["WAF"])
        return measured / expected

    def test_measured_exceeds_additive_prediction(self, study):
        assert study.measured_mixed_waf > study.expected_mixed_waf

    def test_gap_within_band_of_golden(self, study):
        golden = self.golden_error()
        assert golden > 1.5  # the pinned figure itself shows the gap
        # Tolerance: reduced scale damps the interference, so accept
        # [0.55x, 1.45x] of the pinned 1.87x gap — still far from 1.0.
        assert 0.55 * golden <= study.extrapolation_error <= 1.45 * golden
        assert study.extrapolation_error >= 1.2

    def test_separate_runs_look_alike(self, study):
        # The trap the paper sets: separately, the workloads look
        # similar/benign (golden spread < 1.5x), which is what makes
        # the additive prediction tempting.
        rows = golden_rows("fig4b_waf")
        golden_wafs = [float(r["WAF"]) for r in rows
                       if r["workload"].endswith("uniform")
                       or r["workload"].endswith("8020")]
        assert max(golden_wafs) / min(golden_wafs) < 1.5
        wafs = [w.waf for w in study.separate]
        assert max(wafs) / min(wafs) < 1.5


class TestAblationGcPolicy:
    """GC-policy ablation headline: greedy-family policies beat random
    by a wide margin under 80/20 churn (Van Houdt's first-order
    effect).  The golden random/greedy ratio is ~2.9; the ordering and
    the ratio band must survive any refactor."""

    @pytest.fixture(scope="class")
    def wafs(self):
        from repro.ssd.config import GC_POLICIES
        from repro.ssd.device import SimulatedSSD
        from repro.ssd.presets import tiny

        def churn(policy: str, writes: int = 6000, seed: int = 3) -> float:
            device = SimulatedSSD(tiny().with_changes(gc_policy=policy))
            rng = np.random.default_rng(seed)
            hot = max(1, device.num_sectors // 5)
            for _ in range(writes):
                if rng.random() < 0.8:
                    lba = int(rng.integers(hot))
                else:
                    lba = hot + int(rng.integers(device.num_sectors - hot))
                device.write_sectors(lba, 1)
            device.flush()
            return device.smart.waf()

        return {policy: churn(policy) for policy in GC_POLICIES}

    @staticmethod
    def golden_wafs() -> dict[str, float]:
        return {r["policy"]: float(r["WAF"])
                for r in golden_rows("ablation_gc_policy")}

    def test_random_is_worst_in_both(self, wafs):
        golden = self.golden_wafs()
        assert max(golden, key=golden.get) == "random"
        assert max(wafs, key=wafs.get) == "random"

    def test_greedy_family_beats_random(self, wafs):
        # Greedy, randomized-greedy, and cost-benefit all clearly beat
        # random — with margin, so a subtly-broken victim policy fails.
        for policy in ("greedy", "randomized_greedy", "cost_benefit"):
            assert wafs[policy] <= 0.8 * wafs["random"], policy

    def test_random_over_greedy_ratio_within_band(self, wafs):
        golden = self.golden_wafs()
        golden_ratio = golden["random"] / golden["greedy"]
        ratio = wafs["random"] / wafs["greedy"]
        # Tolerance: ±45% of the pinned ratio (reduced write count
        # shrinks GC pressure and with it the spread).
        assert golden_ratio * 0.55 <= ratio <= golden_ratio * 1.45

    def test_greedy_near_cost_benefit(self, wafs):
        golden = self.golden_wafs()
        assert golden["cost_benefit"] == pytest.approx(golden["greedy"],
                                                       rel=0.1)
        assert wafs["cost_benefit"] == pytest.approx(wafs["greedy"], rel=0.15)
