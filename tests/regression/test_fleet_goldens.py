"""Fleet golden regression tests.

``benchmarks/bench_fleet_scaling.py`` persists two goldens:
``fleet_scaling.csv`` (throughput by jobs/shards configuration) and
``fleet_slo.csv`` (the merged per-tenant SLO table of the 256-device
reference fleet).  These tests re-run the same fleet at quarter scale
(64 devices — same tenants, rates, and per-device request counts, just
fewer devices) and assert the merged tail quantiles still agree with
the pinned table within stated tolerances, so a simulator or sketch
regression fails tier-1 instead of silently shifting the golden.

Tolerance notes: merged quantiles are estimates over iid per-device
distributions, so they are stable under fleet-size changes — observed
quarter-scale deviation is ~5% at p99 and ~12% at p99.9.  Medians are
NOT pinned for the latency-sensitive tenant: its p50 sits on the cliff
between cache-hit (~10 us) and program (~1 ms) service times, where a
tiny mass shift moves the interpolated quantile by an order of
magnitude without anything regressing.
"""

import csv
from pathlib import Path

import pytest

from repro.fleet import FleetSpec, default_tenants, run_fleet

RESULTS_DIR = Path(__file__).resolve().parent.parent.parent / "bench_results"


def golden_rows(name: str) -> list[dict]:
    path = RESULTS_DIR / f"{name}.csv"
    assert path.exists(), f"golden figure {path} missing"
    with open(path) as fh:
        return list(csv.DictReader(fh))


@pytest.fixture(scope="module")
def report():
    spec = FleetSpec(tenants=default_tenants(io_count=150), devices=64,
                     preset="tiny", seed=42)
    return run_fleet(spec)


class TestFleetSloGolden:
    @staticmethod
    def golden() -> dict[str, dict]:
        return {r["tenant"]: r for r in golden_rows("fleet_slo")}

    def test_tenants_match(self, report):
        golden = self.golden()
        assert set(golden) == {v.tenant for v in report.verdicts} | {"fleet"}

    def test_slo_verdict_still_pass(self, report):
        golden = self.golden()
        for verdict in report.verdicts:
            assert verdict.ok, verdict
            for column in ("SLO p99", "SLO p99.9"):
                assert "VIOLATED" not in golden[verdict.tenant][column]

    def test_tail_quantiles_within_band(self, report):
        golden = self.golden()
        for verdict in report.verdicts:
            g = golden[verdict.tenant]
            # p99 within 25%, p99.9 within 35% of the pinned run (see
            # module docstring for the observed quarter-scale deviation).
            assert verdict.p99_us == pytest.approx(
                float(g["p99 (us)"]), rel=0.25), verdict.tenant
            assert verdict.p999_us == pytest.approx(
                float(g["p99.9 (us)"]), rel=0.35), verdict.tenant

    def test_fleet_row_tracks_merge(self, report):
        g = self.golden()["fleet"]
        assert report.fleet_sketch.quantile(0.99) == pytest.approx(
            float(g["p99 (us)"]), rel=0.25)

    def test_stable_medians_match_exactly_shaped(self, report):
        # backup (always ~1 program) and analytics (read-dominated) have
        # stable medians; pin them loosely, and pin the golden ordering.
        golden = self.golden()
        by_name = {v.tenant: v for v in report.verdicts}
        assert by_name["backup"].p50_us == pytest.approx(
            float(golden["backup"]["p50 (us)"]), rel=0.2)
        assert by_name["analytics"].p50_us == pytest.approx(
            float(golden["analytics"]["p50 (us)"]), rel=0.2)
        assert float(golden["backup"]["p50 (us)"]) > \
            float(golden["analytics"]["p50 (us)"])


class TestFleetScalingGolden:
    def test_recorded_configurations(self):
        rows = golden_rows("fleet_scaling")
        jobs = {r["jobs"] for r in rows}
        assert jobs == {"1", "2", "4"}
        assert {r["shards"] for r in rows} >= {"auto", "1", "8", "32"}
        assert all(r["devices"] == "256" for r in rows)

    def test_pinned_throughput_floor_held(self):
        from benchmarks.bench_fleet_scaling import FLOOR_DEVICES_PER_S

        rows = golden_rows("fleet_scaling")
        serial = next(r for r in rows
                      if r["jobs"] == "1" and r["shards"] == "auto")
        assert float(serial["devices/s"]) >= FLOOR_DEVICES_PER_S
