"""String knobs and injected policy objects are the same engine.

The refactor's contract: resolving a knob string through a registry and
handing the component the resulting object directly must be
indistinguishable — same RNG draws, same victims, same flush order,
same device-level statistics.  These tests pin that seam so policy
objects stay stateless and the registries stay a pure naming layer.
"""

import numpy as np
import pytest

from repro.flash.nand import NandArray
from repro.ssd.allocation import PageAllocator
from repro.ssd.cache import WriteCache
from repro.ssd.device import SimulatedSSD
from repro.ssd.gc import VictimSelector
from repro.ssd.policy import (
    allocation_policies,
    cache_eviction_policies,
    victim_policies,
    wear_policies,
)
from repro.ssd.presets import tiny
from repro.ssd.wearlevel import WearLeveler


def run_churn(device, writes=3000, seed=11):
    rng = np.random.default_rng(seed)
    hot = max(1, device.num_sectors // 4)
    for _ in range(writes):
        if rng.random() < 0.8:
            lba = int(rng.integers(hot))
        else:
            lba = hot + int(rng.integers(device.num_sectors - hot))
        device.write_sectors(lba, 1)
    device.flush()
    stats = device.ftl.stats
    return (device.smart.waf(), device.smart.erase_count,
            stats.gc_migrated_sectors, stats.gc_invocations)


class TestVictimEquivalence:
    @pytest.mark.parametrize(
        "name", ["greedy", "randomized_greedy", "d_choices", "cat"])
    def test_device_run_identical_with_injected_policy(self, name):
        by_string = SimulatedSSD(tiny().with_changes(gc_policy=name))

        by_object = SimulatedSSD(tiny())
        ftl = by_object.ftl
        # Swap in a selector built around the resolved object before any
        # IO; the fresh selector re-seeds the same RNG stream.
        ftl.selector = VictimSelector(
            victim_policies.resolve(name)(),
            ftl.geometry, ftl.nand, ftl.allocator, ftl.block_valid,
            sample_size=tiny().gc_sample_size,
        )
        assert ftl.selector.policy == name
        assert run_churn(by_string) == run_churn(by_object)


class TestCacheEvictionEquivalence:
    def test_flush_order_identical_with_injected_policy(self):
        rng = np.random.default_rng(2)
        lpns = [int(x) for x in rng.integers(64, size=400)]
        for name in cache_eviction_policies.names():
            a = WriteCache(16, eviction=name)
            b = WriteCache(16, eviction=cache_eviction_policies.resolve(name)())
            drained = []
            for cache in (a, b):
                batches = []
                for lpn in lpns:
                    cache.insert(lpn)
                    while cache.needs_flush:
                        batches.append(cache.take_flush_batch(4))
                batches.extend(cache.drain_batches(4))
                drained.append(batches)
            assert drained[0] == drained[1], name


class TestAllocationEquivalence:
    def test_allocation_sequence_identical_with_injected_policy(self):
        geometry = tiny().geometry
        for name in allocation_policies.names():
            a = PageAllocator(geometry, NandArray(geometry), name)
            b = PageAllocator(geometry, NandArray(geometry),
                              allocation_policies.resolve(name)())
            assert a.scheme == b.scheme and a.streams == b.streams
            for stream in a.streams:
                pages_a = [a.allocate_page(stream) for _ in range(16)]
                pages_b = [b.allocate_page(stream) for _ in range(16)]
                assert pages_a == pages_b, (name, stream)


class TestWearEquivalence:
    def test_pick_identical_with_injected_policy(self):
        geometry = tiny().geometry
        for name in wear_policies.names():
            picks = []
            for policy in (name, wear_policies.resolve(name)()):
                nand = NandArray(geometry)
                allocator = PageAllocator(geometry, nand, "CWDP")
                for block in range(8):
                    nand.block_erase_count[block] = block % 3
                    for page in range(geometry.pages_per_block):
                        nand.program(block * geometry.pages_per_block + page)
                leveler = WearLeveler(geometry, nand, allocator,
                                      delta=1, policy=policy)
                picks.append(leveler.pick_victim().victim_block)
            assert picks[0] == picks[1], name
