"""Scheduler-equivalence regression tests.

PR 2 rebuilt :class:`~repro.ssd.timed.TimedSSD` on the discrete-event
kernel (:mod:`repro.sim`).  These tests pin the claim that the rebuild
is *numerically equivalent*: the kernel-scheduled device reproduces the
golden Fig 3 figures in ``bench_results/fig3_tail_latency.csv`` at the
benchmark's own scale, not merely "close on a smaller config".  A
scheduling change that shifts any headline number fails here before it
silently rewrites a figure.

The open-loop tests pin the new submission mode's contract: identical
seeds give identical runs, and a saturating arrival rate produces the
heavier-than-closed-loop tail that motivates the mode.
"""

import numpy as np
import pytest

from tests.regression.test_golden_figures import golden_rows


class TestFig3KernelEquivalence:
    """The kernel-based scheduler reproduces the pinned Fig 3 numbers
    (golden scale: mqsim_baseline(scale=2), 4K requests, io_count=3000,
    precondition 0.75 — the exact benchmark configuration behind the
    CSV's 4K rows)."""

    @pytest.fixture(scope="class")
    def study(self):
        from repro.core.modeling.fidelity import run_fidelity_study
        from repro.ssd.presets import mqsim_baseline

        return run_fidelity_study(
            mqsim_baseline(scale=2),
            block_sizes_sectors=(1,),
            io_count=3000,
            precondition_fraction=0.75,
        )

    @pytest.fixture(scope="class")
    def golden_4k(self):
        rows = golden_rows("fig3_tail_latency")
        return {r["FTL variant"]: r for r in rows if r["request"] == "4K"}

    def test_every_variant_matches_golden(self, study, golden_4k):
        assert golden_4k, "no 4K rows in the golden CSV"
        for result in study.results:
            golden = golden_4k[result.variant]
            # Tolerance: the CSV rounds to 0.1 us / whole IOPS; 0.5%
            # covers rounding and nothing else — the runs are pinned
            # deterministic.
            assert result.summary.p50 == pytest.approx(
                float(golden["p50 (us)"]), rel=0.005), result.variant
            assert result.summary.p99 == pytest.approx(
                float(golden["p99 (us)"]), rel=0.005), result.variant
            assert result.summary.p999 == pytest.approx(
                float(golden["p99.9 (us)"]), rel=0.005), result.variant
            assert result.iops == pytest.approx(
                float(golden["IOPS"]), rel=0.005), result.variant

    def test_variant_ordering_preserved(self, study, golden_4k):
        """The figure's story — PDWC's p99 stands out from baseline —
        survives independent of absolute values."""
        by_variant = {r.variant: r for r in study.results}
        assert (by_variant["alloc=PDWC"].summary.p99
                > 1.5 * by_variant["baseline"].summary.p99)


def _run_open(rate_iops, io_count=2000, seed=7, arrival="poisson"):
    from repro.ssd.presets import tiny
    from repro.ssd.timed import TimedSSD
    from repro.workloads.engine import run_timed
    from repro.workloads.patterns import Region
    from repro.workloads.spec import JobSpec

    device = TimedSSD(tiny())
    job = JobSpec("open", "randwrite", Region(0, device.num_sectors),
                  bs_sectors=1, io_count=io_count, iodepth=4, seed=seed,
                  submission="open", rate_iops=rate_iops, arrival=arrival)
    return run_timed(device, [job]).jobs["open"]


class TestOpenLoopRegression:
    def test_open_loop_deterministic(self):
        first = _run_open(50_000)
        second = _run_open(50_000)
        assert np.array_equal(first.latencies_us, second.latencies_us)
        assert first.elapsed_ns == second.elapsed_ns

    def test_fixed_arrival_deterministic(self):
        first = _run_open(50_000, arrival="fixed")
        second = _run_open(50_000, arrival="fixed")
        assert np.array_equal(first.latencies_us, second.latencies_us)

    def test_saturating_open_loop_has_heavier_tail_than_closed(self):
        """At a rate the device cannot sustain, open-loop queueing grows
        without bound; closed-loop self-throttles at iodepth.  This is
        the mode's reason to exist."""
        from repro.ssd.presets import tiny
        from repro.ssd.timed import TimedSSD
        from repro.workloads.engine import run_timed
        from repro.workloads.patterns import Region
        from repro.workloads.spec import JobSpec

        device = TimedSSD(tiny())
        closed_job = JobSpec("closed", "randwrite",
                             Region(0, device.num_sectors),
                             bs_sectors=1, io_count=2000, iodepth=4, seed=7)
        closed = run_timed(device, [closed_job]).jobs["closed"]
        open_sat = _run_open(200_000)
        assert open_sat.percentile_us(99) > 5 * closed.percentile_us(99)

    def test_subsaturation_run_is_arrival_paced(self):
        """Well under capacity the run's wall-clock is set by the
        arrival schedule, not by the device: elapsed time tracks
        io_count / rate instead of collapsing to the device's own
        throughput the way a closed loop does."""
        rate = 200.0
        job = _run_open(rate, io_count=400)
        expected_ns = 400 * 1e9 / rate
        assert job.elapsed_ns == pytest.approx(expected_ns, rel=0.3)
        # And the common case still completes at the admission floor.
        assert job.percentile_us(50) == pytest.approx(8.0, rel=0.01)
