"""Test-wide fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_result_cache(monkeypatch, tmp_path_factory):
    """Keep tests out of the user's ~/.cache/repro-ssd: any code path
    that falls back to the default result-cache location (e.g. the CLI
    study commands) gets a per-session temporary directory instead."""
    monkeypatch.setenv(
        "REPRO_CACHE_DIR",
        str(tmp_path_factory.getbasetemp() / "repro-cache"),
    )
