"""Property: engine-level read-after-write holds under churn.

Hypothesis drives both storage engines over random YCSB shapes on the
tiny device — small enough that memtable flushes, leveled compactions,
page splits/merges, *and* device-side GC all fire — and asserts the
ground-truth invariant: every get returns the latest version put
(``stats.read_errors == 0``), no matter how the engine rearranged the
data underneath or how the FTL moved it on flash.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.btree import BTreeConfig, BTreeEngine
from repro.engines.kv import YcsbSpec
from repro.engines.lsm import LsmConfig, LsmEngine
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import tiny

#: bounded so hypothesis examples stay sub-second on the tiny preset.
MAX_RECORDS = 120

ycsb_specs = st.builds(
    YcsbSpec,
    mix=st.sampled_from(["a", "b", "c"]),
    records=st.integers(24, MAX_RECORDS),
    operations=st.integers(100, 400),
    key_dist=st.sampled_from(["zipfian", "uniform"]),
)


def run_on_device(engine):
    device = SimulatedSSD(tiny())
    for kind, lba, sectors in engine:
        if kind == "write":
            device.write_sectors(lba, sectors)
        elif kind == "read":
            device.read_sectors(lba, sectors)
        elif kind == "trim":
            device.trim_sectors(lba, sectors)
        else:
            device.flush()
    return device


@settings(max_examples=20, deadline=None)
@given(spec=ycsb_specs, seed=st.integers(0, 2**20))
def test_lsm_read_after_write_survives_compaction_and_gc(spec, seed):
    # small memtable + low L0 limit: compactions are guaranteed, and
    # the write traffic forces device GC on the tiny preset.
    config = LsmConfig(memtable_sectors=16, sstable_sectors=32,
                       wal_sectors=64, l0_limit=2, fanout=2)
    engine = LsmEngine(spec, 716, config, seed=seed)
    device = run_on_device(engine)
    assert engine.stats.read_errors == 0
    assert engine.lsm_stats.flushes > 0
    if engine.lsm_stats.flushes > config.l0_limit:
        assert engine.lsm_stats.compactions > 0
    assert device.smart.host_sectors_written > 0
    # the model is fully recoverable even after the run
    for key, version in engine._model.items():
        assert engine.get(key) == version


@settings(max_examples=20, deadline=None)
@given(spec=ycsb_specs, seed=st.integers(0, 2**20))
def test_btree_read_after_write_survives_split_merge_churn(spec, seed):
    config = BTreeConfig(page_sectors=2, leaf_capacity=8, node_capacity=8)
    engine = BTreeEngine(spec, 716, config, seed=seed)
    run_on_device(engine)
    engine.check_invariants()
    assert engine.stats.read_errors == 0
    assert engine.btree_stats.splits > 0  # the load phase alone splits
    for key, version in engine._model.items():
        assert engine.get(key) == version
