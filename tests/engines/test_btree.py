"""B-tree engine: split/merge invariants, page accounting, traffic."""

import numpy as np
import pytest

from repro.engines.btree import BTreeConfig, BTreeEngine
from repro.engines.kv import YcsbSpec, ycsb_spec_for_device
from repro.obs.sinks import CounterSink
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mqsim_baseline
from repro.workloads.engine import run_counter

NUM_SECTORS = 4096


def make_engine(records=64, sink=None, **config_kwargs):
    spec = YcsbSpec(mix="a", records=records, operations=0)
    config = BTreeConfig(page_sectors=4, leaf_capacity=8, node_capacity=8,
                         **config_kwargs)
    return BTreeEngine(spec, NUM_SECTORS, config, sink=sink)


def drain(engine):
    engine._pending.clear()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            BTreeConfig(page_sectors=0)
        with pytest.raises(ValueError):
            BTreeConfig(leaf_capacity=2)

    def test_merge_threshold(self):
        assert BTreeConfig(leaf_capacity=16).merge_threshold == 4


class TestSplits:
    def test_inserts_split_and_grow_the_tree(self):
        engine = make_engine()
        rng = np.random.default_rng(1)
        for version, key in enumerate(rng.permutation(200), start=1):
            engine.put(int(key), version)
            engine.check_invariants()
        assert engine.btree_stats.splits > 0
        assert engine.depth >= 3  # 200 keys at 8/leaf need internal levels
        sink_free = len(engine._free)
        assert sink_free + len(engine._pages) == engine._num_pages

    def test_every_key_readable_after_split_churn(self):
        engine = make_engine()
        expected = {}
        rng = np.random.default_rng(2)
        for version, key in enumerate(rng.permutation(300), start=1):
            engine.put(int(key), version)
            expected[int(key)] = version
        for key, version in expected.items():
            assert engine.get(key) == version
        assert engine.get(10_000) is None

    def test_overwrites_do_not_split(self):
        engine = make_engine()
        for version in range(1, 50):
            engine.put(5, version)
        assert engine.btree_stats.splits == 0
        assert engine.depth == 1
        assert engine.get(5) == 49


class TestMerges:
    def test_deletes_merge_under_churn(self):
        engine = make_engine()
        for key in range(240):
            engine.put(key, key + 1)
        allocated = engine.btree_stats.pages_allocated
        for key in range(239, 4, -1):  # drain back to a handful of keys
            engine.delete(key)
            engine.check_invariants()
        stats = engine.btree_stats
        assert stats.merges > 0
        assert stats.pages_freed > 0
        assert stats.pages_allocated == allocated  # merges never allocate
        for key in range(5):
            assert engine.get(key) == key + 1
        assert engine.get(100) is None

    def test_root_collapse_shrinks_a_two_level_tree(self):
        # merging is leaf-level, so the tree only loses height when the
        # root parents the leaves directly: grow to depth 2, drain it.
        engine = make_engine()
        for key in range(24):
            engine.put(key, key + 1)
        assert engine.depth == 2
        for key in range(23, 0, -1):
            engine.delete(key)
            engine.check_invariants()
        assert engine.depth == 1
        assert engine.btree_stats.merges > 0
        assert engine.get(0) == 1

    def test_delete_of_absent_key_is_harmless(self):
        engine = make_engine()
        engine.put(1, 1)
        engine.delete(99)
        engine.check_invariants()
        assert engine.get(1) == 1


class TestTraffic:
    def test_page_traffic_lands_on_page_boundaries(self):
        engine = make_engine()
        rng = np.random.default_rng(3)
        for version, key in enumerate(rng.permutation(100), start=1):
            engine.put(int(key), version)
        page = engine.config.page_sectors
        requests = list(engine._pending)
        assert requests, "puts must emit block traffic"
        for kind, lba, sectors in requests:
            assert kind in ("write", "read", "trim")
            assert sectors == page
            assert lba % page == 0

    def test_freed_pages_are_trimmed(self):
        engine = make_engine()
        for key in range(120):
            engine.put(key, key + 1)
        drain(engine)
        for key in range(120):
            engine.delete(key)
        trims = [r for r in engine._pending if r[0] == "trim"]
        assert len(trims) == engine.btree_stats.pages_freed > 0

    def test_split_and_merge_events(self):
        sink = CounterSink()
        engine = make_engine(sink=sink)
        for key in range(200):
            engine.put(key, key + 1)
        for key in range(200):
            engine.delete(key)
        assert sink.count("btree_page_split") == engine.btree_stats.splits > 0
        assert sink.count("btree_page_merge") == engine.btree_stats.merges > 0

    def test_validation_rejects_too_small_device(self):
        spec = YcsbSpec(records=10_000)
        with pytest.raises(ValueError):
            BTreeEngine(spec, 1024)


class TestBtreeOnDevice:
    def test_read_after_write_through_a_real_device(self):
        device = SimulatedSSD(mqsim_baseline(scale=4))
        spec = ycsb_spec_for_device("a", device.num_sectors)
        engine = BTreeEngine(spec, device.num_sectors, seed=4)
        result = run_counter(device, [engine])
        engine.check_invariants()
        assert engine.stats.read_errors == 0
        assert engine.stats.gets > 0
        assert result.jobs[engine.name].requests > spec.records
