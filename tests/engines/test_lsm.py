"""LSM engine: compaction accounting, bloom filters, space hygiene."""

import pytest

from repro.engines.kv import YCSB_MIXES, YcsbSpec, ycsb_spec_for_device
from repro.engines.lsm import LsmConfig, LsmEngine, _Bloom
from repro.obs.sinks import CounterSink
from repro.ssd.device import SimulatedSSD
from repro.ssd.presets import mqsim_baseline
from repro.workloads.engine import run_counter

NUM_SECTORS = 8192


def churned_engine(operations=3_000, records=512, sink=None, seed=0):
    """An LSM that has flushed and compacted: YCSB-A over a small
    memtable so structural churn is guaranteed."""
    spec = YcsbSpec(mix="a", records=records, operations=operations)
    config = LsmConfig(memtable_sectors=64, sstable_sectors=128,
                       wal_sectors=256, l0_limit=2, fanout=2)
    engine = LsmEngine(spec, NUM_SECTORS, config, seed=seed, sink=sink)
    for _ in engine:
        pass
    return engine


class TestYcsbSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            YcsbSpec(mix="z")
        with pytest.raises(ValueError):
            YcsbSpec(records=0)
        with pytest.raises(ValueError):
            YcsbSpec(operations=-1)
        with pytest.raises(ValueError):
            YcsbSpec(key_dist="latest")

    def test_mixes_are_update_fractions(self):
        assert YCSB_MIXES["a"] == 0.5
        assert YCSB_MIXES["c"] == 0.0

    def test_sized_for_device(self):
        spec = ycsb_spec_for_device("b", 6000)
        assert spec.records == 1000
        assert spec.operations == 4000
        assert spec.dataset_sectors * 6 <= 6000


class TestBloom:
    def test_no_false_negatives(self):
        keys = list(range(0, 400, 3))
        bloom = _Bloom(keys, bits_per_key=8, hashes=4)
        assert all(bloom.may_contain(k) for k in keys)

    def test_filters_most_absent_keys(self):
        keys = list(range(0, 400, 3))
        bloom = _Bloom(keys, bits_per_key=8, hashes=4)
        absent = [k for k in range(1, 1200, 2) if k not in set(keys)]
        fp = sum(bloom.may_contain(k) for k in absent)
        assert fp / len(absent) < 0.1  # ~2% expected at 8 bits/key

    def test_deterministic(self):
        a = _Bloom([1, 2, 3], 8, 4)
        b = _Bloom([1, 2, 3], 8, 4)
        assert (a.bits == b.bits).all()


class TestLsmStructure:
    def test_compaction_fires_and_accounts(self):
        engine = churned_engine()
        stats = engine.lsm_stats
        assert stats.flushes > 0
        assert stats.compactions > 0
        assert stats.compaction_sectors_read > 0
        # every sector a compaction read was previously written
        assert stats.compaction_sectors_read <= (
            stats.flush_sectors_written + stats.compaction_sectors_written)
        # engine WAF > 1: WAL plus at least one rewrite of flushed data
        assert stats.engine_waf > 1.0

    def test_level_sizes_match_table_accounting(self):
        engine = churned_engine()
        sizes = engine.level_sizes()
        assert len(sizes) >= 2  # compaction built at least L1
        for (count, sectors), tables in zip(sizes, engine.levels):
            assert count == len(tables)
            assert sectors == sum(t.sectors for t in tables)
        # deeper levels hold non-overlapping tables sorted by min_key
        for tables in engine.levels[1:]:
            for left, right in zip(tables, tables[1:]):
                assert left.max_key < right.min_key

    def test_no_entry_lost_to_compaction(self):
        engine = churned_engine()
        assert engine.resident_entries() >= len(engine._model)
        for key, version in engine._model.items():
            assert engine.get(key) == version
        assert engine.stats.read_errors == 0

    def test_dropped_tables_release_and_trim_their_space(self):
        engine = churned_engine()
        stats = engine.lsm_stats
        assert stats.trimmed_sectors > 0
        # live tables and the free map partition the data region
        live = sum(t.sectors for tables in engine.levels for t in tables)
        data_region = NUM_SECTORS - engine.config.wal_sectors
        assert live + engine.space.free_sectors == data_region
        # trims cover exactly the dropped-table sectors
        dropped = (stats.flush_sectors_written
                   + stats.compaction_sectors_written - live)
        assert stats.trimmed_sectors == dropped

    def test_bloom_filters_save_reads(self):
        engine = churned_engine()
        stats = engine.lsm_stats
        assert stats.bloom_probes > 0
        assert stats.bloom_negatives > 0  # absent-key probes short-circuit
        assert stats.bloom_false_positives < stats.bloom_negatives

    def test_events_emitted_when_sink_attached(self):
        sink = CounterSink()
        engine = churned_engine(operations=1_500, sink=sink)
        stats = engine.lsm_stats
        assert sink.count("memtable_flush") == stats.flushes
        assert sink.count("sstable_written") == stats.sstables_written
        assert sink.count("compaction_started") == stats.compactions
        assert sink.count("compaction_finished") == stats.compactions

    def test_validation(self):
        spec = YcsbSpec(records=64)
        with pytest.raises(ValueError):  # WAL swallows the device
            LsmEngine(spec, 256, LsmConfig(wal_sectors=256))
        with pytest.raises(ValueError):  # dataset needs 2x headroom
            LsmEngine(YcsbSpec(records=1000), 1024)


class TestLsmOnDevice:
    def test_read_after_write_through_a_real_device(self):
        device = SimulatedSSD(mqsim_baseline(scale=4))
        spec = ycsb_spec_for_device("a", device.num_sectors)
        engine = LsmEngine(spec, device.num_sectors, seed=3)
        result = run_counter(device, [engine])
        assert engine.stats.read_errors == 0
        assert engine.stats.gets > 0
        assert result.jobs[engine.name].requests > spec.records
        # trims actually reached the device
        assert device.ftl.stats.trimmed_sectors > 0
