"""Storage-engine unit suites."""
